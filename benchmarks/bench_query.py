"""Experiment Q1: the cost-based query planner earns its keep.

Two claims from docs/QUERY_LANGUAGE.md are measured as before/after
rows:

* **Plan-cache amortisation** — compiled query subtrees are interned in
  the process-wide plan cache under their canonical plan text, so a
  repeated (or differently-spelled but algebra-identical) expression
  skips regex parsing, the closure constructions, and determinisation
  entirely.
* **Statistics-driven join ordering** — once a session has observed
  operand cardinalities, it re-orders associative join chains
  cheapest-relation-first.  On a skewed chain (one huge operand written
  first, a two-tuple relation written last) the re-ordered plan must
  beat both the written-order plan and naive left-to-right
  materialization by ≥ 2x — the nested-loop join does |R1|·|R2| work,
  so order is the whole ballgame.
"""

import time

from repro.db import SpannerDB
from repro.kernels.plan import configure_plan_cache, plan_cache
from repro.query import QuerySession, evaluate_query_naive, parse_expression
from repro.query import ast

#: determinisation-heavy expression (the |Q|=69 lookbehind source from
#: bench_plan_cache, joined and projected) — compile dominates the cold run
HEAVY = "π_{x}('(a|b)*a(a|b){5}!x{(a|b)*}' ⋈ '(a|b)*!x{(a|b)*}')"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_query_plan_cache_warm_hit(bench):
    """A repeated query expression must hit the shared plan cache and be
    ≥ 2x faster than the cold compile (in practice far more — the warm
    run pays only parse + plan + a 32-char evaluation)."""
    db = SpannerDB()
    db.add_document("d", "abba" * 8)

    def compare():
        configure_plan_cache()  # cold process-wide cache
        session = QuerySession(db)
        cold_seconds, cold = _timed(lambda: session.evaluate(HEAVY, "d"))
        warm_seconds, warm = min(
            (_timed(lambda: session.evaluate(HEAVY, "d")) for _ in range(3)),
            key=lambda pair: pair[0],
        )
        assert warm == cold
        stats = plan_cache().stats()
        assert stats["misses"] == 1 and stats["hits"] == 3
        return cold_seconds, warm_seconds

    cold_seconds, warm_seconds = bench(compare, rounds=1)
    bench.record(
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        speedup=cold_seconds / warm_seconds,
    )
    assert cold_seconds / warm_seconds >= 2.0


def _flat_join_chain(expr):
    if isinstance(expr, ast.Join):
        return _flat_join_chain(expr.left) + _flat_join_chain(expr.right)
    return [expr]


def test_query_planner_reorder_beats_naive(bench, tmp_path):
    """Warm statistics re-order a skewed join chain cheapest-first.

    The chain is written worst-first: all O(n²) spans of the document,
    then an n-tuple loaded relation, then a two-tuple one.  Loads are
    never compilable, so every strategy materializes and the only lever
    is order — written order pays |BIG|·|mid| nested-loop work before
    the two-tuple relation ever prunes anything."""
    n = 60
    text = "ab" * n
    # the a's of the document, as a loaded relation (1-indexed spans)
    (tmp_path / "mid.csv").write_text(
        "x\n" + "\n".join(f"{i}:{i + 1}" for i in range(1, 2 * n, 2)) + "\n",
        encoding="utf-8",
    )
    (tmp_path / "tiny.csv").write_text("x\n1:2\n3:4\n", encoding="utf-8")

    db = SpannerDB()
    db.add_document("d", text)
    session = QuerySession(db, base_dir=str(tmp_path))
    expr = parse_expression("'.*!x{[ab]+}.*' ⋈ load('mid.csv') ⋈ load('tiny.csv')")

    def compare():
        # first run observes real cardinalities (written order: default
        # estimates tie, so the stable sort keeps the skewed order)
        expected = session.evaluate(expr, "d")

        reordered_seconds, reordered = _timed(lambda: session.evaluate(expr, "d"))
        chain = _flat_join_chain(session.last_plan.expr)
        assert isinstance(chain[0], ast.Load) and isinstance(chain[-1], ast.RegexAtom)

        written_plan = session.plan(expr, "d", reorder=False)
        written_seconds, written = _timed(
            lambda: session.execute_plan(written_plan, "d")
        )
        naive_seconds, naive = _timed(
            lambda: evaluate_query_naive(expr, text, base_dir=str(tmp_path))
        )
        assert reordered == written == naive == expected and len(expected) == 2
        return reordered_seconds, written_seconds, naive_seconds

    reordered_seconds, written_seconds, naive_seconds = bench(compare, rounds=1)
    bench.record(
        doc_length=len(text),
        reordered_seconds=reordered_seconds,
        written_order_seconds=written_seconds,
        naive_seconds=naive_seconds,
        speedup=written_seconds / reordered_seconds,
        naive_speedup=naive_seconds / reordered_seconds,
    )
    assert written_seconds / reordered_seconds >= 2.0
    assert naive_seconds / reordered_seconds >= 2.0
