"""Experiment C7: refl-spanners sit strictly between regular and core
(paper Section 3.3).

Claims benchmarked:

* refl ModelChecking is tractable: time grows ~linearly with |D| (the
  reference-expansion algorithm), so 8× the document costs ≈ 8×, not 2^8×;
* core NonEmptiness on the equivalent task (squares via ς=) blows up on
  the same documents;
* refl Satisfiability is instant (NFA emptiness) while core Satisfiability
  needs bounded search.
"""

import time

import pytest

from repro.core import Span, SpanTuple
from repro.decision import is_nonempty_on, satisfying_document
from repro.spanners import ReflSpanner, prim

SQUARE_REFL = "!x{(a|b)+}&x"


def _square_doc(half: int) -> str:
    unit = ("ab" * half)[:half]
    return unit + unit


@pytest.mark.parametrize("half", [32, 128, 512])
def test_c7_refl_model_checking_scales(bench, half):
    refl = ReflSpanner.from_regex(SQUARE_REFL)
    doc = _square_doc(half)
    tup = SpanTuple.of(x=Span(1, half + 1))

    result = bench(refl.model_check, doc, tup)
    assert result is True
    bench.benchmark.extra_info["doc_length"] = len(doc)


def test_c7_refl_vs_core_nonemptiness_shape(bench):
    """On square documents, refl NonEmptiness (backtracking but guided)
    stays usable while the core encoding's candidate stream explodes."""
    refl = ReflSpanner.from_regex(SQUARE_REFL)
    core = prim("!x1{(a|b)+}!x2{(a|b)+}").select_equal({"x1", "x2"}).project(set())

    def timed(fn, doc):
        start = time.perf_counter()
        assert fn(doc) is True
        return time.perf_counter() - start

    def shape():
        doc_small, doc_large = _square_doc(8), _square_doc(64)
        return (
            timed(lambda d: is_nonempty_on(refl, d), doc_small),
            timed(lambda d: is_nonempty_on(refl, d), doc_large),
            timed(lambda d: is_nonempty_on(core, d), doc_small),
            timed(lambda d: is_nonempty_on(core, d), doc_large),
        )

    refl_small, refl_large, core_small, core_large = bench(shape, rounds=1)
    bench.benchmark.extra_info.update(
        refl_small=refl_small, refl_large=refl_large,
        core_small=core_small, core_large=core_large,
    )
    # refl beats core on the large instance
    assert refl_large < core_large


def test_c7_refl_satisfiability_instant(bench):
    """Satisfiability for refl-spanners = NFA emptiness (PTIME)."""
    refl = ReflSpanner.from_regex("c*!x{(a|b)+}c+!y{&x}c*")

    witness = bench(satisfying_document, refl)
    assert witness is not None
    # the witness really is a document the spanner matches
    assert is_nonempty_on(refl, witness)


@pytest.mark.parametrize("half", [16, 64])
def test_c7_refl_full_evaluation(bench, half):
    """Full evaluation is exponential in the worst case (NP-hard), but the
    guided search handles mid-size square documents."""
    refl = ReflSpanner.from_regex(SQUARE_REFL)
    doc = _square_doc(half)

    relation = bench(refl.evaluate, doc, rounds=1)
    assert SpanTuple.of(x=Span(1, half + 1)) in relation
