"""Experiments E1–E3: the extension features beyond the survey's core scope
(all from works the survey cites in its Section 1 overview).

E1 — spanner-datalog ([33]): the recursive StrEq program simulates ς=;
     cost grows with the number of equal-content span pairs (the relation
     is quadratic in |D| in the worst case), while the built-in ς= stays
     output-bounded.
E2 — weighted spanners ([8]): tropical best-annotation over a noisy log,
     and counting-semiring ambiguity detection.
E3 — split evaluation ([7]): per-record splitting matches the global
     result on a split-correct extractor and scales with chunk count.
E4 — the integrated SpannerDB: edits over a store with k registered
     spanners cost O(k·log d) fresh node-matrices, per [40]'s headline.
"""

import pytest

from repro.core import SpanTuple
from repro.datalog import select_equal_program
from repro.regex import spanner_from_regex
from repro.spanners import (
    COUNTING,
    TROPICAL,
    WeightedSpanner,
    is_split_correct_on,
    prim,
    split_evaluate,
)
from repro.util import log_document


@pytest.mark.parametrize("length", [4, 8])
def test_e1_datalog_streq_simulates_selection(bench, length):
    pattern = "(a|b)*!x{(a|b)+}(a|b)*!y{(a|b)+}(a|b)*"
    doc = ("ab" * length)[:length]
    spanner = spanner_from_regex(pattern)
    program = select_equal_program(spanner, "x", "y", "ab")
    core = prim(pattern).select_equal({"x", "y"})

    answer = bench(program.query, doc, "Answer", rounds=1)
    expected = {(t["x"], t["y"]) for t in core.evaluate(doc)}
    assert set(answer) == expected
    bench.benchmark.extra_info["answer_rows"] = len(answer)


def test_e2_weighted_best_extraction(bench):
    """Tropical semiring: prefer extractions with less skipped context."""
    from repro.core.alphabet import Marker

    plain = spanner_from_regex("(a|b)*!x{a+}(a|b)*")
    weighted = WeightedSpanner.from_spanner(
        plain,
        TROPICAL,
        arc_weight=lambda s: 0.0 if isinstance(s, Marker) else 1.0,
    )
    doc = "bbaab" * 20

    best = bench(weighted.best, doc)
    assert best is not None
    tup, weight = best
    assert tup["x"].extract(doc).startswith("a")
    # every run reads the whole document: cost = |doc| under this weighting
    assert weight == len(doc)


def test_e2_counting_ambiguity(bench):
    """The counting semiring measures automaton ambiguity per tuple."""
    ambiguous = WeightedSpanner(COUNTING)
    from repro.core import Close, Open

    s0 = ambiguous.add_state(initial=True)
    s1 = ambiguous.add_state()
    s2 = ambiguous.add_state()
    s3 = ambiguous.add_state(accepting=True)
    ambiguous.add_arc(s0, Open("x"), s1)
    ambiguous.add_arc(s1, "a", s2)
    ambiguous.add_arc(s1, "a", s2)
    ambiguous.add_arc(s2, "a", s1)
    ambiguous.add_arc(s2, Close("x"), s3)

    relation = bench(ambiguous.evaluate, "aaa")
    # runs double at each odd position: 'aaa' has 2·2 = 4 runs
    assert list(relation.values()) == [4]


@pytest.mark.parametrize("spanner_count", [1, 4])
def test_e4_spannerdb_edit_cost_scales_with_k(bench, spanner_count):
    """Fresh matrix computations per edit ≈ k · O(log d)."""
    import itertools

    from repro.db import SpannerDB
    from repro.slp import Delete, Doc

    db = SpannerDB()
    db.add_document("big", "abcd" * 4096)
    alphabet = "(a|b|c|d)*"
    for index in range(spanner_count):
        unit = "abcd"[index % 4]
        db.register_spanner(f"s{index}", f"{alphabet}!x{{{unit}}}{alphabet}")
    counter = itertools.count()

    def one_edit():
        round_id = next(counter)
        return db.edit(
            f"v{round_id}", Delete(Doc("big"), 500 + round_id, 700 + round_id)
        )

    fresh = bench(one_edit, rounds=3)
    bench.benchmark.extra_info["fresh_matrices"] = fresh
    assert fresh <= spanner_count * 80 * 15


@pytest.mark.parametrize("lines", [20, 80])
def test_e3_split_evaluation_matches_global(bench, lines):
    body = r"[^;\n]"
    record = (
        f"({body}|;|\n)*(INFO|WARN|ERROR) user=!user{{[a-z]+}} code="
        f"{body}*;({body}|;|\n)*"
    )
    spanner = spanner_from_regex(record)
    doc = log_document(lines, seed=3)

    relation = bench(split_evaluate, spanner, doc, "\n", rounds=1)
    assert relation == spanner.evaluate(doc)
    assert is_split_correct_on(spanner, doc, "\n")
    bench.benchmark.extra_info["records"] = len(relation)
