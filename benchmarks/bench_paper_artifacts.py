"""Experiments P1–P6: the paper's worked examples, reproduced exactly.

Each benchmark times the reproduction and *asserts the golden output* the
paper prints — these are the only "tables and figures" an overview paper
has, so they are reproduced bit-for-bit (see DESIGN.md, Scoping note).
"""

from repro import RegularSpanner, ReflSpanner, Span, SpanTuple, mark_document, prim
from repro.core import Close, MarkedWord, Open, Ref
from repro.slp import figure_1_database, figure_1_slp


def test_p1_example_1_1_table(bench):
    """P1: the span relation table of Example 1.1 on 'ababbab'."""
    spanner = RegularSpanner.from_regex("!x{(a|b)*}!y{b}!z{(a|b)*}")

    relation = bench(spanner.evaluate, "ababbab")
    assert relation.tuples == {
        SpanTuple.of(x=Span(1, 2), y=Span(2, 3), z=Span(3, 8)),
        SpanTuple.of(x=Span(1, 4), y=Span(4, 5), z=Span(5, 8)),
        SpanTuple.of(x=Span(1, 5), y=Span(5, 6), z=Span(6, 8)),
        SpanTuple.of(x=Span(1, 7), y=Span(7, 8), z=Span(8, 8)),
    }
    table = relation.to_table()
    assert "[1,2⟩" in table and "[8,8⟩" in table


def test_p2_subword_marked_word_1(bench):
    """P2: word (1) of Section 2.1 represents D=abcacacbbaa with
    x=[2,6⟩, y=[4,8⟩, z=[1,8⟩; plus the L_ababbab marked-language view."""
    word = MarkedWord([
        Open("z"), "a", Open("x"), "b", "c", Open("y"), "a", "c",
        Close("x"), "a", "c", Close("y"), Close("z"), "b", "b", "a", "a",
    ])

    def reproduce():
        return word.erase(), word.span_tuple()

    doc, tup = bench(reproduce)
    assert doc == "abcacacbbaa"
    assert tup == SpanTuple.of(x=Span(2, 6), y=Span(4, 8), z=Span(1, 8))
    # L_ababbab: the four marked words of Example 1.1
    spanner = RegularSpanner.from_regex("!x{(a|b)*}!y{b}!z{(a|b)*}")
    marked = {
        str(mark_document("ababbab", t)) for t in spanner.evaluate("ababbab")
    }
    assert len(marked) == 4


def test_p3_string_equality_intro_example(bench):
    """P3: ς={x,y} on S_α(abaaab) keeps ([1,3⟩,[5,7⟩), drops ([1,3⟩,[4,7⟩)."""
    core = prim("!x{(a|b)*}(a|b)*!y{a*b*}").select_equal({"x", "y"})

    relation = bench(core.evaluate, "abaaab")
    assert SpanTuple.of(x=Span(1, 3), y=Span(5, 7)) in relation
    assert SpanTuple.of(x=Span(1, 3), y=Span(4, 7)) not in relation


def test_p4_deref_chain(bench):
    """P4: the Section 3.1 nested dereferencing chain."""
    word = MarkedWord([
        Open("x"), "a", "a", Open("y"), "b", "b", "b", Close("x"),
        "c", "c", Ref("x"), Close("y"), "a", "b", "c", Ref("y"),
    ])

    result = bench(word.deref)
    assert result.erase() == "aabbbccaabbbabcbbbccaabbb"


def test_p5_figure_1(bench):
    """P5: Figure 1's SLP — derivations, orders, balances, grey extension."""

    def reproduce():
        slp, nodes = figure_1_slp()
        db, _ = figure_1_database()
        return slp, nodes, db

    slp, nodes, db = bench(reproduce)
    assert slp.derive(nodes["B"]) == "abbca"              # equation (4)/(5)
    assert db.document("D1") == "ababbcabca"
    assert db.document("D2") == "bcabcaabbca"
    assert db.document("D3") == "ababbca"
    assert [slp.order(nodes[n]) for n in ["F", "E", "C", "B", "D", "A1", "A2", "A3"]] == [
        2, 2, 3, 4, 5, 6, 6, 5,
    ]
    assert slp.bal(nodes["A1"]) == 2
    assert slp.bal(nodes["A2"]) == slp.bal(nodes["A3"]) == -2
    # grey extension: A4 = D2·D1, G = D·B, A5 = B·G
    a4 = slp.pair(nodes["A2"], nodes["A1"])
    a5 = slp.pair(nodes["B"], slp.pair(nodes["D"], nodes["B"]))
    assert slp.derive(a4) == db.document("D2") + db.document("D1")
    assert slp.derive(a5) == "abbcabcaabbcaabbca"


def test_p6_refl_expression_3_equals_core_expression_2(bench):
    """P6: the refl-spanner (3) expresses ς={x,y}(⟦(2)⟧)."""
    refl = ReflSpanner.from_regex("ab*!x{(a|b)*}(b|c)*!y{&x}b*")
    core = prim("ab*!x{(a|b)*}(b|c)*!y{(a|b)*}b*").select_equal({"x", "y"})
    doc = "abbabba"

    got = bench(refl.evaluate, doc)
    assert got == core.evaluate(doc)
    assert SpanTuple.of(x=Span(2, 5), y=Span(5, 8)) in got
