"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` file regenerates one experiment of DESIGN.md's
per-experiment index (P* = paper artifacts, C* = complexity-claim shapes,
R* = reliability, O* = observability).  Benchmarks assert the *shape* of
each claim (who wins, how things scale), never absolute numbers; see
EXPERIMENTS.md for the recorded outcomes.

Machine-readable results
------------------------

Every test that uses the ``bench`` fixture automatically contributes one
result row, and at session end the rows are written per module to
``benchmarks/results/BENCH_<name>.json``::

    {"bench": "enumeration",
     "rows": [{"name": ..., "test": ..., "n": ..., "seconds": ...,
               "fitted_exponent": ..., "params": {...}, "extra_info": {...}}]}

``seconds`` is the median of the measured rounds; ``n`` is inferred from
``benchmark.extra_info`` (``doc_length``/``n``/``length``) or an integer
``scale``/``exponent``-style parametrisation; ``fitted_exponent`` is the
least-squares slope of log(seconds) against log(n) across the
parametrised variants of the same test (only where ≥ 2 sizes ran — the
empirical complexity exponent, so the perf trajectory of every claim is
recorded, not just eyeballed).  Use ``bench.record(key=value, ...)`` to
attach extra fields to the current row.
"""

from __future__ import annotations

import json
import math
import pathlib
from collections import defaultdict

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

_rows_by_module: dict[str, list[dict]] = defaultdict(list)


@pytest.fixture
def bench(benchmark, request):
    """A thin wrapper that runs each benchmark a small, fixed number of
    rounds — the workloads here are macro-benchmarks where pytest-benchmark
    auto-calibration would be needlessly slow — and records a result row
    for ``BENCH_<module>.json``."""
    extra: dict = {}

    def run(fn, *args, rounds: int = 3, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=rounds, iterations=1)

    def record(**fields) -> None:
        """Attach extra fields to this test's result row."""
        extra.update(fields)

    run.benchmark = benchmark
    run.record = record
    yield run
    row = _make_row(request, benchmark, extra)
    if row is not None:
        _rows_by_module[request.node.module.__name__].append(row)


def _median_seconds(benchmark) -> float | None:
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return None
    inner = getattr(stats, "stats", stats)
    median = getattr(inner, "median", None)
    return float(median) if median is not None else None


def _jsonable(value):
    return value if isinstance(value, (int, float, str, bool)) or value is None else None


def _infer_n(params: dict, info: dict):
    for key in ("doc_length", "n", "length"):
        if isinstance(info.get(key), (int, float)):
            return info[key]
    for key in ("scale", "n", "size", "count"):
        if isinstance(params.get(key), int):
            return params[key]
    if isinstance(params.get("exponent"), int):
        return 2 ** params["exponent"]
    if isinstance(params.get("big_exponent"), int):
        return 2 ** params["big_exponent"]
    return None


def _make_row(request, benchmark, extra: dict) -> dict | None:
    seconds = _median_seconds(benchmark)
    if seconds is None and not extra:
        return None  # the test never ran a measured benchmark
    params = {}
    if hasattr(request.node, "callspec"):
        params = {
            k: _jsonable(v)
            for k, v in request.node.callspec.params.items()
            if _jsonable(v) is not None
        }
    info = {
        k: _jsonable(v)
        for k, v in dict(getattr(benchmark, "extra_info", {})).items()
        if _jsonable(v) is not None
    }
    row = {
        "name": getattr(request.node, "originalname", None) or request.node.name,
        "test": request.node.name,
        "n": _infer_n(params, info),
        "seconds": seconds,
        "params": params,
        "extra_info": info,
    }
    row.update(extra)
    return row


def _fit_exponents(rows: list[dict]) -> None:
    """Least-squares slope of log(seconds) vs log(n) per test group."""
    groups: dict[str, list[dict]] = defaultdict(list)
    for row in rows:
        n, seconds = row.get("n"), row.get("seconds")
        if isinstance(n, (int, float)) and n > 1 and isinstance(seconds, float) and seconds > 0:
            groups[row["name"]].append(row)
    for group in groups.values():
        points = sorted({(row["n"], row["seconds"]) for row in group})
        if len({n for n, _ in points}) < 2:
            continue
        xs = [math.log(n) for n, _ in points]
        ys = [math.log(s) for _, s in points]
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        denom = sum((x - mean_x) ** 2 for x in xs)
        if denom == 0:
            continue
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denom
        for row in group:
            row["fitted_exponent"] = round(slope, 3)


def pytest_sessionfinish(session, exitstatus):
    if not _rows_by_module:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    for module, rows in sorted(_rows_by_module.items()):
        _fit_exponents(rows)
        name = module.removeprefix("bench_")
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(
            json.dumps({"bench": name, "rows": rows}, indent=2, default=str) + "\n",
            encoding="utf-8",
        )
    _rows_by_module.clear()
