"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` file regenerates one experiment of DESIGN.md's
per-experiment index (P* = paper artifacts, C* = complexity-claim shapes).
Benchmarks assert the *shape* of each claim (who wins, how things scale),
never absolute numbers; see EXPERIMENTS.md for the recorded outcomes.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def bench(benchmark):
    """A thin wrapper that runs each benchmark a small, fixed number of
    rounds — the workloads here are macro-benchmarks where pytest-benchmark
    auto-calibration would be needlessly slow."""

    def run(fn, *args, rounds: int = 3, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=rounds, iterations=1)

    run.benchmark = benchmark
    return run
