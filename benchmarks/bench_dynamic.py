"""C4 (dynamic behaviour of [40]) — sublinear incremental maintenance.

The paper's dynamic setting promises that after a CDE edit only the
O(|φ|·log d) fresh nodes cost anything.  With sealed-root frontier
discovery (ISSUE 9) the engine honors that end to end; these lanes pin
the measured shape:

* **DYN1 — post-edit latency is sublinear**: over documents grown 64×
  (2^10 → 2^16 chars of *incompressible* seeded-random text, so the
  rebuild baseline cannot hide behind SLP sharing), the warm evaluator's
  post-edit preprocess fits an exponent < 0.5 against document size while
  a cold rebuild-from-scratch in the same run fits ~1.0.  Both exponents
  and the 64×-size speedup are recorded and gated by
  ``tools/check_bench_regression.py``.
* **DYN2 — a repeat query on a sealed root walks nothing**: the
  ``slp.eval.walk_visited`` delta across a repeat query is exactly 0
  (recorded, gated at 0).
* **DYN3 — append discovery is frontier-sized**: after a small append to
  a large sealed document, the discovery walk visits a small fraction of
  the arena (the fresh right spine), not the whole document.
"""

import math
import random
import time

from repro import obs
from repro.regex import spanner_from_regex
from repro.slp import (
    Delete,
    Doc,
    DocumentDatabase,
    Editor,
    SLP,
    SLPSpannerEvaluator,
    balanced_node,
)

#: small automaton, one capture — isolates maintenance cost from result volume
PATTERN = "a*!x{b}a*"

#: 64x growth, like the stream latency lane; the window starts at 2^14 so
#: the rebuild baseline's per-call fixed cost (char tables, per-wave batch
#: dispatch) does not flatten its fitted slope at the small end
SIZES = [2**e for e in range(14, 21)]


def _random_text(seed: int, length: int) -> str:
    rng = random.Random(seed)
    return "".join(rng.choice("ab") for _ in range(length))


def _edited_fixture(length: int):
    """A warm evaluator over a *length*-char random document, plus an
    interior-delete edit of it (O(log n) fresh spine nodes, unsealed)."""
    spanner = spanner_from_regex(PATTERN)
    evaluator = SLPSpannerEvaluator(spanner)
    slp = SLP()
    node = balanced_node(slp, _random_text(length, length))
    db = DocumentDatabase(slp)
    db.add_node("doc", node)
    evaluator.preprocess(slp, node)
    edited = Editor(db).apply("edited", Delete(Doc("doc"), length // 4, length // 4 + 16))
    return spanner, evaluator, slp, edited


def _fit_exponent(points) -> float:
    xs = [math.log(n) for n, _ in points]
    ys = [math.log(s) for _, s in points]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    denom = sum((x - mean_x) ** 2 for x in xs)
    return sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    ) / denom


def test_dyn1_postedit_latency_sublinear(bench):
    """Warm post-edit preprocess scales sublinearly (exponent < 0.5) while
    the cold rebuild in the same run scales ~linearly — the [40] claim."""
    incremental = []
    rebuild = []
    for length in SIZES:
        spanner, evaluator, slp, edited = _edited_fixture(length)
        t0 = time.perf_counter()
        evaluator.preprocess(slp, edited)
        incremental.append((length, time.perf_counter() - t0))
        cold = SLPSpannerEvaluator(spanner)  # no plan cache: truly cold
        t0 = time.perf_counter()
        cold.preprocess(slp, edited)
        rebuild.append((length, time.perf_counter() - t0))
    incremental_exponent = _fit_exponent(incremental)
    rebuild_exponent = _fit_exponent(rebuild)
    speedup = rebuild[-1][1] / incremental[-1][1]

    # the measured row: edit-then-incremental-preprocess on the largest
    # (still-warm) document — the loop leaves the 2^16 fixture bound
    state = {"node": edited, "round": 0}

    def edit_and_preprocess():
        state["round"] += 1
        db = DocumentDatabase(slp)
        db.add_node("doc", state["node"])
        length = slp.length(state["node"])
        start = length // 3 + state["round"]
        node = Editor(db).apply("e", Delete(Doc("doc"), start, start + 8))
        evaluator.preprocess(slp, node)
        state["node"] = node

    bench(edit_and_preprocess, rounds=3)
    bench.record(
        incremental_exponent=round(incremental_exponent, 3),
        rebuild_exponent=round(rebuild_exponent, 3),
        # the compare-mode exponent-drift gate watches this field
        fitted_exponent=round(incremental_exponent, 3),
        speedup=round(speedup, 2),
        sizes=f"{SIZES[0]}..{SIZES[-1]}",
        incremental_seconds_largest=round(incremental[-1][1], 6),
        rebuild_seconds_largest=round(rebuild[-1][1], 6),
    )
    assert incremental_exponent < 0.5, incremental
    assert rebuild_exponent > 0.7, rebuild
    assert speedup > 3.0


def test_dyn2_sealed_repeat_zero_walk(bench):
    """A repeat query on a sealed root performs zero topological visits."""
    _, evaluator, slp, edited = _edited_fixture(SIZES[-2])
    evaluator.preprocess(slp, edited)
    obs.configure(enabled=True, reset=True)
    try:
        before = obs.metrics().counter("slp.eval.walk_visited").value
        assert evaluator.is_nonempty(slp, edited) is not None
        assert evaluator.preprocess(slp, edited) == 0
        visited = obs.metrics().counter("slp.eval.walk_visited").value - before
        sealed_hits = obs.metrics().counter("slp.eval.sealed_hits").value
    finally:
        obs.configure(enabled=False, reset=True)
    bench(lambda: evaluator.preprocess(slp, edited), rounds=3)
    bench.record(repeat_walk_visited=visited, sealed_hits=sealed_hits)
    assert visited == 0
    assert sealed_hits >= 1


def test_dyn3_append_discovery_frontier(bench):
    """Appending 32 chars to a sealed 64k-char document walks only the
    fresh right spine, a small fraction of the arena."""
    _, evaluator, slp, edited = _edited_fixture(SIZES[-1])
    evaluator.preprocess(slp, edited)
    total = slp.num_nodes()
    obs.configure(enabled=True, reset=True)
    try:
        bigger = slp.append_text(edited, "ab" * 16)
        evaluator.preprocess(slp, bigger)
        visited = obs.metrics().counter("slp.eval.walk_visited").value
        skipped = obs.metrics().counter("slp.eval.walk_skipped").value
    finally:
        obs.configure(enabled=False, reset=True)
    fraction = visited / total
    bench(lambda: evaluator.preprocess(slp, bigger), rounds=3)
    bench.record(
        walk_visited=visited,
        walk_skipped=skipped,
        arena_nodes=total,
        walk_visited_fraction=round(fraction, 4),
    )
    assert 0 < visited
    assert skipped >= 1
    assert fraction < 0.05, (visited, total)
