"""Experiment C2: compressed NFA membership beats decompression
(paper Section 4.2).

Claim: checking ``D(S) ∈ L(M)`` costs O(|S|·|Q|³) on the SLP versus
O(|D|·|Q|²) on the decompressed document; on compressible documents
(|S| = O(log |D|)) the compressed algorithm wins by an ever-growing factor
and handles documents that cannot even be materialised.
"""

import time

import pytest

from repro.regex import compile_nfa
from repro.slp import SLP, CompressedMembership, power_node, simulate_uncompressed

PATTERN = "(a|b)*abb(a|b)*abb(a|b)*"


@pytest.mark.parametrize("exponent", [8, 11, 14])
def test_c2_compressed_membership(bench, exponent):
    """Compressed membership on (abbab)^(2^k): time grows with k = log |D|,
    not with |D|."""
    nfa = compile_nfa(PATTERN)
    slp = SLP()
    node = power_node(slp, "abbab", exponent)

    def run():
        oracle = CompressedMembership(nfa)  # fresh: no cross-round memo
        return oracle.accepts(slp, node)

    accepted = bench(run)
    assert accepted
    bench.benchmark.extra_info["doc_length"] = slp.length(node)
    bench.benchmark.extra_info["slp_size"] = slp.size(node)


@pytest.mark.parametrize("exponent", [8, 11, 14])
def test_c2_uncompressed_baseline(bench, exponent):
    """The baseline simulation is linear in |D| (so 16× per +4 exponent)."""
    nfa = compile_nfa(PATTERN)
    doc = "abbab" * (2 ** exponent)

    accepted = bench(simulate_uncompressed, nfa, doc)
    assert accepted
    bench.benchmark.extra_info["doc_length"] = len(doc)


def test_c2_crossover_and_shape(bench):
    """The shape assertion: compressed wins on the large instance, and its
    cost is flat-ish in |D| while the baseline's is linear."""
    nfa = compile_nfa(PATTERN)

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    def compressed(exponent):
        slp = SLP()
        node = power_node(slp, "abbab", exponent)
        oracle = CompressedMembership(nfa)
        assert oracle.accepts(slp, node)

    def baseline(exponent):
        assert simulate_uncompressed(nfa, "abbab" * (2 ** exponent))

    def shape():
        comp_small = min(timed(lambda: compressed(8)) for _ in range(3))
        comp_large = min(timed(lambda: compressed(14)) for _ in range(3))
        base_small = min(timed(lambda: baseline(8)) for _ in range(3))
        base_large = min(timed(lambda: baseline(14)) for _ in range(3))
        return comp_small, comp_large, base_small, base_large

    comp_small, comp_large, base_small, base_large = bench(shape, rounds=1)
    bench.benchmark.extra_info.update(
        compressed_small=comp_small,
        compressed_large=comp_large,
        baseline_small=base_small,
        baseline_large=base_large,
    )
    # baseline is ~linear: 64x document => at least 15x time
    assert base_large / base_small > 15
    # compressed grows like log|D|: far less than 30x
    assert comp_large / comp_small < 10
    # and compressed wins outright on the large instance
    assert comp_large < base_large


def test_c2_beyond_materialisation(bench):
    """Documents of length 5·2^60 — impossible to decompress — are fine."""
    nfa = compile_nfa(PATTERN)
    slp = SLP()
    node = power_node(slp, "abbab", 60)

    oracle = CompressedMembership(nfa)
    accepted = bench(oracle.accepts, slp, node)
    assert accepted
    assert slp.length(node) == 5 * 2 ** 60
