"""Experiment C2: compressed NFA membership beats decompression
(paper Section 4.2).

Claim: checking ``D(S) ∈ L(M)`` costs O(|S|·|Q|³) on the SLP versus
O(|D|·|Q|²) on the decompressed document; on compressible documents
(|S| = O(log |D|)) the compressed algorithm wins by an ever-growing factor
and handles documents that cannot even be materialised.
"""

import time

import numpy as np
import pytest

from repro.kernels import reference_mm, unpack_rows
from repro.regex import compile_nfa
from repro.slp import (
    SLP,
    CompressedMembership,
    balanced_node,
    power_node,
    simulate_uncompressed,
)

PATTERN = "(a|b)*abb(a|b)*abb(a|b)*"

# --- the record corpus for the packed-kernel lanes -------------------------
# 4096 structured records over {a,b}: a short varying identifier followed by
# a long fixed body — the log-file shape SLP compression exists for.  String
# interning alone cannot collapse the varying prefixes, but the *matrices*
# of long spans are determined by their suffix (the automaton's bounded
# memory), which is exactly what the content-interning kernel exploits.
_RECORD_FIXED = "abbabbaabbabaabbbaabababbaababbabaabbbabbaabbaabbaababbabababba"[:60]
_RECORD_IDENT = 4
_RECORD_COUNT = 4096


def _record_corpus() -> str:
    rng = np.random.default_rng(7)
    return "".join(
        "".join(rng.choice(["a", "b"], size=_RECORD_IDENT)) + _RECORD_FIXED
        for _ in range(_RECORD_COUNT)
    )


def _reference_node_matrix(nfa, slp, node, char_mats):
    """The seed algorithm verbatim: one float32 product per fresh pair node,
    bool→float32 conversions on every use (see kernels.reference_mm)."""
    memo = {}
    for current in slp.topological(node):
        if current in memo:
            continue
        if slp.is_terminal(current):
            memo[current] = char_mats[slp.char(current)]
        else:
            left, right = slp.children(current)
            memo[current] = reference_mm(memo[left], memo[right])
    return memo[node]


@pytest.mark.parametrize("exponent", [8, 11, 14])
def test_c2_compressed_membership(bench, exponent):
    """Compressed membership on (abbab)^(2^k): time grows with k = log |D|,
    not with |D|."""
    nfa = compile_nfa(PATTERN)
    slp = SLP()
    node = power_node(slp, "abbab", exponent)

    def run():
        oracle = CompressedMembership(nfa)  # fresh: no cross-round memo
        return oracle.accepts(slp, node)

    accepted = bench(run)
    assert accepted
    bench.benchmark.extra_info["doc_length"] = slp.length(node)
    bench.benchmark.extra_info["slp_size"] = slp.size(node)


@pytest.mark.parametrize("exponent", [8, 11, 14])
def test_c2_uncompressed_baseline(bench, exponent):
    """The baseline simulation is linear in |D| (so 16× per +4 exponent)."""
    nfa = compile_nfa(PATTERN)
    doc = "abbab" * (2 ** exponent)

    accepted = bench(simulate_uncompressed, nfa, doc)
    assert accepted
    bench.benchmark.extra_info["doc_length"] = len(doc)


def test_c2_crossover_and_shape(bench):
    """The shape assertion: compressed wins on the large instance, and its
    cost is flat-ish in |D| while the baseline's is linear."""
    nfa = compile_nfa(PATTERN)

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    def compressed(exponent):
        slp = SLP()
        node = power_node(slp, "abbab", exponent)
        oracle = CompressedMembership(nfa)
        assert oracle.accepts(slp, node)

    def baseline(exponent):
        assert simulate_uncompressed(nfa, "abbab" * (2 ** exponent))

    def shape():
        comp_small = min(timed(lambda: compressed(8)) for _ in range(3))
        comp_large = min(timed(lambda: compressed(14)) for _ in range(3))
        base_small = min(timed(lambda: baseline(8)) for _ in range(3))
        base_large = min(timed(lambda: baseline(14)) for _ in range(3))
        return comp_small, comp_large, base_small, base_large

    comp_small, comp_large, base_small, base_large = bench(shape, rounds=1)
    bench.benchmark.extra_info.update(
        compressed_small=comp_small,
        compressed_large=comp_large,
        baseline_small=base_small,
        baseline_large=base_large,
    )
    # baseline is ~linear: 64x document => at least 15x time
    assert base_large / base_small > 15
    # compressed grows like log|D|: far less than 30x
    assert comp_large / comp_small < 10
    # and compressed wins outright on the large instance
    assert comp_large < base_large


@pytest.mark.parametrize("memory", [12, 20, 30])
def test_c2_packed_kernel_speedup(bench, memory):
    """Packed wave kernels vs the seed per-node float32 pipeline.

    ``memory`` is the suffix window of the NFA ``(a|b)*a(a|b){memory}``
    (|Q| = 68 / 108 / 158 after ε-removal — all ≥ 64, the regime the
    packed kernels target).  Both sides run the same preprocessing on the
    same record corpus; ``reference_seconds`` / ``packed_seconds`` are the
    before/after of this PR and ``speedup`` their ratio."""
    nfa = compile_nfa(f"(a|b)*a(a|b){{{memory}}}").remove_epsilon()
    q = nfa.num_states
    assert q >= 64
    text = _record_corpus()
    slp = SLP()
    node = balanced_node(slp, text)
    char_mats = {
        ch: CompressedMembership(nfa).char_matrix(ch) for ch in "ab"
    }

    def timed(fn):
        start = time.perf_counter()
        result = fn()
        return time.perf_counter() - start, result

    def compare():
        ref_seconds, ref_matrix = min(
            (
                timed(lambda: _reference_node_matrix(nfa, slp, node, char_mats))
                for _ in range(3)
            ),
            key=lambda pair: pair[0],
        )
        packed_seconds, packed = min(
            (
                timed(
                    lambda: CompressedMembership(nfa).node_bitmatrix(slp, node)
                )
                for _ in range(3)
            ),
            key=lambda pair: pair[0],
        )
        assert np.array_equal(unpack_rows(packed.rows, q), ref_matrix)
        return ref_seconds, packed_seconds

    ref_seconds, packed_seconds = bench(compare, rounds=1)
    bench.benchmark.extra_info["doc_length"] = len(text)
    bench.record(
        states=q,
        reference_seconds=ref_seconds,
        packed_seconds=packed_seconds,
        speedup=ref_seconds / packed_seconds,
    )
    assert ref_seconds / packed_seconds >= 3.0


def test_c2_beyond_materialisation(bench):
    """Documents of length 5·2^60 — impossible to decompress — are fine."""
    nfa = compile_nfa(PATTERN)
    slp = SLP()
    node = power_node(slp, "abbab", 60)

    oracle = CompressedMembership(nfa)
    accepted = bench(oracle.accepts, slp, node)
    assert accepted
    assert slp.length(node) == 5 * 2 ** 60
