"""Experiment C5: SLP balancing (paper Section 4.1).

Claims benchmarked:

* strongly balanced SLPs are 2-shallow, with
  log|D| ≤ ord − 1 ≤ 2·log|D| (checked structurally);
* rebalancing an arbitrary SLP costs O(|S|·log|D|) — the unavoidable log
  factor of [17] — measured on degenerate chain SLPs;
* balanced concatenation costs O(Δord), so merging documents of wildly
  different sizes is logarithmic.
"""

import math

import pytest

from repro.slp import SLP, balanced_node, concat_balanced, rebalance


def _chain(slp: SLP, length: int) -> int:
    node = slp.terminal("a")
    for _ in range(length - 1):
        node = slp.pair(node, slp.terminal("b"))
    return node


@pytest.mark.parametrize("length", [2 ** 6, 2 ** 9, 2 ** 12])
def test_c5_rebalance_chain(bench, length):
    """Rebalancing a length-n left chain (|S| = Θ(n), ord = n)."""

    def run():
        slp = SLP()
        node = _chain(slp, length)
        return slp, rebalance(slp, node)

    slp, balanced = bench(run)
    assert slp.length(balanced) == length
    assert slp.is_strongly_balanced(balanced)
    assert slp.order(balanced) - 1 <= 2 * math.log2(length)
    bench.benchmark.extra_info["order_before"] = length
    bench.benchmark.extra_info["order_after"] = slp.order(balanced)


def test_c5_strongly_balanced_is_2_shallow(bench):
    """Section 4.1's order bounds, across sizes and builders."""

    def check():
        slp = SLP()
        for size in [3, 10, 100, 1000, 5000]:
            node = balanced_node(slp, "ab" * size)
            assert slp.is_strongly_balanced(node)
            assert slp.is_c_shallow(node, 2.0)
            length = slp.length(node)
            assert math.log2(length) <= slp.order(node) - 1 <= 2 * math.log2(length)
        return True

    assert bench(check)


@pytest.mark.parametrize("big_exponent", [8, 12, 16])
def test_c5_concat_cost_is_order_difference(bench, big_exponent):
    """Balanced concat of a 2^k-char and a 1-char document creates O(k)
    nodes and takes O(k) time — not O(2^k)."""

    def run():
        slp = SLP()
        big = balanced_node(slp, "ab" * (2 ** big_exponent))
        small = slp.terminal("z")
        before = slp.num_nodes()
        node = concat_balanced(slp, big, small)
        return slp, node, slp.num_nodes() - before

    slp, node, created = bench(run)
    assert slp.is_strongly_balanced(node)
    assert created <= 4 * (big_exponent + 3)
    bench.benchmark.extra_info["nodes_created"] = created
