"""Experiment C6: core spanner evaluation is NP-hard — and feels like it
(paper Section 2.4, [12]).

The gadget: the pattern ``x1·x1·x2·x2·…·xn·xn`` compiles to the core
spanner ``π_∅(ς=_{Z1}…ς=_{Zn}(⟦slot automaton⟧))``; NonEmptiness then asks
whether the document factorises into n equal-adjacent-pair blocks.

Claims benchmarked:

* core NonEmptiness time explodes with the number of variables
  (super-polynomial growth on the unsatisfiable family);
* regular spanner NonEmptiness on comparable automata stays flat
  (markers-as-ε membership, PTIME);
* the direct backtracking pattern matcher exhibits the same exponential
  shape (it solves the same NP-complete problem).
"""

import time

import pytest

from repro.decision import is_nonempty_on
from repro.regex import spanner_from_regex
from repro.spanners import RegularSpanner
from repro.wordeq import repetition_pattern


def _hard_document(variables: int) -> str:
    """Unsatisfiable for the x_i·x_i pattern: an odd-length block forces
    exhaustive search over all factorisations."""
    return "ab" * variables + "a"


@pytest.mark.parametrize("variables", [2, 3, 4])
def test_c6_core_nonemptiness_scaling(bench, variables):
    pattern = repetition_pattern(variables, repeats=2)
    core = pattern.to_core_spanner()
    doc = _hard_document(variables)

    result = bench(is_nonempty_on, core, doc)
    assert result is False  # odd total length: no factorisation exists
    bench.benchmark.extra_info["variables"] = variables


def test_c6_exponential_shape(bench):
    """Time grows super-linearly in the variable count."""

    def timed(variables: int) -> float:
        pattern = repetition_pattern(variables, repeats=2)
        core = pattern.to_core_spanner()
        doc = _hard_document(variables)
        start = time.perf_counter()
        assert is_nonempty_on(core, doc) is False
        return time.perf_counter() - start

    def shape():
        return timed(2), timed(4)

    small, large = bench(shape, rounds=1)
    bench.benchmark.extra_info["time_2_vars"] = small
    bench.benchmark.extra_info["time_4_vars"] = large
    # 2x the variables, way more than 2x the time
    assert large > small * 5, (small, large)


@pytest.mark.parametrize("variables", [2, 3, 4])
def test_c6_regular_stays_polynomial(bench, variables):
    """The same slot automaton *without* the equality selections: regular
    NonEmptiness via markers-as-ε is instant at every size."""
    slots = "".join(f"!x{i}{{(a|b)*}}" for i in range(variables))
    spanner = RegularSpanner.from_regex(slots)
    doc = _hard_document(variables)

    result = bench(is_nonempty_on, spanner, doc)
    assert result is True  # without equality every factorisation works
    bench.benchmark.extra_info["variables"] = variables


@pytest.mark.parametrize("variables", [2, 3, 4])
def test_c6_backtracking_matcher_baseline(bench, variables):
    """The direct NP algorithm shows the same exponential growth."""
    pattern = repetition_pattern(variables, repeats=2)
    doc = _hard_document(variables)

    result = bench(pattern.matches, doc)
    assert result is False
