"""Experiment PROC: the supervised process-pool backend.

Shapes asserted (never absolute numbers):

* **determinism under isolation** — ``backend="process"`` produces the
  exact packed ``(σ, T, T_em)`` words of the serial backend on a 64 KiB
  document, shipped through shared memory (the always-recorded row: it
  runs on any machine, including 1-core CI);
* **crash-recovery overhead is bounded** — with a seeded 20% SIGKILL
  schedule, the batch still resolves to the exact serial answer; the
  recorded row carries the observed crash count and the overhead ratio
  against a fault-free process run;
* **process scaling** — on a machine with ≥ 4 usable cores, 4 process
  workers beat the serial fold ≥ 1.3× on a ≥ 256 KiB document (lower
  floor than the thread lane's 2×: the transport and supervision are
  paid from the same wall-clock).  The lane skips — and records no
  row — where parallelism cannot be exhibited;
* **bulk warm-up parity** — ``preprocess_bulk`` over worker processes
  adopts exactly the fresh-entry count of the thread backend, with
  bit-identical matrices (asserted, timing recorded).
"""

import os
import random
import time

import numpy as np
import pytest

from repro.parallel import (
    configure_pool,
    document_matrices,
    live_segments,
    pool_stats,
    preprocess_bulk,
    shutdown_pool,
)
from repro.regex import spanner_from_regex
from repro.slp import SLP, SLPSpannerEvaluator, balanced_node
from repro.util import WorkerChaos

PATTERN = "(a|b)*!x{a+}!y{b+}(a|b)*"
SMALL_DOC = 64 * 1024
LARGE_DOC = 256 * 1024


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _random_text(n: int, seed: int = 0) -> str:
    rng = random.Random(seed)
    return "".join(rng.choice("ab") for _ in range(n))


def _entries_equal(left, right) -> bool:
    return (
        np.array_equal(left[0], right[0])
        and np.array_equal(left[1].rows, right[1].rows)
        and np.array_equal(left[2].rows, right[2].rows)
    )


def _best_of(fn, rounds: int = 2) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(autouse=True)
def fresh_pool():
    """Every lane builds its own pool and must leak no segments."""
    yield
    shutdown_pool()
    assert live_segments() == []


def test_process_differential_identity(bench):
    """The always-recorded row: process == serial, bit for bit, through
    shared memory — on any machine."""
    evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
    text = _random_text(SMALL_DOC)
    configure_pool(workers=2)

    serial_seconds, serial_entry = _best_of(
        lambda: document_matrices(evaluator, text, backend="serial", shards=1)
    )
    process_seconds, process_entry = _best_of(
        lambda: document_matrices(
            evaluator, text, backend="process", workers=2, shards=2
        )
    )
    assert _entries_equal(serial_entry, process_entry)
    bench(
        lambda: document_matrices(
            evaluator, text, backend="process", workers=2, shards=2
        ),
        rounds=1,
    )
    bench.record(
        doc_length=SMALL_DOC,
        cores=_usable_cores(),
        serial_seconds=serial_seconds,
        process_seconds=process_seconds,
        observed_process_speedup=serial_seconds / process_seconds,
    )


def test_process_crash_recovery_overhead(bench):
    """A 20% SIGKILL schedule cannot change a single bit of the answer;
    the row records what the recovery machinery cost."""
    evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
    text = _random_text(SMALL_DOC, seed=1)
    serial_entry = document_matrices(evaluator, text, backend="serial", shards=1)

    configure_pool(workers=2)
    clean_seconds, clean_entry = _best_of(
        lambda: document_matrices(
            evaluator, text, backend="process", workers=2, shards=4
        )
    )
    assert _entries_equal(clean_entry, serial_entry)

    configure_pool(
        workers=2,
        chaos=WorkerChaos(seed=17, kill_rate=0.2),
        task_retries=6,
        crash_tolerance=1000,
    )
    chaos_seconds, chaos_entry = _best_of(
        lambda: document_matrices(
            evaluator, text, backend="process", workers=2, shards=4
        )
    )
    assert _entries_equal(chaos_entry, serial_entry)
    stats = pool_stats() or {}
    bench(
        lambda: document_matrices(
            evaluator, text, backend="process", workers=2, shards=4
        ),
        rounds=1,
    )
    bench.record(
        doc_length=SMALL_DOC,
        kill_rate=0.2,
        crashes=stats.get("crashes", 0),
        respawned=stats.get("respawned", 0),
        clean_seconds=clean_seconds,
        chaos_seconds=chaos_seconds,
        recovery_overhead=chaos_seconds / clean_seconds,
    )


def test_process_speedup_4_workers(bench):
    """≥ 1.3× wall-clock over serial at 4 process workers on 256 KiB —
    falsifiable only where 4 workers can actually run in parallel."""
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"needs >= 4 usable cores to exhibit parallelism, have {cores}")
    evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
    text = _random_text(LARGE_DOC)
    configure_pool(workers=4)

    serial_seconds, serial_entry = _best_of(
        lambda: document_matrices(evaluator, text, backend="serial", shards=1)
    )
    process_seconds, process_entry = _best_of(
        lambda: document_matrices(
            evaluator, text, backend="process", workers=4, shards=4
        )
    )
    assert _entries_equal(serial_entry, process_entry)
    speedup = serial_seconds / process_seconds
    bench(
        lambda: document_matrices(
            evaluator, text, backend="process", workers=4, shards=4
        ),
        rounds=1,
    )
    bench.record(
        doc_length=LARGE_DOC,
        cores=cores,
        serial_seconds=serial_seconds,
        process_seconds=process_seconds,
        speedup=speedup,
    )
    assert speedup >= 1.3


def test_process_bulk_preprocess_parity(bench):
    """Bulk warm-up over processes adopts exactly the thread backend's
    fresh entries, bit for bit."""
    source = PATTERN
    texts = [_random_text(2048, seed=i) for i in range(6)]
    configure_pool(workers=2)

    def warm(backend):
        evaluator = SLPSpannerEvaluator(spanner_from_regex(source))
        slp = SLP()
        nodes = [balanced_node(slp, text) for text in texts]
        start = time.perf_counter()
        fresh = preprocess_bulk(
            evaluator,
            slp,
            nodes,
            backend=backend,
            source=source if backend == "process" else None,
        )
        return time.perf_counter() - start, evaluator, slp, nodes, fresh

    thread_s, thread_eval, thread_slp, thread_nodes, thread_fresh = warm("thread")
    process_s, proc_eval, proc_slp, proc_nodes, proc_fresh = warm("process")
    assert proc_fresh == thread_fresh > 0
    for t_node, p_node in zip(thread_nodes, proc_nodes):
        assert _entries_equal(
            thread_eval.node_entry(thread_slp, t_node),
            proc_eval.node_entry(proc_slp, p_node),
        )
    bench(lambda: warm("process"), rounds=1)
    bench.record(
        documents=len(texts),
        thread_seconds=thread_s,
        process_seconds=process_s,
        fresh_entries=proc_fresh,
    )
