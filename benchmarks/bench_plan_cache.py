"""Experiment O2: the shared query-plan cache amortises compilation.

Compiling a spanner source — regex parse, vset construction,
determinisation to an extended eVA, evaluator setup — is the
document-independent cost the survey hides inside data complexity.  The
plan cache (:mod:`repro.kernels.plan`) pays it once per distinct source:
repeated queries for the same pattern, whether from one store, many
stores, or concurrent service threads, reuse one compiled plan.

The lanes record the before/after of this PR directly: ``cold_seconds``
is the latency of a repeated query *without* a cache (every call
recompiles, the seed behaviour) and ``warm_seconds`` the latency with
the shared cache.
"""

import time

import pytest

from repro.db import SpannerDB
from repro.kernels.plan import PlanCache

# determinisation cost grows with lookbehind width, so this is a
# representative "expensive plan": |Q| = 69 after determinisation
SOURCE = "(a|b)*a(a|b){5}!x{(a|b)*}"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_o2_repeated_query_plan_cache(bench):
    """A warm plan-cache hit must be ≥ 2x faster than recompiling (in
    practice it is orders of magnitude — the hit is two dict operations)."""

    def compare():
        cold_seconds, _ = min(
            (_timed(lambda: PlanCache().get_or_compile(SOURCE)) for _ in range(3)),
            key=lambda pair: pair[0],
        )
        cache = PlanCache()
        cache.get_or_compile(SOURCE)
        warm_seconds, _ = min(
            (_timed(lambda: cache.get_or_compile(SOURCE)) for _ in range(3)),
            key=lambda pair: pair[0],
        )
        stats = cache.stats()
        assert stats["hits"] == 3 and stats["misses"] == 1
        return cold_seconds, warm_seconds

    cold_seconds, warm_seconds = bench(compare, rounds=1)
    bench.record(
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        speedup=cold_seconds / warm_seconds,
    )
    assert cold_seconds / warm_seconds >= 2.0


def test_o2_repeated_registration_across_stores(bench):
    """End-to-end: registering the same source on a second store skips
    compilation entirely (shared evaluator, per-arena matrix isolation)."""

    def first_store():
        db = SpannerDB()
        db.add_document("doc", "abba" * 16)
        db.register_spanner("q", SOURCE)
        return db

    def second_store():
        db = SpannerDB()
        db.add_document("doc", "abba" * 16)
        db.register_spanner("q", SOURCE)
        return db

    first_seconds, _ = _timed(first_store)  # may hit an already-warm cache
    second_seconds, _ = _timed(second_store)
    bench(second_store, rounds=3)
    bench.record(
        first_seconds=first_seconds,
        second_seconds=second_seconds,
    )
    # the second store is never slower than 2x the first (it shares the
    # plan); typically it is much faster because compilation is skipped
    assert second_seconds <= first_seconds * 2
