"""R5 — streaming ingestion: per-window cost, memory bound, chaos tail.

Three claims from the streaming issue, measured end to end:

* **Latency flatness**: with O(1) results in play, per-window latency is
  dominated by the chunk, not the document — appends recompress only the
  right spine (``O(|chunk| + log n)`` fresh nodes), so the median window
  over a document that has grown 64× stays within a small factor of the
  earliest windows (the factor is the ``log n`` spine walk plus cache
  effects, never a linear rescan).
* **Frontier memory ceiling**: the dedup frontier's accounted bytes
  never exceed the configured ``frontier_max_bytes`` — growth past the
  bound is refused with a typed error *before* the frontier mutates.
* **Chaos tail**: at a 30 % seeded feed-fault rate, retries keep the
  per-window p99 within 5× of the clean lane's p99 — faults cost one
  extra attempt, never unbounded stalls.
"""

from repro.errors import MemoryLimitError
from repro.serve import StreamSession, StreamSessionConfig
from repro.stream import StreamConfig, WindowedSpannerStream, span_tuple_bytes
from repro.util.faults import FeedChaos

#: one result total, wherever the lone "b" sits — keeps enumeration O(1)
#: so the latency lane isolates ingest (spine) cost from result volume
FLAT_PATTERN = "a*!x{b}a*"
#: one result per "b" — the result-volume pattern for the memory lane
VOLUME_PATTERN = "(a|b)*!x{b}(a|b)*"

WINDOWS = 64
CHUNK = "a" * 32


def run_flat_feed() -> list[int]:
    """64 equal windows (the document grows 64×); per-window wall ns."""
    stream = WindowedSpannerStream(FLAT_PATTERN)
    latencies = [stream.append("a" * 31 + "b").window_ns]
    for _ in range(WINDOWS - 1):
        latencies.append(stream.append(CHUNK).window_ns)
    assert len(stream.results()) == 1
    return latencies


def median(values) -> float:
    ordered = sorted(values)
    return float(ordered[len(ordered) // 2])


def percentile(values, pct: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(pct / 100.0 * len(ordered)) - 1))
    return float(ordered[index])


def test_stream_window_latency_flat_64x(bench):
    """Median late-window latency stays within 3× of early windows even
    though the document is 64× larger."""
    run_flat_feed()  # warm the plan cache and kernels
    bench(run_flat_feed, rounds=3)
    latencies = run_flat_feed()
    early = median(latencies[1:9])  # window 0 pays first-touch costs
    late = median(latencies[-8:])
    ratio = late / early
    bench.record(
        early_window_ns=early,
        late_window_ns=late,
        latency_ratio=ratio,
        growth_factor=WINDOWS,
    )
    assert ratio <= 3.0, f"late windows {ratio:.2f}x early at 64x growth"


def test_stream_frontier_memory_ceiling(bench):
    """The accounted frontier bytes never exceed frontier_max_bytes."""
    bound = span_tuple_bytes(("x",)) * 64  # room for 64 one-binding tuples

    def run_bounded_feed():
        stream = WindowedSpannerStream(
            VOLUME_PATTERN, StreamConfig(frontier_max_bytes=bound)
        )
        peak = 0
        refusals = 0
        # every chunk adds 4 results; the bound refuses around window 16
        for _ in range(32):
            try:
                stream.append("bbbb")
            except MemoryLimitError:
                refusals += 1
            peak = max(peak, stream.frontier_bytes)
        return peak, refusals

    bench(run_bounded_feed, rounds=3)
    peak, refusals = run_bounded_feed()
    bench.record(
        frontier_bound_bytes=bound,
        frontier_peak_bytes=peak,
        frontier_over_budget_ratio=peak / bound,
        refused_windows=refusals,
    )
    assert refusals > 0, "the feed never hit the bound — not a ceiling test"
    assert peak <= bound, f"frontier peaked {peak} over the {bound} bound"


def test_stream_chaos_tail_latency(bench):
    """30 % seeded feed faults: per-window p99 within 5× of the clean lane."""
    chunks = ["ab" * 8] * 40

    def run_session(chaos: FeedChaos | None) -> list[int]:
        config = StreamSessionConfig(
            queue_limit=len(chunks),
            chaos=chaos,
            # absorb faults with incremental retries; the rebuild path is
            # O(n) and belongs to the correctness lanes, not a tail claim
            breaker_failures=len(chunks),
        )
        with StreamSession(VOLUME_PATTERN, config) as session:
            for chunk in chunks:
                session.feed(chunk)
            stats = session.close(30.0)
        results = list(session.results())
        assert stats["discarded"] == 0
        assert stats["overruns"] == 0
        assert len(results) == len(chunks)
        return [r.window_ns for r in results]

    run_session(None)  # warm caches
    bench(lambda: run_session(None), rounds=2)
    clean = run_session(None)
    chaos_schedule = FeedChaos(seed=23, fault_rate=0.3)
    assert any(chaos_schedule.decide(k) == "fault" for k in range(len(chunks)))
    chaotic = run_session(chaos_schedule)
    p99_clean = percentile(clean, 99)
    p99_chaos = percentile(chaotic, 99)
    ratio = p99_chaos / p99_clean
    bench.record(
        p99_clean_ns=p99_clean,
        p99_chaos_ns=p99_chaos,
        chaos_over_clean_p99_ratio=ratio,
        fault_rate=0.3,
    )
    assert ratio <= 5.0, f"chaos p99 {ratio:.2f}x clean at 30% faults"
