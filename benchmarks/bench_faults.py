"""Experiment R1: the cost of resource governance.

Claim benchmarked: threading a :class:`~repro.util.Budget` through
evaluation costs only a few percent.  ``Budget.step`` is an integer
decrement and the clock is read once every ``check_interval`` steps, so
governed and ungoverned runs must stay close — the target in
docs/RELIABILITY.md is <5% median overhead; the assertion here allows
slack for timer noise on shared CI hardware.

Also measured: the fixed cost of a transactional mutation (checkpoint +
commit) against the underlying edit itself.
"""

import statistics
import time

from repro import Budget, SpannerDB
from repro.enumeration import Enumerator
from repro.regex import spanner_from_regex
from repro.slp import Concat, Doc
from repro.util import sparse_matches

PATTERN = "(a|b)*!x{ab}(a|b)*"


def _median_time(fn, repeats: int = 7) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_r1_governed_enumeration_overhead(bench):
    """Enumerate ~2000 tuples from a 60k-char document, with and without a
    (generous, never-firing) budget; the ratio is the governance tax."""
    enumerator = Enumerator(spanner_from_regex(PATTERN))
    doc = sparse_matches("ab", "a", count=2000, gap=30)

    def ungoverned():
        return sum(1 for _ in enumerator.enumerate(doc))

    def governed():
        budget = Budget(deadline=3600.0, max_steps=10**12, max_bytes=10**12)
        return sum(1 for _ in enumerator.enumerate(doc, budget))

    assert ungoverned() == governed() == 2000

    base = _median_time(ungoverned)
    ruled = _median_time(governed)
    ratio = ruled / base
    bench.benchmark.extra_info["overhead_ratio"] = round(ratio, 4)
    bench.benchmark.extra_info["doc_length"] = len(doc)
    bench(governed)
    # target <1.05; assert with headroom for noisy shared machines
    assert ratio < 1.25, f"budget checks cost {ratio:.2f}x (target ~1.05x)"


def test_r1_governed_slp_evaluation_overhead(bench):
    """Same comparison on the compressed path (SpannerDB.query), where the
    per-node budget charge sits inside the matrix recursion."""
    db = SpannerDB()
    db.add_document("d0", sparse_matches("ab", "a", count=50, gap=20))
    for index in range(4):  # 16x repetition via doubling edits
        db.edit(f"d{index + 1}", Concat(Doc(f"d{index}"), Doc(f"d{index}")))
    db.register_spanner("m", PATTERN)

    def ungoverned():
        return sum(1 for _ in db.query("m", "d4"))

    def governed():
        budget = Budget(deadline=3600.0, max_steps=10**12, max_bytes=10**12)
        return sum(1 for _ in db.query("m", "d4", budget))

    assert ungoverned() == governed()

    base = _median_time(ungoverned, repeats=5)
    ruled = _median_time(governed, repeats=5)
    ratio = ruled / base
    bench.benchmark.extra_info["overhead_ratio"] = round(ratio, 4)
    bench(governed)
    assert ratio < 1.25, f"budget checks cost {ratio:.2f}x (target ~1.05x)"


def test_r1_transaction_overhead_per_edit(bench):
    """A mutation pays for its checkpoint (dict copies + arena mark); that
    fixed cost must stay small relative to the edit work itself."""
    db = SpannerDB()
    db.add_document("base", "ab" * 500)
    db.register_spanner("m", PATTERN)

    counter = [0]

    def one_edit():
        name = f"e{counter[0]}"
        counter[0] += 1
        db.edit(name, Concat(Doc("base"), Doc("base")))

    elapsed = _median_time(one_edit, repeats=9)
    bench.benchmark.extra_info["edit_median_s"] = round(elapsed, 6)
    bench(one_edit)
    # a governed, transactional, journaling-ready edit stays sub-10ms
    assert elapsed < 0.05
