"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1 — *determinised eVA in the enumeration pipeline*: replacing phase-2 by
the naive backward-DP evaluator keeps correctness but loses laziness; the
time-to-first-tuple gap is the reason the pipeline exists.

A2 — *strong balancedness in the compressed evaluator*: the same document
as a balanced SLP versus a degenerate left-chain SLP.  The matrices stay
linear in |S| either way, but the enumeration delay follows the grammar
*depth* — O(log |D|) balanced, O(|D|) chained — which is exactly why
Section 4.1's balancing theorems matter.

A3 — *hash-consing in the SLP arena*: with sharing, a database of k edited
versions of one document stays near-constant per version; without sharing
(rebuilding each version from text) it grows linearly.
"""

import itertools
import time

from repro.enumeration import Enumerator, evaluate_vset
from repro.regex import spanner_from_regex
from repro.slp import (
    SLP,
    Delete,
    Doc,
    DocumentDatabase,
    Editor,
    SLPSpannerEvaluator,
    balanced_node,
    power_node,
)
from repro.util import sparse_matches

PATTERN = "(a|b)*!x{ab}(a|b)*"


def test_a1_lazy_pipeline_vs_materialising(bench):
    spanner = spanner_from_regex(PATTERN)
    doc = sparse_matches("ab", "a", count=1500, gap=20)
    enumerator = Enumerator(spanner)
    index = enumerator.preprocess(doc)

    def first_tuple_lazy():
        return next(iter(enumerator.enumerate_index(index)))

    start = time.perf_counter()
    naive_relation = evaluate_vset(spanner, doc)
    naive_time = time.perf_counter() - start

    first = bench(first_tuple_lazy, rounds=5)
    bench.benchmark.extra_info["naive_full_materialisation"] = naive_time
    assert first in naive_relation
    # one lazy tuple must be much cheaper than full naive materialisation
    start = time.perf_counter()
    first_tuple_lazy()
    lazy_time = time.perf_counter() - start
    assert lazy_time * 10 < naive_time


def test_a2_balanced_vs_chain_slp_delay(bench):
    """Same document, two grammars: depth drives the compressed delay.

    The chain grammar's depth equals |D|, so the evaluator's recursion
    needs head-room beyond CPython's default limit — which is itself a
    demonstration of why Section 4.1 insists on balancing.
    """
    import sys

    sys.setrecursionlimit(20_000)
    spanner = spanner_from_regex(PATTERN)
    text = "ab" * 2000

    balanced_slp = SLP()
    balanced = balanced_node(balanced_slp, text)

    chain_slp = SLP()
    chain = chain_slp.terminal(text[0])
    for ch in text[1:]:
        chain = chain_slp.pair(chain, chain_slp.terminal(ch))

    def first_tuples(slp, node):
        evaluator = SLPSpannerEvaluator(spanner)
        evaluator.preprocess(slp, node)
        return list(itertools.islice(evaluator.enumerate(slp, node), 5))

    def timed(slp, node):
        start = time.perf_counter()
        result = first_tuples(slp, node)
        return time.perf_counter() - start, result

    def shape():
        balanced_time, balanced_result = timed(balanced_slp, balanced)
        chain_time, chain_result = timed(chain_slp, chain)
        assert set(balanced_result) == set(chain_result)
        return balanced_time, chain_time

    balanced_time, chain_time = bench(shape, rounds=1)
    bench.benchmark.extra_info["balanced_time"] = balanced_time
    bench.benchmark.extra_info["chain_time"] = chain_time
    assert chain_time > balanced_time  # depth hurts; margin in EXPERIMENTS.md


def test_a3_hash_consing_keeps_versions_cheap(bench):
    """20 edited versions of one big document share almost everything."""

    def run():
        slp = SLP()
        db = DocumentDatabase(slp)
        db.add_node("v0", power_node(slp, "abcd", 14))
        editor = Editor(db)
        base_nodes = slp.num_nodes()
        for version in range(1, 21):
            editor.apply(
                f"v{version}", Delete(Doc(f"v{version - 1}"), 100 + version, 400 + version)
            )
        return slp.num_nodes() - base_nodes

    created = bench(run)
    bench.benchmark.extra_info["nodes_for_20_versions"] = created
    # ~O(log d) per version, nowhere near 20 × |D|
    assert created < 20 * 90 * 16
