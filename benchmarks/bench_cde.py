"""Experiment C4: complex document editing in O(|φ|·log d)
(paper Section 4.3 / [40]).

Claims benchmarked:

* applying a CDE-expression to a strongly balanced SLP costs O(log d) per
  operation — doubling the document length adds a constant, so the cost
  curve over exponentially growing documents is flat-ish;
* the spanner-evaluation data structures are updated *within* that time
  (only the fresh nodes get matrices), so querying the edited document
  needs no re-preprocessing;
* the string-semantics baseline (decompress, edit, recompress) is linear
  in |D| and loses by orders of magnitude.
"""

import time

import pytest

from repro.regex import spanner_from_regex
from repro.slp import (
    Concat,
    Delete,
    Doc,
    DocumentDatabase,
    Editor,
    Insert,
    SLP,
    SLPSpannerEvaluator,
    balanced_node,
    eval_cde,
    power_node,
)


def _database(exponent: int) -> Editor:
    slp = SLP()
    db = DocumentDatabase(slp)
    db.add_node("big", power_node(slp, "abcd", exponent))
    db.add_node("patch", balanced_node(slp, "xyxyxy"))
    return Editor(db)


def _edit_script():
    # positions valid for every document size used (min length 4·2^10)
    return [
        ("e1", Insert(Doc("big"), Doc("patch"), 1234)),
        ("e2", Delete(Doc("e1"), 2000, 3000)),
        ("e3", Concat(Doc("e2"), Doc("patch"))),
    ]


@pytest.mark.parametrize("exponent", [10, 14, 18])
def test_c4_update_cost_logarithmic(bench, exponent):
    """CDE application cost over documents of length 4·2^k is flat in |D|."""

    def run():
        editor = _database(exponent)
        before = editor.db.slp.num_nodes()
        for name, expr in _edit_script():
            editor.apply(name, expr)
        return editor.db.slp.num_nodes() - before

    created = bench(run)
    bench.benchmark.extra_info["doc_length"] = 4 * 2 ** exponent
    bench.benchmark.extra_info["fresh_nodes"] = created
    # O(log d) fresh nodes per operation, three operations
    assert created <= 3 * 80 * (exponent + 2)


def test_c4_update_shape_vs_baseline(bench):
    """Strings pay Ω(|D|) per edit; the balanced SLP pays O(log |D|)."""

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    def slp_edits(exponent):
        editor = _database(exponent)
        for name, expr in _edit_script():
            editor.apply(name, expr)

    def string_edits(exponent):
        texts = {"big": "abcd" * (2 ** exponent), "patch": "xyxyxy"}
        for name, expr in _edit_script():
            texts[name] = eval_cde(expr, texts)

    def shape():
        return (
            min(timed(lambda: slp_edits(10)) for _ in range(3)),
            min(timed(lambda: slp_edits(18)) for _ in range(3)),
            min(timed(lambda: string_edits(10)) for _ in range(3)),
            min(timed(lambda: string_edits(18)) for _ in range(3)),
        )

    slp_small, slp_large, str_small, str_large = bench(shape, rounds=1)
    bench.benchmark.extra_info.update(
        slp_small=slp_small, slp_large=slp_large,
        string_small=str_small, string_large=str_large,
    )
    # strings: 256x document => big slowdown; SLP: mild growth
    assert str_large / str_small > 20
    assert slp_large / slp_small < 5
    assert slp_large < str_large


def test_c4_query_after_edit_without_repreprocessing(bench):
    """[40]'s point: after an edit, the spanner index update is O(log d)
    node-matrix computations, and enumeration works immediately."""
    spanner = spanner_from_regex("(a|b|c|d|x|y)*!v{xy}(a|b|c|d|x|y)*")
    evaluator = SLPSpannerEvaluator(spanner)
    editor = _database(16)
    slp = editor.db.slp
    evaluator.preprocess(slp, editor.db.node("big"))

    import itertools

    round_counter = itertools.count()

    def edit_and_query():
        name = f"edit{next(round_counter)}"
        node = editor.apply(name, Insert(Doc("big"), Doc("patch"), 999))
        fresh = evaluator.preprocess(slp, node)
        first = list(itertools.islice(evaluator.enumerate(slp, node), 3))
        return fresh, first

    fresh, first = bench(edit_and_query, rounds=3)
    bench.benchmark.extra_info["fresh_matrices"] = fresh
    assert fresh <= 80 * 18
    assert len(first) == 3
