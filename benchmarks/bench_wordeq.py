"""Experiment C8: core spanners express word-combinatorial relations and
regular-intersection nonemptiness (paper Section 2.4, [12]).

Claims benchmarked:

* the ~cyc spanner (equation xz = zy) extracts exactly the conjugate
  pairs — validated against the combinatorial oracle on every document;
* the adjacent-~com spanner (equation xy = yx, via overlapping borders)
  matches the oracle;
* intersection-nonemptiness of n regular languages via one ς= selection:
  satisfiable instances are solved, and the search cost grows with n
  (the PSpace-hardness shape).
"""

import time

import pytest

from repro.core import fuse
from repro.decision import is_satisfiable
from repro.spanners import prim
from repro.util import random_text
from repro.wordeq import (
    adjacent_commuting_spanner,
    commute,
    cyclic_shift_spanner,
    is_cyclic_shift,
)


def test_c8_cyclic_shift_spanner(bench):
    spanner = cyclic_shift_spanner()
    doc = random_text(7, seed=3)

    relation = bench(spanner.evaluate, doc, rounds=1)
    fused = fuse(fuse(relation, ["x1", "x2"], "x"), ["y1", "y2"], "y")
    for tup in fused:
        if "x" in tup and "y" in tup:
            assert is_cyclic_shift(tup["x"].extract(doc), tup["y"].extract(doc))
    bench.benchmark.extra_info["pairs_found"] = len(fused)
    assert len(fused) > 0


def test_c8_adjacent_commutation_spanner(bench):
    spanner = adjacent_commuting_spanner()
    doc = "abab" + "ab"  # plenty of commuting adjacent pairs

    relation = bench(spanner.evaluate, doc, rounds=1)
    found = {(t["x"], t["y"]) for t in relation}
    # oracle cross-check, exhaustively
    from repro.core import Span

    for i in range(1, len(doc) + 2):
        for j in range(i, len(doc) + 2):
            for k in range(j, len(doc) + 2):
                u, v = doc[i - 1: j - 1], doc[j - 1: k - 1]
                assert ((Span(i, j), Span(j, k)) in found) == commute(u, v)
    bench.benchmark.extra_info["pairs_found"] = len(found)


@pytest.mark.parametrize("languages", [2, 3])
def test_c8_intersection_nonemptiness(bench, languages):
    """ς=_{x1..xn} over !xi{ri}: satisfiable iff ∩L(ri) ≠ ∅.

    With r_i = (a|b)*·b·(a|b)^i (the (i+1)-last letter is b), the shortest
    common word is b^n, so the shortest witness *document* is b^n repeated
    n times — the bounded search must go up to n² characters.
    """
    parts = "".join(
        f"!x{i}{{(a|b)*b{'(a|b)' * i}}}" for i in range(languages)
    )
    core = prim(parts).select_equal({f"x{i}" for i in range(languages)})

    witness = bench(
        lambda: is_satisfiable(core, max_length=languages * languages), rounds=1
    )
    assert witness is True


def test_c8_intersection_cost_grows(bench):
    def timed(languages: int) -> float:
        parts = "".join(
            f"!x{i}{{(a|b)*b{'(a|b)' * i}}}" for i in range(languages)
        )
        core = prim(parts).select_equal({f"x{i}" for i in range(languages)})
        start = time.perf_counter()
        assert is_satisfiable(core, max_length=languages * languages)
        return time.perf_counter() - start

    def shape():
        return timed(1), timed(3)

    small, large = bench(shape, rounds=1)
    bench.benchmark.extra_info["time_1_lang"] = small
    bench.benchmark.extra_info["time_3_langs"] = large
    assert large > small  # monotone growth; hardness shape in EXPERIMENTS.md
