"""Experiment C3: spanner enumeration over SLP-compressed documents
(paper Section 4 / [39]).

Claims benchmarked:

* preprocessing is O(|S|) — linear in the *compressed* size, so flat when
  |D| doubles but |S| grows by one node;
* enumeration delay is O(log |D|) on balanced SLPs — doubling the document
  adds a constant to the delay, never multiplies it;
* on highly compressible documents the compressed pipeline obtains the
  first tuples massively faster than uncompressed preprocessing (which is
  Ω(|D|)).
"""

import statistics
import time

import pytest

from repro.enumeration import Enumerator, measure_delays
from repro.regex import spanner_from_regex
from repro.slp import SLP, SLPSpannerEvaluator, power_node

PATTERN = "(a|b)*!x{abb}(a|b)*"
UNIT = "abbab"


@pytest.mark.parametrize("exponent", [10, 16, 22])
def test_c3_preprocessing_linear_in_slp(bench, exponent):
    spanner = spanner_from_regex(PATTERN)
    slp = SLP()
    node = power_node(slp, UNIT, exponent)

    def run():
        evaluator = SLPSpannerEvaluator(spanner)
        return evaluator.preprocess(slp, node)

    fresh = bench(run)
    bench.benchmark.extra_info["doc_length"] = slp.length(node)
    bench.benchmark.extra_info["slp_nodes_processed"] = fresh
    assert fresh <= slp.size(node) + 1


def test_c3_delay_logarithmic(bench):
    """Median delay grows additively (O(log |D|)), not multiplicatively."""
    import gc

    spanner = spanner_from_regex(PATTERN)

    def median_delay(exponent: int, take: int = 200) -> float:
        import itertools

        slp = SLP()
        node = power_node(slp, UNIT, exponent)
        evaluator = SLPSpannerEvaluator(spanner)
        evaluator.preprocess(slp, node)
        gc.disable()
        try:
            samples = []
            for _ in range(3):
                stream = itertools.islice(evaluator.enumerate(slp, node), take)
                _, delays = measure_delays(stream)
                samples.append(statistics.median(delays))
        finally:
            gc.enable()
        return min(samples)

    small = median_delay(8)    # |D| = 5·2^8
    large = bench(median_delay, 20, rounds=1)  # |D| = 5·2^20: 4096x longer
    bench.benchmark.extra_info["median_delay_small"] = small
    bench.benchmark.extra_info["median_delay_large"] = large
    # log-shaped: 4096x the document may cost ~ (20/8)x the delay, not 4096x
    assert large < small * 20, (small, large)


def test_c3_first_tuples_vs_uncompressed(bench):
    """On (abbab)^(2^16), compressed first-k beats uncompressed
    preprocessing by a wide margin."""
    import itertools

    spanner = spanner_from_regex(PATTERN)
    exponent = 13
    slp = SLP()
    node = power_node(slp, UNIT, exponent)
    doc = UNIT * (2 ** exponent)

    def compressed_first_tuples():
        evaluator = SLPSpannerEvaluator(spanner)
        evaluator.preprocess(slp, node)
        return list(itertools.islice(evaluator.enumerate(slp, node), 10))

    def uncompressed_first_tuples():
        enumerator = Enumerator(spanner)
        index = enumerator.preprocess(doc)
        return list(itertools.islice(enumerator.enumerate_index(index), 10))

    start = time.perf_counter()
    got_compressed = compressed_first_tuples()
    compressed_time = time.perf_counter() - start

    start = time.perf_counter()
    got_uncompressed = uncompressed_first_tuples()
    uncompressed_time = time.perf_counter() - start

    result = bench(compressed_first_tuples, rounds=2)
    bench.benchmark.extra_info["compressed_time"] = compressed_time
    bench.benchmark.extra_info["uncompressed_time"] = uncompressed_time
    assert set(got_compressed) == set(got_uncompressed)
    assert len(result) == 10
    # the compressed pipeline must win by at least an order of magnitude
    assert compressed_time * 10 < uncompressed_time


def test_c3_results_agree_with_uncompressed(bench):
    """Correctness anchor at a size where both pipelines can materialise."""
    spanner = spanner_from_regex(PATTERN)
    slp = SLP()
    node = power_node(slp, UNIT, 6)
    doc = UNIT * (2 ** 6)

    evaluator = SLPSpannerEvaluator(spanner)
    relation = bench(evaluator.evaluate, slp, node)
    assert relation == Enumerator(spanner).evaluate(doc)
