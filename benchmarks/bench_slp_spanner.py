"""Experiment C3: spanner enumeration over SLP-compressed documents
(paper Section 4 / [39]).

Claims benchmarked:

* preprocessing is O(|S|) — linear in the *compressed* size, so flat when
  |D| doubles but |S| grows by one node;
* enumeration delay is O(log |D|) on balanced SLPs — doubling the document
  adds a constant to the delay, never multiplies it;
* on highly compressible documents the compressed pipeline obtains the
  first tuples massively faster than uncompressed preprocessing (which is
  Ω(|D|)).
"""

import statistics
import time

import numpy as np
import pytest

from repro.enumeration import Enumerator, measure_delays
from repro.kernels import reference_compose_pure, reference_mm, unpack_rows
from repro.regex import spanner_from_regex
from repro.slp import SLP, SLPSpannerEvaluator, balanced_node, power_node

PATTERN = "(a|b)*!x{abb}(a|b)*"
UNIT = "abbab"

_DEAD = -1

# record corpus for the packed-kernel lanes: see bench_slp_membership
_RECORD_FIXED = "abbabbaabbabaabbbaabababbaababbabaabbbabbaabbaabbaababbabababba"[:60]


def _record_corpus(records: int = 2048, ident: int = 4) -> str:
    rng = np.random.default_rng(7)
    return "".join(
        "".join(rng.choice(["a", "b"], size=ident)) + _RECORD_FIXED
        for _ in range(records)
    )


def _reference_preprocess(det, slp, node):
    """The seed recurrence verbatim: dense per-node (σ, T, T_em) with two
    float32 products per pair node and per-use dtype conversions."""
    q = det.num_states
    mark_e = np.zeros((q, q), dtype=bool)
    for state in range(q):
        for target in det.set_trans[state].values():
            mark_e[state, target] = True
    memo = {}
    char_memo = {}

    def function_matrix(sigma):
        step = np.zeros((q, q), dtype=bool)
        valid = sigma != _DEAD
        step[np.nonzero(valid)[0], sigma[valid]] = True
        return step

    def char_tables(ch):
        if ch in char_memo:
            return char_memo[ch]
        sigma = np.full(q, _DEAD, dtype=np.int64)
        atom = det.atoms.classify(ch)
        if atom is not None:
            for state in range(q):
                target = det.char_trans[state].get(atom)
                if target is not None:
                    sigma[state] = target
        step = function_matrix(sigma)
        t_em = reference_mm(mark_e, step)
        char_memo[ch] = (sigma, step | t_em, t_em)
        return char_memo[ch]

    for current in slp.topological(node):
        if current in memo:
            continue
        if slp.is_terminal(current):
            memo[current] = char_tables(slp.char(current))
            continue
        left, right = slp.children(current)
        sigma_l, _, em_l = memo[left]
        sigma_r, t_r, em_r = memo[right]
        dead = sigma_l == _DEAD
        sigma = np.where(dead, _DEAD, sigma_r[np.where(dead, 0, sigma_l)])
        em = reference_mm(em_l, t_r) | reference_compose_pure(sigma_l, em_r)
        memo[current] = (sigma, function_matrix(sigma) | em, em)
    return memo


@pytest.mark.parametrize("exponent", [10, 16, 22])
def test_c3_preprocessing_linear_in_slp(bench, exponent):
    spanner = spanner_from_regex(PATTERN)
    slp = SLP()
    node = power_node(slp, UNIT, exponent)

    def run():
        evaluator = SLPSpannerEvaluator(spanner)
        return evaluator.preprocess(slp, node)

    fresh = bench(run)
    bench.benchmark.extra_info["doc_length"] = slp.length(node)
    bench.benchmark.extra_info["slp_nodes_processed"] = fresh
    assert fresh <= slp.size(node) + 1


@pytest.mark.parametrize(
    "pattern",
    [
        "(a|b)*a(a|b){5}!x{(a|b)*}",  # |Q| = 69 after determinisation
        "(a|b)*a(a|b){6}!x{a(a|b)*}",  # |Q| = 134
    ],
)
def test_c3_packed_kernel_speedup(bench, pattern):
    """Packed wave kernels + matrix interning vs the seed recurrence.

    Same record corpus, same (σ, T, T_em) semantics; the reference pays
    two float32 products per fresh pair node while the packed path pays
    one batched product per *distinct* operand pair.  The before/after of
    this PR is recorded as ``reference_seconds`` / ``packed_seconds``."""
    det = SLPSpannerEvaluator(spanner_from_regex(pattern)).det
    q = det.num_states
    assert q >= 64
    text = _record_corpus()
    slp = SLP()
    node = balanced_node(slp, text)

    def timed(fn):
        start = time.perf_counter()
        result = fn()
        return time.perf_counter() - start, result

    def packed_pass():
        evaluator = SLPSpannerEvaluator(det)
        evaluator.preprocess(slp, node)
        return evaluator

    def compare():
        ref_seconds, ref_memo = min(
            (timed(lambda: _reference_preprocess(det, slp, node)) for _ in range(2)),
            key=lambda pair: pair[0],
        )
        packed_seconds, evaluator = min(
            (timed(packed_pass) for _ in range(2)),
            key=lambda pair: pair[0],
        )
        sigma, t, t_em = evaluator.node_entry(slp, node)
        ref_sigma, ref_t, ref_em = ref_memo[node]
        assert np.array_equal(sigma, ref_sigma)
        assert np.array_equal(unpack_rows(t.rows, q), ref_t)
        assert np.array_equal(unpack_rows(t_em.rows, q), ref_em)
        return ref_seconds, packed_seconds

    ref_seconds, packed_seconds = bench(compare, rounds=1)
    bench.benchmark.extra_info["doc_length"] = len(text)
    bench.record(
        states=q,
        reference_seconds=ref_seconds,
        packed_seconds=packed_seconds,
        speedup=ref_seconds / packed_seconds,
    )
    assert ref_seconds / packed_seconds >= 3.0


def test_c3_delay_logarithmic(bench):
    """Median delay grows additively (O(log |D|)), not multiplicatively."""
    import gc

    spanner = spanner_from_regex(PATTERN)

    def median_delay(exponent: int, take: int = 200) -> float:
        import itertools

        slp = SLP()
        node = power_node(slp, UNIT, exponent)
        evaluator = SLPSpannerEvaluator(spanner)
        evaluator.preprocess(slp, node)
        gc.disable()
        try:
            samples = []
            for _ in range(3):
                stream = itertools.islice(evaluator.enumerate(slp, node), take)
                _, delays = measure_delays(stream)
                samples.append(statistics.median(delays))
        finally:
            gc.enable()
        return min(samples)

    small = median_delay(8)    # |D| = 5·2^8
    large = bench(median_delay, 20, rounds=1)  # |D| = 5·2^20: 4096x longer
    bench.benchmark.extra_info["median_delay_small"] = small
    bench.benchmark.extra_info["median_delay_large"] = large
    # log-shaped: 4096x the document may cost ~ (20/8)x the delay, not 4096x
    assert large < small * 20, (small, large)


def test_c3_first_tuples_vs_uncompressed(bench):
    """On (abbab)^(2^16), compressed first-k beats uncompressed
    preprocessing by a wide margin."""
    import itertools

    spanner = spanner_from_regex(PATTERN)
    exponent = 13
    slp = SLP()
    node = power_node(slp, UNIT, exponent)
    doc = UNIT * (2 ** exponent)

    def compressed_first_tuples():
        evaluator = SLPSpannerEvaluator(spanner)
        evaluator.preprocess(slp, node)
        return list(itertools.islice(evaluator.enumerate(slp, node), 10))

    def uncompressed_first_tuples():
        enumerator = Enumerator(spanner)
        index = enumerator.preprocess(doc)
        return list(itertools.islice(enumerator.enumerate_index(index), 10))

    start = time.perf_counter()
    got_compressed = compressed_first_tuples()
    compressed_time = time.perf_counter() - start

    start = time.perf_counter()
    got_uncompressed = uncompressed_first_tuples()
    uncompressed_time = time.perf_counter() - start

    result = bench(compressed_first_tuples, rounds=2)
    bench.benchmark.extra_info["compressed_time"] = compressed_time
    bench.benchmark.extra_info["uncompressed_time"] = uncompressed_time
    assert set(got_compressed) == set(got_uncompressed)
    assert len(result) == 10
    # the compressed pipeline must win by at least an order of magnitude
    assert compressed_time * 10 < uncompressed_time


def test_c3_results_agree_with_uncompressed(bench):
    """Correctness anchor at a size where both pipelines can materialise."""
    spanner = spanner_from_regex(PATTERN)
    slp = SLP()
    node = power_node(slp, UNIT, 6)
    doc = UNIT * (2 ** 6)

    evaluator = SLPSpannerEvaluator(spanner)
    relation = bench(evaluator.evaluate, slp, node)
    assert relation == Enumerator(spanner).evaluate(doc)
