"""Experiment PAR: shard-parallel plain-text evaluation.

Three claims, each asserted as a *shape* (who wins, and that the answers
are identical), never as absolute numbers:

* **determinism** — the thread backend at 4 workers produces the exact
  packed ``(σ, T, T_em)`` words of the serial backend on a ≥ 256 KiB
  document (the differential anchor; runs on any machine);
* **thread scaling** — on a machine with ≥ 4 usable cores, 4 thread
  workers fold a ≥ 256 KiB document ≥ 2× faster than the serial backend
  (the numpy kernels release the GIL).  The lane skips — and records no
  row — on smaller machines, where the claim is unfalsifiable: a 1-core
  container can time the code but cannot exhibit parallelism;
* **batching** — the level-wise batched fold beats a scalar per-character
  fold of the *same* exact algebra ≥ 2× on any machine (this is the
  single-core payoff of the kernel design, independent of worker count).

``test_parallel_query_bulk_amortisation`` additionally records the
per-document cost of ``SpannerDB.query_bulk`` against a sequential query
loop, asserting equal answers.
"""

import os
import random
import time

import numpy as np
import pytest

from repro.db import SpannerDB
from repro.parallel import combine, document_matrices, identity_entry
from repro.regex import spanner_from_regex
from repro.slp import SLPSpannerEvaluator

PATTERN = "(a|b)*!x{a+}!y{b+}(a|b)*"
DOC_LENGTH = 256 * 1024


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _random_text(n: int, seed: int = 0) -> str:
    rng = random.Random(seed)
    return "".join(rng.choice("ab") for _ in range(n))


def _entries_equal(left, right) -> bool:
    return (
        np.array_equal(left[0], right[0])
        and np.array_equal(left[1].rows, right[1].rows)
        and np.array_equal(left[2].rows, right[2].rows)
    )


def _best_of(fn, rounds: int = 2) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_parallel_thread_vs_serial_equality(bench):
    """The differential anchor: 4 thread workers and the serial backend
    must produce bit-identical packed words on a 256 KiB document.  The
    observed timings are recorded (they show real speedup only where the
    scaling lane below runs)."""
    evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
    text = _random_text(DOC_LENGTH)

    serial_seconds, serial_entry = _best_of(
        lambda: document_matrices(evaluator, text, backend="serial", shards=1)
    )
    thread_seconds, thread_entry = _best_of(
        lambda: document_matrices(evaluator, text, backend="thread", workers=4)
    )
    assert _entries_equal(serial_entry, thread_entry)
    bench(lambda: document_matrices(evaluator, text, backend="thread", workers=4), rounds=1)
    bench.record(
        doc_length=DOC_LENGTH,
        cores=_usable_cores(),
        serial_seconds=serial_seconds,
        thread_seconds=thread_seconds,
        observed_thread_speedup=serial_seconds / thread_seconds,
    )


def test_parallel_speedup_4_workers(bench):
    """≥ 2× wall-clock speedup at 4 thread workers on a ≥ 256 KiB
    document — the GIL-release claim, falsifiable only where 4 workers
    can actually run in parallel."""
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"needs >= 4 usable cores to exhibit parallelism, have {cores}")
    evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
    text = _random_text(DOC_LENGTH)

    serial_seconds, serial_entry = _best_of(
        lambda: document_matrices(evaluator, text, backend="serial", shards=1)
    )
    thread_seconds, thread_entry = _best_of(
        lambda: document_matrices(evaluator, text, backend="thread", workers=4)
    )
    assert _entries_equal(serial_entry, thread_entry)
    speedup = serial_seconds / thread_seconds
    bench(lambda: document_matrices(evaluator, text, backend="thread", workers=4), rounds=1)
    bench.record(
        doc_length=DOC_LENGTH,
        cores=cores,
        serial_seconds=serial_seconds,
        thread_seconds=thread_seconds,
        speedup=speedup,
    )
    assert speedup >= 2.0


def test_parallel_batched_fold_speedup(bench):
    """The level-wise batched fold vs a scalar per-character fold of the
    same algebra: the batching itself must buy ≥ 2× on one core (in
    practice ~20×), independent of worker count."""
    evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
    q = evaluator.det.num_states
    text = _random_text(8 * 1024, seed=1)
    table = evaluator.char_entries(text)

    def scalar_fold():
        entry = identity_entry(q)
        for ch in text:
            entry = combine(entry, table[ch], q)
        return entry

    batched_seconds, batched_entry = _best_of(
        lambda: document_matrices(evaluator, text, backend="serial", shards=1)
    )
    scalar_seconds, scalar_entry = _best_of(scalar_fold, rounds=1)
    assert _entries_equal(batched_entry, scalar_entry)
    speedup = scalar_seconds / batched_seconds
    bench(lambda: document_matrices(evaluator, text, backend="serial", shards=1), rounds=1)
    bench.record(
        doc_length=len(text),
        scalar_seconds=scalar_seconds,
        batched_seconds=batched_seconds,
        speedup=speedup,
    )
    assert speedup >= 2.0


def test_parallel_query_bulk_amortisation(bench):
    """``query_bulk`` answers exactly like a sequential query loop; the
    recorded timings show the per-batch amortisation (one spanner lookup,
    one warm-up fan-out)."""
    db = SpannerDB()
    names = []
    for index in range(8):
        name = f"doc{index}"
        db.add_document(name, _random_text(2048, seed=index))
        names.append(name)
    db.register_spanner("s", PATTERN)

    sequential_seconds, sequential = _best_of(
        lambda: {name: set(db.query("s", name)) for name in names}, rounds=1
    )
    bulk_seconds, bulk = _best_of(
        lambda: db.query_bulk("s", names, workers=4), rounds=1
    )
    assert {name: set(rel) for name, rel in bulk.items()} == sequential
    bench(lambda: db.query_bulk("s", names, workers=4), rounds=1)
    bench.record(
        documents=len(names),
        sequential_seconds=sequential_seconds,
        bulk_seconds=bulk_seconds,
    )
