"""Experiment C1: constant-delay enumeration for regular spanners
(paper Section 2.5, [10]/[2]).

Claims benchmarked:

* preprocessing is linear in |D| (data complexity);
* the enumeration delay is independent of |D| — documents 16× longer must
  not show materially longer worst-case delays;
* the two-phase pipeline beats the naive materialising evaluator once only
  part of the output is consumed.
"""

import itertools
import statistics

import pytest

from repro.enumeration import Enumerator, evaluate_vset, measure_delays
from repro.regex import spanner_from_regex
from repro.util import sparse_matches

PATTERN = "(a|b)*!x{ab}(a|b)*"


def _doc(scale: int) -> str:
    return sparse_matches("ab", "a", count=scale, gap=30)


@pytest.mark.parametrize("scale", [64, 256, 1024])
def test_c1_preprocessing_linear(bench, scale):
    """Preprocessing time and index size grow linearly with |D|."""
    enumerator = Enumerator(spanner_from_regex(PATTERN))
    doc = _doc(scale)

    index = bench(enumerator.preprocess, doc)
    bench.benchmark.extra_info["doc_length"] = len(doc)
    bench.benchmark.extra_info["index_cells"] = index.size_in_cells()
    # linear size: cells per character is a constant
    assert index.size_in_cells() / len(doc) < 10 * enumerator.det.num_states


@pytest.mark.parametrize("scale", [64, 1024])
def test_c1_enumeration_throughput(bench, scale):
    """Total enumeration time is output+input linear (sanity timing)."""
    enumerator = Enumerator(spanner_from_regex(PATTERN))
    doc = _doc(scale)
    index = enumerator.preprocess(doc)

    tuples = bench(lambda: list(enumerator.enumerate_index(index)))
    assert len(tuples) == scale


def test_c1_delay_independent_of_document_length(bench):
    """The headline claim: the typical (median) delay does not grow with
    |D|.  GC is disabled during measurement — single-tuple delays are
    microseconds, and collector pauses would otherwise dominate the tail.
    """
    import gc

    enumerator = Enumerator(spanner_from_regex(PATTERN))

    def median_delay(scale: int) -> float:
        doc = _doc(scale)
        index = enumerator.preprocess(doc)
        samples = []
        gc.disable()
        try:
            for _ in range(5):
                _, delays = measure_delays(enumerator.enumerate_index(index))
                samples.append(statistics.median(delays))
        finally:
            gc.enable()
        return min(samples)

    small = median_delay(256)
    large = bench(median_delay, 4096, rounds=1)
    bench.benchmark.extra_info["median_delay_small"] = small
    bench.benchmark.extra_info["median_delay_large"] = large
    # 16x the document, not 16x the delay: reject linear growth
    assert large < small * 4, (small, large)


def test_c1_first_tuple_beats_materialisation(bench):
    """Streaming pays off when only the first k tuples are needed."""
    spanner = spanner_from_regex(PATTERN)
    enumerator = Enumerator(spanner)
    doc = _doc(2048)
    index = enumerator.preprocess(doc)

    def first_five_streamed():
        return list(itertools.islice(enumerator.enumerate_index(index), 5))

    streamed = bench(first_five_streamed, rounds=5)
    assert len(streamed) == 5
    # correctness cross-check against the naive evaluator on a smaller doc
    small = _doc(16)
    assert (
        Enumerator(spanner).evaluate(small) == evaluate_vset(spanner, small)
    )
