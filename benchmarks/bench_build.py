"""Experiment C10: SLP compression quality and cost (paper Section 4's
premise that documents compress well in practice).

Claims benchmarked:

* on repetitive documents, the grammar compressors reach |S| ≪ |D|
  (Re-Pair near-logarithmic on w^k);
* on incompressible (uniform random) documents, |S| = Θ(|D|) — no free
  lunch, as the paper notes for the worst case;
* all builders round-trip exactly, at every size.
"""

import pytest

from repro.slp import SLP, balanced_node, fibonacci_node, lz78_node, repair_node
from repro.util import gene_sequence, random_text, repetitive_text


@pytest.mark.parametrize(
    "name,text",
    [
        ("repetitive", repetitive_text("abcabc", 512)),
        ("gene", gene_sequence(2048, seed=5)),
        ("random", random_text(2048, alphabet="abcd", seed=5)),
    ],
)
def test_c10_repair_compression(bench, name, text):
    def run():
        slp = SLP()
        node = repair_node(slp, text)
        return slp, node

    slp, node = bench(run, rounds=1)
    assert slp.derive(node) == text
    ratio = slp.size(node) / len(text)
    bench.benchmark.extra_info["compression_ratio"] = ratio
    if name == "repetitive":
        assert ratio < 0.05  # near-logarithmic
    if name == "random":
        assert ratio > 0.25  # incompressible stays large


@pytest.mark.parametrize(
    "name,text",
    [
        ("repetitive", repetitive_text("ab", 1024)),
        ("random", random_text(2048, alphabet="ab", seed=9)),
    ],
)
def test_c10_lz78_compression(bench, name, text):
    def run():
        slp = SLP()
        node = lz78_node(slp, text)
        return slp, node

    slp, node = bench(run, rounds=1)
    assert slp.derive(node) == text
    ratio = slp.size(node) / len(text)
    bench.benchmark.extra_info["compression_ratio"] = ratio
    if name == "repetitive":
        assert ratio < 0.2


def test_c10_baseline_balanced_parse(bench):
    text = gene_sequence(4096, seed=1)

    def run():
        slp = SLP()
        return slp, balanced_node(slp, text)

    slp, node = bench(run, rounds=1)
    assert slp.derive(node) == text
    # no compression beyond hash-consing: size stays within |D| but the
    # parse is strongly balanced (the property the editing layer needs)
    assert slp.is_strongly_balanced(node)


def test_c10_fibonacci_slp_is_tiny(bench):
    def run():
        slp = SLP()
        return slp, fibonacci_node(slp, 30)

    slp, node = bench(run)
    assert slp.size(node) <= 60
    assert slp.length(node) == 832040  # fib(30)
    bench.benchmark.extra_info["doc_length"] = slp.length(node)
    bench.benchmark.extra_info["slp_size"] = slp.size(node)
