"""Experiment C11: static analysis of regular spanners is decidable with
acceptable bounds (paper Section 2.4).

Claims benchmarked:

* Containment/Equivalence decide in time polynomial-ish in the automaton
  size at library scale (the problems are PSpace-complete, but the
  determinised canonical forms stay small for regex-formula workloads);
* Hierarchicality costs one intersection-emptiness per ordered variable
  pair — quadratic in |X|, linear in the automaton;
* Satisfiability is near-instant (automaton emptiness);
* the *core*-spanner analogue (Satisfiability via bounded search) blows up
  immediately — the decidability cliff of Section 2.4.
"""

import pytest

from repro.decision import (
    contained_in,
    equivalent_spanners,
    is_hierarchical,
    is_satisfiable,
)
from repro.errors import EvaluationLimitError
from repro.regex import spanner_from_regex
from repro.spanners import prim


def _chain_spanner(length: int, wildcard: bool = False):
    """!x{ w1 w2 … } over a word chain (automaton size grows with length)."""
    body = "".join("(a|b)" if wildcard else "ab"[i % 2] for i in range(length))
    return spanner_from_regex(f"(a|b)*!x{{{body}}}(a|b)*")


@pytest.mark.parametrize("size", [4, 8, 16])
def test_c11_equivalence_scales(bench, size):
    left = _chain_spanner(size)
    right = _chain_spanner(size)

    verdict = bench(equivalent_spanners, left, right)
    assert verdict is True
    bench.benchmark.extra_info["automaton_states"] = left.nfa.num_states


@pytest.mark.parametrize("size", [4, 8, 16])
def test_c11_containment_scales(bench, size):
    small = _chain_spanner(size)
    big = _chain_spanner(size, wildcard=True)

    verdict = bench(contained_in, small, big)
    assert verdict is True
    assert not contained_in(big, small)


@pytest.mark.parametrize("variables", [2, 4, 6])
def test_c11_hierarchicality_quadratic_in_variables(bench, variables):
    pattern = "".join(f"!v{i}{{(a|b)+}}" for i in range(variables))
    spanner = spanner_from_regex(pattern)

    verdict = bench(is_hierarchical, spanner)
    assert verdict is True
    bench.benchmark.extra_info["variable_pairs"] = variables * (variables - 1)


def test_c11_satisfiability_is_instant(bench):
    spanner = _chain_spanner(16)
    verdict = bench(is_satisfiable, spanner)
    assert verdict is True


def test_c11_core_satisfiability_cliff(bench):
    """The decidability cliff: the same question for a core spanner needs
    bounded search and fails fast on unsatisfiable instances only by
    exhausting its budget."""
    unsat = prim("!x1{a+}!x2{b+}").select_equal({"x1", "x2"})

    def run():
        try:
            is_satisfiable(unsat, max_length=4)
        except EvaluationLimitError:
            return "undecided"
        return "decided"

    outcome = bench(run)
    assert outcome == "undecided"
