"""Experiment O1: the observability tax and the measured constant-delay
profile (paper Section 2.5 / Section 4.2; ISSUE 2 acceptance criteria).

Claims benchmarked:

* with :mod:`repro.obs` **disabled** (the default), the instrumented
  enumeration and SLP-evaluation hot paths are indistinguishable from the
  raw, uninstrumented pipeline (the guard is one boolean per call);
* with observability **enabled** — per-tuple delay histograms, spans, and
  cache counters live — the overhead stays under the 5% target of
  docs/OBSERVABILITY.md (the assertions allow slack for timer noise on
  shared CI hardware; the recorded ratios are the honest numbers);
* the per-tuple delay percentiles reported by the histogram-backed
  profiler are **flat in the document length** — the empirical form of
  the constant-delay claim ([10]/[2]): p50 on a 64×-longer document stays
  within one power-of-two bucket of the short document's p50.
"""

import gc
import statistics
import time

import pytest

from repro import obs
from repro.enumeration import Enumerator, profile_delays
from repro.enumeration.naive import emissions_to_tuple
from repro.regex import spanner_from_regex
from repro.slp import SLP, repair_node
from repro.slp.spanner_eval import SLPSpannerEvaluator
from repro.util import sparse_matches

PATTERN = "(a|b)*!x{ab}(a|b)*"


@pytest.fixture(autouse=True)
def _obs_reset():
    """Every test starts and ends with observability off and empty."""
    obs.configure(enabled=False, reset=True)
    yield
    obs.configure(enabled=False, reset=True)


def _median_ns(fn, repeats: int = 9) -> float:
    """Median wall time of *fn* with the GC parked (single-run deltas are
    milliseconds; collector pauses would dominate the spread)."""
    samples = []
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        start = time.perf_counter_ns()
        fn()
        samples.append(time.perf_counter_ns() - start)
        gc.enable()
    return statistics.median(samples)


def test_o1_disabled_overhead_unmeasurable(bench):
    """Instrumented enumerate_index with obs off vs the raw emissions
    pipeline: the ratio must sit in the timer-noise band."""
    enumerator = Enumerator(spanner_from_regex(PATTERN))
    index = enumerator.preprocess(sparse_matches("ab", "a", count=2000, gap=30))

    def raw():
        return sum(1 for _ in map(emissions_to_tuple, enumerator.enumerate_emissions(index)))

    def instrumented():
        return sum(1 for _ in enumerator.enumerate_index(index))

    raw(), instrumented()  # warm up
    ratio = _median_ns(instrumented) / _median_ns(raw)
    bench(instrumented)
    bench.record(disabled_over_raw_ratio=round(ratio, 4))
    assert ratio < 1.10, f"disabled instrumentation must be free, got {ratio:.3f}x"


def test_o1_enabled_overhead_under_target(bench):
    """Per-tuple delay histogram + stream span on: <5% target, asserted
    with CI slack; the measured ratio is recorded in BENCH_obs.json."""
    enumerator = Enumerator(spanner_from_regex(PATTERN))
    index = enumerator.preprocess(sparse_matches("ab", "a", count=2000, gap=30))

    def run():
        return sum(1 for _ in enumerator.enumerate_index(index))

    run()  # warm up
    obs.configure(enabled=False, reset=True)
    disabled = _median_ns(run)
    obs.configure(enabled=True, reset=True)
    enabled = _median_ns(run)
    recorded = obs.metrics().histogram("enumeration.delay_ns").count
    obs.configure(enabled=False)
    ratio = enabled / disabled
    bench(run)
    bench.record(enabled_over_disabled_ratio=round(ratio, 4))
    assert recorded > 0, "enabled run must populate the delay histogram"
    assert ratio < 1.25, f"enabled overhead target is 5%, got {ratio:.3f}x"


def test_o1_slp_eval_enabled_overhead(bench):
    """The compressed evaluator's cache counters and kernel timer are per
    *call*, not per node — enabling them must not slow evaluation."""
    evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
    slp = SLP()
    node = repair_node(slp, sparse_matches("ab", "a", count=500, gap=40))

    def run():
        return sum(1 for _ in evaluator.enumerate(slp, node))

    run()  # warm up (and fill the matrix cache)
    obs.configure(enabled=False, reset=True)
    disabled = _median_ns(run)
    obs.configure(enabled=True, reset=True)
    enabled = _median_ns(run)
    hits = obs.metrics().counter("slp.eval.cache_hits").value
    obs.configure(enabled=False)
    ratio = enabled / disabled
    bench(run)
    bench.record(enabled_over_disabled_ratio=round(ratio, 4))
    assert hits > 0, "warm cache must register hits once observability is on"
    assert ratio < 1.25, f"enabled overhead target is 5%, got {ratio:.3f}x"


@pytest.mark.parametrize("scale", [64, 512, 4096])
def test_o1_delay_percentiles_flat(bench, scale):
    """The delay profile: per-tuple p50/p90 must not grow with |D|.

    Power-of-two buckets quantise to at most 2×, so "flat" is asserted as
    "within a factor of 4 of the smallest document's p50" — a 64× longer
    document with delay growing even as log |D| would blow through that.
    The full percentile rows land in BENCH_obs.json as the delay-profile
    report."""
    enumerator = Enumerator(spanner_from_regex(PATTERN))
    doc = sparse_matches("ab", "a", count=scale, gap=30)
    index = enumerator.preprocess(doc)

    def profile():
        gc.collect()
        gc.disable()
        try:
            items, profiler = profile_delays(enumerator.enumerate_index(index))
        finally:
            gc.enable()
        assert len(items) == scale
        return profiler

    profile()  # warm up
    profiler = bench(profile)
    report = profiler.report()
    bench.benchmark.extra_info["doc_length"] = len(doc)
    bench.record(
        tuples=scale,
        p50_ns=report["p50"],
        p90_ns=report["p90"],
        p99_ns=report["p99"],
    )
    # the flatness assertion compares against the smallest document's run,
    # computed fresh here so the test stands alone under -k
    base_index = enumerator.preprocess(sparse_matches("ab", "a", count=64, gap=30))
    _, base = profile_delays(enumerator.enumerate_index(base_index))
    assert profiler.percentile(50) <= 4 * max(base.percentile(50), 1.0), (
        f"p50 delay grew with the document: {profiler.percentile(50)}ns "
        f"on |D|={len(doc)} vs {base.percentile(50)}ns on the base document"
    )
