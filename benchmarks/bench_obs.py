"""Experiments O1/O3: the observability tax and the measured
constant-delay profile (paper Section 2.5 / Section 4.2; ISSUE 2 and
ISSUE 7 acceptance criteria).

Claims benchmarked:

* with :mod:`repro.obs` **disabled** (the default), the instrumented
  enumeration and SLP-evaluation hot paths are indistinguishable from the
  raw, uninstrumented pipeline (the guard is one boolean per call);
* with observability **enabled** — per-tuple delay histograms, spans, and
  cache counters live — the overhead stays under the 5% target of
  docs/OBSERVABILITY.md (the assertions allow slack for timer noise on
  shared CI hardware; the recorded ratios are the honest numbers);
* the per-tuple delay percentiles reported by the histogram-backed
  profiler are **flat in the document length** — the empirical form of
  the constant-delay claim ([10]/[2]): p50 on a 64×-longer document stays
  within one power-of-two bucket of the short document's p50;
* **O3 (cross-process)**: the process backend with worker telemetry
  harvest, trace shipping, and flight rings live stays under the looser
  1.5x ceiling of ``tools/check_bench_regression.py`` — harvest deltas
  piggyback on result messages, so the added cost is packing, not
  round-trips.
"""

import gc
import random
import statistics
import time

import pytest

from repro import obs
from repro.enumeration import Enumerator, profile_delays
from repro.enumeration.naive import emissions_to_tuple
from repro.parallel import (
    configure_pool,
    document_matrices,
    live_segments,
    shutdown_pool,
)
from repro.regex import spanner_from_regex
from repro.slp import SLP, repair_node
from repro.slp.spanner_eval import SLPSpannerEvaluator
from repro.util import sparse_matches

PATTERN = "(a|b)*!x{ab}(a|b)*"


@pytest.fixture(autouse=True)
def _obs_reset():
    """Every test starts and ends with observability off and empty, and
    leaks neither a pool nor a shared-memory segment."""
    obs.configure(enabled=False, reset=True)
    yield
    obs.configure(enabled=False, reset=True)
    shutdown_pool()
    assert live_segments() == []


def _median_ns(fn, repeats: int = 9) -> float:
    """Median wall time of *fn* with the GC parked (single-run deltas are
    milliseconds; collector pauses would dominate the spread)."""
    samples = []
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        start = time.perf_counter_ns()
        fn()
        samples.append(time.perf_counter_ns() - start)
        gc.enable()
    return statistics.median(samples)


def test_o1_disabled_overhead_unmeasurable(bench):
    """Instrumented enumerate_index with obs off vs the raw emissions
    pipeline: the ratio must sit in the timer-noise band."""
    enumerator = Enumerator(spanner_from_regex(PATTERN))
    index = enumerator.preprocess(sparse_matches("ab", "a", count=2000, gap=30))

    def raw():
        return sum(1 for _ in map(emissions_to_tuple, enumerator.enumerate_emissions(index)))

    def instrumented():
        return sum(1 for _ in enumerator.enumerate_index(index))

    raw(), instrumented()  # warm up
    ratio = _median_ns(instrumented) / _median_ns(raw)
    bench(instrumented)
    bench.record(disabled_over_raw_ratio=round(ratio, 4))
    assert ratio < 1.10, f"disabled instrumentation must be free, got {ratio:.3f}x"


def test_o1_enabled_overhead_under_target(bench):
    """Per-tuple delay histogram + stream span on: <5% target, asserted
    with CI slack; the measured ratio is recorded in BENCH_obs.json."""
    enumerator = Enumerator(spanner_from_regex(PATTERN))
    index = enumerator.preprocess(sparse_matches("ab", "a", count=2000, gap=30))

    def run():
        return sum(1 for _ in enumerator.enumerate_index(index))

    run()  # warm up
    obs.configure(enabled=False, reset=True)
    disabled = _median_ns(run)
    obs.configure(enabled=True, reset=True)
    enabled = _median_ns(run)
    recorded = obs.metrics().histogram("enumeration.delay_ns").count
    obs.configure(enabled=False)
    ratio = enabled / disabled
    bench(run)
    bench.record(enabled_over_disabled_ratio=round(ratio, 4))
    assert recorded > 0, "enabled run must populate the delay histogram"
    assert ratio < 1.25, f"enabled overhead target is 5%, got {ratio:.3f}x"


def test_o1_slp_eval_enabled_overhead(bench):
    """The compressed evaluator's cache counters and kernel timer are per
    *call*, not per node — enabling them must not slow evaluation."""
    evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
    slp = SLP()
    node = repair_node(slp, sparse_matches("ab", "a", count=500, gap=40))

    def run():
        return sum(1 for _ in evaluator.enumerate(slp, node))

    run()  # warm up (and fill the matrix cache)
    obs.configure(enabled=False, reset=True)
    disabled = _median_ns(run)
    obs.configure(enabled=True, reset=True)
    enabled = _median_ns(run)
    hits = obs.metrics().counter("slp.eval.cache_hits").value
    obs.configure(enabled=False)
    ratio = enabled / disabled
    bench(run)
    bench.record(enabled_over_disabled_ratio=round(ratio, 4))
    assert hits > 0, "warm cache must register hits once observability is on"
    assert ratio < 1.25, f"enabled overhead target is 5%, got {ratio:.3f}x"


def test_o3_process_pool_enabled_overhead(bench):
    """The cross-process lane: ``document_matrices`` over the process
    backend with the full ISSUE 7 machinery live — per-task harvest
    collection, span shipping, per-worker flight rings, shm phase timers.
    The ceiling is looser than the in-process lanes' (1.5x, enforced on
    the recorded row by tools/check_bench_regression.py): the harvest and
    ring writes are real per-task work, but they ride the existing result
    pipe rather than adding round-trips."""
    evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
    rng = random.Random(0)
    text = "".join(rng.choice("ab") for _ in range(32 * 1024))
    configure_pool(workers=2)

    def run():
        return document_matrices(
            evaluator, text, backend="process", workers=2, shards=2
        )

    run()  # warm the pool, the workers' arenas, and the plan cache
    obs.configure(enabled=False, reset=True)
    disabled = _median_ns(run, repeats=5)
    obs.configure(enabled=True, reset=True)
    enabled = _median_ns(run, repeats=5)
    harvests = obs.metrics().counter("parallel.proc.harvests").value
    snapshot = obs.metrics().snapshot()
    obs.configure(enabled=False)
    ratio = enabled / disabled
    bench(run, rounds=1)
    bench.record(
        doc_length=len(text),
        enabled_over_disabled_ratio=round(ratio, 4),
        harvests=harvests,
        shm_pack_p50_ns=snapshot["histograms"]
        .get("parallel.shm.pack_ns", {})
        .get("p50"),
        shm_unpack_p50_ns=snapshot["histograms"]
        .get("parallel.shm.unpack_ns", {})
        .get("p50"),
    )
    assert harvests > 0, "enabled runs must fold worker harvests"
    assert ratio < 1.5, f"cross-process obs ceiling is 1.5x, got {ratio:.3f}x"


def test_o3_crash_telemetry_survives_sigkill(bench):
    """The flight-recorder row: under a seeded SIGKILL schedule the batch
    still answers exactly, and every declared crash carries salvaged
    last-activity records.  Recorded here so the salvage rate is a
    tracked number, not an anecdote."""
    from repro.parallel import ProcCall, ProcPool
    from repro.util import WorkerChaos

    obs.configure(enabled=True, reset=True)
    chaos = WorkerChaos(seed=0, kill_rate=0.3)
    # a deep retry budget: the lane runs several batches, and a task that
    # draws 4+ consecutive kills would otherwise fail ~1% of the time
    pool = ProcPool(workers=2, chaos=chaos, task_retries=8, crash_tolerance=100)
    echo = "repro.parallel.procpool:_task_echo"

    def run():
        return pool.run([ProcCall(echo, (i,)) for i in range(8)])

    try:
        assert run() == list(range(8))
        bench(run, rounds=1)
        stats = pool.stats()
    finally:
        pool.shutdown()
    crash_events = [
        r for r in obs.tracer().records() if r.get("name") == "worker.crash"
    ]
    salvaged = [e for e in crash_events if e["attrs"]["salvaged"]]
    obs.configure(enabled=False)
    assert stats["crashes"] >= 1
    assert len(salvaged) == len(crash_events), "every crash must salvage its ring"
    bench.record(
        crashes=stats["crashes"],
        crash_sigkill=stats["crash_sigkill"],
        salvaged_crash_events=len(salvaged),
    )


@pytest.mark.parametrize("scale", [64, 512, 4096])
def test_o1_delay_percentiles_flat(bench, scale):
    """The delay profile: per-tuple p50/p90 must not grow with |D|.

    Power-of-two buckets quantise to at most 2×, so "flat" is asserted as
    "within a factor of 4 of the smallest document's p50" — a 64× longer
    document with delay growing even as log |D| would blow through that.
    The full percentile rows land in BENCH_obs.json as the delay-profile
    report."""
    enumerator = Enumerator(spanner_from_regex(PATTERN))
    doc = sparse_matches("ab", "a", count=scale, gap=30)
    index = enumerator.preprocess(doc)

    def profile():
        gc.collect()
        gc.disable()
        try:
            items, profiler = profile_delays(enumerator.enumerate_index(index))
        finally:
            gc.enable()
        assert len(items) == scale
        return profiler

    profile()  # warm up
    profiler = bench(profile)
    report = profiler.report()
    bench.benchmark.extra_info["doc_length"] = len(doc)
    bench.record(
        tuples=scale,
        p50_ns=report["p50"],
        p90_ns=report["p90"],
        p99_ns=report["p99"],
    )
    # the flatness assertion compares against the smallest document's run,
    # computed fresh here so the test stands alone under -k
    base_index = enumerator.preprocess(sparse_matches("ab", "a", count=64, gap=30))
    _, base = profile_delays(enumerator.enumerate_index(base_index))
    assert profiler.percentile(50) <= 4 * max(base.percentile(50), 1.0), (
        f"p50 delay grew with the document: {profiler.percentile(50)}ns "
        f"on |D|={len(doc)} vs {base.percentile(50)}ns on the base document"
    )
