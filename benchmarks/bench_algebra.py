"""Experiment C9: algebra evaluation strategies and the core-simplification
compiler (paper Sections 1, 2.3).

Claims benchmarked:

* the constructive core-simplification normal form evaluates to the same
  relation as direct recursive evaluation on a realistic IE workload;
* automaton-level composition (compile once, evaluate once) amortises
  better than relation-level composition when the same query runs over
  many documents;
* projection pushed to the automaton shrinks intermediate results.
"""

import pytest

from repro.spanners import RegularSpanner, prim
from repro.util import log_document

BODY = r"[^;\n]"
RECORD = (
    f"({BODY}|;|\n)*"
    f"!level{{INFO|WARN|ERROR}}"
    f" user=!user{{[a-z]+}}"
    f" code=!code{{[0-9]+}}"
    f"( {BODY}*)?;"
    f"({BODY}|;|\n)*"
)


def _workload(lines: int) -> str:
    return log_document(lines, seed=11, codes=(500, 509))


def _same_user_query():
    records = RegularSpanner.from_regex(RECORD)
    left = prim(records.rename({"level": "l1", "user": "u1", "code": "c1"}))
    right = prim(records.rename({"level": "l2", "user": "u2", "code": "c2"}))
    return (
        left.join(right)
        .select_equal({"u1", "u2"})
        .select_equal({"c1", "c2"})
        .project({"u1", "c1"})
    )


def test_c9_simplified_equals_direct(bench):
    """The core-simplification lemma, on the log workload."""
    query = _same_user_query()
    doc = _workload(8)

    simplified = bench(query.evaluate, doc, rounds=1)
    assert simplified == query.evaluate_direct(doc)
    bench.benchmark.extra_info["result_rows"] = len(simplified)


def test_c9_compile_once_evaluate_many(bench):
    """The normal form is compiled once; per-document evaluation reuses it."""
    query = _same_user_query()
    form = query.simplify()  # compile outside the timed region
    docs = [_workload(6) for _ in range(3)]

    def evaluate_all():
        return [form.evaluate(doc) for doc in docs]

    relations = bench(evaluate_all, rounds=1)
    assert all(rel == query.evaluate_direct(doc) for rel, doc in zip(relations, docs))


@pytest.mark.parametrize("lines", [10, 40])
def test_c9_projection_on_automaton(bench, lines):
    """π on the automaton scales with the document like the full query but
    returns only the projected column."""
    records = RegularSpanner.from_regex(RECORD)
    users_only = records.project({"user"})
    doc = _workload(lines)

    relation = bench(users_only.evaluate, doc, rounds=1)
    assert relation.variables == ("user",)
    assert len(relation) <= lines * 2
    bench.benchmark.extra_info["rows"] = len(relation)


def test_c9_union_of_extractors(bench):
    """∪ of per-level extractors equals one three-way extractor."""
    def level_extractor(level: str) -> RegularSpanner:
        return RegularSpanner.from_regex(
            f"({BODY}|;|\n)*{level} user=!user{{[a-z]+}} code={BODY}*;({BODY}|;|\n)*"
        )

    doc = _workload(12)
    info = level_extractor("INFO")
    warn = level_extractor("WARN")
    error = level_extractor("ERROR")

    def union_eval():
        return info.union(warn).union(error).evaluate(doc)

    combined = bench(union_eval, rounds=1)
    any_level = RegularSpanner.from_regex(
        f"({BODY}|;|\n)*(INFO|WARN|ERROR) user=!user{{[a-z]+}} code={BODY}*;({BODY}|;|\n)*"
    )
    assert combined == any_level.evaluate(doc)
