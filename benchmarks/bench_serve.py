"""R4 — serving-layer overhead and fault-rate throughput sweep.

Three claims from the serving issue, measured end to end:

* **Overhead**: fault-free throughput through the full service stack
  (queue, deadline plumbing, breaker accounting, RW lock) stays within
  ~10% of an unguarded ``db.query`` loop — the guardrails are cheap when
  nothing is wrong.  The document is large enough (1k chars, 512 tuples
  per query) that evaluation dominates, as it does in any real workload.
* **Throughput under faults**: at 10% and 30% injected fault rates every
  request still completes (retries + degradation), throughput degrades
  smoothly rather than collapsing, and
* **Tail latency**: the breaker + retry budget keep p99 under faults
  within 5× of the fault-free p99 — failures cost retries and the
  occasional decompressed evaluation, never unbounded queueing.
"""

import time

from repro import SpannerDB
from repro.serve import ServeConfig, SpannerService, serve_queries
from repro.slp.spanner_eval import SLPSpannerEvaluator
from repro.util import ChaosInjector

PATTERN = "(a|b)*!x{ab}(a|b)*"
DOC = "ab" * 512
QUERIES = 30


def build_store() -> SpannerDB:
    db = SpannerDB()
    db.add_document("d", DOC)
    db.register_spanner("m", PATTERN)
    list(db.query("m", "d"))  # warm the matrix caches
    return db


def service_config(seed: int = 0) -> ServeConfig:
    return ServeConfig(
        workers=2,
        queue_limit=QUERIES * 2,
        retry_max_attempts=3,
        retry_base_delay=0.001,
        retry_max_delay=0.01,
        breaker_failure_threshold=5,
        breaker_reset_after=0.05,
        seed=seed,
    )


def run_service_round(db, fault_rate: float, seed: int) -> dict:
    """Push QUERIES requests through a service at one fault rate; returns
    elapsed wall time, completion counts, and latency percentiles."""
    injector = ChaosInjector(seed)
    service = SpannerService(db, service_config(seed))
    requests = [("m", "d")] * QUERIES
    with injector.chaos(
        SLPSpannerEvaluator, "enumerate", site="enumerate", error_rate=fault_rate
    ):
        with service:
            start = time.perf_counter()
            outcomes = list(serve_queries(service, iter(requests)))
            elapsed = time.perf_counter() - start
    completed = [o for o in outcomes if not isinstance(o, Exception)]
    assert len(completed) == QUERIES, "every request must complete"
    assert all(len(o.tuples) == 512 for o in completed), "wrong answers"
    stats = service.stats()
    return {
        "elapsed": elapsed,
        "throughput_qps": QUERIES / elapsed,
        "p50": service.latency_percentile(50),
        "p99": service.latency_percentile(99),
        "degraded": stats["degraded"],
        "retries": stats["retries"],
        "breaker_opened": stats["breaker"]["times_opened"],
        "faults_fired": sum(injector.fired().values()),
    }


def test_fault_free_overhead_vs_unguarded(bench):
    """The guarded service keeps ≥ ~90% of unguarded throughput."""
    db = build_store()

    def direct_loop():
        for _ in range(QUERIES):
            assert len(list(db.query("m", "d"))) == 512

    bench(direct_loop, rounds=3)
    start = time.perf_counter()
    direct_loop()
    direct_elapsed = time.perf_counter() - start

    round_stats = run_service_round(db, fault_rate=0.0, seed=0)
    bench.record(
        direct_qps=QUERIES / direct_elapsed,
        service_qps=round_stats["throughput_qps"],
        overhead_ratio=round_stats["elapsed"] / direct_elapsed,
    )
    assert round_stats["degraded"] == 0
    assert round_stats["faults_fired"] == 0
    # within 10% of unguarded (evaluation dominates; the pool adds ~µs)
    assert round_stats["elapsed"] <= direct_elapsed * 1.10, (
        f"service overhead {round_stats['elapsed'] / direct_elapsed:.2f}x"
    )


def test_throughput_and_tail_latency_across_fault_rates(bench):
    """0% / 10% / 30% fault sweep: everything completes, p99 stays
    within 5× of fault-free p99."""
    db = build_store()
    sweep = {}
    for rate in (0.0, 0.1, 0.3):
        sweep[rate] = run_service_round(db, fault_rate=rate, seed=17)

    def fault_free_round():
        return run_service_round(db, fault_rate=0.0, seed=17)

    bench(fault_free_round, rounds=2)
    bench.record(
        qps_clean=sweep[0.0]["throughput_qps"],
        qps_10pct=sweep[0.1]["throughput_qps"],
        qps_30pct=sweep[0.3]["throughput_qps"],
        p99_clean=sweep[0.0]["p99"],
        p99_10pct=sweep[0.1]["p99"],
        p99_30pct=sweep[0.3]["p99"],
        retries_30pct=sweep[0.3]["retries"],
        degraded_30pct=sweep[0.3]["degraded"],
        breaker_opened_30pct=sweep[0.3]["breaker_opened"],
    )
    assert sweep[0.1]["faults_fired"] > 0
    assert sweep[0.3]["faults_fired"] > 0
    for rate in (0.1, 0.3):
        assert sweep[rate]["p99"] <= 5 * max(sweep[0.0]["p99"], 1e-6), (
            f"p99 at {rate:.0%} faults: {sweep[rate]['p99']:.3f}s vs "
            f"clean {sweep[0.0]['p99']:.3f}s"
        )
    # throughput degrades, it does not collapse
    assert sweep[0.3]["throughput_qps"] >= sweep[0.0]["throughput_qps"] / 5
