"""Experiment C12: algorithmics on compressed strings (footnote 5 of the
paper: "most basic string analysis tasks can be performed directly on
SLPs").

Claims benchmarked:

* pattern-occurrence counting costs O(|S|·m) — flat when the document
  doubles but the grammar grows by one node; the uncompressed baseline is
  Ω(|D|);
* random access and LCE queries cost O(depth) / O(depth·log |D|) — usable
  even on documents of length 5·2^40;
* the first occurrences of a pattern stream lazily.
"""

import itertools
import time

import pytest

from repro.slp import (
    SLP,
    CompressedPatternMatcher,
    balanced_node,
    char_at,
    power_node,
)
from repro.slp.lce import FactorHasher, compare_suffixes, longest_common_extension


@pytest.mark.parametrize("exponent", [10, 20, 40])
def test_c12_pattern_count_flat_in_document(bench, exponent):
    slp = SLP()
    node = power_node(slp, "abbab", exponent)

    def run():
        matcher = CompressedPatternMatcher("abba")  # fresh: no memo reuse
        return matcher.count(slp, node)

    count = bench(run)
    bench.benchmark.extra_info["doc_length"] = slp.length(node)
    # 'abba' occurs once per unit boundary: 2^k - 1 + ... (cross-check small)
    if exponent == 10:
        doc = "abbab" * (2 ** 10)
        naive = sum(
            1 for i in range(len(doc) - 3) if doc.startswith("abba", i)
        )
        assert count == naive


def test_c12_count_shape_vs_naive(bench):
    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    def compressed(exponent):
        slp = SLP()
        node = power_node(slp, "abbab", exponent)
        CompressedPatternMatcher("abba").count(slp, node)

    def naive(exponent):
        doc = "abbab" * (2 ** exponent)
        assert sum(1 for i in range(len(doc)) if doc.startswith("abba", i)) > 0

    def shape():
        return (
            min(timed(lambda: compressed(8)) for _ in range(3)),
            min(timed(lambda: compressed(18)) for _ in range(3)),
            min(timed(lambda: naive(8)) for _ in range(3)),
            min(timed(lambda: naive(18)) for _ in range(3)),
        )

    comp_small, comp_large, naive_small, naive_large = bench(shape, rounds=1)
    bench.benchmark.extra_info.update(
        compressed_small=comp_small, compressed_large=comp_large,
        naive_small=naive_small, naive_large=naive_large,
    )
    assert naive_large / naive_small > 100      # 1024x data, linear scan
    assert comp_large < comp_small * 10          # grammar grew by 10 nodes
    assert comp_large < naive_large


def test_c12_random_access_astronomical(bench):
    slp = SLP()
    node = power_node(slp, "abbab", 40)  # length 5·2^40

    ch = bench(char_at, slp, node, 5 * 2 ** 39 + 3)
    assert ch in "ab"


def test_c12_lce_on_huge_document(bench):
    slp = SLP()
    node = power_node(slp, "abbab", 30)
    hasher = FactorHasher(slp)

    def run():
        # suffixes shifted by one unit agree until the document's end
        return longest_common_extension(slp, node, 0, node, 5, hasher)

    lce = bench(run)
    assert lce == slp.length(node) - 5


def test_c12_suffix_comparison(bench):
    slp = SLP()
    text = "banana" * 50
    node = balanced_node(slp, text)
    hasher = FactorHasher(slp)

    verdict = bench(compare_suffixes, slp, node, 1, node, 3, hasher)
    expected = (text[1:] > text[3:]) - (text[1:] < text[3:])
    assert verdict == expected


def test_c12_lazy_occurrences(bench):
    slp = SLP()
    node = power_node(slp, "abbab", 30)
    matcher = CompressedPatternMatcher("bb")
    matcher.count(slp, node)  # preprocess

    first = bench(lambda: list(itertools.islice(matcher.occurrences(slp, node), 5)))
    assert first == [1, 6, 11, 16, 21]
