#!/usr/bin/env bash
# Single CI entrypoint: lints + the default test suite.
#
#   tools/ci.sh            # what CI runs; fast (slow_fuzz stays excluded
#                          # via the pytest addopts in pyproject.toml)
#
# The benchmark suite is intentionally separate (it is a perf workload,
# not a correctness gate):  PYTHONPATH=src python -m pytest benchmarks/

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: no wall-clock timing in src/"
python tools/check_no_wallclock.py

echo "== lint: shared evaluator state stays behind the coordination layer"
python tools/check_thread_safety.py

echo "== lint: shared-memory segments have a registered unlink path"
python tools/check_shm_hygiene.py

echo "== lint: metric names match the catalog (repro/obs/catalog.py)"
python tools/check_metric_names.py

echo "== bench: committed results meet their recorded speedup floors"
python tools/check_bench_regression.py

echo "== docs: API index is fresh"
python - <<'EOF'
import pathlib, sys
sys.path.insert(0, "src")
sys.path.insert(0, "tools")
import generate_api_doc
committed = pathlib.Path("docs/API.md").read_text(encoding="utf-8")
if committed != generate_api_doc.render():
    sys.exit("docs/API.md is stale; run: PYTHONPATH=src python tools/generate_api_doc.py")
print("docs/API.md ok")
EOF

echo "== golden query session (examples/query_session.rq, byte-for-byte)"
# the query language's script mode promises deterministic output; this
# lane replays the documented Example 1.1 session and diffs the
# transcript against the committed examples/query_session.out
GOLDEN_OUT=$(mktemp)
trap 'rm -f "$GOLDEN_OUT"' EXIT
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro query -f examples/query_session.rq > "$GOLDEN_OUT"
if ! diff -u examples/query_session.out "$GOLDEN_OUT"; then
    echo "golden query session drifted; regenerate with:"
    echo "  PYTHONPATH=src python -m repro query -f examples/query_session.rq > examples/query_session.out"
    exit 1
fi
echo "examples/query_session.out ok"

echo "== tests (slow_fuzz excluded by default addopts)"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q

echo "== chaos smoke lane (seeded concurrent fault injection, fast subset)"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q tests/test_chaos.py -m "not slow_fuzz"

echo "== streaming chaos smoke lane (seeded feed faults, fast subset)"
# the streaming session must keep its delta/frontier invariants under the
# seeded feed-chaos schedule (torn chunks, bursts, stalls, mid-window
# faults); slow_fuzz holds the 200-seed differential lane
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q tests/test_stream.py -m "not slow_fuzz"

echo "== process-pool smoke lane (crash isolation over shared memory)"
# the functional tests force backend="process" and run in the default
# suite on any host; this lane re-runs them as a visible gate where the
# pool can actually spread work, and skips loudly where it cannot
USABLE_CORES=$(python -c "import os; print(len(os.sched_getaffinity(0)) if hasattr(os, 'sched_getaffinity') else (os.cpu_count() or 1))")
if [ "$USABLE_CORES" -lt 2 ]; then
    echo "SKIP: process smoke lane needs >= 2 usable cores, have $USABLE_CORES"
else
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q tests/test_procpool.py
fi

echo "== regex fuzz fast lane (fixed seed, replayable byte-for-byte)"
# the default suite already runs these hypothesis tests with a random
# seed; this lane pins the seed so a CI failure here reproduces exactly
# with the same command locally (the '0{²' regression was found by fuzz
# — keep the lane deterministic so the next such find is replayable)
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q \
    tests/test_robustness.py::TestRegexParserFuzz --hypothesis-seed=20260806
