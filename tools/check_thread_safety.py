#!/usr/bin/env python3
"""Lint: shared evaluator-cache/arena state mutates only inside the
coordination layer's owners.

The serving layer (``repro.serve``) runs queries and edits concurrently.
Its safety argument (see ``docs/RELIABILITY.md``, "Serving runbook") rests
on a small set of owners being the only code that touches the shared
mutable state of the evaluation pipeline:

* the per-spanner matrix caches (``_arena_entries``, ``_node_data``,
  ``_char_tables_cache``) are owned by ``slp/spanner_eval.py`` and
  invalidated by ``db.py``'s transaction machinery;
* arena truncation (``.truncate(``) is owned by ``slp/slp.py`` (the
  definition) and ``db.py`` (rollback);
* cache invalidation (``invalidate_from``) likewise;
* every *other* module must reach this state through
  ``serve/coordination.py``'s read/write lock, never directly.

This check greps ``src/`` for those tokens outside the allowlist — coarse
but effective: new code that pokes the caches or the arena from a module
without a safety argument fails CI until it is either moved behind the
coordinator or added here with a review.  A line may opt out with a
trailing ``# thread-safety-ok`` comment.

Usage::

    python tools/check_thread_safety.py        # exits 1 on violations
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SCANNED = "src"

#: token -> set of repo-relative files allowed to use it
GUARDED = {
    re.compile(r"\b_node_data\b"): {
        "src/repro/slp/pattern.py",  # per-instance matcher cache, not served
    },
    re.compile(r"\b_arena_entries\b"): {
        "src/repro/slp/spanner_eval.py",
    },
    re.compile(r"\b_char_tables_cache\b"): {
        "src/repro/slp/spanner_eval.py",
    },
    re.compile(r"\binvalidate_from\s*\("): {
        "src/repro/slp/spanner_eval.py",
        "src/repro/slp/membership.py",  # defines it for its own cache
        "src/repro/slp/pattern.py",  # likewise
        "src/repro/db.py",
    },
    re.compile(r"\.truncate\s*\("): {
        "src/repro/slp/slp.py",
        "src/repro/db.py",
        "src/repro/util/faults.py",  # torn-write simulation on plain files
    },
}
WAIVER = "# thread-safety-ok"


def violations() -> list[str]:
    found = []
    for path in sorted((ROOT / SCANNED).rglob("*.py")):
        rel = path.relative_to(ROOT).as_posix()
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if WAIVER in line:
                continue
            for pattern, allowed in GUARDED.items():
                if pattern.search(line) and rel not in allowed:
                    found.append(
                        f"{rel}:{lineno}: {pattern.pattern} outside its owners "
                        f"({', '.join(sorted(allowed))})\n    {line.strip()}"
                    )
    return found


def main() -> int:
    found = violations()
    if found:
        print("unguarded shared-state access outside the coordination layer:")
        for item in found:
            print(item)
        return 1
    print("check_thread_safety: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
