#!/usr/bin/env python3
"""Gate benchmark results against regressions.

Two modes, one binary:

``python tools/check_bench_regression.py``
    *Validate* the committed ``benchmarks/results/`` — every file parses,
    every module has rows, every recorded before/after ``speedup`` still
    meets its documented floor (packed kernels ≥ 3x, plan cache ≥ 2x),
    and every recorded observability-overhead ratio stays under its
    ceiling.  This is the cheap invariant CI runs on every push without
    executing the perf workload.

``python tools/check_bench_regression.py BASELINE_DIR FRESH_DIR``
    *Compare* a fresh benchmark run against a baseline (typically: copy
    the committed results aside, re-run ``pytest benchmarks/``, then
    compare).  Fails when any test got more than ``--max-slowdown``
    (default 1.3x) slower, or any fitted complexity exponent drifted by
    more than ``--max-exponent-drift`` (default 0.25) — a slope change
    means the *shape* of a claim moved, which no amount of noise excuses.

Timing comparisons skip rows whose baseline is below ``--min-seconds``
(default 5 ms): micro-rows are dominated by interpreter jitter and would
make the 1.3x gate flap.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_RESULTS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "results"

# documented floors for the recorded before/after rows (ISSUE 4 acceptance)
SPEEDUP_FLOORS = {
    "test_c2_packed_kernel_speedup": 3.0,
    "test_c3_packed_kernel_speedup": 3.0,
    "test_o2_repeated_query_plan_cache": 2.0,
    # shard-parallel evaluation (ISSUE 5): the batched-fold row always
    # exists; the 4-worker row only on machines with >= 4 usable cores
    # (the lane skips where parallelism cannot be exhibited)
    "test_parallel_batched_fold_speedup": 2.0,
    "test_parallel_speedup_4_workers": 2.0,
    # supervised process pool (ISSUE 6): the differential and crash-
    # recovery rows always exist; the 4-worker scaling row only on
    # machines with >= 4 usable cores.  The floor is lower than the
    # thread lane's — shared-memory transport and supervision are paid
    # from the same wall-clock as the fold itself
    "test_process_speedup_4_workers": 1.3,
    # sublinear incremental maintenance (ISSUE 9): warm post-edit
    # preprocess vs cold rebuild at the largest (64x) document size —
    # measured ~150x on the reference host, floored far below that
    "test_dyn1_postedit_latency_sublinear": 3.0,
    # query planner (ISSUE 10): a repeated expression must hit the shared
    # plan cache, and warm-statistics join re-ordering must beat the
    # written-order plan (both measured well above the floor; the
    # reorder row also records naive_speedup vs left-to-right
    # materialization, gated in the benchmark itself)
    "test_query_plan_cache_warm_hit": 2.0,
    "test_query_planner_reorder_beats_naive": 2.0,
}

# ceilings for the observability-tax rows (ISSUE 2 contract, extended to the
# cross-process lanes in ISSUE 7): the recorded ratio fields in BENCH_obs.json
# must stay under the documented ceiling.  The in-process lanes target ~3%
# overhead (asserted at 1.25x for timer noise on shared CI machines); the
# process-pool lane also pays harvest packing and per-worker sink writes per
# task, hence the looser ceiling.
OVERHEAD_CEILINGS = {
    "test_o1_disabled_overhead_unmeasurable": ("disabled_over_raw_ratio", 1.10),
    "test_o1_enabled_overhead_under_target": ("enabled_over_disabled_ratio", 1.25),
    "test_o1_slp_eval_enabled_overhead": ("enabled_over_disabled_ratio", 1.25),
    "test_o3_process_pool_enabled_overhead": ("enabled_over_disabled_ratio", 1.5),
    # streaming ingestion (ISSUE 8): late windows stay within 3x of early
    # ones across 64x feed growth (the log-spine claim), the dedup
    # frontier never exceeds its configured byte bound, and the 30%-fault
    # chaos lane keeps per-window p99 within 5x of the clean lane
    "test_stream_window_latency_flat_64x": ("latency_ratio", 3.0),
    "test_stream_frontier_memory_ceiling": ("frontier_over_budget_ratio", 1.0),
    "test_stream_chaos_tail_latency": ("chaos_over_clean_p99_ratio", 5.0),
    # sublinear incremental maintenance (ISSUE 9): post-edit latency must
    # fit an exponent < 0.5 against document size at 64x growth (the row
    # also carries it as fitted_exponent, so compare mode gates drift), a
    # repeat query on a sealed root performs zero topological visits, and
    # append discovery walks only a sliver of the arena
    "test_dyn1_postedit_latency_sublinear": ("incremental_exponent", 0.5),
    "test_dyn2_sealed_repeat_zero_walk": ("repeat_walk_visited", 0.0),
    "test_dyn3_append_discovery_frontier": ("walk_visited_fraction", 0.05),
}


def _load_rows(directory: pathlib.Path) -> dict[str, dict]:
    """All result rows across a directory, keyed by 'module::test'."""
    rows: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        module = payload.get("bench", path.stem)
        file_rows = payload.get("rows", [])
        if not file_rows:
            raise SystemExit(f"{path.name}: no result rows")
        for row in file_rows:
            rows[f"{module}::{row['test']}"] = row
    if not rows:
        raise SystemExit(f"{directory}: no BENCH_*.json files found")
    return rows


def validate(directory: pathlib.Path) -> list[str]:
    """Invariants of a single results directory (the committed baseline)."""
    problems = []
    for key, row in _load_rows(directory).items():
        floor = SPEEDUP_FLOORS.get(row.get("name", ""))
        speedup = row.get("speedup")
        if floor is not None and isinstance(speedup, (int, float)):
            if speedup < floor:
                problems.append(
                    f"{key}: recorded speedup {speedup:.2f}x below the "
                    f"{floor:.1f}x floor"
                )
        ceiling_spec = OVERHEAD_CEILINGS.get(row.get("name", ""))
        if ceiling_spec is not None:
            field, ceiling = ceiling_spec
            ratio = row.get(field)
            if isinstance(ratio, (int, float)) and ratio > ceiling:
                problems.append(
                    f"{key}: recorded {field} {ratio:.3f}x above the "
                    f"{ceiling:.2f}x ceiling"
                )
        seconds = row.get("seconds")
        if isinstance(seconds, (int, float)) and seconds < 0:
            problems.append(f"{key}: negative seconds {seconds}")
    return problems


def compare(
    baseline_dir: pathlib.Path,
    fresh_dir: pathlib.Path,
    max_slowdown: float,
    max_exponent_drift: float,
    min_seconds: float,
) -> list[str]:
    baseline = _load_rows(baseline_dir)
    fresh = _load_rows(fresh_dir)
    problems = []
    compared = 0
    for key, base_row in sorted(baseline.items()):
        fresh_row = fresh.get(key)
        if fresh_row is None:
            problems.append(f"{key}: present in baseline, missing from fresh run")
            continue
        base_s, fresh_s = base_row.get("seconds"), fresh_row.get("seconds")
        if (
            isinstance(base_s, (int, float))
            and isinstance(fresh_s, (int, float))
            and base_s >= min_seconds
        ):
            compared += 1
            if fresh_s > base_s * max_slowdown:
                problems.append(
                    f"{key}: {fresh_s:.4f}s vs baseline {base_s:.4f}s "
                    f"({fresh_s / base_s:.2f}x > {max_slowdown:.2f}x)"
                )
        base_e = base_row.get("fitted_exponent")
        fresh_e = fresh_row.get("fitted_exponent")
        if isinstance(base_e, (int, float)) and isinstance(fresh_e, (int, float)):
            if abs(fresh_e - base_e) > max_exponent_drift:
                problems.append(
                    f"{key}: fitted exponent drifted {base_e:.3f} -> {fresh_e:.3f} "
                    f"(|Δ| > {max_exponent_drift})"
                )
    if compared == 0:
        problems.append("no timing rows were comparable; check the directories")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", type=pathlib.Path)
    parser.add_argument("fresh", nargs="?", type=pathlib.Path)
    parser.add_argument("--max-slowdown", type=float, default=1.3)
    parser.add_argument("--max-exponent-drift", type=float, default=0.25)
    parser.add_argument("--min-seconds", type=float, default=0.005)
    args = parser.parse_args(argv)

    if args.baseline is not None and args.fresh is None:
        parser.error("compare mode needs both BASELINE_DIR and FRESH_DIR")

    if args.baseline is None:
        problems = validate(DEFAULT_RESULTS)
        mode = f"validate {DEFAULT_RESULTS}"
    else:
        problems = compare(
            args.baseline,
            args.fresh,
            args.max_slowdown,
            args.max_exponent_drift,
            args.min_seconds,
        )
        mode = f"compare {args.baseline} -> {args.fresh}"

    if problems:
        print(f"bench regression check FAILED ({mode}):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"bench regression check ok ({mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
