#!/usr/bin/env python3
"""Lint: no wall-clock timing primitives in library code.

Timing code in ``src/`` must use the monotonic clock —
``time.perf_counter_ns()`` (durations) or ``time.monotonic()`` (deadlines)
— never ``time.time()`` or ``datetime.now()``: the wall clock can jump
backwards under NTP corrections, which turns delay histograms and deadline
checks into lies.  (ISSUE 2 audited and removed the last offenders; this
check keeps them out.)

A line may opt out with a trailing ``# wallclock-ok`` comment when actual
calendar time is genuinely needed (none is today).

Usage::

    python tools/check_no_wallclock.py        # exits 1 on violations
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
# tools/ joined in ISSUE 7: the trace stitcher and bench gates reason about
# recorded timestamps, so they must not mint wall-clock ones either
SCANNED = ["src", "tools"]

FORBIDDEN = [
    (re.compile(r"\btime\.time\(\)"), "time.time() — use time.perf_counter_ns()"),
    (re.compile(r"\bdatetime\.now\("), "datetime.now() — wall clock in library code"),
    (re.compile(r"\butcnow\("), "utcnow() — wall clock in library code"),
    # cross-process span timestamps compare across pids, which only works
    # for CLOCK_MONOTONIC (system-wide on Linux); process_time is per-pid
    (re.compile(r"\btime\.process_time"), "time.process_time — per-process clock, spans compare across pids"),
    (re.compile(r"\bdatetime\.today\("), "datetime.today() — wall clock in library code"),
]
WAIVER = "# wallclock-ok"


def violations() -> list[str]:
    found = []
    self_path = pathlib.Path(__file__).resolve()
    for directory in SCANNED:
        for path in sorted((ROOT / directory).rglob("*.py")):
            if path.resolve() == self_path:  # the patterns match themselves
                continue
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if WAIVER in line:
                    continue
                for pattern, message in FORBIDDEN:
                    if pattern.search(line):
                        rel = path.relative_to(ROOT)
                        found.append(f"{rel}:{lineno}: {message}\n    {line.strip()}")
    return found


def main() -> int:
    found = violations()
    if found:
        print("wall-clock timing primitives found in library code:")
        for item in found:
            print(item)
        return 1
    print("check_no_wallclock: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
