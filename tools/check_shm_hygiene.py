#!/usr/bin/env python3
"""Lint: every shared-memory creation site is paired with a registered
unlink path.

The leak-proofing contract of ``repro.parallel.shm`` is structural:

* ``SharedMemory`` is constructed in exactly one module,
  ``src/repro/parallel/shm.py`` — nowhere else in the library.  Workers
  receive descriptors and *attach*; only the parent creates, so no
  worker death can leak a segment.
* Every ``create=True`` construction happens inside a function that
  registers the fresh segment in the module's ``_live`` table — the
  table both ``SegmentRegistry.close()`` and the ``atexit`` sweep
  unlink from, so the unlink survives success, failure, and interpreter
  exit alike.
* The attach-side constructor never passes ``create=True``.

This script asserts all three by AST walk, so a refactor that quietly
adds a second creation site (or drops the registration) fails CI rather
than leaking ``/dev/shm`` segments in production.
"""

from __future__ import annotations

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
SHM_MODULE = SRC / "repro" / "parallel" / "shm.py"


def _is_shared_memory_call(node: ast.Call) -> bool:
    func = node.func
    name = getattr(func, "id", None) or getattr(func, "attr", None)
    return name == "SharedMemory"


def _creates(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return not (
                isinstance(value, ast.Constant) and value.value is False
            )
    return False


def _enclosing_functions(tree: ast.Module) -> list[tuple[ast.AST, ast.Call]]:
    """Every SharedMemory call, paired with its innermost def."""
    found: list[tuple[ast.AST, ast.Call]] = []

    def walk(node: ast.AST, enclosing: ast.AST | None) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            enclosing = node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call) and _is_shared_memory_call(child):
                found.append((enclosing, child))
            walk(child, enclosing)

    walk(tree, None)
    return found


def _registers_live(function: ast.AST | None) -> bool:
    """Does *function* assign into the module's ``_live`` table?"""
    if function is None:
        return False
    for node in ast.walk(function):
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Store
        ):
            target = node.value
            if getattr(target, "id", None) == "_live":
                return True
    return False


def main() -> int:
    problems: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        sites = _enclosing_functions(tree)
        if not sites:
            continue
        if path != SHM_MODULE:
            for _, call in sites:
                problems.append(
                    f"{path.relative_to(SRC)}:{call.lineno}: SharedMemory"
                    " constructed outside repro/parallel/shm.py — all"
                    " segment lifecycle must go through SegmentRegistry"
                )
            continue
        creations = 0
        for function, call in sites:
            if _creates(call):
                creations += 1
                if not _registers_live(function):
                    problems.append(
                        f"{path.relative_to(SRC)}:{call.lineno}: segment"
                        " created without registering in _live — the"
                        " atexit sweep cannot unlink it after a crash"
                    )
        if creations == 0:
            problems.append(
                f"{path.relative_to(SRC)}: expected the single creation"
                " site (SegmentRegistry.create) — none found"
            )
        elif creations > 1:
            problems.append(
                f"{path.relative_to(SRC)}: {creations} creation sites;"
                " the contract is exactly one (SegmentRegistry.create)"
            )

    if problems:
        print("shm hygiene check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("shm hygiene ok: one registered creation site, attach-only workers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
