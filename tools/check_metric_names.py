#!/usr/bin/env python3
"""Lint: every metric name used in ``src/`` is in the central catalog.

Dashboards, the Prometheus export surface, and ``docs/OBSERVABILITY.md``
all treat ``repro/obs/catalog.py`` as the complete inventory of metric
names.  This check walks the AST of every library module and verifies
that each ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` call
whose name is statically known appears there:

* a plain string literal must be an exact ``METRIC_NAMES`` entry (or
  start with an allowed prefix);
* an f-string (``f"parallel.degraded.{reason}"``) or a ``"stem." + var``
  concatenation must *start* with a ``METRIC_PREFIXES`` entry — dynamic
  names are allowed only as one classifying suffix on a reviewed stem;
* a non-constant name (a variable) is skipped — those sites pass
  catalogued names along, and the literal at their call sites is what
  gets checked.

A typo'd metric name therefore fails CI instead of silently forking a
time series that no dashboard is watching.

Usage::

    python tools/check_metric_names.py        # exits 1 on violations
"""

from __future__ import annotations

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SCANNED = ["src"]
INSTRUMENT_METHODS = {"counter", "gauge", "histogram"}

sys.path.insert(0, str(ROOT / "src"))
from repro.obs.catalog import METRIC_PREFIXES, is_catalogued  # noqa: E402


def _static_name(node: ast.expr) -> tuple[str, bool] | None:
    """``(name_or_prefix, is_prefix)`` when statically known, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.JoinedStr):
        # the leading constant run of an f-string is the checkable stem
        prefix = ""
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                prefix += value.value
            else:
                break
        return prefix, True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _static_name(node.left)
        if left is not None:
            return left[0], True
    return None


def violations() -> list[str]:
    found = []
    for directory in SCANNED:
        for path in sorted((ROOT / directory).rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            rel = path.relative_to(ROOT)
            for node in ast.walk(tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in INSTRUMENT_METHODS
                    and node.args
                ):
                    continue
                known = _static_name(node.args[0])
                if known is None:
                    continue
                name, is_prefix = known
                if is_prefix:
                    ok = any(
                        name.startswith(prefix) for prefix in METRIC_PREFIXES
                    )
                    kind = f"dynamic metric name with stem {name!r}"
                else:
                    ok = is_catalogued(name)
                    kind = f"metric name {name!r}"
                if not ok:
                    found.append(
                        f"{rel}:{node.lineno}: {kind} is not in"
                        " repro/obs/catalog.py"
                    )
    return found


def main() -> int:
    found = violations()
    if found:
        print("uncatalogued metric names found:")
        for item in found:
            print(f"  {item}")
        print("add them to src/repro/obs/catalog.py (or fix the typo)")
        return 1
    print("check_metric_names: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
