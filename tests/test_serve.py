"""Unit tests for the serving layer's primitives and request path.

Breaker transitions run against a fake clock (no sleeping); service-level
behaviour (admission control, degradation, lifecycle) is pinned down by
blocking the worker pool behind the coordinator's write lock, which is
deterministic where "submit faster than the workers drain" is not.
"""

import threading

import pytest

from repro import SpannerDB
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    FaultInjectedError,
    OverloadedError,
    SchemaError,
    ServiceStoppedError,
    SLPError,
)
from repro.serve import (
    CircuitBreaker,
    RetryBudget,
    RetryPolicy,
    RWLock,
    ServeConfig,
    SpannerService,
)
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN
from repro.slp.spanner_eval import SLPSpannerEvaluator
from repro.util import ChaosInjector

PATTERN = "(a|b)*!x{b}(a|b)*"


def drain_to_worker(service, timeout: float = 5.0) -> None:
    """Wait until the (parked) worker pool has dequeued everything."""
    waited = 0.0
    while service._queue.qsize() and waited < timeout:
        threading.Event().wait(0.005)
        waited += 0.005
    assert not service._queue.qsize(), "worker never dequeued"


def store():
    db = SpannerDB()
    db.add_document("d1", "ababbab")
    db.register_spanner("m", PATTERN)
    return db


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        defaults = dict(
            failure_threshold=3, reset_after=1.0, half_open_probes=2, clock=clock
        )
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_reset_and_probe_cap(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        assert breaker.allow()
        # both probe slots in flight: a third caller is refused
        assert not breaker.allow()

    def test_probe_successes_close(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.stats()["times_closed"] == 1

    def test_probe_failure_reopens_with_fresh_timer(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.stats()["times_opened"] == 2
        clock.advance(0.5)  # fresh timer: not yet half-open
        assert breaker.state == OPEN
        clock.advance(0.5)
        assert breaker.state == HALF_OPEN

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)

    # -- long-lived generator probes -----------------------------------
    # an enumeration probe holds its allow() grant for as long as the
    # consumer iterates; the pairing contract (every grant ends in
    # exactly one record_success/record_failure) is what keeps the
    # half-open accounting correct across that window

    @staticmethod
    def probe_generator(breaker, items, fail_at=None):
        """A probe whose grant settles only when the generator finishes:
        exhaustion records success, a raise or close() records failure."""
        try:
            for index, item in enumerate(items):
                if fail_at is not None and index == fail_at:
                    raise FaultInjectedError("mid-enumeration fault")
                yield item
        except BaseException:
            breaker.record_failure()
            raise
        else:
            breaker.record_success()

    def tripped_half_open(self, **kwargs):
        breaker, clock = self.make(**kwargs)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        return breaker, clock

    def test_generator_probe_holds_its_slot_until_exhausted(self):
        breaker, _ = self.tripped_half_open(half_open_probes=1)
        assert breaker.allow()
        probe = self.probe_generator(breaker, "ab")
        next(probe)
        # mid-enumeration: the probe is still in flight, nobody else
        # may probe, and the breaker has not moved
        assert breaker.stats()["probes_in_flight"] == 1
        assert not breaker.allow()
        assert breaker.state == HALF_OPEN
        assert list(probe) == ["b"]  # exhaustion settles the probe
        assert breaker.state == CLOSED
        assert breaker.stats()["probes_in_flight"] == 0

    def test_generator_probe_failure_mid_enumeration_reopens(self):
        breaker, clock = self.tripped_half_open(half_open_probes=1)
        assert breaker.allow()
        probe = self.probe_generator(breaker, "abc", fail_at=1)
        next(probe)
        with pytest.raises(FaultInjectedError):
            next(probe)
        assert breaker.state == OPEN
        assert breaker.stats()["times_opened"] == 2
        clock.advance(1.0)  # fresh timer from the probe failure
        assert breaker.state == HALF_OPEN

    def test_abandoned_generator_probe_settles_as_failure(self):
        # a consumer that walks away mid-enumeration must not leak the
        # probe slot: close() throws GeneratorExit into the frame and
        # the probe settles as a failure
        breaker, _ = self.tripped_half_open(half_open_probes=1)
        assert breaker.allow()
        probe = self.probe_generator(breaker, "abc")
        next(probe)
        probe.close()
        assert breaker.state == OPEN
        assert breaker.stats()["probes_in_flight"] == 0

    def test_two_generator_probes_settle_independently(self):
        breaker, _ = self.tripped_half_open()  # half_open_probes=2
        assert breaker.allow()
        assert breaker.allow()
        first = self.probe_generator(breaker, "ab")
        second = self.probe_generator(breaker, "ab")
        next(first)
        next(second)
        assert not breaker.allow()  # both slots in flight
        assert list(first) == ["b"]
        assert breaker.state == HALF_OPEN  # one success of the two needed
        assert list(second) == ["b"]
        assert breaker.state == CLOSED


class TestRetryPolicy:
    def test_backoff_is_exponential_with_bounded_jitter(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=1.0, seed=7)
        for attempt in range(1, 5):
            step = 0.01 * 2 ** (attempt - 1)
            delay = policy.backoff(attempt)
            assert step / 2 <= delay <= step

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.2, seed=0)
        assert policy.backoff(10) <= 0.2

    def test_same_seed_same_schedule(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        assert [a.backoff(i) for i in range(1, 6)] == [
            b.backoff(i) for i in range(1, 6)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestRetryBudget:
    def test_spends_down_then_denies(self):
        budget = RetryBudget(capacity=2.0, refill_per_success=0.5)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.stats()["denied"] == 1

    def test_refill_restores_and_caps(self):
        budget = RetryBudget(capacity=1.0, refill_per_success=0.6)
        assert budget.try_spend()
        budget.refill()
        assert not budget.try_spend()  # 0.6 < 1 token
        budget.refill()
        assert budget.try_spend()  # capped at 1.0, spendable
        budget.refill()
        budget.refill()
        assert budget.stats()["tokens"] <= 1.0


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        with lock.read():
            with lock.read():
                assert lock.stats()["readers"] == 2

    def test_writer_excludes_readers(self):
        lock = RWLock()
        lock.acquire_write()
        with pytest.raises(DeadlineExceededError):
            lock.acquire_read(timeout=0.05)
        lock.release_write()
        with lock.read():
            pass

    def test_writer_preference_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        blocked = threading.Thread(target=lock.acquire_write)
        blocked.start()
        # wait until the writer is parked
        for _ in range(100):
            if lock.stats()["writers_waiting"] == 1:
                break
            threading.Event().wait(0.01)
        with pytest.raises(DeadlineExceededError):
            lock.acquire_read(timeout=0.05)  # parks behind the waiting writer
        lock.release_read()
        blocked.join(timeout=5)
        assert not blocked.is_alive()
        lock.release_write()

    def test_write_timeout_raises_typed_error(self):
        lock = RWLock()
        lock.acquire_read()
        with pytest.raises(DeadlineExceededError):
            lock.acquire_write(timeout=0.05)
        lock.release_read()


class TestAdmissionControl:
    def test_sheds_with_retry_after_when_full(self):
        service = SpannerService(store(), ServeConfig(workers=1, queue_limit=2))
        with service:
            # park the pool behind the write lock: nothing drains
            service.coordinator.lock.acquire_write()
            try:
                tickets = [service.submit("m", "d1")]
                drain_to_worker(service)  # worker holds it, blocked on read
                tickets += [service.submit("m", "d1") for _ in range(2)]
                with pytest.raises(OverloadedError) as shed:
                    service.submit("m", "d1")
                assert shed.value.retry_after > 0
            finally:
                service.coordinator.lock.release_write()
            for ticket in tickets:
                assert len(ticket.result(timeout=10).tuples) == 4
        stats = service.stats()
        assert stats["shed"] == 1
        assert stats["completed"] == 3

    def test_expired_in_queue_fails_without_work(self):
        service = SpannerService(store(), ServeConfig(workers=1))
        with service:
            service.coordinator.lock.acquire_write()
            try:
                blocker = service.submit("m", "d1")
                drain_to_worker(service)  # the lone worker is now parked
                ticket = service.submit("m", "d1", deadline=0.01)  # stays queued
                threading.Event().wait(0.05)
            finally:
                service.coordinator.lock.release_write()
            blocker.result(timeout=10)
            with pytest.raises(DeadlineExceededError):
                ticket.result(timeout=10)
        assert service.stats()["expired_in_queue"] == 1


class TestServiceLifecycle:
    def test_query_answers_match_direct_evaluation(self):
        db = store()
        expected = sorted(map(str, db.query("m", "d1")))
        with SpannerService(db, ServeConfig(workers=2)) as service:
            result = service.query("m", "d1")
            assert not result.degraded
            assert result.attempts == 1
            assert sorted(map(str, result.tuples)) == expected

    def test_submit_after_stop_raises(self):
        service = SpannerService(store())
        service.start()
        service.stop()
        with pytest.raises(ServiceStoppedError):
            service.submit("m", "d1")

    def test_stop_fails_queued_requests(self):
        service = SpannerService(store(), ServeConfig(workers=1))
        service.start()
        service.coordinator.lock.acquire_write()
        try:
            tickets = [service.submit("m", "d1") for _ in range(3)]
        finally:
            # stop with the pool still parked: queued requests must resolve
            service.coordinator.lock.release_write()
        service.stop()
        resolved = 0
        for ticket in tickets:
            try:
                ticket.result(timeout=5)
                resolved += 1
            except ServiceStoppedError:
                resolved += 1
        assert resolved == 3

    def test_unknown_names_surface_typed_errors(self):
        with SpannerService(store()) as service:
            with pytest.raises(SchemaError):
                service.query("nope", "d1")
            with pytest.raises(SLPError):
                service.query("m", "nope")

    def test_mutations_are_visible_to_later_queries(self):
        with SpannerService(store()) as service:
            service.add_document("d2", "bbb")
            result = service.query("m", "d2")
            assert len(result.tuples) == 3
            assert service.stats()["mutations"] == 1

    def test_ticket_timeout_is_typed(self):
        service = SpannerService(store(), ServeConfig(workers=1))
        with service:
            service.coordinator.lock.acquire_write()
            try:
                ticket = service.submit("m", "d1")
                with pytest.raises(DeadlineExceededError):
                    ticket.result(timeout=0.05)
            finally:
                service.coordinator.lock.release_write()
            ticket.result(timeout=10)


class TestDegradation:
    def test_faulty_compressed_path_degrades_with_identical_tuples(self):
        db = store()
        expected = sorted(map(str, db.query("m", "d1")))
        config = ServeConfig(
            workers=2,
            retry_max_attempts=2,
            breaker_failure_threshold=2,
            breaker_reset_after=60.0,
        )
        injector = ChaosInjector(seed=1)
        with SpannerService(db, config) as service:
            with injector.chaos(
                SLPSpannerEvaluator, "enumerate", site="enum", error_rate=1.0
            ):
                results = [service.query("m", "d1", timeout=30) for _ in range(6)]
        assert all(r.degraded for r in results)
        for r in results:
            assert sorted(map(str, r.tuples)) == expected
        stats = service.stats()
        assert stats["degraded"] == 6
        assert stats["breaker"]["state"] == "open"
        assert stats["breaker"]["times_opened"] == 1

    def test_degradation_disabled_surfaces_breaker_and_fault_errors(self):
        config = ServeConfig(
            workers=1,
            degrade=False,
            retry_max_attempts=1,
            breaker_failure_threshold=1,
            breaker_reset_after=60.0,
        )
        injector = ChaosInjector(seed=2)
        with SpannerService(store(), config) as service:
            with injector.chaos(
                SLPSpannerEvaluator, "enumerate", site="enum", error_rate=1.0
            ):
                with pytest.raises(FaultInjectedError):
                    service.query("m", "d1")
                with pytest.raises(CircuitOpenError):
                    service.query("m", "d1")

    def test_breaker_recovers_after_reset(self):
        config = ServeConfig(
            workers=1,
            retry_max_attempts=1,
            breaker_failure_threshold=1,
            breaker_reset_after=0.05,
            breaker_half_open_probes=1,
        )
        injector = ChaosInjector(seed=3)
        with SpannerService(store(), config) as service:
            with injector.chaos(
                SLPSpannerEvaluator, "enumerate", site="enum", error_rate=1.0
            ):
                assert service.query("m", "d1").degraded
            threading.Event().wait(0.06)
            # fault gone, reset elapsed: the half-open probe succeeds
            result = service.query("m", "d1")
            assert not result.degraded
            assert service.breaker.state == "closed"

    def test_retries_recover_from_one_shot_fault(self):
        db = store()
        expected = sorted(map(str, db.query("m", "d1")))
        config = ServeConfig(workers=1, retry_max_attempts=3, breaker_failure_threshold=5)
        injector = ChaosInjector(seed=11)
        # rate 0.35: under seed 11 the first draw fires, later ones do not
        with SpannerService(db, config) as service:
            with injector.chaos(
                SLPSpannerEvaluator, "enumerate", site="enum", error_rate=0.35
            ):
                results = [service.query("m", "d1", timeout=30) for _ in range(10)]
        assert all(sorted(map(str, r.tuples)) == expected for r in results)
        retried = [r for r in results if r.attempts > 1]
        if injector.fired():
            assert retried or any(r.degraded for r in results)
