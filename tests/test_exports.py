"""Tests for relation export formats (to_dicts / to_json / to_csv) and the
CLI --format flag."""

import json

from repro.__main__ import main
from repro.core import Span, SpanRelation, SpanTuple
from repro.regex import spanner_from_regex


def relation():
    return SpanRelation(
        ["x", "y"],
        [
            SpanTuple.of(x=Span(1, 3), y=Span(3, 5)),
            SpanTuple.of(x=Span(2, 4)),
        ],
    )


class TestToDicts:
    def test_spans_only(self):
        rows = relation().to_dicts()
        assert rows == [
            {"x": [1, 3], "y": [3, 5]},
            {"x": [2, 4], "y": None},
        ]

    def test_with_contents(self):
        rows = relation().to_dicts("abab")
        assert rows[0]["x"] == {"span": [1, 3], "content": "ab"}
        assert rows[1]["y"] is None


class TestToJson:
    def test_round_trips_through_json(self):
        parsed = json.loads(relation().to_json())
        assert parsed[0]["y"] == [3, 5]

    def test_with_doc(self):
        parsed = json.loads(relation().to_json("abab"))
        assert parsed[0]["y"]["content"] == "ab"

    def test_empty_relation(self):
        assert json.loads(SpanRelation(["x"]).to_json()) == []


class TestToCsv:
    def test_header_and_rows(self):
        text = relation().to_csv()
        lines = text.strip().split("\n")
        assert lines[0] == "x,y"
        assert lines[1] == "1:3,3:5"
        assert lines[2] == "2:4,"

    def test_contents_mode(self):
        text = relation().to_csv("abab")
        assert "ab,ab" in text

    def test_csv_quotes_commas(self):
        spanner = spanner_from_regex("!x{(a|,)+}")
        rel = spanner.evaluate("a,a")
        text = rel.to_csv("a,a")
        assert '"a,a"' in text


class TestErrorExports:
    """Every public error type must be importable from the top level, so
    callers can catch precisely without reaching into ``repro.errors``."""

    def test_all_spanlib_errors_are_exported_from_repro(self):
        import repro
        from repro import errors

        for name in errors.__all__:
            assert name in repro.__all__, f"{name} missing from repro.__all__"
            assert getattr(repro, name) is getattr(errors, name)

    def test_error_hierarchy_roots_at_spanlib_error(self):
        from repro import errors

        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.SpanlibError)

    def test_budget_types_are_exported(self):
        import repro

        assert repro.Budget is not None
        assert repro.Deadline is not None


class TestCliFormats:
    def test_json_format(self, capsys):
        assert main(["eval", "!x{ab}", "ab", "--format", "json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed == [{"x": [1, 3]}]

    def test_json_with_contents(self, capsys):
        assert main(
            ["eval", "!x{ab}", "ab", "--format", "json", "--contents"]
        ) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed[0]["x"]["content"] == "ab"

    def test_csv_format(self, capsys):
        assert main(["eval", "!x{ab}", "ab", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == ["x", "1:3"]

    def test_refl_json(self, capsys):
        assert main(["refl", "!x{a+}&x", "aa", "--format", "json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed == [{"x": [1, 2]}]
