"""Tests for references nested inside other captures (sequential case).

A reference ``&x`` may occur inside the capture of *another* variable y —
the Section 3.1 example has exactly this shape.  As long as x closes
before the reference (the sequential fragment), evaluation, model
checking, and the refl→core translation must all handle it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Span, SpanTuple
from repro.spanners import ReflSpanner, prim


class TestReferenceInsideCapture:
    def test_evaluation(self):
        # y captures b·(copy of x)·b
        refl = ReflSpanner.from_regex("!x{a+}!y{b(&x)b}")
        relation = refl.evaluate("aabaab")
        assert relation.tuples == frozenset(
            {SpanTuple.of(x=Span(1, 3), y=Span(3, 7))}
        )

    def test_y_span_covers_the_copy(self):
        refl = ReflSpanner.from_regex("!x{a+}!y{b(&x)b}")
        doc = "abab"
        relation = refl.evaluate(doc)
        tup = next(iter(relation))
        assert tup["y"].extract(doc) == "b" + tup["x"].extract(doc) + "b"

    def test_model_check(self):
        refl = ReflSpanner.from_regex("!x{a+}!y{b(&x)b}")
        doc = "aabaab"
        good = SpanTuple.of(x=Span(1, 3), y=Span(3, 7))
        bad = SpanTuple.of(x=Span(1, 2), y=Span(3, 7))
        assert refl.model_check(doc, good)
        assert not refl.model_check(doc, bad)

    def test_to_core_translation(self):
        refl = ReflSpanner.from_regex("!x{a+}!y{b(&x)b}")
        core = refl.to_core()
        for doc in ["aabaab", "abab", "aabab", "ab"]:
            assert core.evaluate(doc) == refl.evaluate(doc), doc

    def test_double_nesting(self):
        # z captures c·(copy of y)·c where y itself contained a copy of x;
        # (&y) is parenthesised so the following 'c' is not read as part of
        # the variable name
        refl = ReflSpanner.from_regex("!x{a}!y{b&x}!z{c(&y)c}")
        doc = "a" + "ba" + "c" + "ba" + "c"
        relation = refl.evaluate(doc)
        assert relation.tuples == frozenset(
            {SpanTuple.of(x=Span(1, 2), y=Span(2, 4), z=Span(4, 8))}
        )

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="ab", max_size=7))
    def test_against_core_equivalent(self, doc):
        refl = ReflSpanner.from_regex("!x{a+}!y{b(&x)b}(a|b)*")
        # the same spanner as a core expression with an auxiliary variable
        core = (
            prim("!x{a+}!y{b!aux{a+}b}(a|b)*")
            .select_equal({"x", "aux"})
            .project({"x", "y"})
        )
        assert refl.evaluate(doc) == core.evaluate(doc)


class TestSequentialityBoundary:
    def test_reference_inside_own_capture_rejected(self):
        from repro.errors import UnsupportedSpannerError

        # &x inside x's own capture never denotes a valid ref-word, so the
        # spanner is outside the sequential fragment and evaluation refuses
        refl = ReflSpanner.from_regex("!x{a(&x)}")
        assert not refl.is_sequential()
        with pytest.raises(UnsupportedSpannerError):
            refl.evaluate("aa")

    def test_reference_before_close_is_non_sequential(self):
        refl = ReflSpanner.from_regex("!y{&x}!x{a}")
        assert not refl.is_sequential()
