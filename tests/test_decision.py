"""Tests for the decision problems of Sections 2.4 and 3.3."""

import pytest

from repro.automata import NFA, VSetAutomaton
from repro.core import Close, Open, Span, SpanTuple
from repro.decision import (
    contained_in,
    equivalent_spanners,
    first_tuple,
    is_hierarchical,
    is_nonempty_on,
    is_satisfiable,
    model_check,
    refl_contained_in,
    satisfying_document,
)
from repro.errors import EvaluationLimitError, UnsupportedSpannerError
from repro.regex import spanner_from_regex
from repro.spanners import ReflSpanner, RegularSpanner, prim


class TestModelChecking:
    def test_regular(self):
        spanner = RegularSpanner.from_regex("!x{(a|b)*}!y{b}!z{(a|b)*}")
        doc = "ababbab"
        assert model_check(spanner, doc, SpanTuple.of(x=Span(1, 2), y=Span(2, 3), z=Span(3, 8)))
        assert not model_check(spanner, doc, SpanTuple.of(x=Span(1, 3), y=Span(3, 4), z=Span(4, 8)))

    def test_core(self):
        core = prim("!x{(a|b)+}(a|b)*!y{(a|b)+}").select_equal({"x", "y"})
        doc = "abab"
        assert model_check(core, doc, SpanTuple.of(x=Span(1, 3), y=Span(3, 5)))
        assert not model_check(core, doc, SpanTuple.of(x=Span(1, 3), y=Span(2, 5)))

    def test_core_after_projection(self):
        core = prim("!x{(a|b)+}!y{(a|b)+}").select_equal({"x", "y"}).project({"x"})
        assert model_check(core, "abab", SpanTuple.of(x=Span(1, 3)))
        assert not model_check(core, "abab", SpanTuple.of(x=Span(1, 2)))

    def test_refl(self):
        refl = ReflSpanner.from_regex("!x{(a|b)+}&x")
        assert model_check(refl, "abab", SpanTuple.of(x=Span(1, 3)))
        assert not model_check(refl, "abab", SpanTuple.of(x=Span(1, 2)))


class TestNonEmptiness:
    def test_regular_ptime_route(self):
        spanner = RegularSpanner.from_regex("(a|b)*!x{ab}(a|b)*")
        assert is_nonempty_on(spanner, "aab")
        assert not is_nonempty_on(spanner, "bba")
        assert is_nonempty_on(spanner.automaton, "aab")

    def test_core_with_equality(self):
        # squares: D = w w with |w| >= 1
        square = (
            prim("!x1{(a|b)+}!x2{(a|b)+}")
            .select_equal({"x1", "x2"})
            .project(set())
        )
        assert is_nonempty_on(square, "abab")
        assert is_nonempty_on(square, "aa")
        assert not is_nonempty_on(square, "ab")
        assert not is_nonempty_on(square, "aba")

    def test_first_tuple_witness(self):
        square = prim("!x1{(a|b)+}!x2{(a|b)+}").select_equal({"x1", "x2"})
        witness = first_tuple(square, "abab")
        assert witness is not None
        assert witness["x1"].extract("abab") == witness["x2"].extract("abab")
        assert first_tuple(square, "aba") is None

    def test_refl(self):
        refl = ReflSpanner.from_regex("!x{(a|b)+}&x")
        assert is_nonempty_on(refl, "abab")
        assert not is_nonempty_on(refl, "aba")


class TestSatisfiability:
    def test_regular(self):
        assert is_satisfiable(RegularSpanner.from_regex("!x{ab}"))
        assert satisfying_document(RegularSpanner.from_regex("c!x{ab}c")) == "cabc"

    def test_regular_unsatisfiable(self):
        # an automaton with no accepting run
        nfa = NFA()
        nfa.add_state(initial=True)
        spanner = VSetAutomaton(nfa, frozenset({"x"}))
        assert not is_satisfiable(spanner)

    def test_refl_witness_dereferences(self):
        refl = ReflSpanner.from_regex("!x{ab}c&x")
        assert satisfying_document(refl) == "abcab"

    def test_core_intersection_nonemptiness(self):
        """The PSpace gadget: ς={x1,x2} satisfiable iff L(r1) ∩ L(r2) ≠ ∅."""
        sat = prim("!x1{a(a|b)*}!x2{a(a|b)*}").select_equal({"x1", "x2"})
        assert is_satisfiable(sat, max_length=4)
        unsat = prim("!x1{a+}!x2{b+}").select_equal({"x1", "x2"})
        with pytest.raises(EvaluationLimitError):
            is_satisfiable(unsat, max_length=3)

    def test_core_without_budget_exhaustion(self):
        trivially_sat = prim("!x{a}").select_equal({"x"})
        assert satisfying_document(trivially_sat, max_length=2) == "a"


class TestHierarchicality:
    def test_regex_formulas_are_hierarchical(self):
        for pattern in ["!x{a}!y{b}", "!x{a!y{b}c}", "!x{(a|b)*}!y{b}!z{(a|b)*}"]:
            assert is_hierarchical(spanner_from_regex(pattern))

    def test_overlapping_automaton_detected(self):
        # x = [1,3), y = [2,4) on 'aaa': properly overlapping
        nfa = NFA()
        states = nfa.add_states(8)
        nfa.initial = {states[0]}
        nfa.accepting = {states[7]}
        nfa.add_arc(states[0], Open("x"), states[1])
        nfa.add_arc(states[1], "a", states[2])
        nfa.add_arc(states[2], Open("y"), states[3])
        nfa.add_arc(states[3], "a", states[4])
        nfa.add_arc(states[4], Close("x"), states[5])
        nfa.add_arc(states[5], "a", states[6])
        nfa.add_arc(states[6], Close("y"), states[7])
        assert not is_hierarchical(VSetAutomaton(nfa))

    def test_nested_is_hierarchical(self):
        nfa = NFA()
        states = nfa.add_states(6)
        nfa.initial = {states[0]}
        nfa.accepting = {states[5]}
        nfa.add_arc(states[0], Open("x"), states[1])
        nfa.add_arc(states[1], Open("y"), states[2])
        nfa.add_arc(states[2], "a", states[3])
        nfa.add_arc(states[3], Close("y"), states[4])
        nfa.add_arc(states[4], Close("x"), states[5])
        assert is_hierarchical(VSetAutomaton(nfa))

    def test_touching_spans_are_hierarchical(self):
        # x=[1,2), y=[2,3): disjoint (touching), not overlapping
        assert is_hierarchical(spanner_from_regex("!x{a}!y{b}"))


class TestContainmentEquivalence:
    def test_equivalent_up_to_marker_order(self):
        """Two automata emitting adjacent markers in different orders
        describe the same spanner."""
        def build(first, second):
            nfa = NFA()
            states = nfa.add_states(5)
            nfa.initial = {states[0]}
            nfa.accepting = {states[4]}
            nfa.add_arc(states[0], Open("x"), states[1])
            nfa.add_arc(states[1], "a", states[2])
            nfa.add_arc(states[2], first, states[3])
            nfa.add_arc(states[3], second, states[4])
            return VSetAutomaton(nfa)

        left = build(Close("x"), Open("y"))
        right = build(Open("y"), Close("x"))
        # y never closes: restrict to x-only spanners via projection
        left = left.project({"x"})
        right = right.project({"x"})
        assert equivalent_spanners(left, right)

    def test_strict_containment(self):
        small = spanner_from_regex("(a|b)*!x{ab}(a|b)*")
        big = spanner_from_regex("(a|b)*!x{(a|b)(a|b)}(a|b)*")
        assert contained_in(small, big)
        assert not contained_in(big, small)
        assert not equivalent_spanners(small, big)

    def test_self_equivalence(self):
        spanner = spanner_from_regex("!x{(a|b)*}!y{b}!z{(a|b)*}")
        assert equivalent_spanners(spanner, spanner)
        assert contained_in(spanner, spanner)

    def test_core_spanners_rejected(self):
        core = prim("!x{a}").select_equal({"x"})
        with pytest.raises(UnsupportedSpannerError):
            contained_in(core, core)
        with pytest.raises(UnsupportedSpannerError):
            equivalent_spanners(core, core)

    def test_refl_containment_sound(self):
        small = ReflSpanner.from_regex("a!x{ab}c&x")
        big = ReflSpanner.from_regex("a!x{(a|b)+}c&x")
        assert refl_contained_in(small, big)
        assert not refl_contained_in(big, small)
