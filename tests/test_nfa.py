"""Tests for the NFA substrate and regular-language operations."""

import pytest
from hypothesis import given, strategies as st

from repro.automata import (
    EPSILON,
    NFA,
    concat,
    epsilon_nfa,
    intersection,
    is_empty,
    is_universal,
    literal_nfa,
    never_nfa,
    optional,
    plus,
    star,
    union,
)
from repro.core import CharClass, Close, DOT, Open, char_class
from repro.errors import SpanlibError


def word_nfa(*words):
    return union(*(literal_nfa(w) for w in words))


class TestNFABasics:
    def test_literal(self):
        nfa = literal_nfa("abc")
        assert nfa.accepts("abc")
        assert not nfa.accepts("ab")
        assert not nfa.accepts("abcd")
        assert not nfa.accepts("")

    def test_empty_word(self):
        assert literal_nfa("").accepts("")
        assert epsilon_nfa().accepts("")
        assert not epsilon_nfa().accepts("a")

    def test_never(self):
        nfa = never_nfa()
        assert not nfa.accepts("")
        assert is_empty(nfa)

    def test_unknown_state_rejected(self):
        nfa = NFA()
        with pytest.raises(SpanlibError):
            nfa.add_arc(0, "a", 1)

    def test_epsilon_closure(self):
        nfa = NFA()
        a, b, c = nfa.add_states(3)
        nfa.add_arc(a, EPSILON, b)
        nfa.add_arc(b, EPSILON, c)
        assert nfa.epsilon_closure([a]) == {a, b, c}
        assert nfa.epsilon_closure([c]) == {c}

    def test_char_class_arcs(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, char_class("ab"), t)
        assert nfa.accepts("a") and nfa.accepts("b")
        assert not nfa.accepts("c")

    def test_dot_matches_anything(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, DOT, t)
        assert nfa.accepts("a") and nfa.accepts("ü")
        assert not nfa.accepts("ab")

    def test_accepts_symbols_with_markers(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        m = nfa.add_state()
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, Open("x"), m)
        nfa.add_arc(m, "a", t)
        assert nfa.accepts_symbols([Open("x"), "a"])
        assert not nfa.accepts_symbols([Close("x"), "a"])
        assert not nfa.accepts_symbols(["a"])

    def test_trim_removes_useless_states(self):
        nfa = literal_nfa("ab")
        dead = nfa.add_state()
        nfa.add_arc(next(iter(nfa.initial)), "z", dead)  # dead end
        trimmed = nfa.trim()
        assert trimmed.num_states == 3
        assert trimmed.accepts("ab")

    def test_reverse(self):
        nfa = literal_nfa("abc").reverse()
        assert nfa.accepts("cba")
        assert not nfa.accepts("abc")

    def test_remove_epsilon_preserves_language(self):
        nfa = concat(literal_nfa("a"), star(literal_nfa("b")))
        stripped = nfa.remove_epsilon()
        assert not any(s is EPSILON for _, s, _ in stripped.arcs())
        for word in ["a", "ab", "abbb", "", "b", "ba"]:
            assert stripped.accepts(word) == nfa.accepts(word)

    def test_shortest_word(self):
        nfa = word_nfa("abc", "ab", "abcd")
        assert nfa.shortest_word() == ["a", "b"]
        assert never_nfa().shortest_word() is None

    def test_shortest_word_with_char_class(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, char_class("xy"), t)
        assert nfa.shortest_word() in (["x"], ["y"])

    def test_map_symbols_to_epsilon(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        m = nfa.add_state()
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, Open("x"), m)
        nfa.add_arc(m, "a", t)
        erased = nfa.map_symbols(lambda sym: None if sym == Open("x") else sym)
        assert erased.accepts("a")


class TestOperations:
    def test_union(self):
        nfa = word_nfa("cat", "dog")
        assert nfa.accepts("cat") and nfa.accepts("dog")
        assert not nfa.accepts("cow")

    def test_concat(self):
        nfa = concat(literal_nfa("ab"), literal_nfa("cd"), literal_nfa("e"))
        assert nfa.accepts("abcde")
        assert not nfa.accepts("abcd")

    def test_concat_no_operands_is_epsilon(self):
        assert concat().accepts("")

    def test_star(self):
        nfa = star(literal_nfa("ab"))
        for word, expected in [("", True), ("ab", True), ("abab", True), ("aba", False)]:
            assert nfa.accepts(word) == expected

    def test_plus(self):
        nfa = plus(literal_nfa("a"))
        assert not nfa.accepts("")
        assert nfa.accepts("a") and nfa.accepts("aaa")

    def test_optional(self):
        nfa = optional(literal_nfa("a"))
        assert nfa.accepts("") and nfa.accepts("a")
        assert not nfa.accepts("aa")

    def test_intersection(self):
        # (ab)* ∩ a(ba)*b... words in both
        left = star(word_nfa("ab"))
        right = concat(literal_nfa("a"), star(literal_nfa("ba")), literal_nfa("b"))
        both = intersection(left, right)
        assert both.accepts("ab")
        assert both.accepts("abab")
        assert not both.accepts("")
        assert not both.accepts("ba")

    def test_intersection_of_char_classes(self):
        left = NFA()
        s = left.add_state(initial=True)
        t = left.add_state(accepting=True)
        left.add_arc(s, char_class("abc"), t)
        right = NFA()
        u = right.add_state(initial=True)
        v = right.add_state(accepting=True)
        right.add_arc(u, char_class("bcd"), v)
        both = intersection(left, right)
        assert both.accepts("b") and both.accepts("c")
        assert not both.accepts("a") and not both.accepts("d")

    def test_intersection_negated_class(self):
        anything = NFA()
        s = anything.add_state(initial=True)
        t = anything.add_state(accepting=True)
        anything.add_arc(s, CharClass(frozenset("x"), negated=True), t)
        just_a = literal_nfa("a")
        both = intersection(anything, just_a)
        assert both.accepts("a")
        assert not both.accepts("x")

    def test_empty_intersection(self):
        assert is_empty(intersection(literal_nfa("a"), literal_nfa("b")))

    def test_is_universal(self):
        nfa = NFA()
        s = nfa.add_state(initial=True, accepting=True)
        nfa.add_arc(s, DOT, s)
        assert is_universal(nfa)
        assert not is_universal(literal_nfa("a"))

    @given(st.lists(st.text(alphabet="ab", max_size=3), min_size=1, max_size=4),
           st.text(alphabet="ab", max_size=6))
    def test_union_property(self, words, probe):
        nfa = word_nfa(*words)
        assert nfa.accepts(probe) == (probe in words)

    @given(st.text(alphabet="ab", max_size=4), st.text(alphabet="ab", max_size=4),
           st.text(alphabet="ab", max_size=8))
    def test_concat_property(self, u, v, probe):
        nfa = concat(literal_nfa(u), literal_nfa(v))
        assert nfa.accepts(probe) == (probe == u + v)
