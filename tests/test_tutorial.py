"""Execute every python code block of docs/TUTORIAL.md.

Documentation that is run cannot rot: each fenced ``python`` block is
compiled and executed in a shared namespace (so later blocks may build on
earlier ones), and any failing assert fails this test.
"""

import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def _blocks() -> list[tuple[int, str]]:
    text = TUTORIAL.read_text(encoding="utf-8")
    pattern = re.compile(r"```python\n(.*?)```", re.DOTALL)
    blocks = []
    for match in pattern.finditer(text):
        line = text[: match.start()].count("\n") + 2
        blocks.append((line, match.group(1)))
    return blocks


BLOCKS = _blocks()


def test_tutorial_has_blocks():
    assert len(BLOCKS) >= 8


@pytest.mark.parametrize(
    "line,code", BLOCKS, ids=[f"line{line}" for line, _ in BLOCKS]
)
def test_tutorial_block(line, code, tutorial_namespace={}):
    compiled = compile(code, f"{TUTORIAL}:{line}", "exec")
    exec(compiled, tutorial_namespace)  # noqa: S102 - that's the point
