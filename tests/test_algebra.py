"""Tests for the algebra utilities: lenient join, variable duplication."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Span, SpanTuple
from repro.regex import spanner_from_regex
from repro.spanners import duplicate_variable, forbid_variables, join_lenient


class TestForbidVariables:
    def test_drops_marker_arcs(self):
        spanner = spanner_from_regex("(!x{a})?b")
        restricted = forbid_variables(spanner, {"x"})
        relation = restricted.evaluate("ab")
        assert not relation  # the x-marking run was the only way to read 'ab'
        relation_b = restricted.evaluate("b")
        assert SpanTuple.empty() in relation_b

    def test_removes_variable_from_schema(self):
        spanner = spanner_from_regex("(!x{a})?b")
        restricted = forbid_variables(spanner, {"x"})
        assert "x" not in restricted.variables


class TestDuplicateVariable:
    def test_twin_marks_identical_spans(self):
        spanner = spanner_from_regex("(a|b)*!x{ab}(a|b)*")
        doubled = duplicate_variable(spanner, "x", "x2")
        relation = doubled.evaluate("abab")
        assert relation
        for tup in relation:
            assert tup["x"] == tup["x2"]

    def test_twin_of_optional_variable(self):
        spanner = spanner_from_regex("(!x{a})?b*")
        doubled = duplicate_variable(spanner, "x", "x2")
        for tup in doubled.evaluate("ab"):
            assert ("x" in tup) == ("x2" in tup)

    def test_existing_name_rejected(self):
        import pytest

        spanner = spanner_from_regex("!x{a}")
        with pytest.raises(ValueError):
            duplicate_variable(spanner, "x", "x")


class TestLenientJoin:
    def test_coincides_with_strict_join_for_functional(self):
        left = spanner_from_regex("(a|b)*!x{a+}(a|b)*")
        right = spanner_from_regex("(a|b)*!x{a+}b(a|b)*")
        strict = left.join(right)
        lenient = join_lenient(left, right)
        for doc in ["aab", "aba", "baab", ""]:
            assert strict.evaluate(doc) == lenient.evaluate(doc), doc

    def test_undefined_side_joins(self):
        """Schemaless: a tuple leaving x undefined joins with any x."""
        left = spanner_from_regex("(!x{a})?(a|b)*")   # x optional
        right = spanner_from_regex("(a|b)*!x{a}(a|b)*!y{b}(a|b)*")
        lenient = join_lenient(left.automaton if hasattr(left, "automaton") else left, right)
        relation = lenient.evaluate("ab")
        # right defines x=[1,2), y=[2,3); left may leave x undefined,
        # in which case the joined tuple takes right's x
        assert SpanTuple.of(x=Span(1, 2), y=Span(2, 3)) in relation

    def test_matches_relation_level_join(self):
        left = spanner_from_regex("(!x{a})?(a|b)*")
        right = spanner_from_regex("(!x{a})?(a|b)*!y{b}(a|b)*")
        lenient = join_lenient(left, right)
        for doc in ["ab", "ba", "aab"]:
            expected = left.evaluate(doc).natural_join(right.evaluate(doc))
            assert lenient.evaluate(doc) == expected, doc

    @settings(max_examples=15, deadline=None)
    @given(st.text(alphabet="ab", max_size=4))
    def test_relation_join_property(self, doc):
        left = spanner_from_regex("(!x{a+})?b*")
        right = spanner_from_regex("(a|b)*(!x{a+})?!y{b}")
        lenient = join_lenient(left, right)
        expected = left.evaluate(doc).natural_join(right.evaluate(doc))
        assert lenient.evaluate(doc) == expected


class TestLenientJoinBudget:
    """The 3^|shared| mode enumeration must respect resource governance."""

    def _operands(self):
        # three shared optional variables → 27 mode assignments
        left = spanner_from_regex("(!x{a})?(!y{a})?(!z{a})?(a|b)*")
        right = spanner_from_regex("(a|b)*(!x{a})?(!y{a})?(!z{a})?")
        return left, right

    def test_step_budget_bounds_mode_enumeration(self):
        from repro.errors import EvaluationLimitError
        from repro.util import Budget

        left, right = self._operands()
        per_product = left.nfa.num_states * right.nfa.num_states
        with pytest.raises(EvaluationLimitError):
            join_lenient(left, right, budget=Budget(max_steps=3 * per_product))

    def test_deadline_checked_between_products(self):
        from repro.errors import DeadlineExceededError
        from repro.util import Budget, Deadline

        left, right = self._operands()
        budget = Budget(deadline=Deadline.after(-1.0))
        with pytest.raises(DeadlineExceededError):
            join_lenient(left, right, budget=budget)

    def test_sufficient_budget_changes_nothing(self):
        from repro.util import Budget

        left, right = self._operands()
        unbudgeted = join_lenient(left, right)
        budgeted = join_lenient(left, right, budget=Budget(max_steps=10**9))
        for doc in ["aa", "ab", "ba"]:
            assert budgeted.evaluate(doc) == unbudgeted.evaluate(doc), doc
