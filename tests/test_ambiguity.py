"""Tests for NFA/vset-automaton ambiguity analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import NFA, literal_nfa, union
from repro.automata.ambiguity import ambiguous_witness, is_unambiguous
from repro.regex import compile_nfa, spanner_from_regex


class TestUnambiguous:
    def test_literal(self):
        assert is_unambiguous(literal_nfa("abc"))

    def test_deterministic_star(self):
        assert is_unambiguous(compile_nfa("(ab)*"))

    def test_disjoint_union(self):
        assert is_unambiguous(union(literal_nfa("a"), literal_nfa("b")))

    def test_no_witness(self):
        assert ambiguous_witness(literal_nfa("ab")) is None


class TestAmbiguous:
    def test_duplicate_word_union(self):
        nfa = union(literal_nfa("ab"), literal_nfa("ab"))
        assert not is_unambiguous(nfa)
        assert ambiguous_witness(nfa) == ["a", "b"]

    def test_duplicated_arc(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, "a", t)
        nfa.add_arc(s, "a", t)
        assert not is_unambiguous(nfa)

    def test_classic_ambiguous_pattern(self):
        # a*a* : 'a' can split in two ways
        nfa = compile_nfa("a*a*")
        assert not is_unambiguous(nfa)
        witness = ambiguous_witness(nfa)
        assert witness is not None and set(witness) <= {"a"}

    def test_overlapping_char_classes(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        from repro.core import char_class

        nfa.add_arc(s, char_class("ab"), t)
        nfa.add_arc(s, char_class("bc"), t)
        assert not is_unambiguous(nfa)
        assert ambiguous_witness(nfa) == ["b"]

    def test_witness_really_is_ambiguous(self):
        nfa = compile_nfa("(a|ab)(b|())")
        if not is_unambiguous(nfa):
            witness = ambiguous_witness(nfa)
            assert nfa.accepts("".join(witness))


class TestSpannerConnection:
    def test_unambiguous_spanner_counts_one_per_tuple(self):
        """The weighted-spanner connection: unambiguous ⇒ all counts 1."""
        from repro.spanners import COUNTING, WeightedSpanner

        spanner = spanner_from_regex("!x{(ab)*}")
        if is_unambiguous(spanner.nfa):
            weighted = WeightedSpanner.from_spanner(spanner, COUNTING)
            assert all(
                count == 1 for count in weighted.evaluate("abab").values()
            )

    def test_epsilon_paths_do_not_count(self):
        """ε-ambiguity is invisible to runs over symbols."""
        nfa = NFA()
        s = nfa.add_state(initial=True)
        m1 = nfa.add_state()
        m2 = nfa.add_state()
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, None, m1)
        nfa.add_arc(s, None, m2)
        nfa.add_arc(m1, "a", t)
        nfa.add_arc(m2, "b", t)
        assert is_unambiguous(nfa)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.text(alphabet="ab", min_size=1, max_size=3),
                    min_size=1, max_size=4))
    def test_union_of_distinct_words_unambiguous_iff_no_duplicates(self, words):
        nfa = union(*(literal_nfa(w) for w in words))
        assert is_unambiguous(nfa) == (len(set(words)) == len(words))
