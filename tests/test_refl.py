"""Tests for refl-spanners (paper Section 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Span, SpanTuple
from repro.errors import SchemaError, UnsupportedSpannerError
from repro.spanners import ReflSpanner, core_to_refl_concat, prim
from repro.spanners.refl import ReflSpanner as _R


ALPHA2 = "ab*!x{(a|b)*}(b|c)*!y{(a|b)*}b*"   # the paper's (2)
ALPHA3 = "ab*!x{(a|b)*}(b|c)*!y{&x}b*"       # the paper's (3)


class TestConstruction:
    def test_from_regex(self):
        spanner = ReflSpanner.from_regex(ALPHA3)
        assert spanner.variables == {"x", "y"}

    def test_dangling_reference_rejected(self):
        import repro.automata as automata
        from repro.core import Ref

        nfa = automata.NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, Ref("x"), t)
        with pytest.raises(SchemaError):
            ReflSpanner(nfa)


class TestSemantics:
    """Experiment P6: (3) expresses ς={x,y}(⟦(2)⟧)."""

    DOCS = ["a", "ab", "abb", "abba", "abbabba", "abcab", "abacb", "aabb"]

    def test_equals_core_spanner_on_catalogue(self):
        refl = ReflSpanner.from_regex(ALPHA3)
        core = prim(ALPHA2).select_equal({"x", "y"})
        for doc in self.DOCS:
            assert refl.evaluate(doc) == core.evaluate(doc), doc

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="abc", max_size=6))
    def test_equals_core_spanner_property(self, doc):
        refl = ReflSpanner.from_regex(ALPHA3)
        core = prim(ALPHA2).select_equal({"x", "y"})
        assert refl.evaluate(doc) == core.evaluate(doc)

    def test_repeated_factor_extraction(self):
        # find x such that doc = x x (the square/copy language)
        refl = ReflSpanner.from_regex("!x{(a|b)*}&x")
        assert refl.evaluate("abab").tuples == frozenset(
            {SpanTuple.of(x=Span(1, 3))}
        )
        assert not refl.evaluate("aba")
        assert refl.evaluate("").tuples == frozenset({SpanTuple.of(x=Span(1, 1))})

    def test_multiple_references(self):
        # doc = x x x
        refl = ReflSpanner.from_regex("!x{(a|b)+}&x&x")
        assert refl.evaluate("ababab").tuples == frozenset(
            {SpanTuple.of(x=Span(1, 3))}
        )
        assert not refl.evaluate("abab")

    def test_reference_without_own_span_extraction(self):
        """A reference is a string-equality *without* extracting a span —
        wrap it in a capture to also extract it (Section 3.1)."""
        refl = ReflSpanner.from_regex("!x{(a|b)+}!z{&x}")
        relation = refl.evaluate("abab")
        assert relation.tuples == frozenset(
            {SpanTuple.of(x=Span(1, 3), z=Span(3, 5))}
        )


class TestModelChecking:
    """Section 3.3: ModelChecking for refl-spanners is tractable."""

    def test_positive_and_negative(self):
        refl = ReflSpanner.from_regex(ALPHA3)
        doc = "abbabba"
        good = SpanTuple.of(x=Span(2, 5), y=Span(5, 8))
        bad = SpanTuple.of(x=Span(2, 5), y=Span(4, 8))
        assert refl.model_check(doc, good)
        assert not refl.model_check(doc, bad)

    def test_agrees_with_evaluation(self):
        refl = ReflSpanner.from_regex("c*!x{(a|b)+}c+!y{&x}c*")
        doc = "cabcabc"
        relation = refl.evaluate(doc)
        for start1 in range(1, len(doc) + 2):
            for end1 in range(start1, len(doc) + 2):
                for start2 in range(1, len(doc) + 2):
                    for end2 in range(start2, len(doc) + 2):
                        tup = SpanTuple.of(
                            x=Span(start1, end1), y=Span(start2, end2)
                        )
                        assert refl.model_check(doc, tup) == (tup in relation)

    def test_empty_reference_factor(self):
        refl = ReflSpanner.from_regex("!x{a*}b&x")
        assert refl.model_check("b", SpanTuple.of(x=Span(1, 1)))
        assert refl.model_check("aba", SpanTuple.of(x=Span(1, 2)))
        assert not refl.model_check("aba", SpanTuple.of(x=Span(1, 3)))

    def test_marker_inside_reference_region_rejected(self):
        # y's open marker cannot fall strictly inside the copied region
        refl = ReflSpanner.from_regex("!x{(a|b)+}&x!y{b}")
        doc = "abab" + "b"
        ok = SpanTuple.of(x=Span(1, 3), y=Span(5, 6))
        assert refl.model_check(doc, ok)
        inside = SpanTuple.of(x=Span(1, 3), y=Span(4, 5))
        assert not refl.model_check(doc, inside)

    def test_tuple_must_define_referenced_variable(self):
        refl = ReflSpanner.from_regex("!x{a+}&x")
        assert not refl.model_check("aa", SpanTuple.empty())


class TestAnalysis:
    def test_sequential(self):
        assert ReflSpanner.from_regex(ALPHA3).is_sequential()

    def test_non_sequential_detected(self):
        # reference before the variable is captured
        spanner = ReflSpanner.from_regex("&x!x{a+}")
        assert not spanner.is_sequential()
        with pytest.raises(UnsupportedSpannerError):
            spanner.evaluate("aa")

    def test_reference_bounded(self):
        assert ReflSpanner.from_regex(ALPHA3).is_reference_bounded()
        assert ReflSpanner.from_regex("!x{a+}&x&x&x").is_reference_bounded()

    def test_unbounded_references_detected(self):
        """The paper's example a+ x{b+} (a+ x)* a+ of a refl-spanner that is
        provably not a core spanner."""
        spanner = ReflSpanner.from_regex("a+!x{b+}(a+&x)*a+")
        assert not spanner.is_reference_bounded()
        with pytest.raises(UnsupportedSpannerError):
            spanner.to_core()


class TestReflToCore:
    """Section 3.2: reference-bounded refl-spanners are core spanners."""

    CASES = [
        ("!x{(a|b)*}&x", ["abab", "aa", "aba", ""]),
        (ALPHA3, ["abbabba", "abcab", "a"]),
        ("!x{a+}b!z{&x}", ["aabaa", "aba", "ab"]),
        ("c*!x{(a|b)+}c+!y{&x}c*", ["cabcabc", "acbca"]),
    ]

    @pytest.mark.parametrize("pattern,docs", CASES, ids=[c[0] for c in CASES])
    def test_translation_preserves_semantics(self, pattern, docs):
        refl = ReflSpanner.from_regex(pattern)
        core = refl.to_core()
        for doc in docs:
            assert core.evaluate(doc) == refl.evaluate(doc), doc


class TestCoreToRefl:
    """Section 3.2's converse, for the non-overlapping concat fragment."""

    def test_paper_example_2_to_3(self):
        refl = core_to_refl_concat(ALPHA2, {"x", "y"})
        core = prim(ALPHA2).select_equal({"x", "y"})
        for doc in ["abbabba", "abcab", "ab", "a"]:
            assert refl.evaluate(doc) == core.evaluate(doc), doc

    def test_paper_beta_example_needs_intersection(self):
        """β := ab* x{a(a|b)*} (b|c)* y{(a|b)*b} b*: the content language of
        the leader becomes L(a(a|b)*) ∩ L((a|b)*b)."""
        beta = "ab*!x{a(a|b)*}(b|c)*!y{(a|b)*b}b*"
        refl = core_to_refl_concat(beta, {"x", "y"})
        core = prim(beta).select_equal({"x", "y"})
        for doc in ["aabab", "aabcaab", "abbabb", "aababb", "aabaab"]:
            assert refl.evaluate(doc) == core.evaluate(doc), doc

    def test_nested_captures_rejected(self):
        with pytest.raises(UnsupportedSpannerError):
            core_to_refl_concat("!x{a!z{b}}!y{ab}", {"x", "y"})

    def test_non_toplevel_capture_rejected(self):
        with pytest.raises(UnsupportedSpannerError):
            core_to_refl_concat("(!x{a}|b)!y{a}", {"x", "y"})
