"""Tests for repro.query: lexer, parser, planner, executor, REPL, surfaces."""

import io

import pytest

from repro.db import SpannerDB
from repro.errors import (
    DeadlineExceededError,
    EvaluationLimitError,
    QueryError,
    QuerySyntaxError,
    SchemaError,
)
from repro.kernels.plan import configure_plan_cache, plan_cache
from repro.query import (
    QuerySession,
    canonical_key,
    evaluate_query,
    evaluate_query_naive,
    parse_expression,
    parse_program,
    plan_expression,
    tokenize,
)
from repro.query import ast
from repro.query.repl import Repl, run_script
from repro.util import Budget, Deadline


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    """Query plans are interned process-wide; isolate the tests."""
    configure_plan_cache()
    yield
    configure_plan_cache()


@pytest.fixture
def store():
    db = SpannerDB()
    db.add_document("d", "aabba ab ba")
    return db


# ----------------------------------------------------------------------
# lexer
# ----------------------------------------------------------------------
class TestLexer:
    def test_unicode_and_ascii_operators_tokenize_alike(self):
        unicode_kinds = [t.kind for t in tokenize("π{x}('a' ⋈ 'b') ∪ 'c'")]
        ascii_kinds = [t.kind for t in tokenize("pi{x}('a' join 'b') union 'c'")]
        assert unicode_kinds == ascii_kinds

    def test_string_escapes(self):
        tokens = tokenize(r"'a\'b\\c'")
        assert tokens[0].kind == "STRING" and tokens[0].text == "a'b\\c"

    def test_positions_and_lines(self):
        tokens = tokenize("let x =\n 'a'")
        string = [t for t in tokens if t.kind == "STRING"][0]
        assert string.line == 2 and string.pos == 9

    def test_comments_ignored(self):
        kinds = [t.kind for t in tokenize("'a' # trailing\n-- full line\n'b'")]
        assert kinds.count("STRING") == 2

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            tokenize("let x = 'oops")
        assert "unterminated" in str(excinfo.value)
        assert excinfo.value.position == 8

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            tokenize("'a' ⨯ 'b'")
        assert excinfo.value.position == 4


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
class TestParser:
    def test_precedence_union_lowest_join_highest(self):
        expr = parse_expression(r"'a' ∪ 'b' \ 'c' ⋈ 'd'")
        assert isinstance(expr, ast.Union)
        assert isinstance(expr.right, ast.Difference)
        assert isinstance(expr.right.right, ast.Join)

    def test_parens_override(self):
        expr = parse_expression("('a' union 'b') join 'c'")
        assert isinstance(expr, ast.Join)
        assert isinstance(expr.left, ast.Union)

    def test_postfix_regex_filter_is_join_sugar(self):
        expr = parse_expression("'a'['b']")
        assert isinstance(expr, ast.Join)
        assert isinstance(expr.right, ast.RegexAtom)
        assert expr.right.source == "b"

    def test_paper_projection_spelling(self):
        for text in ["π_{x,y}('a')", "pi{x,y}('a')", "project{x, y}('a')"]:
            expr = parse_expression(text)
            assert isinstance(expr, ast.Project)
            assert expr.variables == ("x", "y")

    def test_rename_arrows(self):
        expr = parse_expression("rho{x->y, a->b}('a')")
        assert expr.renaming == (("x", "y"), ("a", "b"))

    def test_load_atom(self):
        expr = parse_expression("load('rel.csv')")
        assert isinstance(expr, ast.Load) and expr.path == "rel.csv"

    def test_program_statements(self):
        statements, errors = parse_program(
            "DOC d = 'aab'\nLET A = 'x'; A ON d\n"
        )
        assert not errors
        kinds = [type(s).__name__ for s in statements]
        assert kinds == ["DocStatement", "Let", "Query"]
        assert statements[2].document == "d"

    # -- golden error messages: exact text and positions -----------------
    def test_error_missing_close_paren(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_expression("pi{x}('a'")
        assert str(excinfo.value) == (
            "expected ')' closing the projection, found end of input "
            "(at position 9, line 1)"
        )

    def test_error_missing_expression(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_expression("'a' join ")
        assert str(excinfo.value) == (
            "expected an expression, found end of input (at position 9, line 1)"
        )

    def test_error_let_without_equals(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_program("let x 'a'")
        assert "expected '=' after the LET name" in str(excinfo.value)
        assert "(at position 6, line 1)" in str(excinfo.value)
        assert excinfo.value.position == 6

    def test_error_trailing_input(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_expression("'a' 'b'")
        assert excinfo.value.position == 4

    def test_recovery_collects_all_errors(self):
        text = "LET = 'a'\n'b'\nπ{('c')\n'd'\n"
        statements, errors = parse_program(text, recover=True)
        assert len(errors) == 2
        assert [e.line for e in errors] == [1, 3]
        assert len(statements) == 2  # 'b' and 'd' still parse

    def test_recovery_off_raises_first(self):
        with pytest.raises(QuerySyntaxError):
            parse_program("LET = 'a'\n'b'\n")


# ----------------------------------------------------------------------
# canonical keys
# ----------------------------------------------------------------------
class TestCanonicalKey:
    def test_spelling_invariance(self):
        variants = [
            "pi{x}('a' join 'b')",
            "π{x}('a' ⋈ 'b')",
            "project _{x} ( 'a' JOIN 'b' )",
        ]
        keys = {canonical_key(parse_expression(v)) for v in variants}
        assert keys == {"pi{x}(join(regex('a'),regex('b')))"}

    def test_quotes_escaped(self):
        key = canonical_key(parse_expression(r"'a\'b'"))
        assert key == r"regex('a\'b')"


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_atom_compiles(self):
        plan = plan_expression(parse_expression("'.*!x{a}.*'"))
        assert plan.strategy == "compile"

    def test_load_forces_materialization(self):
        plan = plan_expression(parse_expression("'.*!x{a}.*' join load('r.csv')"))
        assert plan.strategy == "materialize"
        assert {c.strategy for c in plan.children} == {"compile", "load"}

    def test_shared_variable_join_materializes(self):
        # non-functional operands sharing x,y,z: the lenient join estimate
        # carries the 3^|shared| = 27 factor, so materialization wins
        left = "('.*!x{a}!y{a}!z{a}.*' union '.*')"
        right = "('.*!x{b}!y{b}!z{b}.*' union '.*')"
        plan = plan_expression(parse_expression(f"{left} join {right}"))
        assert plan.strategy == "materialize"

    @staticmethod
    def _flat(expr):
        if isinstance(expr, ast.Join):
            return TestPlanner._flat(expr.left) + TestPlanner._flat(expr.right)
        return [expr.source]

    def test_stats_reorder_join_chain(self):
        expr = parse_expression("'A' join 'B' join 'C'")
        stats = {
            "regex('A')": 1000,
            "regex('B')": 500,
            "regex('C')": 2,
        }
        plan = plan_expression(expr, stats=stats)
        # cheapest relation first: C, then B, then A
        assert self._flat(plan.expr) == ["C", "B", "A"]

    def test_reorder_can_be_disabled(self):
        expr = parse_expression("'A' join 'B'")
        stats = {"regex('A')": 1000, "regex('B')": 1}
        with_reorder = plan_expression(expr, stats=stats)
        without = plan_expression(expr, stats=stats, reorder=False)
        assert self._flat(with_reorder.expr) == ["B", "A"]
        assert self._flat(without.expr) == ["A", "B"]

    def test_describe_mentions_strategies(self):
        plan = plan_expression(parse_expression("'.*!x{a}.*' join load('r.csv')"))
        text = plan.describe()
        assert "materialize:join" in text and "load" in text


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------
class TestExecutor:
    def test_planner_matches_naive(self, store):
        query = "pi{x}('.*!x{a+}!y{b+}.*') union rho{x->x}('.*!x{ab}.*')"
        session = QuerySession(store)
        assert session.evaluate(query, "d") == evaluate_query_naive(query, "aabba ab ba")

    def test_let_bindings_inline(self, store):
        session = QuerySession(store)
        session.execute("LET A = '.*!x{a+}.*'")
        assert session.evaluate("A", "d") == session.evaluate("'.*!x{a+}.*'", "d")

    def test_registered_spanner_by_name(self, store):
        store.register_spanner("words", ".*!x{[ab]+}.*")
        session = QuerySession(store)
        relation = session.evaluate("pi{x}(words)", "d")
        assert relation == store.evaluate("words", "d").project(["x"])

    def test_doc_statement_adds_and_selects(self):
        session = QuerySession()
        results = session.execute("DOC t = 'aa'\n'.*!x{a}.*'")
        assert results[1].document == "t"
        assert len(results[1].relation) == 2

    def test_doc_statement_replaces(self):
        session = QuerySession()
        session.execute("DOC t = 'aa'")
        results = session.execute("DOC t = 'aaa'\n'.*!x{a}.*'")
        assert len(results[1].relation) == 3

    def test_on_clause_picks_document(self, store):
        store.add_document("e", "bb")
        session = QuerySession(store)
        results = session.execute("'.*!x{b+}.*' ON e")
        assert all(str(t["x"]) in ("[1,2⟩", "[2,3⟩", "[1,3⟩") for t in results[0].relation)

    def test_load_relation_round_trip(self, store, tmp_path):
        relation = evaluate_query("'.*!x{a+}.*'", store, "d")
        path = tmp_path / "rel.csv"
        path.write_text(relation.to_csv(), encoding="utf-8")
        loaded = evaluate_query("load('rel.csv')", store, base_dir=str(tmp_path))
        assert loaded == relation

    def test_load_join_with_spanner(self, store, tmp_path):
        relation = evaluate_query("'.*!x{a+}.*'", store, "d")
        (tmp_path / "rel.csv").write_text(relation.to_csv(), encoding="utf-8")
        session = QuerySession(store, base_dir=str(tmp_path))
        joined = session.evaluate("load('rel.csv') join '.*!x{aa}.*'", "d")
        assert joined == relation.natural_join(evaluate_query("'.*!x{aa}.*'", store, "d"))

    def test_plan_cache_warm_hit(self, store):
        session = QuerySession(store)
        query = "pi{x}('.*!x{a+}.*' union '.*!x{b+}.*')"
        before = plan_cache().stats()["misses"]
        session.evaluate(query, "d")
        between = plan_cache().stats()
        session.evaluate(query, "d")
        after = plan_cache().stats()
        assert between["misses"] > before
        assert after["misses"] == between["misses"]
        assert after["hits"] > between["hits"]
        key = "query:" + canonical_key(session.resolve(parse_expression(query)))
        assert key in plan_cache()

    def test_statistics_feed_planner(self, store):
        session = QuerySession(store)
        session.evaluate("'.*!x{aa}.*'", "d")
        assert session.stats["d"]["regex('.*!x{aa}.*')"] == 1
        plan = session.plan("'.*!x{aa}.*'", "d")
        assert plan.est_card == 1

    # -- error paths through the query layer -----------------------------
    def test_difference_schema_error(self, store):
        session = QuerySession(store)
        with pytest.raises(SchemaError) as excinfo:
            session.evaluate(r"'.*!x{a}.*' \ '.*!y{a}.*'", "d")
        assert "difference requires equal schemas" in str(excinfo.value)
        assert "['x'] vs ['y']" in str(excinfo.value)

    def test_rename_collision_error(self, store):
        with pytest.raises(SchemaError) as excinfo:
            evaluate_query("rho{x->y}('.*!x{a}!y{b}.*')", store, "d")
        assert "renaming collapses two variables" in str(excinfo.value)

    def test_project_unknown_variable_error(self, store):
        with pytest.raises(SchemaError) as excinfo:
            evaluate_query("pi{z}('.*!x{a}.*')", store, "d")
        assert "cannot project onto unknown variables ['z']" in str(excinfo.value)

    def test_unknown_name_error(self, store):
        with pytest.raises(QueryError) as excinfo:
            evaluate_query("nosuch", store, "d")
        assert "unknown name 'nosuch'" in str(excinfo.value)

    def test_no_document_error(self, store):
        with pytest.raises(QueryError) as excinfo:
            QuerySession(store).evaluate("'.*!x{a}.*'")
        assert "no document selected" in str(excinfo.value)

    def test_malformed_load_cell(self, store, tmp_path):
        (tmp_path / "bad.csv").write_text("x\n٣:5\n", encoding="utf-8")
        with pytest.raises(QueryError) as excinfo:
            evaluate_query("load('bad.csv')", store, base_dir=str(tmp_path))
        assert "ASCII" in str(excinfo.value)

    def test_budget_steps_charged(self, store):
        session = QuerySession(store)
        with pytest.raises(EvaluationLimitError):
            session.evaluate(
                "'.*!x{a+}.*' join '.*!y{b+}.*' join '.*!z{ }.*'",
                "d",
                budget=Budget(max_steps=5),
            )

    def test_expired_deadline(self, store):
        budget = Budget(deadline=Deadline.after(-1.0))
        with pytest.raises(DeadlineExceededError):
            QuerySession(store).evaluate("'.*!x{a}.*' join '.*!y{b}.*'", "d", budget)


# ----------------------------------------------------------------------
# REPL and scripts
# ----------------------------------------------------------------------
def _run_repl(lines: str, db=None) -> str:
    out = io.StringIO()
    repl = Repl(db, stdin=io.StringIO(lines), stdout=out)
    assert repl.run() == 0
    return out.getvalue()


class TestRepl:
    def test_session_flow(self):
        out = _run_repl(
            "DOC d = 'aab'\n'.*!x{a+}.*'\n\\plan\n\\timing\n'.*!x{b}.*'\n\\q\n"
        )
        assert "document 'd' selected" in out
        assert "(3 tuples)" in out
        assert "compile:regex" in out  # \plan output
        assert "timing on" in out and " ms" in out

    def test_error_recovery_keeps_session(self):
        out = _run_repl("DOC d = 'ab'\npi{('a')\n'.*!x{a}.*'\n\\q\n")
        assert "error:" in out
        assert "(1 tuple)" in out  # the session survived the syntax error

    def test_doc_command(self):
        out = _run_repl("DOC a = 'x'\nDOC b = 'y'\n\\doc a\n\\doc nosuch\n\\docs\n\\q\n")
        assert "document 'a' selected" in out
        assert "error: no document named 'nosuch'" in out
        assert "a\nb" in out

    def test_plan_command_with_expression(self):
        out = _run_repl("\\plan '.*!x{a}.*' join load('r.csv')\n\\q\n")
        assert "materialize:join" in out

    def test_unknown_command(self):
        out = _run_repl("\\bogus\n\\q\n")
        assert "unknown command" in out

    def test_spanners_command(self, store):
        store.register_spanner("w", ".*!x{a}.*")
        out = _run_repl("\\spanners\n\\q\n", store)
        assert "w" in out


class TestRunScript:
    def test_script_output_deterministic(self, tmp_path):
        script = tmp_path / "s.rq"
        script.write_text(
            "DOC d = 'aabba'\nLET A = '.*!x{a+}.*'\npi{x}(A)\n", encoding="utf-8"
        )
        first, second = io.StringIO(), io.StringIO()
        assert run_script(str(script), out=first) == 0
        assert run_script(str(script), out=second) == 0
        assert first.getvalue() == second.getvalue()
        assert "(4 tuples)" in first.getvalue()

    def test_script_reports_all_errors_and_continues(self, tmp_path):
        script = tmp_path / "s.rq"
        script.write_text(
            "DOC d = 'ab'\nLET = broken\n'.*!x{a}.*'\npi{('x')\n", encoding="utf-8"
        )
        out = io.StringIO()
        assert run_script(str(script), out=out) == 2
        text = out.getvalue()
        assert text.count("error:") == 2
        assert "(1 tuple)" in text

    def test_missing_script(self, tmp_path):
        out = io.StringIO()
        assert run_script(str(tmp_path / "nope.rq"), out=out) == 2
        assert "cannot read script" in out.getvalue()


# ----------------------------------------------------------------------
# CLI and serve surfaces
# ----------------------------------------------------------------------
class TestCliSurfaces:
    def test_query_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["query", "--doc", "aab", "'.*!x{a+}.*'"]) == 0
        out = capsys.readouterr().out
        assert "(3 tuples)" in out

    def test_query_subcommand_plan(self, capsys):
        from repro.__main__ import main

        assert main(["query", "--doc", "ab", "--plan", "'.*!x{a}.*'"]) == 0
        assert "compile:regex" in capsys.readouterr().out

    def test_query_script_file(self, tmp_path, capsys):
        from repro.__main__ import main

        script = tmp_path / "s.rq"
        script.write_text("DOC d = 'ab'\n'.*!x{a}.*'\n", encoding="utf-8")
        assert main(["query", "-f", str(script)]) == 0
        assert "(1 tuple)" in capsys.readouterr().out

    def test_query_syntax_error_exit_code(self, capsys):
        from repro.__main__ import main

        assert main(["query", "--doc", "ab", "pi{('a')"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_db_query_expression(self, tmp_path, capsys):
        from repro.__main__ import main

        store_path = str(tmp_path / "s.slpdb")
        assert main(["db", store_path, "add", "logs", "aabba"]) == 0
        capsys.readouterr()
        assert main(["db", store_path, "query", "'.*!x{a+}.*' \\ '.*!x{aa}.*'"]) == 0
        out = capsys.readouterr().out
        assert "x" in out and "[1,2⟩" in out


class TestServeExpression:
    def test_query_expression_through_service(self, store):
        from repro.serve import SpannerService

        with SpannerService(store) as service:
            result = service.query_expression(r"'.*!x{a+}.*' \ '.*!x{aa}.*'", "d")
        assert not result.degraded
        naive = evaluate_query_naive(r"'.*!x{a+}.*' \ '.*!x{aa}.*'", "aabba ab ba")
        assert set(result.tuples) == set(naive.tuples)
