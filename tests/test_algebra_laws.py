"""Algebraic laws of the spanner operations, as property tests.

These pin down the semantics: union is a set-union, join is lenient
natural join, projection composes, string-equality selections commute, and
the fusion operator respects containment.  Each law is checked both at the
relation level and (where the operation stays regular) at the automaton
level.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Span, SpanRelation, SpanTuple, fuse
from repro.regex import spanner_from_regex
from repro.spanners import RegularSpanner


# ---------------------------------------------------------------------------
# relation-level strategies
# ---------------------------------------------------------------------------
def spans(doc_length=6):
    return st.tuples(
        st.integers(1, doc_length + 1), st.integers(0, doc_length)
    ).map(lambda p: Span(p[0], min(p[0] + p[1], doc_length + 1)))


def tuples_over(variables):
    return st.fixed_dictionaries(
        {}, optional={var: spans() for var in variables}
    ).map(SpanTuple)


def relations(variables):
    return st.lists(tuples_over(variables), max_size=5).map(
        lambda ts: SpanRelation(variables, ts)
    )


XY = ("x", "y")
YZ = ("y", "z")


class TestRelationLaws:
    @settings(max_examples=40)
    @given(relations(XY), relations(XY))
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @settings(max_examples=40)
    @given(relations(XY), relations(XY), relations(XY))
    def test_union_associative(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @settings(max_examples=40)
    @given(relations(XY))
    def test_union_idempotent(self, a):
        assert a.union(a) == a

    @settings(max_examples=40)
    @given(relations(XY), relations(YZ))
    def test_join_commutative(self, a, b):
        assert a.natural_join(b) == b.natural_join(a)

    @settings(max_examples=25)
    @given(relations(("x",)), relations(("y",)), relations(("z",)))
    def test_join_associative_disjoint_schemas(self, a, b, c):
        left = a.natural_join(b).natural_join(c)
        right = a.natural_join(b.natural_join(c))
        assert left == right

    @settings(max_examples=40)
    @given(relations(XY))
    def test_projection_composes(self, a):
        assert a.project(["x", "y"]).project(["x"]) == a.project(["x"])

    @settings(max_examples=40)
    @given(relations(XY), relations(YZ))
    def test_join_distributes_over_union(self, a, b):
        c = SpanRelation(XY, [SpanTuple.of(x=Span(1, 2))])
        left = a.union(c).natural_join(b)
        right = a.natural_join(b).union(c.natural_join(b))
        assert left == right

    @settings(max_examples=40)
    @given(relations(XY), st.text(alphabet="ab", min_size=6, max_size=6))
    def test_select_equal_commutes_and_is_idempotent(self, a, doc):
        one = a.select_equal(doc, ["x", "y"]).select_equal(doc, ["x"])
        other = a.select_equal(doc, ["x"]).select_equal(doc, ["x", "y"])
        assert one == other
        assert a.select_equal(doc, ["x", "y"]).select_equal(doc, ["x", "y"]) == a.select_equal(doc, ["x", "y"])

    @settings(max_examples=40)
    @given(relations(XY))
    def test_select_equal_is_a_selection(self, a):
        doc = "abab" + "ab"
        selected = a.select_equal(doc, ["x", "y"])
        assert selected.tuples <= a.tuples

    @settings(max_examples=40)
    @given(relations(XY))
    def test_fusion_preserves_cardinality_bound(self, a):
        fused = fuse(a, ["x", "y"], "z")
        assert len(fused) <= len(a)


class TestAutomatonLaws:
    """The same laws through the automaton-level operations."""

    A = "(a|b)*!x{a+}(a|b)*"
    B = "(a|b)*!x{(a|b)b}(a|b)*"
    DOCS = ["", "a", "ab", "abab", "bbaa"]

    def _s(self, pattern):
        return RegularSpanner.from_regex(pattern)

    def test_union_commutative(self):
        left = self._s(self.A).union(self._s(self.B))
        right = self._s(self.B).union(self._s(self.A))
        for doc in self.DOCS:
            assert left.evaluate(doc) == right.evaluate(doc)

    def test_union_with_self_is_identity(self):
        spanner = self._s(self.A)
        doubled = spanner.union(spanner)
        for doc in self.DOCS:
            assert doubled.evaluate(doc) == spanner.evaluate(doc)

    def test_join_with_universal_is_identity(self):
        spanner = self._s(self.A)
        universal = self._s("(a|b)*!x{a+}(a|b)*")  # same spanner
        joined = spanner.join(universal)
        for doc in self.DOCS:
            assert joined.evaluate(doc) == spanner.evaluate(doc)

    def test_difference_then_union_recovers_superset(self):
        big = self._s(self.B)
        small = self._s("(a|b)*!x{ab}(a|b)*")  # subset of B's captures
        recombined = big.difference(small).union(small)
        for doc in self.DOCS:
            assert recombined.evaluate(doc) == big.evaluate(doc)

    def test_minimized_preserves_spanner(self):
        from repro.decision import equivalent_spanners

        spanner = self._s(self.B)
        minimal = spanner.minimized()
        for doc in self.DOCS:
            assert minimal.evaluate(doc) == spanner.evaluate(doc)
        assert equivalent_spanners(minimal, spanner)

    def test_minimized_is_canonical(self):
        """Two different representations of one spanner minimise to the
        same number of states."""
        one = self._s("!x{ab|ac}")
        two = self._s("!x{a(b|c)}")
        assert (
            one.minimized().automaton.nfa.num_states
            == two.minimized().automaton.nfa.num_states
        )
