"""Tests for word-combinatorial core spanners (Section 2.4, experiment C8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Span, SpanTuple, fuse
from repro.decision import is_nonempty_on
from repro.wordeq import (
    Pattern,
    Var,
    adjacent_commuting_spanner,
    commute,
    cyclic_shift_spanner,
    is_cyclic_shift,
    primitive_root,
    repetition_pattern,
    square_pattern,
)


class TestOracles:
    def test_commute(self):
        assert commute("abab", "ab")
        assert commute("aa", "aaa")
        assert commute("", "ab")
        assert not commute("ab", "ba")
        assert not commute("ab", "aba")

    def test_cyclic_shift(self):
        assert is_cyclic_shift("abc", "bca")
        assert is_cyclic_shift("ab", "ab")
        assert not is_cyclic_shift("abc", "acb")
        assert not is_cyclic_shift("ab", "aba")

    def test_primitive_root(self):
        assert primitive_root("ababab") == "ab"
        assert primitive_root("abab") == "ab"
        assert primitive_root("aba") == "aba"
        assert primitive_root("aaaa") == "a"
        assert primitive_root("") == ""

    @given(st.text(alphabet="ab", min_size=1, max_size=8),
           st.text(alphabet="ab", min_size=1, max_size=8))
    def test_commute_iff_common_root(self, u, v):
        assert commute(u, v) == (primitive_root(u) == primitive_root(v))


class TestCyclicShiftSpanner:
    def test_extracts_exactly_conjugate_pairs(self):
        spanner = cyclic_shift_spanner()
        doc = "abba"
        relation = fuse(fuse(spanner.evaluate(doc), ["x1", "x2"], "x"), ["y1", "y2"], "y")
        for tup in relation:
            u = tup["x"].extract(doc)
            v = tup["y"].extract(doc)
            assert is_cyclic_shift(u, v), (u, v)

    def test_finds_known_conjugates(self):
        spanner = cyclic_shift_spanner()
        doc = "abba"  # u = ab at [1,3), v = ba at [3,5)
        relation = spanner.evaluate(doc)
        witness = SpanTuple.of(
            x1=Span(1, 2), x2=Span(2, 3), y1=Span(3, 4), y2=Span(4, 5)
        )
        assert witness in relation

    @settings(max_examples=15, deadline=None)
    @given(st.text(alphabet="ab", min_size=0, max_size=5))
    def test_complete_on_adjacent_pairs(self, doc):
        """Every conjugate pair of adjacent factors is found."""
        spanner = cyclic_shift_spanner()
        fused = fuse(fuse(spanner.evaluate(doc), ["x1", "x2"], "x"), ["y1", "y2"], "y")
        found = {
            (tup["x"], tup["y"]) for tup in fused if "x" in tup and "y" in tup
        }
        for i in range(1, len(doc) + 2):
            for j in range(i, len(doc) + 2):
                for k in range(j, len(doc) + 2):
                    for l in range(k, len(doc) + 2):
                        u = doc[i - 1: j - 1]
                        v = doc[k - 1: l - 1]
                        if is_cyclic_shift(u, v):
                            assert (Span(i, j), Span(k, l)) in found, (u, v)


class TestAdjacentCommutingSpanner:
    def test_sound_and_complete_small(self):
        spanner = adjacent_commuting_spanner()
        doc = "ababab"
        relation = spanner.evaluate(doc)
        found = {(tup["x"], tup["y"]) for tup in relation}
        for i in range(1, len(doc) + 2):
            for j in range(i, len(doc) + 2):
                for k in range(j, len(doc) + 2):
                    u = doc[i - 1: j - 1]
                    v = doc[j - 1: k - 1]
                    expected = commute(u, v)
                    got = (Span(i, j), Span(j, k)) in found
                    assert got == expected, (u, v)

    @settings(max_examples=10, deadline=None)
    @given(st.text(alphabet="ab", min_size=0, max_size=5))
    def test_property(self, doc):
        spanner = adjacent_commuting_spanner()
        relation = spanner.evaluate(doc)
        found = {(tup["x"], tup["y"]) for tup in relation}
        for i in range(1, len(doc) + 2):
            for j in range(i, len(doc) + 2):
                for k in range(j, len(doc) + 2):
                    u, v = doc[i - 1: j - 1], doc[j - 1: k - 1]
                    assert ((Span(i, j), Span(j, k)) in found) == commute(u, v)


class TestPatterns:
    def test_parse(self):
        pattern = Pattern.parse("XabXY")
        assert pattern.items == (Var("x"), "ab", Var("x"), Var("y"))
        assert pattern.variables == ("x", "y")

    def test_backtracking_matcher(self):
        pattern = Pattern.parse("XX")
        assert pattern.matches("abab")
        assert pattern.matches("")
        assert not pattern.matches("aba")
        assignment = pattern.match_assignment("abab")
        assert assignment == {"x": "ab"}

    def test_terminals_and_variables(self):
        pattern = Pattern.parse("XabY")
        assert pattern.matches("ab")          # x = y = ε
        assert pattern.matches("zabq")
        assert not pattern.matches("aX")

    def test_repeated_variable_consistency(self):
        pattern = Pattern.parse("XaX")
        assert pattern.matches("bab")
        assert not pattern.matches("bac")

    def test_core_spanner_encoding_agrees(self):
        for text, docs in [
            ("XX", ["abab", "aba", "", "aa"]),
            ("XaX", ["bab", "bac", "a"]),
            ("XYX", ["aba", "abc"]),
        ]:
            pattern = Pattern.parse(text)
            core = pattern.to_core_spanner()
            for doc in docs:
                assert is_nonempty_on(core, doc) == pattern.matches(doc), (text, doc)

    def test_square_pattern(self):
        assert square_pattern().matches("aa")
        assert not square_pattern().matches("ab")

    def test_repetition_pattern(self):
        pattern = repetition_pattern(2, repeats=2)
        # x0 x0 x1 x1
        assert pattern.matches("aabb")
        assert pattern.matches("abab" * 2)  # x0 = abab? No: x0x0 x1x1
        assert not pattern.matches("aab")

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="ab", max_size=6))
    def test_encoding_property(self, doc):
        pattern = Pattern.parse("XYX")
        core = pattern.to_core_spanner()
        assert is_nonempty_on(core, doc) == pattern.matches(doc)
