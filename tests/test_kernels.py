"""Differential tests for the packed-bitset kernels and the plan cache.

Every packed primitive is checked against the retained seed float32
implementation (``reference_mm`` / ``reference_compose_pure``) on random
inputs, including sizes on both sides of the batched-matmul crossover.
The golden anchors at the bottom pin the packed evaluation pipeline to
the paper's own examples: the spanner of Example 1.1 and the SLP of
Figure 1 produce exactly the results they did before the kernel layer
existed.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    BitMatrix,
    PackedVec,
    PlanCache,
    bool_mm,
    bool_mm_many,
    compose_rows,
    function_bits,
    function_bits_many,
    intern_many,
    intern_matrix,
    matvec,
    pack_rows,
    pack_vec,
    reference_compose_pure,
    reference_mm,
    unpack_rows,
    unpack_vec,
    words_for,
)

_DEAD = -1


def _random_bool(rng, *shape, density=0.3):
    return rng.random(shape) < density


def _random_sigma(rng, q, dead_fraction=0.3):
    sigma = rng.integers(0, q, size=q, dtype=np.int64)
    sigma[rng.random(q) < dead_fraction] = _DEAD
    return sigma


# ----------------------------------------------------------------------
# packing round-trips
# ----------------------------------------------------------------------
class TestPacking:
    @pytest.mark.parametrize("q", [1, 3, 63, 64, 65, 128, 130, 200])
    def test_rows_round_trip(self, q):
        rng = np.random.default_rng(q)
        bools = _random_bool(rng, 5, q)
        packed = pack_rows(bools)
        assert packed.shape == (5, words_for(q))
        assert packed.dtype == np.uint64
        assert np.array_equal(unpack_rows(packed, q), bools)

    @pytest.mark.parametrize("q", [1, 64, 65, 130])
    def test_vec_round_trip(self, q):
        rng = np.random.default_rng(q)
        bools = _random_bool(rng, q)
        assert np.array_equal(unpack_vec(pack_vec(bools), q), bools)

    def test_words_for_minimum_one(self):
        assert words_for(0) == 1
        assert words_for(1) == 1
        assert words_for(64) == 1
        assert words_for(65) == 2

    def test_padding_bits_are_zero(self):
        # q=65 leaves 63 pad bits in the second word; they must stay zero
        # or fingerprints and row_and_any would see ghost states
        bools = np.ones((2, 65), dtype=bool)
        packed = pack_rows(bools)
        assert packed[0, 1] == np.uint64(1)

    def test_bitmatrix_mirrors(self):
        rng = np.random.default_rng(0)
        bools = _random_bool(rng, 70, 70)
        m = BitMatrix.from_bool(bools)
        assert np.array_equal(m.to_bool(), bools)
        assert np.array_equal(m.f32() != 0, bools)
        before = m.nbytes
        m.release_dense()
        assert m.nbytes < before
        # packed rows stay authoritative after dropping the mirrors
        assert np.array_equal(m.to_bool(), bools)


# ----------------------------------------------------------------------
# products: packed vs the seed reference
# ----------------------------------------------------------------------
class TestProducts:
    @pytest.mark.parametrize("q", [4, 64, 69, 129, 200])
    def test_bool_mm_matches_reference(self, q):
        rng = np.random.default_rng(q)
        a, b = _random_bool(rng, q, q), _random_bool(rng, q, q)
        got = bool_mm(BitMatrix.from_bool(a), BitMatrix.from_bool(b))
        assert np.array_equal(got.to_bool(), reference_mm(a, b))

    @settings(max_examples=40, deadline=None)
    @given(
        q=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_bool_mm_property(self, q, seed):
        rng = np.random.default_rng(seed)
        a = _random_bool(rng, q, q, density=0.4)
        b = _random_bool(rng, q, q, density=0.4)
        got = bool_mm(BitMatrix.from_bool(a), BitMatrix.from_bool(b))
        assert np.array_equal(got.to_bool(), reference_mm(a, b))

    # both sides of the _BATCH_MM_MAX_Q crossover take different code paths
    @pytest.mark.parametrize("q", [30, 70, 140])
    def test_bool_mm_many_matches_per_pair_reference(self, q):
        rng = np.random.default_rng(q)
        mats = [BitMatrix.from_bool(_random_bool(rng, q, q)) for _ in range(6)]
        pairs = [(mats[i], mats[(i * 3 + 1) % 6]) for i in range(6)]
        got = bool_mm_many(pairs)
        for result, (a, b) in zip(got, pairs):
            assert np.array_equal(
                result.to_bool(), reference_mm(a.to_bool(), b.to_bool())
            )

    def test_bool_mm_many_empty(self):
        assert bool_mm_many([]) == []

    def test_duplicate_pairs_share_one_result(self):
        rng = np.random.default_rng(1)
        a = BitMatrix.from_bool(_random_bool(rng, 20, 20))
        b = BitMatrix.from_bool(_random_bool(rng, 20, 20))
        got = bool_mm_many([(a, b), (a, b), (a, b)])
        assert got[0] is got[1] is got[2]

    def test_intern_pool_canonicalises_equal_content(self):
        # equal products from *different* operand objects: identity
        # grouping misses them, the intern pool must catch them
        rng = np.random.default_rng(2)
        bools_a = _random_bool(rng, 20, 20)
        bools_b = _random_bool(rng, 20, 20)
        a1, a2 = BitMatrix.from_bool(bools_a), BitMatrix.from_bool(bools_a)
        b1, b2 = BitMatrix.from_bool(bools_b), BitMatrix.from_bool(bools_b)
        pool: dict = {}
        got = bool_mm_many([(a1, b1), (a2, b2)], intern=pool)
        assert got[0] is got[1]
        # without the pool they stay distinct objects (equal content)
        bare = bool_mm_many([(a1, b1), (a2, b2)])
        assert bare[0] is not bare[1]
        assert np.array_equal(bare[0].to_bool(), bare[1].to_bool())

    def test_intern_matrix_collision_keeps_unequal_apart(self):
        # force a fingerprint collision by passing the same key: the exact
        # bytes comparison must keep different matrices distinct
        m1 = BitMatrix.from_bool(np.eye(10, dtype=bool))
        m2 = BitMatrix.from_bool(~np.eye(10, dtype=bool))
        pool: dict = {}
        assert intern_matrix(pool, m1, key=7) is m1
        assert intern_matrix(pool, m2, key=7) is m2
        # and an equal-content matrix under the colliding key still dedups
        m3 = BitMatrix.from_bool(np.eye(10, dtype=bool))
        assert intern_matrix(pool, m3, key=7) is m1

    def test_intern_many_matches_one_at_a_time(self):
        rng = np.random.default_rng(3)
        bools = _random_bool(rng, 15, 15)
        batch = [
            BitMatrix.from_bool(bools),
            BitMatrix.from_bool(~bools),
            BitMatrix.from_bool(bools),
        ]
        pool: dict = {}
        out = intern_many(pool, batch)
        assert out[0] is batch[0]
        assert out[1] is batch[1]
        assert out[2] is batch[0]
        assert intern_many(pool, []) == []


# ----------------------------------------------------------------------
# mat-vec, σ-composition, σ-scatter
# ----------------------------------------------------------------------
class TestRowKernels:
    @pytest.mark.parametrize("q", [5, 64, 100])
    def test_matvec_matches_dense(self, q):
        rng = np.random.default_rng(q)
        a = _random_bool(rng, q, q)
        v = _random_bool(rng, q)
        got = matvec(BitMatrix.from_bool(a), PackedVec(v))
        assert np.array_equal(got.bools, (a & v).any(axis=1))
        assert got.any() == bool((a @ v).any())

    @pytest.mark.parametrize("q", [5, 64, 100])
    def test_compose_rows_matches_reference(self, q):
        rng = np.random.default_rng(q + 1)
        sigma = _random_sigma(rng, q)
        matrix = _random_bool(rng, q, q)
        got = compose_rows(sigma, BitMatrix.from_bool(matrix))
        assert np.array_equal(got.to_bool(), reference_compose_pure(sigma, matrix))

    @pytest.mark.parametrize("q", [5, 64, 100])
    def test_function_bits_matches_dense_scatter(self, q):
        rng = np.random.default_rng(q + 2)
        sigma = _random_sigma(rng, q)
        dense = np.zeros((q, q), dtype=bool)
        valid = np.nonzero(sigma != _DEAD)[0]
        dense[valid, sigma[valid]] = True
        assert np.array_equal(function_bits(sigma, q).to_bool(), dense)

    def test_function_bits_many_matches_single(self):
        rng = np.random.default_rng(9)
        q = 70
        sigmas = np.stack([_random_sigma(rng, q) for _ in range(4)])
        batched = function_bits_many(sigmas, q)
        for k in range(4):
            assert np.array_equal(batched[k], function_bits(sigmas[k], q).rows)

    def test_row_and_any(self):
        a = np.zeros((2, 70), dtype=bool)
        a[0, 69] = True
        m = BitMatrix.from_bool(a)
        v = np.zeros(70, dtype=bool)
        v[69] = True
        words = pack_vec(v)
        assert m.row_and_any(0, words)
        assert not m.row_and_any(1, words)


# ----------------------------------------------------------------------
# the plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    SOURCES = ["!x{a}", "!x{b}", "!x{ab}", "!x{a*}"]

    def test_hit_returns_same_plan(self):
        cache = PlanCache()
        first = cache.get_or_compile("!x{a*b}")
        second = cache.get_or_compile("!x{a*b}")
        assert first is second
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1
        assert "!x{a*b}" in cache and len(cache) == 1

    def test_lru_entry_eviction(self):
        cache = PlanCache(max_entries=2)
        a = cache.get_or_compile(self.SOURCES[0])
        cache.get_or_compile(self.SOURCES[1])
        cache.get_or_compile(self.SOURCES[0])  # refresh a: b is now LRU
        cache.get_or_compile(self.SOURCES[2])  # evicts b
        assert self.SOURCES[1] not in cache
        assert cache.get_or_compile(self.SOURCES[0]) is a
        assert cache.stats()["evictions"] == 1

    def test_byte_budget_eviction(self):
        # a 1-byte budget can never hold *any* warm plan (cold plans own
        # zero matrix bytes); once evaluators warm up, the byte check on
        # the next access must evict every over-budget entry — including
        # the last one (an over-budget plan is never silently retained)
        from repro.slp import SLP, balanced_node

        cache = PlanCache(max_entries=8, max_bytes=1)
        slp = SLP()
        node = balanced_node(slp, "abab")
        for source in self.SOURCES:
            plan = cache.get_or_compile(source)
            assert plan.source == source
            plan.evaluator.preprocess(slp, node)  # warm: cache_bytes > 0
        cache.get_or_compile(self.SOURCES[-1])  # byte check runs on access
        assert len(cache) == 0
        assert cache.stats()["evictions"] >= len(self.SOURCES)

    def test_zero_entries_disables_retention(self):
        cache = PlanCache(max_entries=0)
        first = cache.get_or_compile("!x{a}")
        second = cache.get_or_compile("!x{a}")
        assert first is not second
        assert len(cache) == 0

    def test_clear(self):
        cache = PlanCache()
        cache.get_or_compile("!x{a}")
        cache.clear()
        assert len(cache) == 0

    def test_plan_evaluates(self):
        plan = PlanCache().get_or_compile("!x{(a|b)*}!y{b}!z{(a|b)*}")
        from repro.slp import SLP, balanced_node

        slp = SLP()
        node = balanced_node(slp, "ababbab")
        relation = plan.evaluator.evaluate(slp, node)
        assert len(relation) == 4  # one tuple per 'b' in the document

    def test_thread_hammer(self):
        cache = PlanCache(max_entries=3)
        errors = []

        def worker(offset):
            try:
                for i in range(20):
                    source = self.SOURCES[(i + offset) % len(self.SOURCES)]
                    plan = cache.get_or_compile(source)
                    assert plan.source == source
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 120

    def test_single_over_budget_plan_is_evicted(self):
        # regression: _shrink used to stop at one entry, silently retaining
        # a lone warm plan larger than max_bytes forever
        from repro.slp import SLP, balanced_node

        cache = PlanCache(max_entries=8, max_bytes=1)
        plan = cache.get_or_compile(self.SOURCES[0])
        slp = SLP()
        plan.evaluator.preprocess(slp, balanced_node(slp, "abab"))
        assert plan.cache_bytes() > 1
        cache.get_or_compile(self.SOURCES[0])  # access refreshes accounting
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["evictions"] >= 1
        assert stats["over_budget"] >= 1
        assert stats["bytes"] == 0

    def test_distinct_sources_compile_concurrently(self, monkeypatch):
        # regression: get_or_compile used to hold the cache lock across
        # _compile, so a slow compile of one source stalled every other
        # miss.  Source A's compile blocks until source B's finishes; if
        # compilation were serialised under the lock this would deadlock.
        import repro.kernels.plan as plan_module

        real_compile = plan_module._compile
        b_compiled = threading.Event()

        def fake_compile(source):
            if source == self.SOURCES[0]:
                assert b_compiled.wait(timeout=10), "compiles are serialised"
            result = real_compile(source)
            if source == self.SOURCES[1]:
                b_compiled.set()
            return result

        monkeypatch.setattr(plan_module, "_compile", fake_compile)
        cache = PlanCache()
        threads = [
            threading.Thread(target=cache.get_or_compile, args=(source,))
            for source in self.SOURCES[:2]
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15)
            assert not t.is_alive(), "distinct-source compiles deadlocked"
        assert self.SOURCES[0] in cache and self.SOURCES[1] in cache

    def test_same_source_compiles_once_under_concurrency(self, monkeypatch):
        import repro.kernels.plan as plan_module

        real_compile = plan_module._compile
        calls = []
        gate = threading.Barrier(5, timeout=10)

        def fake_compile(source):
            calls.append(source)
            return real_compile(source)

        monkeypatch.setattr(plan_module, "_compile", fake_compile)
        cache = PlanCache()
        results = []

        def worker():
            gate.wait()
            results.append(cache.get_or_compile(self.SOURCES[0]))

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15)
        assert len(calls) == 1, "in-flight dedup failed: compiled repeatedly"
        assert len(results) == 5 and all(r is results[0] for r in results)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 5

    def test_failed_compile_releases_inflight_slot(self):
        cache = PlanCache()
        from repro.errors import RegexSyntaxError

        with pytest.raises(RegexSyntaxError):
            cache.get_or_compile("0{²")
        # the in-flight slot must be released so a corrected retry works
        with pytest.raises(RegexSyntaxError):
            cache.get_or_compile("0{²")
        assert cache.get_or_compile(self.SOURCES[0]).source == self.SOURCES[0]


# ----------------------------------------------------------------------
# golden anchors: the paper's own examples through the packed path
# ----------------------------------------------------------------------
class TestGoldenExamples:
    def test_example_1_1_packed_equals_uncompressed(self):
        """The spanner of Example 1.1 on 'ababbab': the packed compressed
        pipeline returns exactly the uncompressed enumerator's relation."""
        from repro.enumeration import Enumerator
        from repro.regex import spanner_from_regex
        from repro.slp import SLP, SLPSpannerEvaluator, balanced_node

        spanner = spanner_from_regex("!x{(a|b)*}!y{b}!z{(a|b)*}")
        slp = SLP()
        node = balanced_node(slp, "ababbab")
        packed = SLPSpannerEvaluator(spanner).evaluate(slp, node)
        assert packed == Enumerator(spanner).evaluate("ababbab")
        assert len(packed) == 4  # one tuple per 'b' in the document

    def test_figure_1_slp_membership_unchanged(self):
        """NFA membership on the Figure 1 SLP agrees with direct
        simulation of the derived documents."""
        from repro.regex import compile_nfa
        from repro.slp import CompressedMembership, figure_1_slp, simulate_uncompressed

        slp, nodes = figure_1_slp()
        documents = {
            "A1": "ababbcabca",
            "A2": "bcabcaabbca",
            "A3": "ababbca",
            "B": "abbca",
            "D": "bcaabbca",
        }
        for pattern in ["(a|b|c)*bca", "(a|b)*c(a|b|c)*", "ab(a|b|c)*", "(ab)*"]:
            nfa = compile_nfa(pattern)
            oracle = CompressedMembership(nfa)
            for name, text in documents.items():
                assert slp.derive(nodes[name]) == text
                assert oracle.accepts(slp, nodes[name]) == simulate_uncompressed(
                    nfa, text
                ), (pattern, name)

    def test_figure_1_spanner_extraction(self):
        """Spanner evaluation over the Figure 1 documents matches the
        uncompressed enumerator for every designated node."""
        from repro.enumeration import Enumerator
        from repro.regex import spanner_from_regex
        from repro.slp import SLPSpannerEvaluator, figure_1_slp

        slp, nodes = figure_1_slp()
        spanner = spanner_from_regex("(a|b|c)*!x{bca}(a|b|c)*")
        evaluator = SLPSpannerEvaluator(spanner)
        enumerator = Enumerator(spanner)
        for name in ["A1", "A2", "A3"]:
            text = slp.derive(nodes[name])
            assert evaluator.evaluate(slp, nodes[name]) == enumerator.evaluate(text)
