"""Tests for spanner composition (AQL-style nested extraction)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Span, SpanTuple
from repro.errors import SchemaError
from repro.spanners import RegularSpanner
from repro.spanners.compose import within


def records_spanner():
    """Whole ';'-separated records (anchored)."""
    return RegularSpanner.from_regex(
        "(([ab=]|;)*;)?!rec{[ab=]+}(;([ab=]|;)*)?"
    )


def value_spanner():
    """The value after '=' inside one record."""
    return RegularSpanner.from_regex("[ab]*=!value{[ab]+}")


class TestWithin:
    def test_nested_extraction(self):
        doc = "a=bb;b=a"
        query = within(records_spanner(), "rec", value_spanner())
        relation = query.evaluate(doc)
        got = {
            (t["rec"].extract(doc), t["value"].extract(doc)) for t in relation
        }
        assert got == {("a=bb", "bb"), ("b=a", "a")}

    def test_inner_spans_are_global(self):
        doc = "a=bb;b=a"
        query = within(records_spanner(), "rec", value_spanner())
        for tup in query.evaluate(doc):
            assert tup["rec"].contains(tup["value"])
            assert tup["value"].extract(doc) == tup["value"].extract(doc)

    def test_no_inner_match_drops_tuple(self):
        doc = "ab;a=b"
        query = within(records_spanner(), "rec", value_spanner())
        relation = query.evaluate(doc)
        assert {t["rec"].extract(doc) for t in relation} == {"a=b"}

    def test_schema_is_union(self):
        query = within(records_spanner(), "rec", value_spanner())
        assert query.variables == {"rec", "value"}

    def test_unknown_outer_variable(self):
        with pytest.raises(SchemaError):
            within(records_spanner(), "nope", value_spanner())

    def test_clashing_schemas(self):
        with pytest.raises(SchemaError):
            within(records_spanner(), "rec", records_spanner())

    def test_composition_is_a_spanner(self):
        """The composed object supports the whole Spanner interface."""
        doc = "a=bb;b=a"
        query = within(records_spanner(), "rec", value_spanner())
        some = next(iter(query.enumerate(doc)))
        assert query.model_check(doc, some)
        assert query.is_nonempty_on(doc)

    def test_three_level_composition(self):
        doc = "a=bb;b=a"
        inner_b = RegularSpanner.from_regex("[ab]*!ch{b}[ab]*")
        query = within(
            within(records_spanner(), "rec", value_spanner()), "value", inner_b
        )
        relation = query.evaluate(doc)
        # only record 'a=bb' has b's inside its value
        assert {t["ch"] for t in relation} == {Span(3, 4), Span(4, 5)}

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="ab=;", max_size=12))
    def test_inner_always_inside_outer(self, doc):
        query = within(records_spanner(), "rec", value_spanner())
        for tup in query.evaluate(doc):
            assert tup["rec"].contains(tup["value"])
