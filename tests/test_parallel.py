"""Tests for :mod:`repro.parallel` — the shard-parallel evaluation
backend and the bulk query API layered on it.

The load-bearing property is *bit-for-bit determinism*: the ``(σ, T,
T_em)`` combine is associative and exact, so every choice of backend,
worker count, shard split, and chunk size must produce *identical packed
words* — not merely equal relations.  These tests assert that
differentially against the serial backend and against the SLP
``preprocess`` path, then check the API layers (``SpannerDB.query_bulk``,
``SpannerService.submit_bulk``) give exactly the per-document answers."""

import random

import numpy as np
import pytest

from repro import parallel
from repro.db import SpannerDB
from repro.errors import ParallelError
from repro.parallel import (
    combine,
    default_workers,
    document_matrices,
    fold_entries,
    identity_entry,
    is_nonempty_text,
    run_tasks,
    shard_spans,
)
from repro.regex import spanner_from_regex
from repro.serve import BulkQueryResult, ServeConfig, SpannerService
from repro.slp import SLP, SLPSpannerEvaluator, balanced_node

PATTERNS = [
    "!x{(a|b)*}!y{b}!z{(a|b)*}",
    "(a|b)*!x{ab}(a|b)*",
    "(a|b)*!x{a+}!y{b+}(a|b)*",
    "(!x{a})?(a|b)*",
]


def _entries_equal(left, right) -> bool:
    return (
        np.array_equal(left[0], right[0])
        and np.array_equal(left[1].rows, right[1].rows)
        and np.array_equal(left[2].rows, right[2].rows)
    )


def _slp_entry(evaluator, text):
    """The entry ``preprocess`` computes for *text* (the serial anchor)."""
    slp = SLP()
    node = balanced_node(slp, text)
    evaluator.preprocess(slp, node)
    return evaluator.node_entry(slp, node)


class TestFold:
    def test_identity_is_neutral(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERNS[0]))
        q = evaluator.det.num_states
        table = evaluator.char_entries("ab")
        entry = parallel.text_entry(table, "abba", q)
        ident = identity_entry(q)
        assert _entries_equal(combine(ident, entry, q), entry)
        assert _entries_equal(combine(entry, ident, q), entry)

    def test_combine_is_associative(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERNS[1]))
        q = evaluator.det.num_states
        table = evaluator.char_entries("ab")
        rng = random.Random(7)
        for _ in range(10):
            a, b, c = (
                parallel.text_entry(
                    table,
                    "".join(rng.choice("ab") for _ in range(rng.randint(1, 9))),
                    q,
                )
                for _ in range(3)
            )
            left = combine(combine(a, b, q), c, q)
            right = combine(a, combine(b, c, q), q)
            assert _entries_equal(left, right)

    def test_fold_matches_slp_preprocess_bit_for_bit(self):
        rng = random.Random(11)
        for pattern in PATTERNS:
            evaluator = SLPSpannerEvaluator(spanner_from_regex(pattern))
            q = evaluator.det.num_states
            for _ in range(5):
                text = "".join(rng.choice("ab") for _ in range(rng.randint(1, 60)))
                got = document_matrices(evaluator, text, backend="serial")
                assert _entries_equal(got, _slp_entry(evaluator, text)), (
                    pattern,
                    text,
                )

    def test_entry_independent_of_shards_chunks_backend(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERNS[2]))
        rng = random.Random(13)
        text = "".join(rng.choice("ab") for _ in range(257))
        anchor = document_matrices(evaluator, text, backend="serial", shards=1)
        for backend in ("serial", "thread"):
            for shards in (1, 2, 3, 7):
                for chunk_size in (2, 16, 64, 4096):
                    got = document_matrices(
                        evaluator,
                        text,
                        backend=backend,
                        workers=4,
                        shards=shards,
                        chunk_size=chunk_size,
                    )
                    assert _entries_equal(got, anchor), (backend, shards, chunk_size)

    def test_empty_document(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex("!x{a*}"))
        q = evaluator.det.num_states
        entry = document_matrices(evaluator, "")
        assert _entries_equal(entry, identity_entry(q))
        assert is_nonempty_text(evaluator, "")  # ε matches a*

    def test_is_nonempty_text_agrees_with_slp(self):
        rng = random.Random(17)
        evaluator = SLPSpannerEvaluator(spanner_from_regex("(a|b)*!x{ab}(a|b)*"))
        for _ in range(20):
            text = "".join(rng.choice("ab") for _ in range(rng.randint(0, 12)))
            slp = SLP()
            node = balanced_node(slp, text) if text else None
            if text:
                want = evaluator.is_nonempty(slp, node)
            else:
                want = "ab" in text
            assert is_nonempty_text(evaluator, text) == want, text

    def test_shard_spans_are_balanced_and_cover(self):
        for n in (0, 1, 2, 5, 100, 257):
            for shards in (1, 2, 3, 8, 300):
                spans = shard_spans(n, shards)
                assert all(end > start for start, end in spans)
                covered = [i for start, end in spans for i in range(start, end)]
                assert covered == list(range(n))
                if spans:
                    sizes = [end - start for start, end in spans]
                    assert max(sizes) - min(sizes) <= 1


class TestPool:
    def test_unknown_backend_raises(self):
        with pytest.raises(ParallelError):
            run_tasks([lambda: 1], backend="fork")

    def test_invalid_workers_raises(self):
        with pytest.raises(ParallelError):
            run_tasks([lambda: 1], workers=0)

    def test_results_in_submission_order(self):
        thunks = [lambda i=i: i * i for i in range(20)]
        assert run_tasks(thunks, workers=4) == [i * i for i in range(20)]
        assert run_tasks(thunks, backend="serial") == [i * i for i in range(20)]

    def test_worker_exception_propagates(self):
        def boom():
            raise ValueError("shard failed")

        with pytest.raises(ValueError):
            run_tasks([lambda: 1, boom, lambda: 2], workers=2)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestQueryBulk:
    @staticmethod
    def _store(rng, docs=6):
        db = SpannerDB()
        names = []
        for index in range(docs):
            name = f"doc{index}"
            text = "".join(rng.choice("ab") for _ in range(rng.randint(1, 40)))
            db.add_document(name, text)
            names.append(name)
        return db, names

    def test_bulk_equals_sequential_query_fuzzed(self):
        """The ISSUE's differential requirement: ``query_bulk`` must give
        exactly the per-document ``query`` answers, for fuzzed documents
        and every backend/worker combination."""
        rng = random.Random(23)
        for trial in range(4):
            db, names = self._store(rng)
            pattern = PATTERNS[trial % len(PATTERNS)]
            db.register_spanner("s", pattern)
            want = {name: set(db.query("s", name)) for name in names}
            for backend, workers in (("serial", 1), ("thread", 2), ("thread", 4)):
                bulk = db.query_bulk("s", names, workers=workers, backend=backend)
                assert list(bulk) == names  # input order
                assert {n: set(r) for n, r in bulk.items()} == want, (
                    pattern,
                    backend,
                    workers,
                )

    def test_bulk_on_edited_documents(self):
        """Documents produced by CDE edits share subtrees; the concurrent
        warm-up must still merge to one consistent cache."""
        from repro.slp import parse_cde

        db = SpannerDB()
        db.add_document("base", "abab" * 16)
        db.edit("head", parse_cde("extract(doc(base),1,33)"))
        db.edit("twice", parse_cde("concat(doc(head),doc(base))"))
        db.register_spanner("s", "(a|b)*!x{ab}(a|b)*")
        names = ["base", "head", "twice"]
        bulk = db.query_bulk("s", names, workers=4)
        for name in names:
            assert set(bulk[name]) == set(db.query("s", name))

    def test_bulk_unknown_document_raises(self):
        from repro.errors import SLPError

        db = SpannerDB()
        db.add_document("a", "ab")
        db.register_spanner("s", "!x{a*b*}")
        with pytest.raises(SLPError):
            db.query_bulk("s", ["a", "missing"])

    def test_bulk_bad_backend_raises_parallel_error(self):
        db = SpannerDB()
        db.add_document("a", "ab")
        db.register_spanner("s", "!x{a*b*}")
        with pytest.raises(ParallelError):
            db.query_bulk("s", ["a"], backend="bogus")


class TestServeBulk:
    def test_submit_bulk_round_trip(self):
        db = SpannerDB()
        for name, text in (("one", "abba"), ("two", "bb"), ("three", "a" * 30)):
            db.add_document(name, text)
        db.register_spanner("s", "(a|b)*!x{ab}(a|b)*")
        want = {n: set(db.query("s", n)) for n in ("one", "two", "three")}
        with SpannerService(db, ServeConfig(workers=2)) as service:
            result = service.query_bulk(
                "s", ["one", "two", "three"], workers=2, deadline=30.0
            )
            assert isinstance(result, BulkQueryResult)
            assert not result.degraded
            assert result.attempts == 1
            assert {n: set(t) for n, t in result.results.items()} == want
            stats = service.stats()
        assert stats["completed"] == 1  # one admission slot for the batch

    def test_bulk_degrades_when_breaker_open(self):
        db = SpannerDB()
        db.add_document("doc", "abab")
        db.register_spanner("s", "(a|b)*!x{ab}(a|b)*")
        config = ServeConfig(workers=1, breaker_failure_threshold=1)
        with SpannerService(db, config) as service:
            for _ in range(3):  # trip the breaker
                service.breaker.record_failure()
            result = service.query_bulk("s", ["doc"], deadline=30.0)
            assert result.degraded
            assert set(result.results["doc"]) == set(db.query("s", "doc"))

    def test_submit_bulk_on_stopped_service(self):
        from repro.errors import ServiceStoppedError

        db = SpannerDB()
        db.add_document("doc", "ab")
        db.register_spanner("s", "!x{a*b*}")
        service = SpannerService(db)
        with pytest.raises(ServiceStoppedError):
            service.submit_bulk("s", ["doc"])
