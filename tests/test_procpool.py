"""Tests for the supervised process-pool backend.

The contract under test, end to end:

* **supervision** — worker deaths (SIGKILL, hard exits, stalls) are
  detected, workers respawn, and only the lost shards re-dispatch; a
  batch resolves to either the exact results or one typed error, never a
  hang and never a torn answer;
* **bit-for-bit parity** — ``backend="process"`` produces *identical
  packed words* to the serial anchor for every shard/chunk split, for
  both :func:`~repro.parallel.document_matrices` and
  :func:`~repro.parallel.preprocess_bulk`;
* **leak-proof transport** — after every test in this file, crash tests
  included, :func:`~repro.parallel.live_segments` is empty (asserted by
  an autouse fixture);
* **graceful degradation** — crashes degrade to threads (feeding the
  breaker under ``"auto"``), pool exhaustion surfaces typed with a
  ``retry_after`` hint, and the serve layer maps it to
  :class:`~repro.errors.OverloadedError`.
"""

import os
import random
import threading
import time

import numpy as np
import pytest

import repro.parallel.api as parallel_api
import repro.parallel.pool as parallel_pool
from repro.db import SpannerDB
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    ParallelError,
    PoolExhaustedError,
    WorkerCrashError,
)
from repro.parallel import (
    ProcCall,
    ProcPool,
    configure_pool,
    default_workers,
    document_matrices,
    get_pool,
    live_segments,
    preprocess_bulk,
    process_breaker,
    resolve_backend,
    run_tasks,
    shutdown_pool,
    usable_cores,
)
from repro.parallel.shm import SegmentRegistry
from repro.regex import spanner_from_regex
from repro.serve import ServeConfig, SpannerService
from repro.slp import SLP, SLPSpannerEvaluator, balanced_node
from repro.util import Budget, Deadline, WorkerChaos

PATTERNS = [
    "!x{(a|b)*}!y{b}!z{(a|b)*}",
    "(a|b)*!x{ab}(a|b)*",
    "(a|b)*!x{a+}!y{b+}(a|b)*",
]

ECHO = "repro.parallel.procpool:_task_echo"
PID = "repro.parallel.procpool:_task_pid"
SLEEP = "repro.parallel.procpool:_task_sleep_ms"
RAISE = "repro.parallel.procpool:_task_raise"


def _pool_cleared_in_child():
    """Worker-side probe: the parent's module-level pool handle must not
    survive into a fork-started worker (its atexit would otherwise run the
    parent's shutdown against processes that are not its children)."""
    import repro.parallel.procpool as procpool

    return procpool._pool is None


@pytest.fixture(autouse=True)
def shm_leak_oracle():
    """Every test in this file must leave zero shared-memory segments
    behind — the acceptance bar for the leak-proofing contract — and a
    fresh breaker, so degradation state never crosses tests."""
    with parallel_api._breaker_lock:
        parallel_api._breaker = None
    yield
    shutdown_pool()
    assert live_segments() == []
    with parallel_api._breaker_lock:
        parallel_api._breaker = None


def _entries_equal(left, right) -> bool:
    return (
        np.array_equal(left[0], right[0])
        and np.array_equal(left[1].rows, right[1].rows)
        and np.array_equal(left[2].rows, right[2].rows)
    )


# ----------------------------------------------------------------------
# the pool itself
# ----------------------------------------------------------------------
class TestProcPoolSupervision:
    def test_results_arrive_in_submission_order(self):
        pool = ProcPool(workers=2)
        try:
            got = pool.run([ProcCall(ECHO, (i,)) for i in range(7)])
            assert got == list(range(7))
        finally:
            pool.shutdown()

    def test_tasks_run_in_separate_processes(self):
        pool = ProcPool(workers=2)
        try:
            pids = set(pool.run([ProcCall(PID) for _ in range(4)]))
            assert os.getpid() not in pids
            assert len(pids) == 2
        finally:
            pool.shutdown()

    def test_first_error_by_submission_index_wins(self):
        pool = ProcPool(workers=2)
        try:
            calls = [
                ProcCall(ECHO, (0,)),
                ProcCall(RAISE, ("boom-1",)),
                ProcCall(ECHO, (2,)),
                ProcCall(RAISE, ("boom-3",)),
            ]
            with pytest.raises(ParallelError, match="boom-1"):
                pool.run(calls)
        finally:
            pool.shutdown()

    def test_sigkill_storm_still_answers_exactly(self):
        """30% of dispatches are SIGKILLed; retries (fresh draws) land,
        and the batch result is exactly what a healthy pool returns."""
        chaos = WorkerChaos(seed=7, kill_rate=0.3)
        pool = ProcPool(workers=2, chaos=chaos, task_retries=3,
                        crash_tolerance=100)
        try:
            got = pool.run([ProcCall(ECHO, (i,)) for i in range(20)])
            assert got == list(range(20))
            stats = pool.stats()
            assert stats["crashes"] >= 1
            assert stats["respawned"] >= 1
        finally:
            pool.shutdown()

    def test_retry_budget_exhaustion_is_one_typed_error(self):
        chaos = WorkerChaos(seed=3, kill_rate=1.0)  # every dispatch dies
        pool = ProcPool(workers=2, chaos=chaos, task_retries=2,
                        crash_tolerance=50)
        try:
            with pytest.raises(WorkerCrashError, match="retry budget"):
                pool.run([ProcCall(ECHO, (1,))])
        finally:
            pool.shutdown()

    def test_pool_reusable_after_crash_batch(self):
        chaos = WorkerChaos(seed=3, kill_rate=1.0)
        pool = ProcPool(workers=1, chaos=chaos, task_retries=0,
                        crash_tolerance=50)
        try:
            with pytest.raises(WorkerCrashError):
                pool.run([ProcCall(ECHO, (1,))])
        finally:
            pool.shutdown()
        healthy = ProcPool(workers=1)
        try:
            assert healthy.run([ProcCall(ECHO, ("ok",))]) == ["ok"]
        finally:
            healthy.shutdown()

    def test_stalled_worker_is_killed_and_shard_retried(self):
        chaos = WorkerChaos(seed=11, stall_rate=0.3, stall_seconds=5.0)
        pool = ProcPool(workers=2, chaos=chaos, stall_timeout=0.4,
                        task_retries=4, crash_tolerance=100)
        try:
            got = pool.run([ProcCall(ECHO, (i,)) for i in range(10)])
            assert got == list(range(10))
            assert pool.stats()["stalls"] >= 1
        finally:
            pool.shutdown()

    def test_deadline_kills_stragglers(self):
        pool = ProcPool(workers=1)
        try:
            t0 = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                pool.run(
                    [ProcCall(SLEEP, (5000,))],
                    deadline=Deadline.after(0.3),
                )
            assert time.monotonic() - t0 < 3.0
        finally:
            pool.shutdown()

    def test_checked_out_pool_raises_typed_exhaustion(self):
        pool = ProcPool(workers=1)
        errors: list = []

        def holder():
            try:
                pool.run([ProcCall(SLEEP, (900, "held"))])
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        thread = threading.Thread(target=holder)
        try:
            thread.start()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    pool.run([ProcCall(ECHO, (1,))])
                except PoolExhaustedError as exc:
                    assert exc.retry_after > 0
                    break
                time.sleep(0.01)  # holder not yet checked out; try again
            else:
                pytest.fail("pool never reported exhaustion")
        finally:
            thread.join(timeout=10)
            pool.shutdown()
        assert not errors

    def test_spawn_failure_releases_the_claim(self, monkeypatch):
        """A failed fork/spawn surfaces typed and leaves no capacity
        stranded: the reservation is released and the pool serves the
        next request at full size."""
        pool = ProcPool(workers=2)
        try:
            def no_spawn(self):
                raise OSError("fork failed")

            monkeypatch.setattr(ProcPool, "_spawn", no_spawn)
            with pytest.raises(ParallelError, match="spawn"):
                pool.run([ProcCall(ECHO, (i,)) for i in range(2)])
            assert pool._busy == 0
            monkeypatch.undo()
            assert pool.run([ProcCall(ECHO, (i,)) for i in range(4)]) == [
                0, 1, 2, 3,
            ]
            assert pool.stats()["idle"] == 2
        finally:
            pool.shutdown()

    def test_partial_spawn_failure_keeps_spawned_workers(self, monkeypatch):
        """When the second of two spawns fails, the first spawned worker
        is checked back in rather than abandoned."""
        pool = ProcPool(workers=2)
        real_spawn = ProcPool._spawn
        spawns = {"n": 0}

        def flaky(self):
            spawns["n"] += 1
            if spawns["n"] == 2:
                raise OSError("fork failed")
            return real_spawn(self)

        try:
            monkeypatch.setattr(ProcPool, "_spawn", flaky)
            with pytest.raises(ParallelError, match="spawn"):
                pool.run([ProcCall(ECHO, (i,)) for i in range(2)])
            assert pool._busy == 0
            assert pool.stats()["idle"] == 1
            monkeypatch.undo()
            assert pool.run([ProcCall(ECHO, ("ok",))]) == ["ok"]
        finally:
            pool.shutdown()

    def test_dispatch_to_a_dead_worker_retries_on_a_replacement(self):
        """A worker that dies while idle mid-batch is only noticed when
        the next dispatch hits its broken pipe; the send failure must be
        contained like any other crash — respawn, retry, exact result —
        not escape as an untyped OSError."""
        pool = ProcPool(workers=1)
        try:
            assert pool.run([ProcCall(ECHO, (0,))]) == [0]
            team = pool._checkout(1)
            try:
                [worker] = team
                worker.conn.close()  # deterministic OSError at dispatch
                results = pool._supervise(team, [ProcCall(ECHO, (7,))], None)
            finally:
                pool._checkin(team)
            assert results == [7]
            stats = pool.stats()
            assert stats["crashes"] >= 1
            assert stats["respawned"] >= 1
        finally:
            pool.shutdown()

    def test_non_proccall_work_is_rejected(self):
        pool = ProcPool(workers=1)
        try:
            with pytest.raises(ParallelError, match="ProcCall"):
                pool.run([lambda: 1])
        finally:
            pool.shutdown()

    def test_run_tasks_process_backend_requires_proccalls(self):
        with pytest.raises(ParallelError, match="ProcCall"):
            run_tasks([lambda: 1, lambda: 2], backend="process")

    def test_run_tasks_routes_proccalls_to_the_shared_pool(self):
        configure_pool(workers=2)
        got = run_tasks(
            [ProcCall(ECHO, (i,)) for i in range(5)],
            workers=2,
            backend="process",
        )
        assert got == list(range(5))

    def test_forked_workers_do_not_inherit_the_shared_pool(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        configure_pool(workers=1, start_method="fork")
        probe = ProcCall("tests.test_procpool:_pool_cleared_in_child")
        assert get_pool().run([probe]) == [True]


class TestWorkerChaosSchedule:
    def test_verdict_is_pure_function_of_seed_and_seq(self):
        chaos = WorkerChaos(seed=42, kill_rate=0.3, stall_rate=0.2)
        first = [chaos.decide(seq) for seq in range(64)]
        again = [chaos.decide(seq) for seq in range(64)]
        assert first == again
        assert set(first) <= {"kill", "stall", None}
        assert "kill" in first and None in first

    def test_retry_gets_a_fresh_draw(self):
        chaos = WorkerChaos(seed=5, kill_rate=0.5)
        verdicts = {chaos.decide(seq) for seq in range(32)}
        assert verdicts == {"kill", None}  # not all-kill: retries can land

    def test_schedule_ships_by_pickle(self):
        import pickle

        chaos = WorkerChaos(seed=9, kill_rate=0.1, stall_rate=0.1)
        clone = pickle.loads(pickle.dumps(chaos))
        assert clone == chaos
        assert clone.decide(17) == chaos.decide(17)


# ----------------------------------------------------------------------
# shared-memory transport hygiene
# ----------------------------------------------------------------------
class TestShmHygiene:
    def test_pack_read_roundtrip(self):
        data = np.arange(13, dtype=np.int64)
        with SegmentRegistry() as registry:
            descr, slot = registry.pack([data, ((2, 4), np.uint64)])
            assert np.array_equal(registry.read(descr), data)
            assert registry.read(slot).shape == (2, 4)
            assert live_segments()  # owned while the registry is open
        assert live_segments() == []

    def test_registry_unlinks_on_exception(self):
        with pytest.raises(RuntimeError, match="deliberate"):
            with SegmentRegistry() as registry:
                registry.pack([np.zeros(4)])
                raise RuntimeError("deliberate")
        assert live_segments() == []

    def test_close_is_idempotent(self):
        registry = SegmentRegistry()
        registry.pack([np.ones(3)])
        registry.close()
        registry.close()
        assert live_segments() == []

    def test_segment_names_are_host_unique(self):
        """Names must embed the pid (plus a random token), so concurrent
        repro processes — or a restart after a SIGKILLed predecessor
        leaked segments — can never collide on a bare counter."""
        with SegmentRegistry() as registry:
            first = registry.create(64)
            second = registry.create(64)
            assert first.name != second.name
            for segment in (first, second):
                assert f"-{os.getpid()}-" in segment.name

    def test_name_collision_retries_under_a_fresh_name(self, monkeypatch):
        import repro.parallel.shm as shm

        shared_memory = shm._shared_memory()
        taken = shared_memory.SharedMemory(
            create=True, name=f"{shm.SEGMENT_PREFIX}-collision-test", size=1
        )
        real_name = shm._segment_name
        clashes = iter([taken.name])
        monkeypatch.setattr(
            shm, "_segment_name", lambda: next(clashes, None) or real_name()
        )
        try:
            with SegmentRegistry() as registry:
                segment = registry.create(8)
                assert segment.name != taken.name
        finally:
            taken.close()
            taken.unlink()

    def test_unresolvable_collision_is_a_typed_error(self, monkeypatch):
        import repro.parallel.shm as shm

        shared_memory = shm._shared_memory()
        taken = shared_memory.SharedMemory(
            create=True, name=f"{shm.SEGMENT_PREFIX}-collision-held", size=1
        )
        monkeypatch.setattr(shm, "_segment_name", lambda: taken.name)
        try:
            with SegmentRegistry() as registry:
                with pytest.raises(ParallelError, match="segment name"):
                    registry.create(8)
        finally:
            taken.close()
            taken.unlink()
        assert live_segments() == []


# ----------------------------------------------------------------------
# differential: process == serial, bit for bit
# ----------------------------------------------------------------------
class TestProcessDifferential:
    def test_document_matrices_process_matches_serial(self):
        rng = random.Random(23)
        configure_pool(workers=2)
        for pattern in PATTERNS:
            evaluator = SLPSpannerEvaluator(spanner_from_regex(pattern))
            text = "".join(rng.choice("ab") for _ in range(317))
            anchor = document_matrices(evaluator, text, backend="serial")
            for shards, chunk_size in ((2, 64), (3, 1024), (5, 17)):
                got = document_matrices(
                    evaluator,
                    text,
                    backend="process",
                    workers=2,
                    shards=shards,
                    chunk_size=chunk_size,
                )
                assert _entries_equal(got, anchor), (pattern, shards, chunk_size)

    def test_process_handles_empty_and_tiny_documents(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex("!x{a*}"))
        for text in ("", "a", "ba"):
            anchor = document_matrices(evaluator, text, backend="serial")
            got = document_matrices(evaluator, text, backend="process")
            assert _entries_equal(got, anchor), repr(text)

    def test_process_handles_wide_unicode(self):
        """Character codes ship as raw UTF-32 words; astral-plane text
        must survive the round trip."""
        evaluator = SLPSpannerEvaluator(spanner_from_regex("(a|\U0001F600)*!x{a}"))
        text = "a\U0001F600" * 40 + "a"
        anchor = document_matrices(evaluator, text, backend="serial")
        got = document_matrices(evaluator, text, backend="process", shards=3)
        assert _entries_equal(got, anchor)

    def test_deadline_propagates_into_workers(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERNS[0]))
        text = "ab" * 3000
        budget = Budget(deadline=Deadline(at=0.0))  # expired before dispatch
        with pytest.raises(DeadlineExceededError):
            document_matrices(
                evaluator, text, backend="process", shards=2, budget=budget
            )

    def test_worker_steps_are_charged_to_the_callers_budget(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERNS[1]))
        budget = Budget(max_steps=10_000_000)
        document_matrices(
            evaluator, "ab" * 200, backend="process", shards=2, budget=budget
        )
        assert budget.steps > 0

    def test_preprocess_bulk_process_matches_thread(self):
        source = PATTERNS[2]
        texts = ["abba" * (i + 1) for i in range(6)] + ["b" * 9, "ab" * 17]

        def warm(backend):
            evaluator = SLPSpannerEvaluator(spanner_from_regex(source))
            slp = SLP()
            nodes = [balanced_node(slp, text) for text in texts]
            fresh = preprocess_bulk(
                evaluator,
                slp,
                nodes,
                backend=backend,
                source=source if backend == "process" else None,
            )
            return evaluator, slp, nodes, fresh

        thread_eval, thread_slp, thread_nodes, thread_fresh = warm("thread")
        proc_eval, proc_slp, proc_nodes, proc_fresh = warm("process")
        assert proc_fresh == thread_fresh > 0
        for t_node, p_node in zip(thread_nodes, proc_nodes):
            t_entry = thread_eval.node_entry(thread_slp, t_node)
            p_entry = proc_eval.node_entry(proc_slp, p_node)
            assert _entries_equal(t_entry, p_entry)

    def test_bulk_process_warms_a_cold_parent_despite_warm_workers(self):
        """Workers keep digest-keyed arena and plan-cache evaluators warm
        across requests; shipping is keyed off the *parent's* cached-node
        set, so a second (cold) evaluator over the same source and arena
        content still receives every entry it lacks instead of a silent
        no-op warm."""
        configure_pool(workers=2)
        source = PATTERNS[0]
        texts = ["abba" * (i + 1) for i in range(4)] + ["b" * 7]

        def warm():
            evaluator = SLPSpannerEvaluator(spanner_from_regex(source))
            slp = SLP()
            nodes = [balanced_node(slp, text) for text in texts]
            fresh = preprocess_bulk(
                evaluator, slp, nodes, backend="process", source=source
            )
            return evaluator, slp, fresh

        first_eval, first_slp, first_fresh = warm()
        second_eval, second_slp, second_fresh = warm()
        assert first_fresh > 0
        assert second_fresh == first_fresh
        assert (
            second_eval.cached_nodes(second_slp.serial)
            == first_eval.cached_nodes(first_slp.serial)
            > 0
        )

    def test_process_crash_degrades_to_thread_with_exact_answer(self):
        """A kill-everything chaos schedule cannot corrupt results: the
        crash surfaces, the fold reruns on threads, and the entry is
        bit-for-bit the serial one."""
        configure_pool(workers=2, chaos=WorkerChaos(seed=1, kill_rate=1.0),
                       task_retries=0, crash_tolerance=100)
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERNS[0]))
        text = "ab" * 150
        anchor = document_matrices(evaluator, text, backend="serial")
        got = document_matrices(evaluator, text, backend="process", shards=2)
        assert _entries_equal(got, anchor)


# ----------------------------------------------------------------------
# backend resolution and degradation
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_explicit_backends_pass_through(self):
        for backend in ("thread", "process", "serial"):
            assert resolve_backend(backend) == backend

    def test_auto_needs_cores(self, monkeypatch):
        monkeypatch.setattr(parallel_api, "usable_cores", lambda: 1)
        assert resolve_backend("auto", size_hint_chars=1 << 20) == "thread"

    def test_auto_needs_size(self, monkeypatch):
        monkeypatch.setattr(parallel_api, "usable_cores", lambda: 8)
        assert resolve_backend("auto", size_hint_chars=64) == "thread"
        assert resolve_backend("auto", size_hint_chars=1 << 20) == "process"

    def test_auto_needs_shippable_work(self, monkeypatch):
        monkeypatch.setattr(parallel_api, "usable_cores", lambda: 8)
        assert resolve_backend("auto", shippable=False) == "thread"

    def test_auto_respects_open_breaker(self, monkeypatch):
        monkeypatch.setattr(parallel_api, "usable_cores", lambda: 8)
        breaker = process_breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert resolve_backend("auto", size_hint_chars=1 << 20) == "thread"

    def test_auto_crashes_feed_the_breaker(self, monkeypatch):
        monkeypatch.setattr(parallel_api, "usable_cores", lambda: 8)
        configure_pool(workers=2, chaos=WorkerChaos(seed=1, kill_rate=1.0),
                       task_retries=0, crash_tolerance=100)
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERNS[1]))
        text = "ab" * 4096
        anchor = document_matrices(evaluator, text, backend="serial")
        for _ in range(3):
            got = document_matrices(evaluator, text, backend="auto", shards=2)
            assert _entries_equal(got, anchor)
        assert process_breaker().state == "open"
        # breaker open: auto now resolves to thread, no pool contact
        assert resolve_backend("auto", size_hint_chars=len(text)) == "thread"

    def test_exhaustion_degrades_auto_but_raises_explicit(self, monkeypatch):
        monkeypatch.setattr(parallel_api, "usable_cores", lambda: 8)

        def exhausted(*args, **kwargs):
            raise PoolExhaustedError("all checked out", retry_after=0.25)

        monkeypatch.setattr(parallel_api, "_fold_shards_process", exhausted)
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERNS[0]))
        text = "ab" * 4096
        anchor = document_matrices(evaluator, text, backend="serial")
        got = document_matrices(evaluator, text, backend="auto")
        assert _entries_equal(got, anchor)  # degraded to threads, same bits
        assert process_breaker().state == "closed"  # backpressure ≠ illness
        with pytest.raises(PoolExhaustedError) as info:
            document_matrices(evaluator, text, backend="process")
        assert info.value.retry_after == 0.25


# ----------------------------------------------------------------------
# affinity-aware defaults
# ----------------------------------------------------------------------
class TestAffinityDefaults:
    def test_usable_cores_positive(self):
        assert usable_cores() >= 1
        assert 1 <= default_workers() <= 8

    def test_default_workers_follow_the_affinity_mask(self, monkeypatch):
        monkeypatch.setattr(
            parallel_pool.os, "sched_getaffinity", lambda pid: {0, 1, 2}
        )
        assert usable_cores() == 3
        assert default_workers() == 3

    def test_affinity_failure_falls_back_to_cpu_count(self, monkeypatch):
        def broken(pid):
            raise OSError("no affinity on this platform")

        monkeypatch.setattr(parallel_pool.os, "sched_getaffinity", broken)
        assert usable_cores() == max(1, os.cpu_count() or 1)


# ----------------------------------------------------------------------
# fail-fast cancellation in the thread backend
# ----------------------------------------------------------------------
class TestFailFast:
    def test_pending_tasks_are_cancelled_after_first_failure(self):
        """One worker, one instant failure, then slow recorders: the
        failure must cancel the queued tail rather than drain it."""
        executed: list[int] = []
        lock = threading.Lock()

        def failer():
            raise ParallelError("fail fast")

        def recorder(index):
            with lock:
                executed.append(index)
            time.sleep(0.05)  # wide window for the cancellation sweep

        thunks = [failer] + [
            (lambda i=i: recorder(i)) for i in range(12)
        ]
        with pytest.raises(ParallelError, match="fail fast"):
            run_tasks(thunks, workers=1, backend="thread")
        # at most one recorder can have started before the cancel sweep;
        # a non-fail-fast pool would have run all twelve
        assert len(executed) <= 1

    def test_earliest_submitted_failure_wins(self):
        order: list[str] = []
        gate = threading.Event()

        def slow_fail():
            gate.wait(timeout=5)
            order.append("slow")
            raise ParallelError("slow loser")

        def fast_fail():
            order.append("fast")
            gate.set()
            raise ParallelError("fast winner")

        # two workers: both failures execute; the error surfaced must be
        # the earliest *submitted*, not the earliest to raise
        with pytest.raises(ParallelError, match="slow loser"):
            run_tasks([slow_fail, fast_fail], workers=2, backend="thread")
        assert order == ["fast", "slow"]


# ----------------------------------------------------------------------
# serve + db integration
# ----------------------------------------------------------------------
class TestServeIntegration:
    def _build(self):
        db = SpannerDB()
        for name, text in (("one", "abba" * 3), ("two", "bb"), ("three", "ab" * 9)):
            db.add_document(name, text)
        db.register_spanner("s", "(a|b)*!x{ab}(a|b)*")
        return db

    def test_query_bulk_process_backend_matches_thread(self):
        configure_pool(workers=2)
        db = self._build()
        names = ["one", "two", "three"]
        thread_result = db.query_bulk("s", names, backend="thread")
        process_result = db.query_bulk("s", names, backend="process")
        assert list(process_result) == names  # input order survives
        assert {
            name: sorted(map(str, tuples))
            for name, tuples in process_result.items()
        } == {
            name: sorted(map(str, tuples))
            for name, tuples in thread_result.items()
        }

    def test_service_bulk_process_backend_round_trip(self):
        configure_pool(workers=2)
        db = self._build()
        with SpannerService(db, ServeConfig(workers=2)) as service:
            result = service.query_bulk(
                "s", ["one", "three"], backend="process", timeout=60
            )
        assert sorted(result.results) == ["one", "three"]
        assert not result.degraded

    def test_pool_exhaustion_maps_to_overloaded(self, monkeypatch):
        def exhausted(*args, **kwargs):
            raise PoolExhaustedError("all checked out", retry_after=0.5)

        import repro.parallel

        monkeypatch.setattr(repro.parallel, "preprocess_bulk", exhausted)
        db = self._build()
        with SpannerService(db, ServeConfig(workers=1)) as service:
            with pytest.raises(OverloadedError) as info:
                service.query_bulk("s", ["one"], backend="process", timeout=30)
            assert info.value.retry_after >= 0.5
            assert service.stats()["pool_exhausted"] == 1
