"""Tests for core spanners and the core-simplification lemma (Section 2.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Span, SpanTuple
from repro.errors import SchemaError
from repro.spanners import Prim, prim
from repro.spanners.core import CoreNormalForm


def occurrences(pattern):
    """All occurrences of a factor pattern: (a|b|c)* !x{pattern} (a|b|c)*."""
    return prim(f"(a|b|c)*!x{{{pattern}}}(a|b|c)*")


class TestDirectEvaluation:
    def test_select_equal_intro_example(self):
        """Experiment P3: ς={x,y} on S_α(abaaab)."""
        core = prim("!x{(a|b)*}(a|b)*!y{a*b*}").select_equal({"x", "y"})
        relation = core.evaluate_direct("abaaab")
        assert SpanTuple.of(x=Span(1, 3), y=Span(5, 7)) in relation
        assert SpanTuple.of(x=Span(1, 3), y=Span(4, 7)) not in relation

    def test_union(self):
        core = occurrences("ab").union(occurrences("ba"))
        relation = core.evaluate_direct("aba")
        assert {t["x"] for t in relation} == {Span(1, 3), Span(2, 4)}

    def test_join(self):
        # factors starting with a  ⋈  factors ending with b  = both
        starts = prim("(a|b)*!x{a(a|b)*}(a|b)*")
        ends = prim("(a|b)*!x{(a|b)*b}(a|b)*")
        core = starts.join(ends)
        relation = core.evaluate_direct("ab")
        assert {t["x"] for t in relation} == {Span(1, 3)}

    def test_project(self):
        core = prim("!x{a}!y{b}").project({"y"})
        relation = core.evaluate_direct("ab")
        assert relation.variables == ("y",)
        assert relation.tuples == frozenset({SpanTuple.of(y=Span(2, 3))})

    def test_select_equal_unknown_variable(self):
        with pytest.raises(SchemaError):
            prim("!x{a}").select_equal({"x", "zzz"})

    def test_project_unknown_variable(self):
        with pytest.raises(SchemaError):
            prim("!x{a}").project({"q"})

    def test_nested_expression(self):
        # π_x( ς={x,y}( occurrences(x) ⋈ occurrences2(y) ) )
        left = prim("(a|b)*!x{(a|b)+}(a|b)*")
        right = prim("(a|b)*!y{(a|b)+}(a|b)*")
        core = left.join(right).select_equal({"x", "y"}).project({"x"})
        relation = core.evaluate_direct("aa")
        # x must have an equal-content partner somewhere (always true here)
        assert {t["x"] for t in relation} == {Span(1, 2), Span(2, 3), Span(1, 3)}


class TestSimplification:
    """The constructive core-simplification lemma (experiment C9's core)."""

    CASES = [
        ("select", lambda: prim("!x{(a|b)*}(a|b)*!y{a*b*}").select_equal({"x", "y"})),
        ("union", lambda: occurrences("ab").union(occurrences("ba"))),
        (
            "union_of_selects",
            lambda: prim("!x{(a|b)*}!y{(a|b)*}")
            .select_equal({"x", "y"})
            .union(prim("!x{a*}!y{b*}")),
        ),
        (
            "select_then_union_shared_vars",
            lambda: prim("!x{(a|b)+}!y{(a|b)+}")
            .select_equal({"x", "y"})
            .union(prim("!x{(a|b)+}b!y{(a|b)+}")),
        ),
        (
            "join_then_select",
            lambda: prim("(a|b)*!x{(a|b)+}(a|b)*")
            .join(prim("(a|b)*!y{(a|b)+}(a|b)*"))
            .select_equal({"x", "y"}),
        ),
        (
            "project_keeps_equality_vars_alive",
            lambda: prim("!x{(a|b)+}!y{(a|b)+}")
            .select_equal({"x", "y"})
            .project({"x"}),
        ),
        (
            "select_after_project",
            lambda: prim("!x{(a|b)+}!y{(a|b)+}!z{(a|b)*}")
            .project({"x", "y"})
            .select_equal({"x", "y"}),
        ),
    ]

    @pytest.mark.parametrize("name,builder", CASES, ids=[c[0] for c in CASES])
    def test_simplified_equals_direct(self, name, builder):
        core = builder()
        for doc in ["", "a", "ab", "ba", "abab", "aabb"]:
            direct = core.evaluate_direct(doc)
            simplified = core.evaluate(doc)
            assert simplified == direct, (name, doc)

    def test_normal_form_shape(self):
        """The lemma's statement: π_Y(ς=…ς=(⟦M⟧)) with M one automaton."""
        core = (
            occurrences("ab")
            .union(occurrences("ba"))
            .select_equal({"x"})
            .project({"x"})
        )
        form = core.simplify()
        assert isinstance(form, CoreNormalForm)
        assert form.visible == {"x"}
        # exactly the equality groups introduced, on privatised variables
        assert all(isinstance(g, frozenset) for g in form.groups)

    def test_normal_form_is_cached(self):
        core = occurrences("ab")
        assert core.simplify() is core.simplify()

    def test_union_does_not_leak_equalities_across_branches(self):
        """The privatisation trick: ς={x,y}(S1) ∪ S2 must keep S2's tuples
        even when they violate the equality."""
        constrained = prim("!x{(a|b)+}!y{(a|b)+}").select_equal({"x", "y"})
        free = prim("!x{a+}!y{b+}")
        core = constrained.union(free)
        relation = core.evaluate("ab")
        # from the free branch: x=a, y=b with different contents
        assert SpanTuple.of(x=Span(1, 2), y=Span(2, 3)) in relation
        # from the constrained branch on 'aa': only equal contents
        relation_aa = core.evaluate("aa")
        assert SpanTuple.of(x=Span(1, 2), y=Span(2, 3)) in relation_aa

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="ab", max_size=5))
    def test_simplification_property(self, doc):
        core = (
            prim("!x{(a|b)*}(a|b)*!y{(a|b)*}")
            .select_equal({"x", "y"})
            .project({"x"})
        )
        assert core.evaluate(doc) == core.evaluate_direct(doc)


class TestSection24Encodings:
    """The paper's three hardness gadgets, as *correctness* tests here;
    their scaling is benchmarked in experiment C6/C8."""

    def test_pattern_matching_with_variables(self):
        """ς-selections on !x1{Σ*}!x2{Σ*}… encode pattern matching:
        the empty tuple is extracted iff the document factorises."""
        # pattern x·x (a square): D in language iff D = ww
        core = (
            prim("!x1{(a|b)*}!x2{(a|b)*}")
            .select_equal({"x1", "x2"})
            .project(set())
        )
        assert core.evaluate("abab")  # ab·ab
        assert core.evaluate("")      # ε·ε
        assert not core.evaluate("aba")
        assert not core.evaluate("aab")

    def test_intersection_nonemptiness_encoding(self):
        """ς={x1..xn} over !xi{ri} is satisfiable iff ∩L(ri) ≠ ∅."""
        # L(a(a|b)*) ∩ L((a|b)*b): nonempty (e.g. 'ab')
        core = prim("!x1{a(a|b)*}!x2{a(a|b)*}").select_equal({"x1", "x2"})
        assert core.evaluate("abab")  # x1 = x2 = 'ab'
        # L(a+) ∩ L(b+): empty — no document ever satisfies the selection
        disjoint = prim("!x1{a+}!x2{b+}").select_equal({"x1", "x2"})
        for doc in ["ab", "aabb", "ba", "aaabbb"]:
            assert not disjoint.evaluate(doc)

    def test_equal_length_windows(self):
        # all pairs of equal factors of length >= 1 at different starts
        core = (
            prim("(a|b)*!x{(a|b)+}(a|b)*")
            .join(prim("(a|b)*!y{(a|b)+}(a|b)*"))
            .select_equal({"x", "y"})
        )
        relation = core.evaluate("abab")
        pair = SpanTuple.of(x=Span(1, 3), y=Span(3, 5))  # 'ab' == 'ab'
        assert pair in relation
        bad = SpanTuple.of(x=Span(1, 3), y=Span(2, 4))   # 'ab' != 'ba'
        assert bad not in relation


class TestDescribe:
    """The algebraic pretty-printer (paper notation)."""

    def test_normal_form_shaped_expression(self):
        core = prim("!x{a+}!y{b+}").select_equal({"x", "y"}).project({"x"})
        assert core.describe() == "π_{x}(ς=_{x,y}(⟦M(x, y)⟧))"

    def test_union_and_join(self):
        core = prim("!x{a}").union(prim("!x{b}")).join(prim("!y{c}"))
        text = core.describe()
        assert "∪" in text and "⋈" in text
        assert str(core) == text
