"""Seeded multi-threaded chaos runs through the serving layer.

Each run drives concurrent client threads (queries), a writer thread
(mutations, including an aborted transaction), and a seeded
:class:`~repro.util.ChaosInjector` firing faults and delays inside the
compressed evaluator — and asserts the service's end-to-end contract:

* **zero incorrect tuples** — every completed query matches an
  uncompressed reference evaluation of the document's creation-time text
  (documents are immutable once added, so the oracle is stable);
* **zero hangs** — every ticket resolves within a generous timeout and
  ``stop()`` joins every worker;
* **honest accounting** — every degraded answer is flagged on its result
  and counted in :meth:`SpannerService.stats`;
* **typed failures only** — nothing escapes as a bare exception.

The default lane runs a dozen seeds (the CI chaos smoke); the
``slow_fuzz`` lane runs 200+ seeded rounds for the acceptance bar.
"""

import random
import threading

import pytest

from repro import RegularSpanner, SpannerDB
from repro.errors import (
    DeadlineExceededError,
    EvaluationLimitError,
    OverloadedError,
    SpanlibError,
)
from repro.serve import ServeConfig, SpannerService
from repro.slp.spanner_eval import SLPSpannerEvaluator
from repro.util import ChaosInjector

DOCS = {
    "d1": "ababbab",
    "d2": "bbaab",
    "d3": "abab" * 8,
    "d4": "b" * 12,
}
SPANNERS = {
    "single": "(a|b)*!x{b}(a|b)*",
    "pair": "(a|b)*!x{ab}(a|b)*",
    "two": "(a|b)*!x{a}(a|b)*!y{b}(a|b)*",
}

_ORACLE: dict[tuple[str, str], list[str]] = {}


def oracle(spanner: str, document: str) -> list[str]:
    """Reference answer from the uncompressed pipeline, cached."""
    key = (spanner, document)
    if key not in _ORACLE:
        reference = RegularSpanner.from_regex(SPANNERS[spanner])
        _ORACLE[key] = sorted(map(str, reference.enumerate(DOCS[document])))
    return _ORACLE[key]


def build_store() -> SpannerDB:
    db = SpannerDB()
    for name, text in DOCS.items():
        db.add_document(name, text)
    for name, pattern in SPANNERS.items():
        db.register_spanner(name, pattern)
    return db


def run_chaos(
    seed: int,
    error_rate: float = 0.2,
    delay_rate: float = 0.1,
    client_threads: int = 3,
    queries_per_thread: int = 8,
    writer_rounds: int = 3,
    starve_rate: float = 0.1,
) -> dict:
    """One seeded chaos round; returns the service stats for assertions."""
    db = build_store()
    injector = ChaosInjector(seed)
    config = ServeConfig(
        workers=3,
        queue_limit=256,
        retry_max_attempts=3,
        breaker_failure_threshold=3,
        breaker_reset_after=0.02,
        breaker_half_open_probes=1,
        seed=seed,
    )
    service = SpannerService(db, config)
    violations: list[str] = []
    hangs: list[str] = []
    degraded_seen = [0]
    completed_seen = [0]
    lock = threading.Lock()

    def client(thread_index: int) -> None:
        rng = random.Random(seed * 1009 + thread_index)
        spanner_names = sorted(SPANNERS)
        doc_names = sorted(DOCS)
        for _ in range(queries_per_thread):
            spanner = rng.choice(spanner_names)
            document = rng.choice(doc_names)
            # occasionally starve the budget to exercise the limit path
            max_steps = 1 if rng.random() < starve_rate else None
            try:
                ticket = service.submit(spanner, document, max_steps=max_steps)
            except OverloadedError:
                continue  # shed is a legal answer under load
            try:
                result = ticket.result(timeout=30)
            except DeadlineExceededError as exc:
                if "still in flight" in str(exc):
                    with lock:
                        hangs.append(f"{spanner}/{document}: {exc}")
                continue
            except SpanlibError:
                continue  # typed failure (fault, budget, breaker) is legal
            got = sorted(map(str, result.tuples))
            if got != oracle(spanner, document):
                with lock:
                    violations.append(
                        f"{spanner}/{document} (degraded={result.degraded}): "
                        f"{got} != {oracle(spanner, document)}"
                    )
            with lock:
                completed_seen[0] += 1
                if result.degraded:
                    degraded_seen[0] += 1

    def writer() -> None:
        for index in range(writer_rounds):
            name = f"w{seed}_{index}"
            try:
                service.add_document(name, "abba" * (index + 1))
            except SpanlibError:
                pass  # injected fault: the mutation rolled back
            try:
                with service.transaction() as txn_db:
                    txn_db.add_document(f"aborted{seed}_{index}", "bb")
                    raise SpanlibError("deliberate abort")
            except SpanlibError:
                pass

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(client_threads)
    ]
    threads.append(threading.Thread(target=writer))
    with injector.chaos(
        SLPSpannerEvaluator, "enumerate", site="enumerate",
        error_rate=error_rate, delay_rate=delay_rate,
    ), injector.chaos(
        SLPSpannerEvaluator, "preprocess", site="preprocess",
        error_rate=error_rate / 2, delay_rate=delay_rate,
    ):
        with service:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            hangs.extend(
                f"thread {t.name} never finished" for t in threads if t.is_alive()
            )
        # `with service` returned: stop() joined every worker — no hangs

    assert not violations, violations
    assert not hangs, hangs
    stats = service.stats()
    # every degraded answer we observed is flagged in the service's books
    assert stats["degraded"] == degraded_seen[0]
    assert stats["completed"] >= completed_seen[0]
    # rolled-back state never became visible
    for name in db.documents():
        assert not name.startswith("aborted"), name
    return stats


def run_bulk_chaos(
    seed: int,
    error_rate: float = 0.3,
    delay_rate: float = 0.1,
    client_threads: int = 2,
    batches_per_thread: int = 6,
) -> dict:
    """One seeded chaos round through the *bulk* lane.

    Concurrent clients drive :meth:`SpannerService.submit_bulk` while the
    injector fires faults inside the evaluator.  The batch contract under
    chaos: a batch resolves to either a complete, correct
    ``BulkQueryResult`` — every requested document present, every tuple
    matching the oracle — or one typed error.  Never a torn batch, never
    an untyped escape, and every degraded batch is counted."""
    db = build_store()
    injector = ChaosInjector(seed)
    service = SpannerService(
        db,
        ServeConfig(
            workers=3,
            queue_limit=256,
            retry_max_attempts=3,
            breaker_failure_threshold=3,
            breaker_reset_after=0.02,
            breaker_half_open_probes=1,
            seed=seed,
        ),
    )
    violations: list[str] = []
    hangs: list[str] = []
    degraded_seen = [0]
    completed_seen = [0]
    lock = threading.Lock()

    def client(thread_index: int) -> None:
        rng = random.Random(seed * 2003 + thread_index)
        spanner_names = sorted(SPANNERS)
        doc_names = sorted(DOCS)
        for _ in range(batches_per_thread):
            spanner = rng.choice(spanner_names)
            documents = rng.sample(doc_names, k=rng.randint(1, len(doc_names)))
            try:
                ticket = service.submit_bulk(spanner, documents)
            except OverloadedError:
                continue  # shed is a legal answer under load
            try:
                result = ticket.result(timeout=30)
            except DeadlineExceededError as exc:
                if "still in flight" in str(exc):
                    with lock:
                        hangs.append(f"{spanner}/{documents}: {exc}")
                continue
            except SpanlibError:
                continue  # typed failure is legal; anything else escapes
            # a batch that resolves must not be torn: every requested
            # document answered, and answered correctly
            if sorted(result.results) != sorted(documents):
                with lock:
                    violations.append(
                        f"torn batch {spanner}/{documents}: "
                        f"answered {sorted(result.results)}"
                    )
                continue
            for document in documents:
                got = sorted(map(str, result.results[document]))
                if got != oracle(spanner, document):
                    with lock:
                        violations.append(
                            f"{spanner}/{document} (degraded="
                            f"{result.degraded}): {got} != "
                            f"{oracle(spanner, document)}"
                        )
            with lock:
                completed_seen[0] += 1
                if result.degraded:
                    degraded_seen[0] += 1

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(client_threads)
    ]
    with injector.chaos(
        SLPSpannerEvaluator, "enumerate", site="enumerate",
        error_rate=error_rate, delay_rate=delay_rate,
    ), injector.chaos(
        SLPSpannerEvaluator, "preprocess", site="preprocess",
        error_rate=error_rate / 2, delay_rate=delay_rate,
    ):
        with service:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            hangs.extend(
                f"thread {t.name} never finished" for t in threads if t.is_alive()
            )

    assert not violations, violations
    assert not hangs, hangs
    stats = service.stats()
    # breaker/degradation parity: the books match what clients observed
    assert stats["degraded"] == degraded_seen[0]
    assert stats["completed"] >= completed_seen[0]
    return stats


class TestChaosSmoke:
    """The fast CI lane: a dozen seeds across fault intensities."""

    @pytest.mark.parametrize("seed", range(6))
    def test_moderate_faults(self, seed):
        run_chaos(seed, error_rate=0.2, delay_rate=0.1)

    @pytest.mark.parametrize("seed", range(6, 10))
    def test_heavy_faults(self, seed):
        stats = run_chaos(seed, error_rate=0.5, delay_rate=0.2)
        assert stats["failed"] + stats["completed"] == stats["submitted"]

    def test_fault_free_round_stays_clean(self):
        stats = run_chaos(999, error_rate=0.0, delay_rate=0.0, starve_rate=0.0)
        assert stats["degraded"] == 0
        assert stats["failed"] == 0
        assert stats["breaker"]["times_opened"] == 0

    def test_budget_starvation_alone_can_trip_the_breaker(self):
        """Step-limit failures are transient (a warmer cache may succeed),
        so like real-world timeouts they count toward the breaker — and
        healthy queries then *degrade* rather than fail."""
        stats = run_chaos(998, error_rate=0.0, delay_rate=0.0, starve_rate=0.5)
        assert stats["breaker"]["times_opened"] >= 1
        assert stats["degraded"] >= 1

    @pytest.mark.parametrize("seed", range(40, 44))
    def test_bulk_lane_under_faults(self, seed):
        """The bulk contract holds at a 30% evaluator fault rate."""
        stats = run_bulk_chaos(seed, error_rate=0.3, delay_rate=0.1)
        assert stats["failed"] + stats["completed"] == stats["submitted"]

    def test_bulk_lane_fault_free_round_stays_clean(self):
        stats = run_bulk_chaos(997, error_rate=0.0, delay_rate=0.0)
        assert stats["failed"] == 0
        assert stats["degraded"] == 0
        assert stats["breaker"]["times_opened"] == 0

    def test_journal_chaos_keeps_persistence_consistent(self, tmp_path):
        """Faults in the journal append under concurrent load: committed
        documents survive reopen, failed mutations vanish entirely."""
        path = str(tmp_path / "store.slpdb")
        db = build_store()
        db.save(path)
        injector = ChaosInjector(31)
        service = SpannerService(db, ServeConfig(workers=2, seed=31))
        added: list[str] = []
        with injector.chaos(
            SpannerDB, "_journal_write", site="journal", error_rate=0.4
        ):
            with service:
                for index in range(8):
                    name = f"j{index}"
                    try:
                        service.add_document(name, "ab" * (index + 1))
                    except SpanlibError:
                        continue
                    added.append(name)
                    result = service.query("single", name, timeout=30)
                    assert [str(t) for t in result.tuples]  # has the b's
        # a failed append poisons the journal until the next save; a clean
        # save must always be possible and capture exactly committed state
        db.save(path)
        recovered = SpannerDB.open(path)
        assert recovered.documents() == db.documents()
        for name in added:
            assert recovered.document_text(name) == db.document_text(name)


@pytest.mark.slow_fuzz
class TestChaosAcceptance:
    """The acceptance bar: 200+ seeded concurrent rounds with injected
    faults — zero incorrect tuples, zero hangs, honest degradation."""

    def test_two_hundred_seeded_rounds(self):
        degraded_total = 0
        completed_total = 0
        for seed in range(100, 300):
            rate = (0.1, 0.3, 0.5)[seed % 3]
            stats = run_chaos(
                seed,
                error_rate=rate,
                delay_rate=0.1,
                client_threads=2,
                queries_per_thread=5,
                writer_rounds=2,
            )
            degraded_total += stats["degraded"]
            completed_total += stats["completed"]
        assert completed_total > 0
        # with these rates, degradation must actually have been exercised
        assert degraded_total > 0
