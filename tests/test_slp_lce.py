"""Tests for factor fingerprints, LCE, and suffix comparison on SLPs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SLPError
from repro.slp import SLP, balanced_node, power_node, repair_node
from repro.slp.lce import FactorHasher, compare_suffixes, longest_common_extension


def naive_lce(a: str, b: str) -> int:
    length = 0
    for ca, cb in zip(a, b):
        if ca != cb:
            break
        length += 1
    return length


class TestFactorHasher:
    def test_prefix_fingerprints_distinguish(self):
        slp = SLP()
        node = balanced_node(slp, "abcdef")
        hasher = FactorHasher(slp)
        values = {hasher.prefix_fingerprint(node, k) for k in range(7)}
        assert len(values) == 7  # all prefixes distinct

    def test_factor_equality(self):
        slp = SLP()
        node = balanced_node(slp, "abcabc")
        hasher = FactorHasher(slp)
        assert hasher.factors_equal(node, 0, node, 3, 3)   # abc == abc
        assert not hasher.factors_equal(node, 0, node, 1, 3)

    def test_cross_document_equality(self):
        slp = SLP()
        a = balanced_node(slp, "xxabcyy")
        b = repair_node(slp, "qabcq")
        hasher = FactorHasher(slp)
        assert hasher.factors_equal(a, 2, b, 1, 3)

    def test_range_validation(self):
        slp = SLP()
        node = balanced_node(slp, "abc")
        hasher = FactorHasher(slp)
        with pytest.raises(SLPError):
            hasher.prefix_fingerprint(node, 4)
        with pytest.raises(SLPError):
            hasher.factor_fingerprint(node, 2, 1)

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="ab", min_size=1, max_size=40), st.data())
    def test_factor_hash_matches_string_hash(self, text, data):
        slp = SLP()
        node = balanced_node(slp, text)
        hasher = FactorHasher(slp)
        begin = data.draw(st.integers(0, len(text)))
        end = data.draw(st.integers(begin, len(text)))
        other = balanced_node(slp, text[begin:end] + "#")
        if end > begin:
            assert hasher.factor_fingerprint(node, begin, end) == \
                hasher.prefix_fingerprint(other, end - begin)


class TestLCE:
    def test_simple(self):
        slp = SLP()
        node = balanced_node(slp, "abcabd")
        assert longest_common_extension(slp, node, 0, node, 3) == 2  # ab
        assert longest_common_extension(slp, node, 0, node, 0) == 6

    def test_across_documents(self):
        slp = SLP()
        a = balanced_node(slp, "hello world")
        b = balanced_node(slp, "hellish")
        assert longest_common_extension(slp, a, 0, b, 0) == 4  # hell

    def test_on_exponential_document(self):
        slp = SLP()
        node = power_node(slp, "ab", 40)  # (ab)^(2^40)
        # suffixes at even offsets agree for the whole overlap
        lce = longest_common_extension(slp, node, 0, node, 2)
        assert lce == slp.length(node) - 2

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="ab", min_size=1, max_size=30), st.data())
    def test_matches_naive(self, text, data):
        slp = SLP()
        node = repair_node(slp, text)
        i = data.draw(st.integers(0, len(text) - 1))
        j = data.draw(st.integers(0, len(text) - 1))
        assert longest_common_extension(slp, node, i, node, j) == naive_lce(
            text[i:], text[j:]
        )


class TestCompareSuffixes:
    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="abc", min_size=1, max_size=25), st.data())
    def test_matches_python_comparison(self, text, data):
        slp = SLP()
        node = balanced_node(slp, text)
        i = data.draw(st.integers(0, len(text) - 1))
        j = data.draw(st.integers(0, len(text) - 1))
        expected = (text[i:] > text[j:]) - (text[i:] < text[j:])
        assert compare_suffixes(slp, node, i, node, j) == expected

    def test_suffix_sorting_via_comparisons(self):
        """Sort all suffixes of a document compressed-only, check against
        the naive suffix array."""
        import functools

        slp = SLP()
        text = "banana"
        node = balanced_node(slp, text)
        hasher = FactorHasher(slp)
        order = sorted(
            range(len(text)),
            key=functools.cmp_to_key(
                lambda i, j: compare_suffixes(slp, node, i, node, j, hasher)
            ),
        )
        expected = sorted(range(len(text)), key=lambda i: text[i:])
        assert order == expected
