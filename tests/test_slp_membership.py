"""Tests for compressed NFA membership (paper Section 4.2, experiment C2)."""

from hypothesis import given, settings, strategies as st

from repro.regex import compile_nfa
from repro.slp import (
    SLP,
    CompressedMembership,
    balanced_node,
    fibonacci_node,
    power_node,
    repair_node,
    simulate_uncompressed,
)


class TestCorrectness:
    PATTERNS = ["(ab)*", "a*b*", "(a|b)*abb(a|b)*", "a(ba)*", ".*bb.*"]
    TEXTS = ["ab", "abab", "ba", "aabb", "abb", "bab", "a", "b", "abba"]

    def test_agrees_with_simulation_on_catalogue(self):
        for pattern in self.PATTERNS:
            nfa = compile_nfa(pattern)
            oracle = CompressedMembership(nfa)
            for text in self.TEXTS:
                slp = SLP()
                node = balanced_node(slp, text)
                assert oracle.accepts(slp, node) == simulate_uncompressed(nfa, text), (
                    pattern,
                    text,
                )

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ab", min_size=1, max_size=40))
    def test_property(self, text):
        nfa = compile_nfa("(a|b)*ab(a|b)*")
        oracle = CompressedMembership(nfa)
        slp = SLP()
        node = repair_node(slp, text)
        assert oracle.accepts(slp, node) == simulate_uncompressed(nfa, text)

    def test_exponential_document(self):
        """Membership on (ab)^(2^40) without decompressing — impossible for
        the baseline, trivial in the compressed setting."""
        nfa = compile_nfa("(ab)*")
        oracle = CompressedMembership(nfa)
        slp = SLP()
        node = power_node(slp, "ab", 40)
        assert slp.length(node) == 2 * 2 ** 40
        assert oracle.accepts(slp, node)
        # shift by one character: no longer in (ab)*
        shifted = slp.pair(slp.terminal("a"), node)
        assert not oracle.accepts(slp, shifted)

    def test_fibonacci_document(self):
        # Fibonacci words never contain 'bb'
        nfa = compile_nfa("(a|b)*bb(a|b)*")
        oracle = CompressedMembership(nfa)
        slp = SLP()
        node = fibonacci_node(slp, 40)
        assert not oracle.accepts(slp, node)
        with_bb = slp.pair(node, slp.pair(slp.terminal("b"), slp.terminal("b")))
        assert oracle.accepts(slp, with_bb)

    def test_memoisation_across_documents(self):
        """Shared nodes are processed once across queries."""
        nfa = compile_nfa("(ab)*")
        oracle = CompressedMembership(nfa)
        slp = SLP()
        small = power_node(slp, "ab", 10)
        big = slp.pair(small, small)
        oracle.accepts(slp, small)
        cached_before = oracle.cached_nodes()
        oracle.accepts(slp, big)
        cached_after = oracle.cached_nodes()
        assert cached_after == cached_before + 1  # only 'big' is new

    def test_empty_language(self):
        from repro.automata import NFA

        nfa = NFA()
        nfa.add_state(initial=True)  # no accepting states
        oracle = CompressedMembership(nfa)
        slp = SLP()
        assert not oracle.accepts(slp, balanced_node(slp, "ab"))
