"""Tests for subword-marked words and ref-words (paper Sections 2.1, 2.2, 3.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    Close,
    MarkedWord,
    Open,
    Ref,
    Span,
    SpanTuple,
    mark_document,
    parse_marked,
    sequence_is_sequential,
    unmarked,
)
from repro.errors import InvalidMarkedWordError


def mw(*symbols):
    return MarkedWord(symbols)


# ---------------------------------------------------------------------------
# validity
# ---------------------------------------------------------------------------
class TestValidity:
    def test_plain_document_is_valid(self):
        word = unmarked("abc")
        assert word.erase() == "abc"
        assert word.span_tuple() == SpanTuple.empty()

    def test_well_formed_word(self):
        word = mw(Open("x"), "a", "b", Close("x"), "c")
        assert word.variables == {"x"}

    def test_close_before_open_rejected(self):
        with pytest.raises(InvalidMarkedWordError):
            mw(Close("x"), "a", Open("x"))

    def test_double_open_rejected(self):
        with pytest.raises(InvalidMarkedWordError):
            mw(Open("x"), Open("x"), Close("x"))

    def test_double_close_rejected(self):
        with pytest.raises(InvalidMarkedWordError):
            mw(Open("x"), Close("x"), Close("x"))

    def test_unclosed_variable_rejected(self):
        with pytest.raises(InvalidMarkedWordError):
            mw(Open("x"), "a")

    def test_reference_inside_own_span_rejected(self):
        with pytest.raises(InvalidMarkedWordError):
            mw(Open("x"), Ref("x"), Close("x"))

    def test_multicharacter_symbol_rejected(self):
        with pytest.raises(InvalidMarkedWordError):
            mw("ab")

    def test_reference_before_definition_is_syntactically_valid(self):
        # Forward references are valid ref-words; deref resolves them.
        word = mw(Ref("x"), Open("x"), "a", Close("x"))
        assert word.references == {"x"}


# ---------------------------------------------------------------------------
# e(·) and st(·)
# ---------------------------------------------------------------------------
class TestEraseAndSpanTuple:
    def test_paper_word_1(self):
        """The subword-marked word (1) of Section 2.1."""
        word = mw(
            Open("z"), "a", Open("x"), "b", "c", Open("y"), "a", "c",
            Close("x"), "a", "c", Close("y"), Close("z"), "b", "b", "a", "a",
        )
        assert word.erase() == "abcacacbbaa"
        assert word.span_tuple() == SpanTuple.of(
            x=Span(2, 6), y=Span(4, 8), z=Span(1, 8)
        )

    def test_example_1_1_first_row(self):
        word = mw(
            Open("x"), "a", Close("x"), Open("y"), "b", Close("y"),
            Open("z"), "a", "b", "b", "a", "b", Close("z"),
        )
        assert word.erase() == "ababbab"
        assert word.span_tuple() == SpanTuple.of(
            x=Span(1, 2), y=Span(2, 3), z=Span(3, 8)
        )

    def test_empty_span(self):
        word = mw("a", Open("x"), Close("x"), "b")
        assert word.span_tuple() == SpanTuple.of(x=Span(2, 2))

    def test_erase_refuses_ref_words(self):
        word = mw(Open("x"), "a", Close("x"), Ref("x"))
        with pytest.raises(InvalidMarkedWordError):
            word.erase()
        with pytest.raises(InvalidMarkedWordError):
            word.span_tuple()


# ---------------------------------------------------------------------------
# mark_document: the inverse direction
# ---------------------------------------------------------------------------
class TestMarkDocument:
    def test_round_trip_simple(self):
        doc = "ababbab"
        tup = SpanTuple.of(x=Span(1, 2), y=Span(2, 3), z=Span(3, 8))
        word = mark_document(doc, tup)
        assert word.erase() == doc
        assert word.span_tuple() == tup

    def test_tuple_must_fit(self):
        with pytest.raises(InvalidMarkedWordError):
            mark_document("ab", SpanTuple.of(x=Span(1, 9)))

    def test_canonical_marker_order_at_shared_position(self):
        # y closes and z opens at position 3: canonical order is opens first.
        doc = "abab"
        tup = SpanTuple.of(y=Span(2, 3), z=Span(3, 5))
        word = mark_document(doc, tup)
        symbols = word.symbols
        pos = symbols.index(Open("z"))
        assert symbols[pos + 1] == Close("y")

    @given(
        st.text(alphabet="ab", min_size=0, max_size=8),
        st.dictionaries(
            st.sampled_from(["x", "y", "z"]),
            st.tuples(st.integers(0, 8), st.integers(0, 8)),
            max_size=3,
        ),
    )
    def test_round_trip_property(self, doc, raw):
        spans = {}
        for var, (a, b) in raw.items():
            lo, hi = sorted((a % (len(doc) + 1), b % (len(doc) + 1)))
            spans[var] = Span(lo + 1, hi + 1)
        tup = SpanTuple(spans)
        word = mark_document(doc, tup)
        assert word.erase() == doc
        assert word.span_tuple() == tup
        # canonical form is a fixed point
        assert word.canonicalize() == word


# ---------------------------------------------------------------------------
# canonicalisation / extended blocks
# ---------------------------------------------------------------------------
class TestNormalForms:
    def test_canonicalize_reorders_consecutive_markers(self):
        messy = mw(Open("x"), "a", Close("x"), Open("y"), "b", Close("y"))
        canonical = messy.canonicalize()
        symbols = canonical.symbols
        # at the position after 'a', Open(y) must precede Close(x)
        assert symbols.index(Open("y")) < symbols.index(Close("x"))
        assert canonical.span_tuple() == messy.span_tuple()
        assert canonical.erase() == messy.erase()

    def test_two_orderings_have_equal_canonical_forms(self):
        a = mw(Open("x"), "a", Close("x"), Open("y"), "b", Close("y"))
        b = mw(Open("x"), "a", Open("y"), Close("x"), "b", Close("y"))
        assert a.canonicalize() == b.canonicalize()

    def test_extended_blocks_of_paper_word(self):
        """Extended form of word (1): {z▷}a{x▷}bc{y▷}ac{◁x}ac{◁y,◁z}bbaa."""
        word = mw(
            Open("z"), "a", Open("x"), "b", "c", Open("y"), "a", "c",
            Close("x"), "a", "c", Close("y"), Close("z"), "b", "b", "a", "a",
        )
        blocks, doc = word.extended_blocks()
        assert doc == "abcacacbbaa"
        assert len(blocks) == len(doc) + 1
        assert blocks[0] == frozenset({Open("z")})
        assert blocks[1] == frozenset({Open("x")})
        assert blocks[3] == frozenset({Open("y")})
        assert blocks[5] == frozenset({Close("x")})
        assert blocks[7] == frozenset({Close("y"), Close("z")})
        assert blocks[8] == frozenset()


# ---------------------------------------------------------------------------
# dereferencing d(·) — Section 3.1
# ---------------------------------------------------------------------------
class TestDeref:
    def test_no_references_is_identity(self):
        word = mw(Open("x"), "a", Close("x"))
        assert word.deref() is word

    def test_simple_reference(self):
        # x captures "ab"; reference expands to "ab".
        word = mw(Open("x"), "a", "b", Close("x"), "c", Ref("x"))
        assert word.deref().erase() == "abcab"

    def test_paper_section_3_1_nested_derivation(self):
        """w := x▷ aa y▷ bbb ◁x cc x ◁y abc y  ⇒  aabbbccaabbbabcbbbccaabbb."""
        word = mw(
            Open("x"), "a", "a", Open("y"), "b", "b", "b", Close("x"),
            "c", "c", Ref("x"), Close("y"), "a", "b", "c", Ref("y"),
        )
        result = word.deref()
        assert result.erase() == "aabbbccaabbbabcbbbccaabbb"
        # spans of x and y in the final document:
        tup = result.span_tuple()
        doc = result.erase()
        assert tup["x"].extract(doc) == "aabbb"
        assert tup["y"].extract(doc) == "bbbccaabbb"

    def test_reference_to_unmarked_variable_rejected(self):
        word = mw("a", Ref("x"))
        with pytest.raises(InvalidMarkedWordError):
            word.deref()

    def test_cyclic_references_rejected(self):
        word = mw(
            Open("x"), Ref("y"), Close("x"),
            Open("y"), Ref("x"), Close("y"),
        )
        with pytest.raises(InvalidMarkedWordError):
            word.deref()

    def test_forward_reference_resolves(self):
        word = mw(Ref("x"), Open("x"), "a", "b", Close("x"))
        assert word.deref().erase() == "abab"


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
class TestHelpers:
    def test_parse_marked(self):
        word = parse_marked("[<x]ab[x>]c[&x]")
        assert word.variables == {"x"}
        assert word.references == {"x"}
        assert word.deref().erase() == "abcab"

    def test_parse_marked_bad_token(self):
        with pytest.raises(InvalidMarkedWordError):
            parse_marked("[!]a")
        with pytest.raises(InvalidMarkedWordError):
            parse_marked("[<x")

    def test_sequence_is_sequential(self):
        ok = (Open("x"), "a", Close("x"), Ref("x"))
        bad = (Ref("x"), Open("x"), "a", Close("x"))
        assert sequence_is_sequential(ok)
        assert not sequence_is_sequential(bad)

    def test_str_rendering(self):
        word = mw(Open("x"), "a", Close("x"), Ref("x"))
        assert str(word) == "x▷a◁x&x"
