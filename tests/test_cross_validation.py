"""Cross-validation property tests: every evaluation path must agree.

For randomly generated regex-formulas and documents, the library offers
four independent routes to the same span relation:

1. the naive backward-DP evaluator (``evaluate_vset``);
2. the two-phase constant-delay enumerator;
3. the SLP evaluator on a compressed parse of the document;
4. per-tuple model checking (membership of the extended word).

Any disagreement is a bug in one of the pipelines; hypothesis hunts for it.
"""

from hypothesis import given, settings, strategies as st

from repro.core import SpanRelation
from repro.enumeration import Enumerator, evaluate_vset
from repro.regex import ast, compile_ast, spanner_from_regex
from repro.automata.vset import VSetAutomaton
from repro.slp import SLP, SLPSpannerEvaluator, repair_node


# ---------------------------------------------------------------------------
# a strategy for valid regex-formulas over {a, b}
# ---------------------------------------------------------------------------
def _leaf():
    return st.sampled_from(
        [ast.Literal("a"), ast.Literal("b"), ast.Epsilon(), ast.AnyChar()]
    )


def _combine(children):
    return st.one_of(
        st.tuples(children, children).map(lambda p: ast.Concat(p)),
        st.tuples(children, children).map(lambda p: ast.Alt(p)),
        children.map(ast.Star),
        children.map(ast.Maybe),
    )


#: capture-free regex bodies
_BODIES = st.recursive(_leaf(), _combine, max_leaves=6)


@st.composite
def regex_formulas(draw):
    """Σ*-padded formulas with 1–2 captures whose bodies are capture-free
    (so validity is guaranteed by construction)."""
    how_many = draw(st.integers(1, 2))
    pieces = [draw(_BODIES)]
    for index in range(how_many):
        pieces.append(ast.Capture(f"v{index}", draw(_BODIES)))
        pieces.append(draw(_BODIES))
    return ast.Concat(tuple(pieces))


@st.composite
def nested_formulas(draw):
    """Formulas with a capture nested inside another capture (hierarchical
    by construction, distinct variable names)."""
    inner = ast.Capture("inner", draw(_BODIES))
    body = ast.Concat((draw(_BODIES), inner, draw(_BODIES)))
    outer = ast.Capture("outer", body)
    return ast.Concat((draw(_BODIES), outer, draw(_BODIES)))


DOCS = st.text(alphabet="ab", max_size=6)


@settings(max_examples=60, deadline=None)
@given(regex_formulas(), DOCS)
def test_enumerator_agrees_with_naive(formula, doc):
    spanner = VSetAutomaton(compile_ast(formula))
    expected = evaluate_vset(spanner, doc)
    streamed = SpanRelation(spanner.variables, Enumerator(spanner).enumerate(doc))
    assert streamed == expected


@settings(max_examples=40, deadline=None)
@given(regex_formulas(), st.text(alphabet="ab", min_size=1, max_size=6))
def test_slp_evaluator_agrees_with_naive(formula, doc):
    spanner = VSetAutomaton(compile_ast(formula))
    expected = evaluate_vset(spanner, doc)
    slp = SLP()
    node = repair_node(slp, doc)
    compressed = SLPSpannerEvaluator(spanner).evaluate(slp, node)
    assert compressed == expected


@settings(max_examples=40, deadline=None)
@given(regex_formulas(), DOCS)
def test_model_check_agrees_with_membership(formula, doc):
    spanner = VSetAutomaton(compile_ast(formula))
    relation = evaluate_vset(spanner, doc)
    for tup in relation:
        assert spanner.model_check(doc, tup), (str(formula), doc, tup)


@settings(max_examples=30, deadline=None)
@given(regex_formulas())
def test_self_containment_and_equivalence(formula):
    from repro.decision import contained_in, equivalent_spanners

    spanner = VSetAutomaton(compile_ast(formula))
    assert contained_in(spanner, spanner)
    assert equivalent_spanners(spanner, spanner)


@settings(max_examples=30, deadline=None)
@given(regex_formulas(), DOCS)
def test_union_with_self_is_identity(formula, doc):
    spanner = VSetAutomaton(compile_ast(formula))
    union = spanner.union(spanner)
    assert evaluate_vset(union, doc) == evaluate_vset(spanner, doc)


@settings(max_examples=40, deadline=None)
@given(nested_formulas(), DOCS)
def test_nested_captures_all_pipelines_agree(formula, doc):
    spanner = VSetAutomaton(compile_ast(formula))
    expected = evaluate_vset(spanner, doc)
    streamed = SpanRelation(spanner.variables, Enumerator(spanner).enumerate(doc))
    assert streamed == expected
    # nesting is hierarchical: inner inside outer whenever both defined
    for tup in expected:
        if "inner" in tup and "outer" in tup:
            assert tup["outer"].contains(tup["inner"])


@settings(max_examples=30, deadline=None)
@given(regex_formulas(), DOCS)
def test_projection_commutes_with_evaluation(formula, doc):
    spanner = VSetAutomaton(compile_ast(formula))
    if not spanner.variables:
        return
    keep = {sorted(spanner.variables)[0]}
    projected_first = evaluate_vset(spanner.project(keep), doc)
    evaluated_first = evaluate_vset(spanner, doc).project(keep)
    assert projected_first == evaluated_first
