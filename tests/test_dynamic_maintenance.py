"""Sublinear incremental maintenance (ISSUE 9): sealed-root discovery,
per-arena cache indexes, and the rollback aliasing hazard.

The paper's dynamic setting (Section 4.2, [40]) promises that after a CDE
edit only the O(|φ|·log d) fresh nodes cost anything.  These tests pin the
engine to that promise: a repeat query on a sealed root performs *zero*
topological visits, a post-append walk visits O(fresh + log n) nodes, and
``invalidate_from`` unseals exactly what rollback's id reuse could alias.

The 200-seed differential lane (``slow_fuzz``, excluded by default) asserts
``edit + incremental preprocess == rebuild-from-scratch`` bit-for-bit on
the (σ, T, T_em) entries, including rollback-then-reuse of node ids and
astral-plane unicode documents.
"""

import gc
import random

import numpy as np
import pytest

from repro import SpannerDB, obs
from repro.regex import compile_nfa, spanner_from_regex
from repro.slp import (
    CompressedMembership,
    CompressedPatternMatcher,
    Delete,
    Doc,
    DocumentDatabase,
    Editor,
    SLP,
    SLPSpannerEvaluator,
    balanced_node,
    power_node,
    simulate_uncompressed,
)
from repro.stream import WindowedSpannerStream


PATTERN = "(a|b)*!x{ab}(a|b)*"

FUZZ_PATTERNS = [
    "!x{(a|b)*}!y{b}!z{(a|b)*}",
    "(a|b)*!x{ab}(a|b)*",
    "(!x{a})?(a|b)*",
]


@pytest.fixture(autouse=True)
def _obs_reset():
    obs.configure(enabled=False, reset=True)
    yield
    obs.configure(enabled=False, reset=True)


def _counter(name):
    return obs.metrics().counter(name).value


def _entries_equal(left, right):
    return (
        np.array_equal(left[0], right[0])
        and np.array_equal(left[1].rows, right[1].rows)
        and np.array_equal(left[2].rows, right[2].rows)
    )


def _assert_bit_for_bit(evaluator, cold, slp, node):
    """Every entry reachable from *node* matches a cold rebuild exactly."""
    cold.preprocess(slp, node)
    for current in slp.topological(node):
        warm = evaluator.node_entry(slp, current)
        fresh = cold.node_entry(slp, current)
        assert warm is not None and fresh is not None
        assert _entries_equal(warm, fresh), f"entry drift at node {current}"


# ---------------------------------------------------------------------------
# sealed fast path
# ---------------------------------------------------------------------------
class TestSealedFastPath:
    def test_repeat_preprocess_on_sealed_root_walks_nothing(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
        slp = SLP()
        node = power_node(slp, "ab", 10)
        evaluator.preprocess(slp, node)
        assert evaluator.is_sealed(slp, node)
        obs.configure(enabled=True)
        assert evaluator.preprocess(slp, node) == 0
        assert _counter("slp.eval.walk_visited") == 0
        assert _counter("slp.eval.sealed_hits") == 1
        # warm-store counter semantics are preserved (test_obs relies on it)
        assert _counter("slp.eval.cache_hits") == 1
        assert _counter("slp.eval.cache_misses") == 0

    def test_append_walk_is_frontier_sized_not_document_sized(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
        slp = SLP()
        node = power_node(slp, "ab", 14)  # 2^14 repetitions, ~30 nodes
        evaluator.preprocess(slp, node)
        total = len(slp.topological(node))
        obs.configure(enabled=True)
        bigger = slp.append_text(node, "abba")
        evaluator.preprocess(slp, bigger)
        visited = _counter("slp.eval.walk_visited")
        assert 0 < visited < total, "append walk re-visited the old document"
        assert _counter("slp.eval.walk_skipped") >= 1
        assert evaluator.is_sealed(slp, bigger)

    def test_cde_edit_discovery_prunes_at_sealed_children(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex("(a|b|c|d)*!x{ab}(a|b|c|d)*"))
        slp = SLP()
        node = power_node(slp, "abcd", 12)
        db = DocumentDatabase(slp)
        db.add_node("big", node)
        editor = Editor(db)
        evaluator.preprocess(slp, node)
        total = len(slp.topological(node))
        obs.configure(enabled=True)
        edited = editor.apply("edited", Delete(Doc("big"), 100, 2000))
        evaluator.preprocess(slp, edited)
        assert 0 < _counter("slp.eval.walk_visited") < total
        assert _counter("slp.eval.walk_skipped") >= 1

    def test_enumerate_and_nonempty_reuse_sealed_root(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
        slp = SLP()
        node = balanced_node(slp, "abab")
        want = evaluator.evaluate(slp, node)
        obs.configure(enabled=True)
        assert evaluator.is_nonempty(slp, node)
        assert evaluator.evaluate(slp, node) == want
        assert _counter("slp.eval.walk_visited") == 0


# ---------------------------------------------------------------------------
# unsealing: rollback aliasing and arena collection
# ---------------------------------------------------------------------------
class TestUnsealing:
    def test_invalidate_from_unseals_reused_ids(self):
        """Rollback truncates the arena and later allocations *reuse* the
        freed ids; a stale sealed bit would answer for the wrong document."""
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
        slp = SLP()
        base = balanced_node(slp, "aa")
        evaluator.preprocess(slp, base)
        mark = slp.num_nodes()
        first = slp.append_text(base, "ba")
        evaluator.preprocess(slp, first)
        assert evaluator.is_sealed(slp, first)
        stale_sigma = evaluator.node_entry(slp, first)[0].copy()
        # transaction rollback: invalidate above the mark, then truncate
        evaluator.invalidate_from(slp, mark)
        slp.truncate(mark)
        assert not evaluator.is_sealed(slp, first)
        assert evaluator.is_sealed(slp, base), "rollback unsealed survivors"
        # reuse the freed ids for *different* content ("aabb" vs "aaba")
        second = slp.append_text(base, "bb")
        assert second == first, "precondition: node id reused"
        fresh = evaluator.preprocess(slp, second)
        assert fresh > 0, "stale sealed root answered after rollback"
        assert not np.array_equal(
            evaluator.node_entry(slp, second)[0], stale_sigma
        ), "reused id kept the old document's matrices"
        cold = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
        assert evaluator.evaluate(slp, second) == cold.evaluate(slp, second)

    def test_purge_arena_drops_sealed_roots(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
        slp = SLP()
        node = balanced_node(slp, "abba")
        evaluator.preprocess(slp, node)
        serial = slp.serial
        assert evaluator.sealed_nodes(serial) > 0
        assert evaluator.arena_cache_stats(serial)["bytes"] > 0
        del slp, node
        gc.collect()
        assert evaluator.sealed_nodes(serial) == 0
        assert evaluator.arena_cache_stats(serial) == {
            "entries": 0,
            "bytes": 0,
            "sealed": 0,
        }


# ---------------------------------------------------------------------------
# membership + pattern sealed paths (differential vs cold)
# ---------------------------------------------------------------------------
class TestMembershipSealed:
    def test_incremental_matches_cold_path_and_simulation(self):
        nfa = compile_nfa("(ab)*")
        oracle = CompressedMembership(nfa)
        slp = SLP()
        node = power_node(slp, "ab", 8)
        text = "ab" * (2**8)
        assert oracle.accepts(slp, node)
        assert oracle.is_sealed(slp, node)
        for chunk in ["ab", "ba", "abab"]:
            node = slp.append_text(node, chunk)
            text += chunk
            cold = CompressedMembership(nfa)
            assert oracle.accepts(slp, node) == cold.accepts(slp, node)
            assert oracle.accepts(slp, node) == simulate_uncompressed(nfa, text)
            assert oracle.is_sealed(slp, node)

    def test_sealed_repeat_and_append_counters(self):
        oracle = CompressedMembership(compile_nfa("(ab)*"))
        slp = SLP()
        node = power_node(slp, "ab", 10)
        oracle.accepts(slp, node)
        total = oracle.cached_nodes(slp.serial)
        obs.configure(enabled=True)
        oracle.accepts(slp, node)
        assert _counter("slp.membership.sealed_hits") == 1
        assert _counter("slp.membership.cache_misses") == 0
        bigger = slp.append_text(node, "ab")
        oracle.accepts(slp, bigger)
        fresh = _counter("slp.membership.cache_misses")
        assert 0 < fresh < total, "append re-walked the sealed document"

    def test_invalidate_from_unseals_membership(self):
        nfa = compile_nfa("(ab)*")
        oracle = CompressedMembership(nfa)
        slp = SLP()
        base = power_node(slp, "ab", 4)
        oracle.accepts(slp, base)
        mark = slp.num_nodes()
        first = slp.append_text(base, "ba")
        assert not oracle.accepts(slp, first)
        oracle.invalidate_from(slp, mark)
        slp.truncate(mark)
        assert not oracle.is_sealed(slp, first)
        # the freed id range is reallocated for different content; a stale
        # matrix on any reused id would poison the fresh root's product
        second = slp.append_text(base, "bb")
        assert slp.num_nodes() > mark
        cold = CompressedMembership(nfa)
        assert np.array_equal(
            oracle.node_bitmatrix(slp, second).rows,
            cold.node_bitmatrix(slp, second).rows,
        )
        assert oracle.accepts(slp, second) == simulate_uncompressed(
            nfa, "ab" * 16 + "bb"
        )

    def test_purged_arena_drops_membership_matrices(self):
        oracle = CompressedMembership(compile_nfa("(ab)*"))
        slp = SLP()
        node = balanced_node(slp, "abab")
        oracle.accepts(slp, node)
        serial = slp.serial
        assert oracle.cached_nodes(serial) > 0
        del slp, node
        gc.collect()
        assert oracle.cached_nodes(serial) == 0


class TestPatternSealed:
    def test_incremental_counts_match_cold_matcher(self):
        matcher = CompressedPatternMatcher("aba")
        slp = SLP()
        node = balanced_node(slp, "ababab")
        text = "ababab"
        assert matcher.count(slp, node) == 2
        assert matcher.is_sealed(slp, node)
        for chunk in ["ab", "a", "bab"]:
            node = slp.append_text(node, chunk)
            text += chunk
            cold = CompressedPatternMatcher("aba")
            assert matcher.count(slp, node) == cold.count(slp, node)
            assert list(matcher.occurrences(slp, node)) == list(
                cold.occurrences(slp, node)
            )
        assert matcher.cached_nodes(slp.serial) == matcher.cached_nodes()

    def test_invalidate_from_unseals_pattern(self):
        matcher = CompressedPatternMatcher("ab")
        slp = SLP()
        base = balanced_node(slp, "abab")
        matcher.count(slp, base)
        mark = slp.num_nodes()
        first = slp.append_text(base, "ab")
        assert matcher.count(slp, first) == 3
        matcher.invalidate_from(slp, mark)
        slp.truncate(mark)
        assert not matcher.is_sealed(slp, first)
        # freed ids come back with different content; stale counts on any
        # reused id would corrupt the fresh root's sum ("ababba" has 2)
        second = slp.append_text(base, "ba")
        assert slp.num_nodes() > mark
        assert matcher.count(slp, second) == 2
        cold = CompressedPatternMatcher("ab")
        assert matcher.count(slp, second) == cold.count(slp, second)


# ---------------------------------------------------------------------------
# stack integration: db.stats() and stream stats
# ---------------------------------------------------------------------------
class TestStackIntegration:
    def test_db_stats_report_per_spanner_bytes_and_sealed(self):
        db = SpannerDB()
        db.add_document("logs", "abab" * 32)
        db.register_spanner("m", PATTERN)
        list(db.query("m", "logs"))
        stats = db.stats()
        cache = stats["spanner_caches"]["m"]
        assert cache["entries"] > 0
        assert cache["bytes"] > 0
        assert cache["sealed"] > 0
        assert stats["evaluator_cache_entries"] == cache["entries"]
        assert stats["evaluator_cache_bytes"] == cache["bytes"]
        assert stats["cached_matrices"]["m"] == cache["entries"]

    def test_db_edit_then_query_discovers_only_fresh_frontier(self):
        db = SpannerDB()
        db.add_document("logs", "ab" * 512)
        db.register_spanner("m", PATTERN)
        list(db.query("m", "logs"))
        obs.configure(enabled=True)
        db.edit("edited", Delete(Doc("logs"), 4, 40))
        list(db.query("m", "edited"))
        visited = _counter("slp.eval.walk_visited")
        assert 0 < visited < db.stats()["slp_nodes"]

    def test_stream_stats_expose_sealed_nodes(self):
        stream = WindowedSpannerStream(PATTERN)
        stream.append("abab")
        stream.append("ba" * 8)
        stats = stream.stats()
        assert stats["sealed_nodes"] > 0
        assert stats["cached_nodes"] >= stats["sealed_nodes"]


# ---------------------------------------------------------------------------
# 200-seed differential lane (slow_fuzz, excluded by default)
# ---------------------------------------------------------------------------
_ASTRAL = "\U0001f600\U0001f680\U00010348"


def _random_text(rng, length):
    return "".join(rng.choice("ab" + _ASTRAL) for _ in range(length))


@pytest.mark.slow_fuzz
@pytest.mark.parametrize("seed", range(200))
def test_incremental_equals_rebuild_bit_for_bit(seed):
    """edit + incremental preprocess == rebuild-from-scratch, bit for bit,
    across appends, CDE deletes, rollback-then-reuse of node ids, and
    astral-plane unicode documents."""
    rng = random.Random(seed)
    pattern = rng.choice(FUZZ_PATTERNS)
    spanner = spanner_from_regex(pattern)
    evaluator = SLPSpannerEvaluator(spanner)
    slp = SLP()
    node = balanced_node(slp, _random_text(rng, rng.randint(8, 40)))
    evaluator.preprocess(slp, node)
    for _ in range(rng.randint(2, 5)):
        op = rng.choice(["append", "delete", "rollback"])
        if op == "append":
            node = slp.append_text(node, _random_text(rng, rng.randint(1, 12)))
        elif op == "delete":
            length = slp.length(node)
            if length < 2:
                continue
            # CDE factor ranges are 1-based inclusive; keep >= 1 char
            i = rng.randint(1, length)
            j = rng.randint(i, length)
            if i == 1 and j == length:
                continue
            db = DocumentDatabase(slp)
            db.add_node("d", node)
            node = Editor(db).apply("e", Delete(Doc("d"), i, j))
        else:
            mark = slp.num_nodes()
            scratch = slp.append_text(node, _random_text(rng, rng.randint(1, 8)))
            evaluator.preprocess(slp, scratch)
            evaluator.invalidate_from(slp, mark)
            slp.truncate(mark)
            assert not evaluator.is_sealed(slp, scratch)
            # reuse the freed ids for different content (the aliasing hazard)
            node = slp.append_text(node, _random_text(rng, rng.randint(1, 8)))
        evaluator.preprocess(slp, node)
        assert evaluator.is_sealed(slp, node)
        cold = SLPSpannerEvaluator(spanner)
        _assert_bit_for_bit(evaluator, cold, slp, node)
        assert evaluator.evaluate(slp, node) == cold.evaluate(slp, node)
