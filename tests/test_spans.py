"""Unit and property tests for spans, span tuples, and span relations."""

import pytest
from hypothesis import given, strategies as st

from repro.core import Span, SpanRelation, SpanTuple, fuse, fuse_tuple
from repro.errors import InvalidSpanError, SchemaError


# ---------------------------------------------------------------------------
# Span
# ---------------------------------------------------------------------------
class TestSpan:
    def test_paper_convention_is_one_based_half_open(self):
        # Example 1.1: [1,2⟩ of "ababbab" is the first character.
        assert Span(1, 2).extract("ababbab") == "a"
        assert Span(3, 8).extract("ababbab") == "abbab"

    def test_empty_span(self):
        span = Span(4, 4)
        assert len(span) == 0
        assert span.is_empty()
        assert span.extract("abc") == ""

    def test_full_document_span(self):
        doc = "ababbab"
        assert Span(1, len(doc) + 1).extract(doc) == doc

    def test_invalid_bounds_rejected(self):
        with pytest.raises(InvalidSpanError):
            Span(0, 2)
        with pytest.raises(InvalidSpanError):
            Span(3, 2)
        with pytest.raises(InvalidSpanError):
            Span(1.5, 2)  # type: ignore[arg-type]

    def test_extract_out_of_range(self):
        with pytest.raises(InvalidSpanError):
            Span(1, 9).extract("abc")

    def test_from_offsets_round_trip(self):
        span = Span.from_offsets(2, 5)
        assert span == Span(3, 6)
        assert span.offsets == (2, 5)

    def test_contains(self):
        assert Span(2, 6).contains(Span(3, 5))
        assert Span(2, 6).contains(Span(2, 6))
        assert not Span(3, 5).contains(Span(2, 6))

    def test_disjoint_touching_spans(self):
        assert Span(1, 3).disjoint(Span(3, 5))
        assert Span(3, 5).disjoint(Span(1, 3))
        assert not Span(1, 4).disjoint(Span(3, 5))

    def test_overlap_is_proper_overlap_only(self):
        # The configuration of subword-marked word (1) in the paper:
        # x=[2,6⟩ and y=[4,8⟩ properly overlap.
        assert Span(2, 6).overlaps(Span(4, 8))
        assert Span(4, 8).overlaps(Span(2, 6))
        # nesting is not overlap
        assert not Span(1, 8).overlaps(Span(2, 6))
        # disjointness is not overlap
        assert not Span(1, 3).overlaps(Span(5, 7))

    def test_shift(self):
        assert Span(2, 6).shift(3) == Span(5, 9)

    def test_ordering_is_lexicographic(self):
        assert Span(1, 4) < Span(2, 3)
        assert Span(2, 3) < Span(2, 5)

    @given(st.integers(1, 50), st.integers(0, 50))
    def test_len_matches_extract(self, start, length):
        span = Span(start, start + length)
        doc = "a" * (span.end - 1)
        assert len(span.extract(doc)) == len(span) == length

    @given(
        st.tuples(st.integers(1, 20), st.integers(0, 10)),
        st.tuples(st.integers(1, 20), st.integers(0, 10)),
    )
    def test_overlap_trichotomy(self, a, b):
        """Any two spans are disjoint, nested, or properly overlapping."""
        s = Span(a[0], a[0] + a[1])
        t = Span(b[0], b[0] + b[1])
        nested = s.contains(t) or t.contains(s)
        assert s.disjoint(t) + nested + s.overlaps(t) >= 1
        # proper overlap excludes the other two
        if s.overlaps(t):
            assert not s.disjoint(t) and not nested


# ---------------------------------------------------------------------------
# SpanTuple
# ---------------------------------------------------------------------------
class TestSpanTuple:
    def test_construction_and_lookup(self):
        tup = SpanTuple.of(x=Span(1, 2), y=Span(2, 3))
        assert tup["x"] == Span(1, 2)
        assert tup.get("z") is None
        assert "y" in tup and "z" not in tup
        assert tup.variables == {"x", "y"}

    def test_none_means_undefined(self):
        tup = SpanTuple.of(x=Span(1, 2), y=None)
        assert tup.variables == {"x"}
        assert not tup.is_total_on({"x", "y"})
        assert tup.is_total_on({"x"})

    def test_duplicate_variable_rejected(self):
        with pytest.raises(SchemaError):
            SpanTuple([("x", Span(1, 2)), ("x", Span(2, 3))])

    def test_equality_ignores_insertion_order(self):
        a = SpanTuple([("x", Span(1, 2)), ("y", Span(2, 3))])
        b = SpanTuple([("y", Span(2, 3)), ("x", Span(1, 2))])
        assert a == b
        assert hash(a) == hash(b)

    def test_contents(self):
        tup = SpanTuple.of(x=Span(1, 3), y=Span(5, 7))
        assert tup.contents("abaaab") == {"x": "ab", "y": "ab"}

    def test_satisfies_equality_from_paper_intro(self):
        # S_alpha(abaaab): ([1,3⟩,[5,7⟩) selected, ([1,3⟩,[4,7⟩) discarded.
        doc = "abaaab"
        kept = SpanTuple.of(x=Span(1, 3), y=Span(5, 7))
        dropped = SpanTuple.of(x=Span(1, 3), y=Span(4, 7))
        assert kept.satisfies_equality(doc, ["x", "y"])
        assert not dropped.satisfies_equality(doc, ["x", "y"])

    def test_satisfies_equality_ignores_undefined(self):
        tup = SpanTuple.of(x=Span(1, 3))
        assert tup.satisfies_equality("abaaab", ["x", "y"])

    def test_project(self):
        tup = SpanTuple.of(x=Span(1, 2), y=Span(2, 3), z=Span(3, 4))
        assert tup.project(["x", "z"]) == SpanTuple.of(x=Span(1, 2), z=Span(3, 4))

    def test_rename(self):
        tup = SpanTuple.of(x=Span(1, 2))
        assert tup.rename({"x": "u"}) == SpanTuple.of(u=Span(1, 2))

    def test_compatible_and_merge(self):
        a = SpanTuple.of(x=Span(1, 2), y=Span(2, 3))
        b = SpanTuple.of(y=Span(2, 3), z=Span(4, 5))
        c = SpanTuple.of(y=Span(9, 9))
        assert a.compatible(b)
        assert not a.compatible(c)
        assert a.merge(b) == SpanTuple.of(x=Span(1, 2), y=Span(2, 3), z=Span(4, 5))
        with pytest.raises(SchemaError):
            a.merge(c)

    def test_fits(self):
        assert SpanTuple.of(x=Span(1, 4)).fits("abc")
        assert not SpanTuple.of(x=Span(1, 5)).fits("abc")


# ---------------------------------------------------------------------------
# SpanRelation
# ---------------------------------------------------------------------------
def _rel(variables, *tuples):
    return SpanRelation(variables, tuples)


class TestSpanRelation:
    def test_schema_is_sorted_and_enforced(self):
        rel = _rel(["y", "x"], SpanTuple.of(x=Span(1, 2)))
        assert rel.variables == ("x", "y")
        with pytest.raises(SchemaError):
            _rel(["x"], SpanTuple.of(z=Span(1, 2)))

    def test_deduplication(self):
        tup = SpanTuple.of(x=Span(1, 2))
        rel = _rel(["x"], tup, tup)
        assert len(rel) == 1

    def test_union(self):
        a = _rel(["x"], SpanTuple.of(x=Span(1, 2)))
        b = _rel(["y"], SpanTuple.of(y=Span(2, 3)))
        u = a.union(b)
        assert u.variables == ("x", "y")
        assert len(u) == 2

    def test_project(self):
        rel = _rel(
            ["x", "y"],
            SpanTuple.of(x=Span(1, 2), y=Span(2, 3)),
            SpanTuple.of(x=Span(1, 2), y=Span(3, 4)),
        )
        projected = rel.project(["x"])
        assert projected.variables == ("x",)
        assert len(projected) == 1  # both rows collapse

    def test_natural_join_on_shared_variable(self):
        left = _rel(
            ["x", "y"],
            SpanTuple.of(x=Span(1, 2), y=Span(2, 3)),
            SpanTuple.of(x=Span(1, 2), y=Span(3, 4)),
        )
        right = _rel(
            ["y", "z"],
            SpanTuple.of(y=Span(2, 3), z=Span(5, 6)),
        )
        joined = left.natural_join(right)
        assert joined.variables == ("x", "y", "z")
        assert joined.tuples == frozenset(
            {SpanTuple.of(x=Span(1, 2), y=Span(2, 3), z=Span(5, 6))}
        )

    def test_join_with_disjoint_schemas_is_cross_product(self):
        left = _rel(["x"], SpanTuple.of(x=Span(1, 2)), SpanTuple.of(x=Span(2, 3)))
        right = _rel(["y"], SpanTuple.of(y=Span(1, 2)), SpanTuple.of(y=Span(2, 3)))
        assert len(left.natural_join(right)) == 4

    def test_select_equal(self):
        doc = "abaaab"
        rel = _rel(
            ["x", "y"],
            SpanTuple.of(x=Span(1, 3), y=Span(5, 7)),
            SpanTuple.of(x=Span(1, 3), y=Span(4, 7)),
        )
        selected = rel.select_equal(doc, ["x", "y"])
        assert selected.tuples == frozenset({SpanTuple.of(x=Span(1, 3), y=Span(5, 7))})
        with pytest.raises(SchemaError):
            rel.select_equal(doc, ["q"])

    def test_is_functional(self):
        total = _rel(["x"], SpanTuple.of(x=Span(1, 2)))
        partial = _rel(["x", "y"], SpanTuple.of(x=Span(1, 2)))
        assert total.is_functional()
        assert not partial.is_functional()

    def test_to_table_matches_example_1_1_shape(self):
        rel = _rel(
            ["x", "y", "z"],
            SpanTuple.of(x=Span(1, 2), y=Span(2, 3), z=Span(3, 8)),
            SpanTuple.of(x=Span(1, 4), y=Span(4, 5), z=Span(5, 8)),
        )
        table = rel.to_table()
        lines = table.splitlines()
        assert lines[0].split(" | ")[0].strip() == "x"
        assert "[1,2⟩" in lines[2]
        assert len(lines) == 4  # header + rule + two rows

    def test_iteration_is_deterministic(self):
        rel = _rel(
            ["x"],
            SpanTuple.of(x=Span(3, 4)),
            SpanTuple.of(x=Span(1, 2)),
            SpanTuple.of(x=Span(2, 2)),
        )
        assert [t["x"] for t in rel] == [Span(1, 2), Span(2, 2), Span(3, 4)]


# ---------------------------------------------------------------------------
# fusion operator (Section 3.2)
# ---------------------------------------------------------------------------
class TestFusion:
    def test_paper_example(self):
        # ⨝_{x1,x3→y}(([1,3⟩,[2,6⟩,[3,7⟩)) = ([1,7⟩,[2,6⟩)
        tup = SpanTuple.of(x1=Span(1, 3), x2=Span(2, 6), x3=Span(3, 7))
        fused = fuse_tuple(tup, ["x1", "x3"], "y")
        assert fused == SpanTuple.of(y=Span(1, 7), x2=Span(2, 6))

    def test_fusing_undefined_group_leaves_target_undefined(self):
        tup = SpanTuple.of(x2=Span(2, 6))
        fused = fuse_tuple(tup, ["x1", "x3"], "y")
        assert fused == SpanTuple.of(x2=Span(2, 6))

    def test_fusion_on_relation(self):
        rel = _rel(
            ["a", "b"],
            SpanTuple.of(a=Span(1, 3), b=Span(2, 5)),
            SpanTuple.of(a=Span(4, 6), b=Span(1, 2)),
        )
        fused = fuse(rel, ["a", "b"], "c")
        assert fused.variables == ("c",)
        assert fused.tuples == frozenset(
            {SpanTuple.of(c=Span(1, 5)), SpanTuple.of(c=Span(1, 6))}
        )

    def test_fusion_name_clash_rejected(self):
        tup = SpanTuple.of(a=Span(1, 3), b=Span(2, 5))
        with pytest.raises(SchemaError):
            fuse_tuple(tup, ["a"], "b")

    @given(
        st.dictionaries(
            st.sampled_from(["x", "y", "z"]),
            st.tuples(st.integers(1, 10), st.integers(0, 5)),
            min_size=1,
        )
    )
    def test_fused_span_covers_all_group_spans(self, raw):
        tup = SpanTuple({v: Span(s, s + l) for v, (s, l) in raw.items()})
        fused = fuse_tuple(tup, list(raw), "f")
        target = fused["f"]
        for var in raw:
            assert target.contains(tup[var])


# ---------------------------------------------------------------------------
# span arithmetic and relation-level hierarchicality (added utilities)
# ---------------------------------------------------------------------------
class TestSpanArithmetic:
    def test_intersect(self):
        assert Span(1, 5).intersect(Span(3, 8)) == Span(3, 5)
        assert Span(1, 3).intersect(Span(3, 5)) == Span(3, 3)  # touching
        assert Span(1, 2).intersect(Span(4, 5)) is None
        assert Span(2, 6).intersect(Span(3, 4)) == Span(3, 4)  # nested

    def test_hull(self):
        assert Span(1, 3).hull(Span(5, 7)) == Span(1, 7)
        assert Span(2, 6).hull(Span(3, 4)) == Span(2, 6)

    @given(
        st.tuples(st.integers(1, 20), st.integers(0, 8)),
        st.tuples(st.integers(1, 20), st.integers(0, 8)),
    )
    def test_hull_contains_both_and_intersect_is_contained(self, a, b):
        s = Span(a[0], a[0] + a[1])
        t = Span(b[0], b[0] + b[1])
        hull = s.hull(t)
        assert hull.contains(s) and hull.contains(t)
        meet = s.intersect(t)
        if meet is not None:
            assert s.contains(meet) and t.contains(meet)

    def test_intersect_commutative(self):
        assert Span(1, 5).intersect(Span(3, 8)) == Span(3, 8).intersect(Span(1, 5))


class TestRelationHierarchicality:
    def test_hierarchical_relation(self):
        rel = _rel(
            ["x", "y"],
            SpanTuple.of(x=Span(1, 8), y=Span(2, 4)),   # nested
            SpanTuple.of(x=Span(1, 2), y=Span(5, 6)),   # disjoint
        )
        assert rel.is_hierarchical()

    def test_overlapping_relation(self):
        rel = _rel(["x", "y"], SpanTuple.of(x=Span(1, 4), y=Span(2, 6)))
        assert not rel.is_hierarchical()

    def test_word_1_of_the_paper_is_not_hierarchical(self):
        # the tuple of subword-marked word (1): x=[2,6), y=[4,8), z=[1,8)
        rel = _rel(
            ["x", "y", "z"],
            SpanTuple.of(x=Span(2, 6), y=Span(4, 8), z=Span(1, 8)),
        )
        assert not rel.is_hierarchical()
