"""Tests for extended vset-automata and their determinisation (Section 2.2)."""

from hypothesis import given, settings, strategies as st

from repro.automata import NFA, VSetAutomaton
from repro.automata.evset import ExtendedVSetAutomaton
from repro.core import Close, Open, Span, SpanTuple, mark_document


def capture_word(var, word, alphabet="ab"):
    """Σ* var{word} Σ* as a vset-automaton."""
    nfa = NFA()
    s = nfa.add_state(initial=True)
    for ch in alphabet:
        nfa.add_arc(s, ch, s)
    here = nfa.add_state()
    nfa.add_arc(s, Open(var), here)
    for ch in word:
        nxt = nfa.add_state()
        nfa.add_arc(here, ch, nxt)
        here = nxt
    t = nfa.add_state(accepting=True)
    nfa.add_arc(here, Close(var), t)
    for ch in alphabet:
        nfa.add_arc(t, ch, t)
    return VSetAutomaton(nfa)


def adjacent_captures():
    """x{a} immediately followed by y{b}: Close(x) and Open(y) coincide."""
    nfa = NFA()
    states = nfa.add_states(7)
    nfa.initial = {states[0]}
    nfa.accepting = {states[6]}
    nfa.add_arc(states[0], Open("x"), states[1])
    nfa.add_arc(states[1], "a", states[2])
    nfa.add_arc(states[2], Close("x"), states[3])
    nfa.add_arc(states[3], Open("y"), states[4])
    nfa.add_arc(states[4], "b", states[5])
    nfa.add_arc(states[5], Close("y"), states[6])
    return VSetAutomaton(nfa)


class TestFromVset:
    def test_marker_runs_become_sets(self):
        eva = ExtendedVSetAutomaton.from_vset(adjacent_captures())
        letters = set()
        for arcs in eva.set_arcs.values():
            letters.update(s for s, _ in arcs)
        # the run Close(x)·Open(y) must be available as the combined set
        assert frozenset({Close("x"), Open("y")}) in letters

    def test_run_on_extended_word(self):
        eva = ExtendedVSetAutomaton.from_vset(adjacent_captures())
        word = mark_document("ab", SpanTuple.of(x=Span(1, 2), y=Span(2, 3)))
        blocks, doc = word.extended_blocks()
        assert eva.run(blocks, doc)

    def test_run_rejects_wrong_tuple(self):
        eva = ExtendedVSetAutomaton.from_vset(adjacent_captures())
        word = mark_document("ab", SpanTuple.of(x=Span(1, 3), y=Span(3, 3)))
        blocks, doc = word.extended_blocks()
        assert not eva.run(blocks, doc)

    def test_run_rejects_wrong_document(self):
        eva = ExtendedVSetAutomaton.from_vset(adjacent_captures())
        word = mark_document("ba", SpanTuple.of(x=Span(1, 2), y=Span(2, 3)))
        blocks, doc = word.extended_blocks()
        assert not eva.run(blocks, doc)

    def test_epsilon_arcs_are_eliminated(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        mid = nfa.add_state()
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, None, mid)
        nfa.add_arc(mid, Open("x"), mid2 := nfa.add_state())
        nfa.add_arc(mid2, Close("x"), t)
        eva = ExtendedVSetAutomaton.from_vset(VSetAutomaton(nfa))
        word = mark_document("", SpanTuple.of(x=Span(1, 1)))
        blocks, doc = word.extended_blocks()
        assert eva.run(blocks, doc)


class TestToVset:
    def test_round_trip_preserves_spanner(self):
        original = adjacent_captures()
        round_tripped = ExtendedVSetAutomaton.from_vset(original).to_vset()
        for doc in ["ab", "ba", "aab", ""]:
            assert round_tripped.evaluate(doc) == original.evaluate(doc)

    def test_expansion_uses_canonical_order(self):
        round_tripped = ExtendedVSetAutomaton.from_vset(adjacent_captures()).to_vset()
        canonical = mark_document("ab", SpanTuple.of(x=Span(1, 2), y=Span(2, 3)))
        assert round_tripped.accepts_marked_word(canonical)
        # the non-canonical order Close(x)·Open(y) must be rejected
        non_canonical = [Open("x"), "a", Close("x"), Open("y"), "b", Close("y")]
        assert not round_tripped.nfa.accepts_symbols(non_canonical)


class TestDeterminize:
    def test_deterministic_run_agrees(self):
        eva = ExtendedVSetAutomaton.from_vset(capture_word("x", "ab"))
        det = eva.determinize()
        for tup in [
            SpanTuple.of(x=Span(1, 3)),
            SpanTuple.of(x=Span(3, 5)),
            SpanTuple.of(x=Span(2, 4)),
        ]:
            word = mark_document("abab", tup)
            blocks, doc = word.extended_blocks()
            assert det.run(blocks, doc) == eva.run(blocks, doc)

    def test_char_transitions_are_functions(self):
        det = ExtendedVSetAutomaton.from_vset(capture_word("x", "ab")).determinize()
        for row in det.char_trans:
            assert all(isinstance(target, int) for target in row.values())

    def test_marker_set_alphabet(self):
        det = ExtendedVSetAutomaton.from_vset(adjacent_captures()).determinize()
        alphabet = det.marker_set_alphabet()
        assert frozenset({Open("x")}) in alphabet
        assert frozenset({Close("x"), Open("y")}) in alphabet

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="ab", max_size=5))
    def test_determinization_preserves_evaluation(self, doc):
        from repro.enumeration.naive import evaluate_eva

        vset = capture_word("x", "ab")
        eva = ExtendedVSetAutomaton.from_vset(vset)
        relation = evaluate_eva(eva, doc)
        det = eva.determinize()
        # every tuple of the relation must be accepted by the deterministic
        # automaton, and no other total tuple may be
        for start in range(1, len(doc) + 2):
            for end in range(start, len(doc) + 2):
                tup = SpanTuple.of(x=Span(start, end))
                word = mark_document(doc, tup)
                blocks, chars = word.extended_blocks()
                assert det.run(blocks, chars) == (tup in relation)
