"""Tests for spanner-datalog (the [33] coverage direction, Section 1)."""

import pytest

from repro.core import Span, SpanTuple
from repro.datalog import (
    Atom,
    Program,
    Rule,
    select_equal_program,
    string_equality_program,
)
from repro.errors import SchemaError
from repro.regex import spanner_from_regex
from repro.spanners import prim


class TestEngineBasics:
    def test_atom_and_rule_validation(self):
        with pytest.raises(SchemaError):
            Atom("", ("x",))
        with pytest.raises(SchemaError):
            Rule(Atom("P", ("x",)), ())
        with pytest.raises(SchemaError):
            Rule(Atom("P", ("x",)), (Atom("Q", ("y",)),))  # unsafe head

    def test_arity_consistency(self):
        edb = {"E": (spanner_from_regex("!x{a}"), ("x",))}
        rules = [Rule(Atom("P", ("x",)), (Atom("E", ("x",)),)),
                 Rule(Atom("P", ("x", "x")), (Atom("E", ("x",)),))]
        with pytest.raises(SchemaError):
            Program(edb, rules)

    def test_edb_idb_clash(self):
        edb = {"E": (spanner_from_regex("!x{a}"), ("x",))}
        rules = [Rule(Atom("E", ("x",)), (Atom("E", ("x",)),))]
        with pytest.raises(SchemaError):
            Program(edb, rules)

    def test_copy_rule(self):
        edb = {"E": (spanner_from_regex("(a|b)*!x{a}(a|b)*"), ("x",))}
        program = Program(edb, [Rule(Atom("P", ("x",)), (Atom("E", ("x",)),))])
        facts = program.query("aba", "P")
        assert facts == {(Span(1, 2),), (Span(3, 4),)}

    def test_join_rule(self):
        # P(x, y) :- A(x), B(y)
        edb = {
            "A": (spanner_from_regex("(a|b)*!x{a}(a|b)*"), ("x",)),
            "B": (spanner_from_regex("(a|b)*!y{b}(a|b)*"), ("y",)),
        }
        program = Program(
            edb, [Rule(Atom("P", ("x", "y")), (Atom("A", ("x",)), Atom("B", ("y",))))]
        )
        facts = program.query("ab", "P")
        assert facts == {(Span(1, 2), Span(2, 3))}

    def test_shared_variable_joins(self):
        # Same(x) :- A(x), B(x)
        edb = {
            "A": (spanner_from_regex("(a|b)*!x{a+}(a|b)*"), ("x",)),
            "B": (spanner_from_regex("(a|b)*!x{(a|b)}(a|b)*"), ("x",)),
        }
        program = Program(
            edb, [Rule(Atom("Same", ("x",)), (Atom("A", ("x",)), Atom("B", ("x",))))]
        )
        # length-1 'a' spans only
        facts = program.query("aab", "Same")
        assert facts == {(Span(1, 2),), (Span(2, 3),)}

    def test_recursion_transitive_closure(self):
        """Reach(x, y): y starts where x ends (chained adjacency)."""
        edb = {
            "Adj": (
                spanner_from_regex("(a|b)*!x{(a|b)}!y{(a|b)}(a|b)*"),
                ("x", "y"),
            )
        }
        rules = [
            Rule(Atom("Reach", ("x", "y")), (Atom("Adj", ("x", "y")),)),
            Rule(
                Atom("Reach", ("x", "z")),
                (Atom("Adj", ("x", "y")), Atom("Reach", ("y", "z"))),
            ),
        ]
        program = Program(edb, rules)
        facts = program.query("abab", "Reach")
        # from position 1, every later single-char span is reachable
        assert (Span(1, 2), Span(4, 5)) in facts
        assert (Span(2, 3), Span(1, 2)) not in facts

    def test_unknown_query_predicate(self):
        program = Program({"E": (spanner_from_regex("!x{a}"), ("x",))}, [
            Rule(Atom("P", ("x",)), (Atom("E", ("x",)),))
        ])
        with pytest.raises(SchemaError):
            program.query("a", "Nope")


class TestStringEquality:
    def test_streq_on_small_document(self):
        program = string_equality_program("ab")
        doc = "aba"
        facts = program.query(doc, "StrEq")
        pairs = {(x, y) for x, y in facts}
        # every pair of equal-content spans, including empty ones
        assert (Span(1, 2), Span(3, 4)) in pairs       # 'a' == 'a'
        assert (Span(1, 1), Span(2, 2)) in pairs       # '' == ''
        assert (Span(1, 2), Span(2, 3)) not in pairs   # 'a' != 'b'
        for x, y in pairs:
            assert x.extract(doc) == y.extract(doc)

    def test_streq_is_complete(self):
        program = string_equality_program("ab")
        doc = "abab"
        pairs = program.query(doc, "StrEq")
        for i in range(1, len(doc) + 2):
            for j in range(i, len(doc) + 2):
                for k in range(1, len(doc) + 2):
                    for l in range(k, len(doc) + 2):
                        x, y = Span(i, j), Span(k, l)
                        expected = x.extract(doc) == y.extract(doc)
                        assert ((x, y) in pairs) == expected, (x, y)

    def test_datalog_simulates_string_equality_selection(self):
        """The [33] claim, executably: Answer == ς=_{x,y}(⟦spanner⟧)."""
        pattern = "(a|b)*!x{(a|b)+}(a|b)*!y{(a|b)+}(a|b)*"
        spanner = spanner_from_regex(pattern)
        program = select_equal_program(spanner, "x", "y", "ab")
        core = prim(pattern).select_equal({"x", "y"})
        doc = "abab"
        datalog_answer = {
            SpanTuple.of(x=x, y=y) for x, y in program.query(doc, "Answer")
        }
        assert datalog_answer == core.evaluate(doc).tuples

    def test_select_equal_program_validates_variables(self):
        with pytest.raises(SchemaError):
            select_equal_program(spanner_from_regex("!x{a}"), "x", "zz", "ab")
