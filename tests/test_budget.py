"""Resource governance: deadlines, step budgets, and byte guards.

The acceptance test of this suite: a pathological exponential-length SLP
workload, which ungoverned would run (nearly) forever, terminates with a
clean :class:`~repro.errors.DeadlineExceededError` under a budget.
"""

import pytest

from repro import Budget, Deadline, RegularSpanner, SpannerDB
from repro.errors import (
    DeadlineExceededError,
    EvaluationLimitError,
    MemoryLimitError,
)
from repro.slp import SLP, Concat, Doc, SLPSpannerEvaluator, power_node


class TestDeadline:
    def test_remaining_counts_down(self):
        deadline = Deadline.after(60.0)
        assert 59.0 < deadline.remaining() <= 60.0
        assert not deadline.expired()

    def test_expired(self):
        assert Deadline.after(-1.0).expired()


class TestBudgetPrimitives:
    def test_step_budget_raises_on_exhaustion(self):
        budget = Budget(max_steps=10)
        for _ in range(10):
            budget.step()
        with pytest.raises(EvaluationLimitError):
            budget.step()

    def test_deadline_exceeded_is_an_evaluation_limit_error(self):
        budget = Budget(deadline=Deadline(at=0.0))
        with pytest.raises(DeadlineExceededError):
            budget.check_deadline()
        assert issubclass(DeadlineExceededError, EvaluationLimitError)

    def test_deadline_checked_amortised_inside_step(self):
        budget = Budget(deadline=Deadline(at=0.0), check_interval=8)
        with pytest.raises(DeadlineExceededError):
            for _ in range(9):
                budget.step()

    def test_charge_bytes(self):
        budget = Budget(max_bytes=100)
        budget.charge_bytes(100)  # at the limit: fine
        with pytest.raises(MemoryLimitError):
            budget.charge_bytes(101, what="test blob")

    def test_remaining_steps(self):
        budget = Budget(max_steps=5)
        budget.step(3)
        assert budget.remaining_steps() == 2
        assert Budget().remaining_steps() is None

    def test_budget_accumulates_across_calls(self):
        budget = Budget(max_steps=30)
        spanner = RegularSpanner.from_regex("(a|b)*!x{b}(a|b)*")
        spanner.evaluate("ab", budget)
        first = budget.steps
        spanner.evaluate("ab", budget)
        assert budget.steps > first


class TestGovernedEvaluation:
    def test_enumerate_respects_step_budget(self):
        spanner = RegularSpanner.from_regex("(a|b)*!x{b}(a|b)*")
        doc = "ab" * 200
        with pytest.raises(EvaluationLimitError):
            list(spanner.enumerate(doc, Budget(max_steps=50)))

    def test_evaluate_unbudgeted_still_works(self):
        spanner = RegularSpanner.from_regex("(a|b)*!x{b}(a|b)*")
        assert len(spanner.evaluate("abb")) == 2

    def test_product_index_byte_guard(self):
        spanner = RegularSpanner.from_regex("(a|b)*!x{b}(a|b)*")
        with pytest.raises(MemoryLimitError):
            spanner.evaluate("ab" * 500, Budget(max_bytes=64))

    def test_core_satisfiability_search_is_governed(self):
        from repro.decision import is_satisfiable
        from repro.spanners import prim

        spanner = prim("!x1{a+}!x2{b+}").select_equal({"x1", "x2"})
        with pytest.raises(EvaluationLimitError):
            is_satisfiable(spanner, max_length=10, budget=Budget(max_steps=100))


class TestExponentialWorkloads:
    """The raison d'être: SLP documents of length 2^k are easy to *store*
    and pathological to *enumerate over* — budgets make that safe."""

    def evaluator(self):
        return SLPSpannerEvaluator(
            RegularSpanner.from_regex("(a|b)*!x{b}(a|b)*").automaton
        )

    def test_deadline_cuts_off_exponential_enumeration(self):
        slp = SLP()
        node = power_node(slp, "ab", 40)  # |D| = 2^40 · 2 characters
        evaluator = self.evaluator()
        budget = Budget(deadline=0.2)
        with pytest.raises(DeadlineExceededError):
            for _ in evaluator.enumerate(slp, node, budget):
                pass

    def test_step_budget_cuts_off_exponential_enumeration(self):
        slp = SLP()
        node = power_node(slp, "ab", 30)
        evaluator = self.evaluator()
        with pytest.raises(EvaluationLimitError):
            for _ in evaluator.enumerate(slp, node, Budget(max_steps=10_000)):
                pass

    def test_spannerdb_doubling_edits_governed(self):
        """40 doubling edits make a 2^40-character document inside SpannerDB;
        a budgeted query dies cleanly, the store stays intact."""
        db = SpannerDB()
        db.add_document("d0", "ab")
        for index in range(40):
            db.edit(f"d{index + 1}", Concat(Doc(f"d{index}"), Doc(f"d{index}")))
        db.register_spanner("m", "(a|b)*!x{b}(a|b)*")
        assert db.document_length("d40") == 2 ** 41

        with pytest.raises(DeadlineExceededError):
            for _ in db.query("m", "d40", Budget(deadline=0.2)):
                pass
        # the store survived: small documents still answer instantly
        assert len(list(db.query("m", "d0"))) == 1

    def test_decompression_bomb_guard_on_document_text(self):
        db = SpannerDB()
        db.add_document("d0", "ab")
        for index in range(40):
            db.edit(f"d{index + 1}", Concat(Doc(f"d{index}"), Doc(f"d{index}")))
        with pytest.raises(MemoryLimitError):
            db.document_text("d40", budget=Budget(max_bytes=10**6))
        from repro.errors import SLPError

        with pytest.raises(SLPError):  # the plain limit guard still applies
            db.document_text("d40")

    def test_cde_expansion_bomb_guard(self):
        """A CDE expression that doubles 50 times is rejected mid-expansion
        by the byte guard, and rolled back."""
        db = SpannerDB()
        db.add_document("d", "ab")
        expr = Doc("d")
        for _ in range(50):
            expr = Concat(expr, expr)
        mark = db.slp.mark()
        with pytest.raises(MemoryLimitError):
            db.edit("bomb", expr, Budget(max_bytes=10**6))
        assert db.slp.mark() == mark
        assert db.documents() == ["d"]
