"""Tests for the regex AST simplifier (language preservation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import equivalent
from repro.regex import ast, compile_ast, parse
from repro.regex.optimize import simplify


def lang_equal(pattern: str) -> bool:
    node = parse(pattern)
    return equivalent(compile_ast(node), compile_ast(simplify(node)))


class TestRewrites:
    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ("(a)(b)", "ab"),
            ("a()b", "ab"),
            ("(a*)*", "a*"),
            ("(a+)+", "a+"),
            ("(a?)?", "a?"),
            ("(a*)?", "a*"),
            ("(a?)*", "a*"),
            ("(a+)*", "a*"),
            ("(a+)?", "a*"),
            ("a{1}", "a"),
            ("a{0,}", "a*"),
            ("a{1,}", "a+"),
            ("a{0,1}", "a?"),
            ("a|b|c", "[abc]"),
            ("a|a", "a"),
            ("a|[bc]", "[abc]"),
            ("(a|b)|c", "[abc]"),
            ("ab|ab", "ab"),
        ],
    )
    def test_expected_shape(self, pattern, expected):
        assert str(simplify(parse(pattern))) == str(parse(expected))

    def test_epsilon_in_alternation_becomes_maybe(self):
        node = simplify(parse("a|()"))
        assert isinstance(node, ast.Maybe)

    def test_empty_class_annihilates_concat(self):
        node = ast.Concat((ast.Literal("a"), ast.ClassNode(frozenset())))
        simplified = simplify(node)
        assert isinstance(simplified, ast.ClassNode) and not simplified.chars

    def test_capture_bodies_are_simplified_but_kept(self):
        node = simplify(parse("!x{(a*)*}"))
        assert isinstance(node, ast.Capture)
        assert isinstance(node.inner, ast.Star)
        assert isinstance(node.inner.inner, ast.Literal)

    def test_reference_untouched(self):
        node = simplify(parse("!x{a}&x"))
        assert ast.references_of(node) == {"x"}


PATTERNS = [
    "(a|b)*abb",
    "((a)|(b))((a)|(b))*",
    "(a*)*(b?)?",
    "a{0,3}(b|b|a)+",
    "(()|a)(b|())",
    "((ab)*)*",
    "a|b|a|[ab]",
    "(a+)?b{1}",
]


class TestLanguagePreservation:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_catalogue(self, pattern):
        assert lang_equal(pattern)

    @settings(max_examples=50, deadline=None)
    @given(st.sampled_from(PATTERNS), st.text(alphabet="ab", max_size=7))
    def test_membership_property(self, pattern, word):
        node = parse(pattern)
        before = compile_ast(node).accepts(word)
        after = compile_ast(simplify(node)).accepts(word)
        assert before == after

    def test_spanner_preservation(self):
        from repro.automata.vset import VSetAutomaton

        pattern = "!x{(a*)*}((b|b))*!y{a|b|a}"
        node = parse(pattern)
        before = VSetAutomaton(compile_ast(node))
        after = VSetAutomaton(compile_ast(simplify(node)))
        for doc in ["", "a", "ab", "aab", "abab"]:
            assert before.evaluate(doc) == after.evaluate(doc), doc

    def test_simplified_is_never_larger(self):
        for pattern in PATTERNS:
            node = parse(pattern)
            assert sum(1 for _ in simplify(node).walk()) <= sum(
                1 for _ in node.walk()
            )
