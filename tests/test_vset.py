"""Tests for vset-automata: evaluation, analysis, algebra (paper Section 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import NFA, VSetAutomaton
from repro.core import Close, Open, Ref, Span, SpanTuple, char_class, mark_document
from repro.errors import SchemaError


def sigma_star_loop(nfa, state, alphabet="ab"):
    for ch in alphabet:
        nfa.add_arc(state, ch, state)


def build_example_1_1():
    """The spanner of Example 1.1:  x{(a|b)*} · y{b} · z{(a|b)*}."""
    nfa = NFA()
    states = nfa.add_states(8)
    nfa.initial = {states[0]}
    nfa.accepting = {states[7]}
    nfa.add_arc(states[0], Open("x"), states[1])
    sigma_star_loop(nfa, states[1])
    nfa.add_arc(states[1], Close("x"), states[2])
    nfa.add_arc(states[2], Open("y"), states[3])
    nfa.add_arc(states[3], "b", states[4])
    nfa.add_arc(states[4], Close("y"), states[5])
    nfa.add_arc(states[5], Open("z"), states[6])
    sigma_star_loop(nfa, states[6])
    nfa.add_arc(states[6], Close("z"), states[7])
    return VSetAutomaton(nfa, functional=True)


class TestExample11:
    """The paper's running example, reproduced exactly (experiment P1)."""

    def test_span_relation_of_ababbab(self):
        spanner = build_example_1_1()
        relation = spanner.evaluate("ababbab")
        expected = {
            SpanTuple.of(x=Span(1, 2), y=Span(2, 3), z=Span(3, 8)),
            SpanTuple.of(x=Span(1, 4), y=Span(4, 5), z=Span(5, 8)),
            SpanTuple.of(x=Span(1, 5), y=Span(5, 6), z=Span(6, 8)),
            SpanTuple.of(x=Span(1, 7), y=Span(7, 8), z=Span(8, 8)),
        }
        assert relation.tuples == expected

    def test_relation_is_functional(self):
        spanner = build_example_1_1()
        assert spanner.is_functional()
        assert spanner.evaluate("ababbab").is_functional()

    def test_document_without_b_gives_empty_relation(self):
        spanner = build_example_1_1()
        assert len(spanner.evaluate("aaaa")) == 0

    def test_model_check_rows(self):
        spanner = build_example_1_1()
        doc = "ababbab"
        assert spanner.model_check(doc, SpanTuple.of(x=Span(1, 4), y=Span(4, 5), z=Span(5, 8)))
        assert not spanner.model_check(doc, SpanTuple.of(x=Span(1, 3), y=Span(3, 4), z=Span(4, 8)))

    def test_model_check_rejects_out_of_range_tuple(self):
        spanner = build_example_1_1()
        assert not spanner.model_check("ab", SpanTuple.of(x=Span(1, 9), y=Span(9, 9), z=Span(9, 9)))

    def test_model_check_rejects_foreign_variable(self):
        spanner = build_example_1_1()
        assert not spanner.model_check("ab", SpanTuple.of(q=Span(1, 2)))


class TestConstruction:
    def test_variables_inferred_from_markers(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, Open("v"), t)
        # not wellformed (v never closed), but schema inference still works
        assert VSetAutomaton(nfa).variables == {"v"}

    def test_declared_schema_must_cover_markers(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, Open("v"), t)
        with pytest.raises(SchemaError):
            VSetAutomaton(nfa, variables=frozenset({"w"}))

    def test_refs_rejected(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, Ref("v"), t)
        with pytest.raises(SchemaError):
            VSetAutomaton(nfa)


class TestAnalysis:
    def test_wellformed_and_functional(self):
        assert build_example_1_1().is_wellformed()
        assert build_example_1_1().is_functional()

    def test_not_wellformed_unclosed_variable(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, Open("x"), t)
        spanner = VSetAutomaton(nfa)
        assert not spanner.is_wellformed()
        assert not spanner.is_functional()

    def test_not_wellformed_close_before_open(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        m = nfa.add_state()
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, Close("x"), m)
        nfa.add_arc(m, Open("x"), t)
        assert not VSetAutomaton(nfa).is_wellformed()

    def test_invalid_branch_pruned_if_not_coaccessible(self):
        """An invalid marker path that cannot reach acceptance is harmless."""
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        dead = nfa.add_state()
        nfa.add_arc(s, Open("x"), t)
        nfa.add_arc(t, Close("x"), t)  # wait - this makes close valid
        nfa2 = NFA()
        s = nfa2.add_state(initial=True)
        m = nfa2.add_state()
        t = nfa2.add_state(accepting=True)
        dead = nfa2.add_state()
        nfa2.add_arc(s, Open("x"), m)
        nfa2.add_arc(m, Close("x"), t)
        nfa2.add_arc(m, Open("x"), dead)  # invalid, but dead end
        assert VSetAutomaton(nfa2).is_wellformed()

    def test_schemaless_is_wellformed_but_not_functional(self):
        # (x{a} | a): variable sometimes missing
        nfa = NFA()
        s = nfa.add_state(initial=True)
        m1 = nfa.add_state()
        m2 = nfa.add_state()
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, Open("x"), m1)
        nfa.add_arc(m1, "a", m2)
        nfa.add_arc(m2, Close("x"), t)
        nfa.add_arc(s, "a", t)
        spanner = VSetAutomaton(nfa)
        assert spanner.is_wellformed()
        assert not spanner.is_functional()
        relation = spanner.evaluate("a")
        assert SpanTuple.of(x=Span(1, 2)) in relation
        assert SpanTuple.empty() in relation


class TestAlgebra:
    def test_projection(self):
        spanner = build_example_1_1()
        projected = spanner.project({"y"})
        relation = projected.evaluate("ababbab")
        assert relation.variables == ("y",)
        assert {t["y"] for t in relation} == {Span(2, 3), Span(4, 5), Span(5, 6), Span(7, 8)}

    def test_projection_unknown_variable(self):
        with pytest.raises(SchemaError):
            build_example_1_1().project({"nope"})

    def test_union(self):
        spanner = build_example_1_1()
        left = spanner.project({"x"})
        right = spanner.project({"y"})
        union = left.union(right)
        relation = union.evaluate("ab")
        assert relation.variables == ("x", "y")
        # left contributes x-only tuples, right y-only tuples
        assert any("x" in t and "y" not in t for t in relation)
        assert any("y" in t and "x" not in t for t in relation)

    def test_rename(self):
        renamed = build_example_1_1().rename({"x": "u"})
        assert renamed.variables == {"u", "y", "z"}
        relation = renamed.evaluate("ab")
        assert all("u" in t for t in relation)

    def test_rename_collision(self):
        with pytest.raises(SchemaError):
            build_example_1_1().rename({"x": "y"})

    def test_join_on_shared_variable(self):
        # left: x{a} anywhere; right: x{a} followed by b
        def capture_a(trailing_b):
            nfa = NFA()
            s = nfa.add_state(initial=True)
            m1 = nfa.add_state()
            m2 = nfa.add_state()
            t = nfa.add_state(accepting=True)
            sigma_star_loop(nfa, s)
            nfa.add_arc(s, Open("x"), m1)
            nfa.add_arc(m1, "a", m2)
            nfa.add_arc(m2, Close("x"), t)
            if trailing_b:
                end = nfa.add_state(accepting=True)
                nfa.accepting = {end}
                nfa.add_arc(t, "b", end)
                sigma_star_loop(nfa, end)
            else:
                sigma_star_loop(nfa, t)
            return VSetAutomaton(nfa)

        left = capture_a(False)
        right = capture_a(True)
        doc = "aab"
        joined = left.join(right)
        relation = joined.evaluate(doc)
        # only the second 'a' is followed by 'b'
        assert {t["x"] for t in relation} == {Span(2, 3)}

    def test_join_with_disjoint_variables_is_cross_product(self):
        def capture(var, ch):
            nfa = NFA()
            s = nfa.add_state(initial=True)
            m1 = nfa.add_state()
            m2 = nfa.add_state()
            t = nfa.add_state(accepting=True)
            sigma_star_loop(nfa, s)
            nfa.add_arc(s, Open(var), m1)
            nfa.add_arc(m1, ch, m2)
            nfa.add_arc(m2, Close(var), t)
            sigma_star_loop(nfa, t)
            return VSetAutomaton(nfa)

        joined = capture("x", "a").join(capture("y", "b"))
        relation = joined.evaluate("ab")
        assert relation.tuples == frozenset(
            {SpanTuple.of(x=Span(1, 2), y=Span(2, 3))}
        )

    def test_join_variables_at_same_position(self):
        """Shared-variable markers must be emitted at the same position."""
        def exact(var, word):
            nfa = NFA()
            s = nfa.add_state(initial=True)
            here = nfa.add_state()
            nfa.add_arc(s, Open(var), here)
            for ch in word:
                nxt = nfa.add_state()
                nfa.add_arc(here, ch, nxt)
                here = nxt
            t = nfa.add_state(accepting=True)
            nfa.add_arc(here, Close(var), t)
            return VSetAutomaton(nfa)

        same = exact("x", "ab").join(exact("x", "ab"))
        different = exact("x", "ab").join(exact("x", "ba"))
        assert len(same.evaluate("ab")) == 1
        assert len(different.evaluate("ab")) == 0
        assert len(different.evaluate("ba")) == 0


class TestNormalization:
    def test_normalized_accepts_canonical_order_only(self):
        # automaton that emits Close(x) Open(y) in the "wrong" order
        nfa = NFA()
        states = nfa.add_states(6)
        nfa.initial = {states[0]}
        nfa.accepting = {states[5]}
        nfa.add_arc(states[0], Open("x"), states[1])
        nfa.add_arc(states[1], "a", states[2])
        nfa.add_arc(states[2], Close("x"), states[3])
        nfa.add_arc(states[3], Open("y"), states[4])
        nfa.add_arc(states[4], Close("y"), states[5])
        spanner = VSetAutomaton(nfa)
        normalized = spanner.normalized()
        tup = SpanTuple.of(x=Span(1, 2), y=Span(2, 2))
        canonical = mark_document("a", tup)  # Open(y) before Close(x)
        assert normalized.accepts_marked_word(canonical)
        assert not spanner.accepts_marked_word(canonical)
        assert normalized.evaluate("a") == spanner.evaluate("a")

    def test_nonemptiness_nfa(self):
        spanner = build_example_1_1()
        plain = spanner.nonemptiness_nfa()
        assert plain.accepts("ababbab")
        assert plain.accepts("b")
        assert not plain.accepts("aaa")
        assert not plain.accepts("")


class TestEvaluationAgainstBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ab", min_size=0, max_size=5))
    def test_example_1_1_against_model_check(self, doc):
        from repro.enumeration.naive import brute_force_tuples

        spanner = build_example_1_1()
        relation = spanner.evaluate(doc)
        for tup in brute_force_tuples(spanner.variables, doc):
            assert (tup in relation) == spanner.model_check(doc, tup)
