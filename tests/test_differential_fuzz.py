"""Differential fuzzing: the SLP-compressed path and the decompressed
fallback must agree tuple-for-tuple (satellite of the serving issue).

The degraded path (:meth:`SLPSpannerEvaluator.evaluate_text`,
:meth:`SpannerDB.query_decompressed`) exists so the circuit breaker can
trade latency for availability — it is only sound if it is *extensionally
identical* to compressed evaluation.  Both are also checked against the
uncompressed reference pipeline, so a shared bug cannot hide.
"""

import random

import pytest

from repro import RegularSpanner, SpannerDB
from repro.errors import EvaluationLimitError
from repro.regex import spanner_from_regex
from repro.slp import SLP, balanced_node
from repro.slp.spanner_eval import SLPSpannerEvaluator
from repro.util import Budget

PATTERNS = [
    "!x{(a|b)*}",
    "(a|b)*!x{b}(a|b)*",
    "(a|b)*!x{ab}(a|b)*",
    "(a|b)*!x{a}(a|b)*!y{b}(a|b)*",
    "!x{a*}!y{b*}",
    "(a|b)*!x{(ab)*}(a|b)*",
]


def random_doc(rng: random.Random, max_len: int) -> str:
    return "".join(rng.choice("ab") for _ in range(rng.randint(0, max_len)))


def answers(pattern: str, text: str) -> tuple[list[str], list[str], list[str]]:
    """(compressed, decompressed-fallback, reference) for one input."""
    evaluator = SLPSpannerEvaluator(spanner_from_regex(pattern))
    slp = SLP()
    node = balanced_node(slp, text) if text else None
    if node is None:
        # empty document: fallback and reference still answer
        compressed = None
    else:
        compressed = sorted(map(str, evaluator.evaluate(slp, node)))
    fallback = sorted(map(str, evaluator.evaluate_text(text)))
    reference = sorted(
        map(str, RegularSpanner.from_regex(pattern).enumerate(text))
    )
    return compressed, fallback, reference


class TestDifferentialAgreement:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_seeded_random_documents(self, pattern):
        rng = random.Random(1234)  # explicit seed, replayable
        for _ in range(20):
            text = random_doc(rng, 24)
            compressed, fallback, reference = answers(pattern, text)
            assert fallback == reference, (pattern, text)
            if compressed is not None:
                assert compressed == reference, (pattern, text)

    def test_highly_compressible_documents(self):
        for text in ["ab" * 64, "a" * 100 + "b", "b" * 128, ("abb" * 20) + "a"]:
            for pattern in PATTERNS[:4]:
                compressed, fallback, reference = answers(pattern, text)
                assert compressed == fallback == reference, (pattern, text)

    def test_through_the_database_layer(self):
        db = SpannerDB()
        rng = random.Random(77)
        for index in range(8):
            db.add_document(f"d{index}", random_doc(rng, 30) + "b")
        db.register_spanner("m", PATTERNS[1])
        for index in range(8):
            name = f"d{index}"
            fast = sorted(map(str, db.evaluate("m", name)))
            slow = sorted(map(str, db.query_decompressed("m", name)))
            assert fast == slow, name

    def test_fallback_respects_step_budgets(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERNS[1]))
        with pytest.raises(EvaluationLimitError):
            evaluator.evaluate_text("ab" * 50, budget=Budget(max_steps=3))


@pytest.mark.slow_fuzz
class TestDifferentialDeep:
    def test_many_seeds_and_longer_documents(self):
        rng = random.Random(20260805)
        for _ in range(300):
            pattern = rng.choice(PATTERNS)
            text = random_doc(rng, 200)
            compressed, fallback, reference = answers(pattern, text)
            assert fallback == reference, (pattern, text)
            if compressed is not None:
                assert compressed == reference, (pattern, text)
