"""Edge-case tests across modules: unicode, empty inputs, odd shapes."""

import pytest

from repro.automata import NFA, VSetAutomaton, literal_nfa
from repro.automata.dfa import Atoms, DFA, determinize
from repro.core import (
    CharClass,
    Close,
    Open,
    Span,
    SpanRelation,
    SpanTuple,
    char_class,
    mark_document,
)
from repro.enumeration import Enumerator
from repro.regex import spanner_from_regex
from repro.spanners import ReflSpanner


class TestUnicode:
    def test_unicode_documents(self):
        spanner = spanner_from_regex("!x{ü+}")
        relation = spanner.evaluate("üü")
        assert relation.tuples == frozenset({SpanTuple.of(x=Span(1, 3))})

    def test_unicode_in_char_class(self):
        spanner = spanner_from_regex("(.)*!x{[αβγ]+}(.)*")
        relation = spanner.evaluate("xαβy")
        assert {t["x"].extract("xαβy") for t in relation} == {"α", "β", "αβ"}

    def test_dot_matches_unicode(self):
        spanner = spanner_from_regex("!x{.}")
        assert len(spanner.evaluate("漢")) == 1


class TestEmptyDocument:
    def test_regular_spanner(self):
        spanner = spanner_from_regex("!x{a*}")
        assert spanner.evaluate("").tuples == frozenset(
            {SpanTuple.of(x=Span(1, 1))}
        )

    def test_enumeration(self):
        enumerator = Enumerator(spanner_from_regex("(!x{a})?"))
        results = list(enumerator.enumerate(""))
        assert SpanTuple.empty() in results
        assert SpanTuple.of(x=Span(1, 1)) not in results  # x{a} needs an 'a'

    def test_refl(self):
        refl = ReflSpanner.from_regex("!x{a*}&x")
        assert refl.evaluate("").tuples == frozenset({SpanTuple.of(x=Span(1, 1))})

    def test_empty_capture_at_every_position(self):
        spanner = spanner_from_regex("(a)*!x{()}(a)*")
        relation = spanner.evaluate("aa")
        assert {t["x"] for t in relation} == {Span(1, 1), Span(2, 2), Span(3, 3)}


class TestAtomsEdgeCases:
    def test_classify_unknown_marker(self):
        atoms = Atoms({"a", Open("x")})
        assert atoms.classify(Open("x")) == Open("x")
        assert atoms.classify(Close("x")) is None
        assert atoms.classify("z") == atoms.remainder

    def test_classify_non_symbol(self):
        atoms = Atoms({"a"})
        assert atoms.classify(3.14) is None

    def test_atomise_rejects_junk(self):
        with pytest.raises(TypeError):
            Atoms({42})

    def test_dfa_step_from_dead(self):
        dfa = determinize(literal_nfa("a"))
        from repro.automata.dfa import DEAD

        assert dfa.step(DEAD, "a") == DEAD


class TestCharClassAlgebra:
    def test_intersections(self):
        pos = char_class("abc")
        neg = char_class("bc", negated=True)
        assert pos.intersect(neg).chars == frozenset("a")
        assert neg.intersect(pos).chars == frozenset("a")
        both_neg = neg.intersect(char_class("cd", negated=True))
        assert both_neg.negated and both_neg.chars == frozenset("bcd")

    def test_witness(self):
        assert char_class("ba").witness() == "a"
        assert char_class("", negated=False).witness() is None
        witness = char_class("ab", negated=True).witness("abc")
        assert witness == "c"
        # falls back to a pool when the hint alphabet is exhausted
        assert char_class("ab", negated=True).witness("ab") not in ("a", "b")

    def test_empty(self):
        assert char_class("").is_empty()
        assert not char_class("", negated=True).is_empty()


class TestMarkerOrderRobustness:
    def test_model_check_accepts_any_adjacent_order(self):
        """The automaton emits Close(x) before Open(y); the tuple's
        canonical word has them in the other order — model checking must
        still succeed (the Section 2.4 pitfall)."""
        nfa = NFA()
        states = nfa.add_states(7)
        nfa.initial = {states[0]}
        nfa.accepting = {states[6]}
        nfa.add_arc(states[0], Open("x"), states[1])
        nfa.add_arc(states[1], "a", states[2])
        nfa.add_arc(states[2], Close("x"), states[3])
        nfa.add_arc(states[3], Open("y"), states[4])
        nfa.add_arc(states[4], "b", states[5])
        nfa.add_arc(states[5], Close("y"), states[6])
        spanner = VSetAutomaton(nfa)
        tup = SpanTuple.of(x=Span(1, 2), y=Span(2, 3))
        assert spanner.model_check("ab", tup)
        # and the canonical word indeed interleaves differently
        word = mark_document("ab", tup)
        assert not spanner.accepts_marked_word(word)


class TestRelationEdgeCases:
    def test_empty_schema_relation(self):
        rel = SpanRelation([], [SpanTuple.empty()])
        assert len(rel) == 1
        rel.to_table()  # renders without crashing (degenerate zero columns)
        assert rel.project([]) == rel

    def test_rename_relation(self):
        rel = SpanRelation(["x"], [SpanTuple.of(x=Span(1, 2))])
        renamed = rel.rename({"x": "y"})
        assert renamed.variables == ("y",)
        with pytest.raises(Exception):
            SpanRelation(["x", "y"], []).rename({"x": "y"})

    def test_bool_and_contains(self):
        empty = SpanRelation(["x"])
        assert not empty
        full = SpanRelation(["x"], [SpanTuple.of(x=Span(1, 1))])
        assert full and SpanTuple.of(x=Span(1, 1)) in full


class TestShortestWordWithMarkers:
    def test_witness_contains_markers(self):
        spanner = spanner_from_regex("c!x{ab}c")
        word = spanner.nfa.trim().shortest_word()
        assert Open("x") in word and Close("x") in word
        from repro.core import MarkedWord

        assert MarkedWord(word).erase() == "cabc"
