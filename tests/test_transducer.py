"""Tests for finite-state transducers (the Section 2.1 closure toolbox)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import NFA, VSetAutomaton, equivalent, literal_nfa, union
from repro.automata.transducer import Transducer, marker_eraser, marker_inserter
from repro.core import DOT, Span, SpanTuple
from repro.errors import SpanlibError
from repro.regex import compile_nfa, spanner_from_regex


class TestBasics:
    def test_identity_transducer(self):
        fst = Transducer()
        s = fst.add_state(initial=True, accepting=True)
        fst.add_rule(s, DOT, (Transducer.COPY,), s)
        image = fst.apply_to_nfa(compile_nfa("(ab)*"))
        assert equivalent(image, compile_nfa("(ab)*"))

    def test_relabelling(self):
        # a -> x, b -> y
        fst = Transducer()
        s = fst.add_state(initial=True, accepting=True)
        fst.add_rule(s, "a", ("x",), s)
        fst.add_rule(s, "b", ("y",), s)
        image = fst.apply_to_nfa(compile_nfa("ab+"))
        assert image.accepts("xy")
        assert image.accepts("xyyy")
        assert not image.accepts("ab")

    def test_deleting_transducer(self):
        # delete all b's
        fst = Transducer()
        s = fst.add_state(initial=True, accepting=True)
        fst.add_rule(s, "a", (Transducer.COPY,), s)
        fst.add_rule(s, "b", (), s)
        image = fst.apply_to_nfa(compile_nfa("(ab)*"))
        assert equivalent(image, compile_nfa("a*"))

    def test_duplicating_transducer(self):
        # each a becomes aa
        fst = Transducer()
        s = fst.add_state(initial=True, accepting=True)
        fst.add_rule(s, "a", ("a", "a"), s)
        image = fst.apply_to_nfa(literal_nfa("aaa"))
        assert image.accepts("aaaaaa")
        assert not image.accepts("aaa")

    def test_epsilon_input_rule(self):
        # insert exactly one '#' anywhere
        fst = Transducer()
        before = fst.add_state(initial=True)
        after = fst.add_state(accepting=True)
        fst.add_rule(before, DOT, (Transducer.COPY,), before)
        fst.add_rule(before, None, ("#",), after)
        fst.add_rule(after, DOT, (Transducer.COPY,), after)
        image = fst.apply_to_nfa(literal_nfa("ab"))
        for word, expected in [("#ab", True), ("a#b", True), ("ab#", True),
                               ("ab", False), ("a#b#", False)]:
            assert image.accepts(word) == expected, word

    def test_copy_in_epsilon_rule_rejected(self):
        fst = Transducer()
        s = fst.add_state(initial=True, accepting=True)
        fst.add_rule(s, None, (Transducer.COPY,), s)
        with pytest.raises(SpanlibError):
            fst.apply_to_nfa(literal_nfa("a"))

    def test_unknown_state_rejected(self):
        fst = Transducer()
        with pytest.raises(SpanlibError):
            fst.add_rule(0, "a", (), 0)

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ab", max_size=6))
    def test_uppercase_transduction_property(self, word):
        fst = Transducer()
        s = fst.add_state(initial=True, accepting=True)
        fst.add_rule(s, "a", ("A",), s)
        fst.add_rule(s, "b", ("B",), s)
        image = fst.apply_to_nfa(literal_nfa(word))
        assert image.accepts(word.upper())
        if word:
            assert not image.accepts(word)


class TestMarkerEraser:
    def test_erases_to_nonemptiness_language(self):
        """e(L(M)) computed by transduction equals the markers-as-ε NFA."""
        spanner = spanner_from_regex("!x{(a|b)*}!y{b}!z{(a|b)*}")
        erased = marker_eraser(spanner.variables).apply_to_nfa(spanner.nfa)
        assert equivalent(erased, spanner.nonemptiness_nfa())

    def test_partial_erasure_is_projection(self):
        spanner = spanner_from_regex("!x{a}!y{b}")
        eraser = marker_eraser({"y"}, passthrough={"x"})
        erased = eraser.apply_to_nfa(spanner.nfa)
        projected = spanner.project({"x"})
        assert equivalent(erased, projected.nfa)


class TestMarkerInserter:
    def test_universal_spanner_over_fixed_document(self):
        universal = marker_inserter({"x"}).apply_to_nfa(literal_nfa("ab"))
        spanner = VSetAutomaton(universal, frozenset({"x"}))
        relation = spanner.evaluate("ab")
        # all 6 spans of a 2-char document
        assert len(relation) == 6
        assert SpanTuple.of(x=Span(1, 3)) in relation
        assert SpanTuple.of(x=Span(3, 3)) in relation

    def test_two_variables_allow_overlap(self):
        universal = marker_inserter({"x", "y"}).apply_to_nfa(literal_nfa("abc"))
        spanner = VSetAutomaton(universal, frozenset({"x", "y"}))
        relation = spanner.evaluate("abc")
        # the properly-overlapping configuration is present
        assert SpanTuple.of(x=Span(1, 3), y=Span(2, 4)) in relation
        # and it is the full cross product of spans: 10 * 10 tuples
        assert len(relation) == 100

    def test_functionality(self):
        universal = marker_inserter({"x"}).apply_to_nfa(compile_nfa("a*"))
        spanner = VSetAutomaton(universal, frozenset({"x"}))
        assert spanner.is_functional()
