"""Tests for the enumeration pipeline (paper Section 2.5, experiments C1)."""

from hypothesis import given, settings, strategies as st

from repro.core import Span, SpanRelation, SpanTuple
from repro.enumeration import Enumerator, ProductIndex, evaluate_vset, measure_delays
from repro.regex import spanner_from_regex
from repro.spanners import RegularSpanner


PATTERNS = [
    "!x{(a|b)*}!y{b}!z{(a|b)*}",  # Example 1.1
    "(a|b)*!x{ab}(a|b)*",          # all occurrences of 'ab'
    "!x{a*}",                       # prefixes of a-runs (only whole doc)
    "(a|b)*!x{a(a|b)*b}(a|b)*",    # factors starting a, ending b
    "(!x{a})?(a|b)*",              # schemaless: x sometimes undefined
    "(a|b)*!x{a+}!y{b+}(a|b)*",    # two adjacent captures
]

DOCS = ["", "a", "b", "ab", "ba", "abab", "ababbab", "bbbb", "aabba"]


class TestCorrectness:
    def test_agrees_with_naive_on_catalogue(self):
        for pattern in PATTERNS:
            spanner = spanner_from_regex(pattern)
            enumerator = Enumerator(spanner)
            for doc in DOCS:
                expected = evaluate_vset(spanner, doc)
                got = SpanRelation(spanner.variables, enumerator.enumerate(doc))
                assert got == expected, (pattern, doc)

    def test_no_duplicates(self):
        for pattern in PATTERNS:
            enumerator = Enumerator(spanner_from_regex(pattern))
            for doc in DOCS:
                produced = list(enumerator.enumerate(doc))
                assert len(produced) == len(set(produced)), (pattern, doc)

    def test_empty_document(self):
        enumerator = Enumerator(spanner_from_regex("!x{a*}"))
        assert list(enumerator.enumerate("")) == [SpanTuple.of(x=Span(1, 1))]

    def test_empty_result(self):
        enumerator = Enumerator(spanner_from_regex("!x{c}"))
        assert list(enumerator.enumerate("ab")) == []

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ab", max_size=7))
    def test_property_against_naive(self, doc):
        pattern = "(a|b)*!x{a(a|b)*}!y{b*}(a|b)*"
        spanner = spanner_from_regex(pattern)
        got = SpanRelation(spanner.variables, Enumerator(spanner).enumerate(doc))
        assert got == evaluate_vset(spanner, doc)


class TestTwoPhaseStructure:
    def test_preprocessing_is_reusable(self):
        enumerator = Enumerator(spanner_from_regex("(a|b)*!x{ab}(a|b)*"))
        index = enumerator.preprocess("ababab")
        first = list(enumerator.enumerate_index(index))
        second = list(enumerator.enumerate_index(index))
        assert first == second
        assert len(first) == 3  # 'ab' occurs 3 times (positions 1, 3, 5)

    def test_index_size_linear_in_document(self):
        enumerator = Enumerator(spanner_from_regex("(a|b)*!x{ab}(a|b)*"))
        small = enumerator.preprocess("ab" * 10).size_in_cells()
        large = enumerator.preprocess("ab" * 100).size_in_cells()
        # linear: 10x document => ~10x cells
        assert 8 <= large / small <= 12

    def test_enumeration_is_lazy(self):
        """The first tuple must arrive without draining the whole result."""
        enumerator = Enumerator(spanner_from_regex("(a|b)*!x{a}(a|b)*"))
        iterator = enumerator.enumerate("a" * 200)
        first = next(iterator)
        assert first["x"] == Span(1, 2)

    def test_jump_pointers_skip_marker_free_stretches(self):
        """With a single match at the very end of a long document, the chain
        from the start must reach it in one hop."""
        enumerator = Enumerator(spanner_from_regex("a*!x{b}"))
        doc = "a" * 500 + "b"
        index = enumerator.preprocess(doc)
        hops = list(index.chain(enumerator.det.initial, 0))
        assert len(hops) == 1
        j, block, _ = hops[0]
        assert j == 500

    def test_measure_delays_helper(self):
        enumerator = Enumerator(spanner_from_regex("(a|b)*!x{a}(a|b)*"))
        items, delays = measure_delays(enumerator.enumerate("aba"))
        assert len(items) == 2
        assert len(delays) == 2
        assert all(d >= 0 for d in delays)


class TestDelayScaling:
    def test_max_delay_does_not_grow_with_document(self):
        """The heart of experiment C1: delay independent of |D|.

        We count *work steps* structurally rather than wall-clock time: for
        the pattern below, tuples are separated by long marker-free runs
        that the jump pointers must skip in O(1).
        """
        pattern = "(a|b)*!x{ab}(a|b)*"
        enumerator = Enumerator(spanner_from_regex(pattern))
        gaps = []
        for scale in (20, 200):
            doc = ("a" * 50 + "b") * scale  # matches far apart
            index = enumerator.preprocess(doc)
            count = len(list(enumerator.enumerate_index(index)))
            assert count == scale
            # delays measured in wall-clock over many tuples: use the mean
            # of the worst decile as a robust max-delay proxy
            _, delays = measure_delays(enumerator.enumerate_index(index))
            delays.sort()
            worst = delays[-max(1, len(delays) // 10):]
            gaps.append(sum(worst) / len(worst))
        small, large = gaps
        # 10x longer document must not mean 10x longer worst delays;
        # allow generous noise but reject linear growth
        assert large < small * 5, (small, large)


class TestRegularSpannerFacade:
    def test_evaluate_and_enumerate_agree(self):
        spanner = RegularSpanner.from_regex("(a|b)*!x{ab}(a|b)*")
        doc = "ababab"
        assert set(spanner.enumerate(doc)) == spanner.evaluate(doc).tuples

    def test_enumerator_is_cached(self):
        spanner = RegularSpanner.from_regex("!x{a}")
        assert spanner.enumerator() is spanner.enumerator()

    def test_nonemptiness_via_epsilon_markers(self):
        spanner = RegularSpanner.from_regex("(a|b)*!x{ab}(a|b)*")
        assert spanner.is_nonempty_on("abb")
        assert not spanner.is_nonempty_on("bba")
