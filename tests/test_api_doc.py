"""docs/API.md must match the code (regenerate with tools/generate_api_doc.py)."""

import pathlib
import sys


def test_api_doc_is_fresh():
    root = pathlib.Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(root / "tools"))
    try:
        import generate_api_doc
    finally:
        sys.path.pop(0)
    committed = (root / "docs" / "API.md").read_text(encoding="utf-8")
    assert committed == generate_api_doc.render(), (
        "docs/API.md is stale; run: python tools/generate_api_doc.py"
    )
