"""The fault-injection suite (docs/RELIABILITY.md's acceptance tests).

Three properties are asserted after every injected failure:

(a) the failure surfaces as a :class:`~repro.errors.SpanlibError`
    subclass — never a bare internal exception;
(b) invariants hold — every registered spanner still answers correctly
    on every committed document;
(c) after a simulated crash, :meth:`SpannerDB.open` recovers exactly the
    committed state.
"""

import pytest

from repro import SpannerDB
from repro.errors import FaultInjectedError, PersistenceError, SpanlibError
from repro.slp import Concat, Delete, Doc
from repro.util import (
    fail_at_allocation,
    fail_at_call,
    fail_in_preprocess,
    truncate_file,
    truncate_journal_write,
)

PATTERN = "(a|b)*!x{b}(a|b)*"


def store():
    db = SpannerDB()
    db.add_document("d1", "ababbab")
    db.register_spanner("m", PATTERN)
    return db


def assert_invariants(db, expected_docs):
    """Property (b): committed documents answer exactly as an uncompressed
    reference evaluation says they should."""
    from repro import RegularSpanner

    assert db.documents() == sorted(expected_docs)
    reference = RegularSpanner.from_regex(PATTERN)
    for name in expected_docs:
        text = db.document_text(name)
        got = sorted(map(str, db.query("m", name)))
        want = sorted(map(str, reference.enumerate(text)))
        assert got == want, f"spanner answers drifted on {name!r}"


class TestAllocationFaults:
    def test_fault_surfaces_as_spanlib_error(self):
        db = store()
        with fail_at_allocation(at=3):
            with pytest.raises(SpanlibError):
                db.add_document("d2", "a fresh document with many new nodes")

    @pytest.mark.parametrize("at", [1, 2, 5, 9])
    def test_add_document_rolls_back_at_every_depth(self, at):
        db = store()
        mark = db.slp.mark()
        with fail_at_allocation(at=at):
            with pytest.raises(FaultInjectedError):
                db.add_document("d2", "xyzxyzxyzw")
        assert db.slp.mark() == mark
        assert_invariants(db, ["d1"])

    @pytest.mark.parametrize("at", [1, 2, 4])
    def test_edit_rolls_back_at_every_depth(self, at):
        db = store()
        mark = db.slp.mark()
        with fail_at_allocation(at=at):
            with pytest.raises(FaultInjectedError):
                db.edit("d2", Concat(Doc("d1"), Delete(Doc("d1"), 2, 5)))
        assert db.slp.mark() == mark
        assert_invariants(db, ["d1"])

    def test_store_usable_after_fault(self):
        db = store()
        with fail_at_allocation(at=2):
            with pytest.raises(FaultInjectedError):
                db.add_document("d2", "xyzw")
        db.add_document("d2", "xyzw")  # same mutation, no fault: succeeds
        assert_invariants(db, ["d1", "d2"])


class TestPreprocessFaults:
    def test_add_document_with_failing_spanner_update(self):
        """ISSUE satellite (a): the partial-failure window where the document
        is in the catalog but a spanner's matrices are missing."""
        db = store()
        db.register_spanner("m2", "!y{a}(a|b)*")
        with fail_in_preprocess(at=2):  # first spanner updates, second dies
            with pytest.raises(FaultInjectedError):
                db.add_document("d2", "abab")
        assert_invariants(db, ["d1"])
        # both spanners still answer on committed docs
        assert list(db.query("m2", "d1"))

    def test_register_spanner_rollback_mid_corpus(self):
        """ISSUE satellite (b): preprocess fails on the 3rd of 5 documents."""
        db = SpannerDB()
        for index in range(5):
            db.add_document(f"doc{index}", "ab" * (index + 1))
        with fail_in_preprocess(at=3):
            with pytest.raises(FaultInjectedError):
                db.register_spanner("m", PATTERN)
        assert db.spanners() == []
        # registration is retryable and then fully functional
        db.register_spanner("m", PATTERN)
        assert_invariants(db, [f"doc{index}" for index in range(5)])

    def test_no_orphan_matrices_after_failed_registration(self):
        db = SpannerDB()
        for index in range(3):
            db.add_document(f"doc{index}", "abba" * (index + 1))
        with fail_in_preprocess(at=2):
            with pytest.raises(FaultInjectedError):
                db.register_spanner("m", PATTERN)
        assert db.stats()["cached_matrices"] == {}


class TestCrashRecovery:
    """Property (c): open() after a crash recovers committed state."""

    def make_store(self, tmp_path):
        path = str(tmp_path / "store.slpdb")
        db = SpannerDB()
        db.add_document("base", "ababbab")
        db.save(path)
        return db, path

    def reopen(self, path):
        db = SpannerDB.open(path)
        db.register_spanner("m", PATTERN)
        return db

    def test_torn_journal_write_loses_only_that_record(self, tmp_path):
        db, path = self.make_store(tmp_path)
        db.add_document("committed", "aabb")  # durable
        with truncate_journal_write(keep_bytes=5):
            with pytest.raises(FaultInjectedError):
                db.add_document("torn", "bbbb")  # "crash" mid-append
        recovered = self.reopen(path)
        assert_invariants(recovered, ["base", "committed"])

    def test_fully_torn_record_recovers_earlier_commits(self, tmp_path):
        db, path = self.make_store(tmp_path)
        db.add_document("first", "aa")
        db.add_document("second", "bb")
        with truncate_journal_write(keep_bytes=0):
            with pytest.raises(FaultInjectedError):
                db.edit("third", Doc("first"))
        recovered = self.reopen(path)
        assert_invariants(recovered, ["base", "first", "second"])

    def test_torn_transaction_batch_is_all_or_nothing(self, tmp_path):
        """A multi-mutation transaction whose journal append tears *between*
        records must recover neither mutation, not a surviving prefix."""
        from repro.slp.serialize import encode_journal_record

        db, path = self.make_store(tmp_path)
        # tear after the first record line: "a" is on disk whole, "b" and
        # the commit marker never make it
        keep = len(encode_journal_record(["A", "a", "xxxx"])) + 1
        with truncate_journal_write(keep_bytes=keep):
            with pytest.raises(FaultInjectedError):
                with db.transaction():
                    db.add_document("a", "xxxx")
                    db.add_document("b", "yyyy")
        assert db.documents() == ["base"]  # in-memory batch rolled back
        recovered = self.reopen(path)
        assert_invariants(recovered, ["base"])  # "a" not resurrected alone

    def test_failed_append_rolls_back_and_poisons_the_journal(self, tmp_path):
        """A commit whose journal append fails must not stay committed in
        memory, and its torn tail must not silently swallow later commits
        at the next open()."""
        db, path = self.make_store(tmp_path)
        with truncate_journal_write(keep_bytes=5):
            with pytest.raises(FaultInjectedError):
                db.add_document("lost", "aaaa")
        assert db.documents() == ["base"]  # rolled back, not half-committed
        # further commits are refused until a checkpoint rewrites the
        # journal — otherwise recovery would stop at the tear and drop them
        with pytest.raises(PersistenceError):
            db.add_document("after", "bbbb")
        assert db.documents() == ["base"]
        db.save(path)  # checkpoint re-arms durability
        db.add_document("after", "bbbb")
        recovered = self.reopen(path)
        assert_invariants(recovered, ["base", "after"])

    def test_torn_snapshot_falls_back_to_previous(self, tmp_path):
        db, path = self.make_store(tmp_path)
        db.add_document("extra", "abab")
        db.save(path)  # good snapshot rotated to .bak on the next save
        db.add_document("newer", "bb")
        db.save(path)
        truncate_file(path, keep_bytes=30)  # crash tore the latest snapshot
        recovered = self.reopen(path)
        # the .bak snapshot has base+extra; "newer" was only in the torn one
        assert_invariants(recovered, ["base", "extra"])

    def test_recovery_replays_edits_not_just_adds(self, tmp_path):
        db, path = self.make_store(tmp_path)
        db.edit("head", Delete(Doc("base"), 4, 7))
        db.add_document("tail", "zz")
        recovered = self.reopen(path)
        assert recovered.document_text("head") == db.document_text("head")
        assert_invariants(recovered, ["base", "head", "tail"])

    def test_crash_between_snapshot_and_journal_reset(self, tmp_path):
        """save() replaces the snapshot, then truncates the journal; a crash
        between the two leaves already-applied records behind.  Replay must
        be idempotent."""
        db, path = self.make_store(tmp_path)
        db.add_document("doc", "abab")
        with fail_at_call(SpannerDB, "_reset_journal"):
            with pytest.raises(FaultInjectedError):
                db.save(path)  # snapshot written; journal NOT truncated
        recovered = self.reopen(path)
        assert_invariants(recovered, ["base", "doc"])

    def test_open_on_missing_path_is_a_fresh_attached_store(self, tmp_path):
        path = str(tmp_path / "new.slpdb")
        db = SpannerDB.open(path)
        assert db.documents() == []
        db.add_document("d", "abc")  # journaled even before the first save
        recovered = SpannerDB.open(path)
        assert recovered.documents() == ["d"]

    def test_recovery_checkpoint_truncates_the_journal(self, tmp_path):
        db, path = self.make_store(tmp_path)
        db.add_document("x", "aa")
        SpannerDB.open(path)  # recovery replays "x" and checkpoints
        with open(path + ".journal", encoding="utf-8") as handle:
            assert len(handle.read().splitlines()) == 1  # header only
        assert SpannerDB.open(path).documents() == ["base", "x"]


class TestChaosInjectorDeterminism:
    """Satellite property: every injection decision is a pure function of
    (seed, site, call index) — no module-level RNG, no thread sensitivity."""

    def drive(self, injector, sites, calls_per_site, threads=1):
        """Hammer maybe_fail from N threads; return the decision multiset."""
        import threading

        from repro.util import ChaosInjector  # noqa: F401 - imported for docs

        lock = threading.Lock()
        outcomes = []

        def worker():
            while True:
                with lock:
                    if not schedule:
                        return
                    site = schedule.pop()
                try:
                    injector.maybe_fail(site, rate=0.3)
                    with lock:
                        outcomes.append((site, False))
                except SpanlibError:
                    with lock:
                        outcomes.append((site, True))

        schedule = [site for site in sites for _ in range(calls_per_site)]
        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30)
        return sorted(outcomes)

    def test_same_seed_same_fault_multiset_across_thread_counts(self):
        from repro.util import ChaosInjector

        single = self.drive(ChaosInjector(5), ["a", "b"], 40, threads=1)
        fleet = self.drive(ChaosInjector(5), ["a", "b"], 40, threads=4)
        assert single == fleet

    def test_different_seeds_draw_different_schedules(self):
        from repro.util import ChaosInjector

        runs = {
            tuple(self.drive(ChaosInjector(seed), ["s"], 60)) for seed in range(5)
        }
        assert len(runs) > 1

    def test_fired_and_calls_account_exactly(self):
        from repro.util import ChaosInjector

        injector = ChaosInjector(9)
        fired = 0
        for _ in range(50):
            try:
                injector.maybe_fail("site", rate=0.5)
            except SpanlibError:
                fired += 1
        assert injector.calls() == {"site": 50}
        assert injector.fired().get("site", 0) == fired
        assert 0 < fired < 50  # the schedule actually mixes outcomes

    def test_zero_rate_never_fires_and_consumes_no_schedule(self):
        from repro.util import ChaosInjector

        injector = ChaosInjector(9)
        for _ in range(10):
            injector.maybe_fail("site", rate=0.0)
        assert injector.calls() == {}
        assert injector.fired() == {}

    def test_delays_share_the_deterministic_schedule(self):
        from repro.util import ChaosInjector

        first = ChaosInjector(3)
        second = ChaosInjector(3)
        slept_first = [first.maybe_delay("d", 0.5, 0.0) for _ in range(30)]
        slept_second = [second.maybe_delay("d", 0.5, 0.0) for _ in range(30)]
        assert slept_first == slept_second

    def test_chaos_contextmanager_restores_the_patched_attribute(self):
        from repro.slp.spanner_eval import SLPSpannerEvaluator
        from repro.util import ChaosInjector

        original = SLPSpannerEvaluator.enumerate
        with ChaosInjector(1).chaos(
            SLPSpannerEvaluator, "enumerate", error_rate=1.0
        ):
            assert SLPSpannerEvaluator.enumerate is not original
        assert SLPSpannerEvaluator.enumerate is original

    def test_no_module_level_rng_state(self):
        """Two interleaved injectors never perturb each other's schedules."""
        from repro.util import ChaosInjector

        alone = ChaosInjector(7)
        alone_draws = [alone._draw("s") for _ in range(20)]
        a, b = ChaosInjector(7), ChaosInjector(99)
        interleaved = []
        for _ in range(20):
            interleaved.append(a._draw("s"))
            b._draw("s")
        assert alone_draws == interleaved


class TestChaosOperationDeterminism:
    """Satellite: per-operation schedules are stable under interleaving.

    The shared per-site counter makes the k-th *site* call deterministic,
    but a resumed generator's k-th step is not the site's k-th call once
    other operations interleave — :meth:`ChaosInjector.operation` fixes
    the schedule to the logical operation instead."""

    @staticmethod
    def verdicts(handle, n=16, rate=0.5):
        out = []
        for _ in range(n):
            try:
                handle.maybe_fail(rate)
                out.append(False)
            except FaultInjectedError:
                out.append(True)
        return out

    def test_schedule_is_fixed_per_operation_id(self):
        from repro.util import ChaosInjector

        handle = ChaosInjector(5).operation("enum", "op-1")
        solo = [handle.draw() for _ in range(8)]

        # a busy injector: another operation and raw site traffic
        # interleave with every step — the op-1 schedule must not move
        busy = ChaosInjector(5)
        noisy = busy.operation("enum", "op-2")
        replay = busy.operation("enum", "op-1")
        interleaved = []
        for _ in range(8):
            noisy.draw()
            busy.maybe_delay("enum", 1.0, 0.0)  # advances the site counter
            interleaved.append(replay.draw())
        assert interleaved == solo

    def test_reset_replays_the_same_verdict_sequence(self):
        from repro.util import ChaosInjector

        injector = ChaosInjector(3)
        op = injector.operation("enum", 7)
        first = self.verdicts(op)
        assert op.steps == 16
        op.reset()
        assert op.steps == 0
        assert self.verdicts(op) == first
        # fired faults report into the parent ledger under site@op_id
        if any(first):
            assert injector.fired().get("enum@7", 0) >= 1

    def test_shared_site_counter_drifts_where_operation_does_not(self):
        """The motivating contrast: the same logical 8-step run drawn
        through the *site* schedule changes verdicts once another thread
        of calls interleaves; through the operation schedule it cannot."""
        from repro.util import ChaosInjector

        alone = ChaosInjector(11)
        site_solo = [alone.maybe_delay("s", 0.5, 0.0) for _ in range(8)]
        busy = ChaosInjector(11)
        site_interleaved = []
        for _ in range(8):
            busy.maybe_delay("s", 0.5, 0.0)  # someone else's call
            site_interleaved.append(busy.maybe_delay("s", 0.5, 0.0))
        assert site_interleaved != site_solo  # the drift ChaosOperation fixes

        op_solo = self.verdicts(ChaosInjector(11).operation("s", "g"))
        busy2 = ChaosInjector(11)
        noisy = busy2.operation("s", "other")
        handle = busy2.operation("s", "g")
        op_interleaved = []
        for _ in range(16):
            noisy.draw()
            try:
                handle.maybe_fail(0.5)
                op_interleaved.append(False)
            except FaultInjectedError:
                op_interleaved.append(True)
        assert op_interleaved == op_solo
