"""Smoke tests: every example script must run end-to-end.

The examples double as integration tests across the whole public API;
their internal asserts check the paper's golden values.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_example_inventory():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLES) >= 4
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
