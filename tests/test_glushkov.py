"""Tests for the Glushkov construction and its agreement with Thompson."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import EPSILON, equivalent
from repro.automata.glushkov import glushkov_nfa, glushkov_spanner
from repro.core import Span, SpanTuple
from repro.errors import RegexSyntaxError
from repro.regex import compile_nfa, spanner_from_regex


PLAIN_PATTERNS = [
    "(a|b)*abb",
    "a*b*a*",
    "(ab|ba)+",
    "a?b{2,3}(a|b)*",
    "((a|b)(a|b))*",
    ".[ab]*",
    "()",
    "a{3}",
]


class TestPlainRegexes:
    @pytest.mark.parametrize("pattern", PLAIN_PATTERNS)
    def test_epsilon_free(self, pattern):
        nfa = glushkov_nfa(pattern)
        assert not any(symbol is EPSILON for _, symbol, _ in nfa.arcs())

    @pytest.mark.parametrize("pattern", PLAIN_PATTERNS)
    def test_state_count_is_positions_plus_one(self, pattern):
        nfa = glushkov_nfa(pattern)
        # a{3} has 3 positions, (ab|ba)+ has 4 (after + desugaring: 8), etc.
        assert nfa.num_states >= 1

    @pytest.mark.parametrize("pattern", PLAIN_PATTERNS)
    def test_equivalent_to_thompson(self, pattern):
        assert equivalent(glushkov_nfa(pattern), compile_nfa(pattern))

    @settings(max_examples=50, deadline=None)
    @given(st.sampled_from(PLAIN_PATTERNS), st.text(alphabet="ab", max_size=7))
    def test_membership_property(self, pattern, word):
        assert glushkov_nfa(pattern).accepts(word) == compile_nfa(pattern).accepts(word)


class TestSpannerRegexes:
    SPANNERS = [
        "!x{(a|b)*}!y{b}!z{(a|b)*}",
        "(a|b)*!x{ab}(a|b)*",
        "(!x{a})?(a|b)*",
        "!x{a!y{b}c}",
    ]

    @pytest.mark.parametrize("pattern", SPANNERS)
    def test_same_spanner_as_thompson(self, pattern):
        via_glushkov = glushkov_spanner(pattern)
        via_thompson = spanner_from_regex(pattern)
        for doc in ["", "a", "ab", "abc", "ababbab"]:
            assert via_glushkov.evaluate(doc) == via_thompson.evaluate(doc), (
                pattern,
                doc,
            )

    def test_example_1_1(self):
        spanner = glushkov_spanner("!x{(a|b)*}!y{b}!z{(a|b)*}")
        relation = spanner.evaluate("ababbab")
        assert SpanTuple.of(x=Span(1, 2), y=Span(2, 3), z=Span(3, 8)) in relation
        assert len(relation) == 4

    def test_capture_validity_enforced(self):
        with pytest.raises(RegexSyntaxError):
            glushkov_nfa("(!x{a})*")

    def test_references_rejected_for_spanner(self):
        with pytest.raises(RegexSyntaxError):
            glushkov_spanner("!x{a}&x")

    def test_reference_symbols_as_positions(self):
        # glushkov_nfa itself happily treats refs as symbols (for ReflSpanner)
        nfa = glushkov_nfa("!x{a+}&x")
        from repro.spanners import ReflSpanner

        refl = ReflSpanner(nfa)
        assert refl.evaluate("aa").tuples == frozenset({SpanTuple.of(x=Span(1, 2))})
