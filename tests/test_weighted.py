"""Tests for weighted (K-annotated) spanners (the [8] direction)."""

import pytest

from repro.core import Close, Open, Span, SpanTuple
from repro.errors import SchemaError
from repro.regex import spanner_from_regex
from repro.spanners.weighted import (
    BOOLEAN,
    COUNTING,
    PROBABILITY,
    TROPICAL,
    Semiring,
    WeightedSpanner,
)


def build_two_path_spanner(semiring, weight_a, weight_b):
    """x captures either via an 'a-path' or a 'b-path' arc with weights."""
    spanner = WeightedSpanner(semiring)
    s0 = spanner.add_state(initial=True)
    s1 = spanner.add_state()
    s2 = spanner.add_state()
    s3 = spanner.add_state(accepting=True)
    spanner.add_arc(s0, Open("x"), s1)
    spanner.add_arc(s1, "a", s2, weight=weight_a)
    spanner.add_arc(s1, "a", s2, weight=weight_b)  # ambiguous second arc
    spanner.add_arc(s2, Close("x"), s3)
    return spanner


class TestSemirings:
    def test_boolean_recovers_ordinary_semantics(self):
        spanner = build_two_path_spanner(BOOLEAN, True, True)
        relation = spanner.evaluate("a")
        assert relation == {SpanTuple.of(x=Span(1, 2)): True}

    def test_counting_counts_runs(self):
        spanner = build_two_path_spanner(COUNTING, 1, 1)
        relation = spanner.evaluate("a")
        assert relation == {SpanTuple.of(x=Span(1, 2)): 2}

    def test_tropical_takes_cheapest_run(self):
        spanner = build_two_path_spanner(TROPICAL, 5.0, 2.0)
        relation = spanner.evaluate("a")
        assert relation[SpanTuple.of(x=Span(1, 2))] == 2.0
        assert spanner.best("a") == (SpanTuple.of(x=Span(1, 2)), 2.0)

    def test_probability_sums_products(self):
        spanner = build_two_path_spanner(PROBABILITY, 0.5, 0.25)
        relation = spanner.evaluate("a")
        assert relation[SpanTuple.of(x=Span(1, 2))] == pytest.approx(0.75)

    def test_best_on_empty_relation(self):
        spanner = build_two_path_spanner(TROPICAL, 1.0, 1.0)
        assert spanner.best("b") is None


class TestLifting:
    def test_lifted_boolean_equals_plain_evaluation(self):
        plain = spanner_from_regex("(a|b)*!x{ab}(a|b)*")
        weighted = WeightedSpanner.from_spanner(plain, BOOLEAN)
        doc = "abab"
        relation = weighted.evaluate(doc)
        assert set(relation) == plain.evaluate(doc).tuples
        assert all(relation.values())

    def test_arc_weight_function(self):
        # tropical: charge 1 per consumed character, 0 per marker
        from repro.core.alphabet import Marker

        plain = spanner_from_regex("!x{a+}")
        weighted = WeightedSpanner.from_spanner(
            plain,
            TROPICAL,
            arc_weight=lambda s: 0.0 if s is None or isinstance(s, Marker) else 1.0,
        )
        relation = weighted.evaluate("aaa")
        assert relation[SpanTuple.of(x=Span(1, 4))] == 3.0

    def test_counting_detects_ambiguity(self):
        """(a|a) has two runs per match — the counting semiring sees it."""
        spanner = WeightedSpanner(COUNTING)
        s0 = spanner.add_state(initial=True)
        s1 = spanner.add_state()
        s2 = spanner.add_state()
        s3 = spanner.add_state(accepting=True)
        spanner.add_arc(s0, Open("x"), s1)
        spanner.add_arc(s1, "a", s2)
        spanner.add_arc(s1, "a", s2)
        spanner.add_arc(s2, Close("x"), s3)
        assert spanner.evaluate("a")[SpanTuple.of(x=Span(1, 2))] == 2

    def test_unambiguous_automaton_counts_one(self):
        spanner = WeightedSpanner(COUNTING)
        s0 = spanner.add_state(initial=True)
        s1 = spanner.add_state()
        s2 = spanner.add_state(accepting=True)
        spanner.add_arc(s0, Open("x"), s1)
        spanner.add_arc(s1, "a", s1)
        spanner.add_arc(s1, Close("x"), s2)
        relation = spanner.evaluate("aaa")
        assert relation == {SpanTuple.of(x=Span(1, 4)): 1}


class TestDivergence:
    def test_epsilon_cycle_with_counting_raises(self):
        spanner = WeightedSpanner(COUNTING)
        s0 = spanner.add_state(initial=True, accepting=True)
        s1 = spanner.add_state()
        spanner.add_arc(s0, None, s1)
        spanner.add_arc(s1, None, s0)
        with pytest.raises(SchemaError):
            spanner.evaluate("")

    def test_epsilon_cycle_with_boolean_converges(self):
        spanner = WeightedSpanner(BOOLEAN)
        s0 = spanner.add_state(initial=True, accepting=True)
        s1 = spanner.add_state()
        spanner.add_arc(s0, None, s1)
        spanner.add_arc(s1, None, s0)
        assert spanner.evaluate("") == {SpanTuple.empty(): True}

    def test_epsilon_cycle_with_tropical_converges(self):
        spanner = WeightedSpanner(TROPICAL)
        s0 = spanner.add_state(initial=True, accepting=True)
        s1 = spanner.add_state()
        spanner.add_arc(s0, None, s1, weight=1.0)
        spanner.add_arc(s1, None, s0, weight=1.0)
        assert spanner.evaluate("")[SpanTuple.empty()] == 0.0


class TestCustomSemiring:
    def test_max_plus(self):
        max_plus = Semiring("max-plus", float("-inf"), 0.0, max, lambda a, b: a + b)
        spanner = build_two_path_spanner(max_plus, 5.0, 2.0)
        assert spanner.evaluate("a")[SpanTuple.of(x=Span(1, 2))] == 5.0
