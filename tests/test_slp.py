"""Tests for the SLP representation and the Figure 1 artifacts (P5)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SLPError
from repro.slp import (
    SLP,
    DocumentDatabase,
    Fingerprinter,
    char_at,
    extract,
    figure_1_database,
    figure_1_slp,
)


class TestFigure1:
    """Experiment P5: every fact the paper states about Figure 1."""

    def test_derivations(self):
        slp, nodes = figure_1_slp()
        assert slp.derive(nodes["E"]) == "ab"
        assert slp.derive(nodes["F"]) == "bc"
        assert slp.derive(nodes["C"]) == "bca"
        # equation (4)/(5) of the paper
        assert slp.derive(nodes["B"]) == "abbca"

    def test_document_database(self):
        db, _ = figure_1_database()
        assert db.document("D1") == "ababbcabca"
        assert db.document("D2") == "bcabcaabbca"
        assert db.document("D3") == "ababbca"

    def test_node_orders(self):
        """Section 4.1: ord(F)=ord(E)=2, ord(C)=3, ord(B)=4,
        ord(D)=ord(A3)=5, ord(A1)=ord(A2)=6."""
        slp, nodes = figure_1_slp()
        expected = {"F": 2, "E": 2, "C": 3, "B": 4, "D": 5, "A3": 5, "A1": 6, "A2": 6}
        for name, order in expected.items():
            assert slp.order(nodes[name]) == order, name

    def test_balances(self):
        """Section 4.1: all nodes balanced except A1, A2, A3 with
        bal(A1)=2 and bal(A2)=bal(A3)=−2."""
        slp, nodes = figure_1_slp()
        assert slp.bal(nodes["A1"]) == 2
        assert slp.bal(nodes["A2"]) == -2
        assert slp.bal(nodes["A3"]) == -2
        for name in ["E", "F", "C", "B", "D"]:
            assert slp.is_balanced(nodes[name]), name
        for name in ["A1", "A2", "A3"]:
            assert not slp.is_balanced(nodes[name]), name

    def test_grey_extension(self):
        """Section 4.3: adding A4 = D2·D1 and A5 = B·G with G = D·B."""
        slp, nodes = figure_1_slp()
        a4 = slp.pair(nodes["A2"], nodes["A1"])
        assert slp.derive(a4) == "bcabcaabbca" + "ababbcabca"
        g = slp.pair(nodes["D"], nodes["B"])
        a5 = slp.pair(nodes["B"], g)
        assert slp.derive(a5) == "abbcabcaabbcaabbca"

    def test_a1_derivation_via_E_E_C_C(self):
        """Section 4.2: D(A1) = D(E)D(E)D(C)D(C) — shared factors."""
        slp, nodes = figure_1_slp()
        e, c = slp.derive(nodes["E"]), slp.derive(nodes["C"])
        assert slp.derive(nodes["A1"]) == e + e + c + c


class TestSLPBasics:
    def test_terminal_rules(self):
        slp = SLP()
        t = slp.terminal("x")
        assert slp.is_terminal(t)
        assert slp.char(t) == "x"
        assert slp.length(t) == 1 and slp.order(t) == 1
        with pytest.raises(SLPError):
            slp.terminal("xy")

    def test_hash_consing(self):
        slp = SLP()
        a, b = slp.terminal("a"), slp.terminal("b")
        assert slp.terminal("a") == a
        assert slp.pair(a, b) == slp.pair(a, b)
        assert slp.pair(a, b) != slp.pair(b, a)

    def test_length_and_order_maintained(self):
        slp = SLP()
        a = slp.terminal("a")
        ab = slp.pair(a, slp.terminal("b"))
        abab = slp.pair(ab, ab)
        assert slp.length(abab) == 4
        assert slp.order(abab) == 3

    def test_exponential_document_length_representable(self):
        slp = SLP()
        node = slp.terminal("a")
        for _ in range(200):
            node = slp.pair(node, node)
        assert slp.length(node) == 2 ** 200
        with pytest.raises(SLPError):
            slp.derive(node)

    def test_from_text_round_trip(self):
        slp = SLP()
        for text in ["a", "ab", "abc", "abracadabra"]:
            assert slp.derive(slp.from_text(text)) == text

    def test_empty_text_rejected(self):
        with pytest.raises(SLPError):
            SLP().from_text("")

    def test_size_counts_shared_nodes_once(self):
        slp = SLP()
        ab = slp.pair(slp.terminal("a"), slp.terminal("b"))
        abab = slp.pair(ab, ab)
        assert slp.size(abab) == 4  # a, b, ab, abab

    def test_topological_order(self):
        slp, nodes = figure_1_slp()
        order = slp.topological(nodes["A1"])
        position = {node: i for i, node in enumerate(order)}
        for node in order:
            if not slp.is_terminal(node):
                left, right = slp.children(node)
                assert position[left] < position[node]
                assert position[right] < position[node]

    def test_children_of_terminal_rejected(self):
        slp = SLP()
        with pytest.raises(SLPError):
            slp.children(slp.terminal("a"))

    def test_unknown_node_rejected(self):
        slp = SLP()
        with pytest.raises(SLPError):
            slp.length(99)


class TestDocumentDatabase:
    def test_from_texts(self):
        db = DocumentDatabase.from_texts({"a": "hello", "b": "world"})
        assert db.document("a") == "hello"
        assert db.names() == ["a", "b"]
        assert "a" in db and "c" not in db

    def test_duplicate_name_rejected(self):
        db = DocumentDatabase.from_texts({"a": "x"})
        with pytest.raises(SLPError):
            db.add_text("a", "y")

    def test_unknown_document(self):
        with pytest.raises(SLPError):
            DocumentDatabase().node("nope")

    def test_shared_arena(self):
        db = DocumentDatabase.from_texts({"a": "abab" * 4, "b": "abab" * 8})
        # the two documents share the repeated structure
        assert db.size() < len("abab" * 4) + len("abab" * 8)


class TestAccess:
    @given(st.text(alphabet="abc", min_size=1, max_size=60), st.data())
    def test_char_at_matches_indexing(self, text, data):
        slp = SLP()
        node = slp.from_text(text)
        position = data.draw(st.integers(0, len(text) - 1))
        assert char_at(slp, node, position) == text[position]

    @given(st.text(alphabet="abc", min_size=1, max_size=60), st.data())
    def test_extract_matches_slicing(self, text, data):
        slp = SLP()
        node = slp.from_text(text)
        begin = data.draw(st.integers(0, len(text)))
        end = data.draw(st.integers(begin, len(text)))
        assert extract(slp, node, begin, end) == text[begin:end]

    def test_out_of_range(self):
        slp = SLP()
        node = slp.from_text("abc")
        with pytest.raises(SLPError):
            char_at(slp, node, 3)
        with pytest.raises(SLPError):
            extract(slp, node, 1, 9)

    def test_access_on_exponential_document(self):
        slp = SLP()
        ab = slp.from_text("ab")
        node = ab
        for _ in range(50):
            node = slp.pair(node, node)
        # position 2^50: still 'a' (even positions are 'a')
        assert char_at(slp, node, 2 ** 50) == "a"
        assert extract(slp, node, 2 ** 49 * 2 - 1, 2 ** 49 * 2 + 3) == "baba"


class TestFingerprints:
    def test_equal_documents_equal_fingerprints(self):
        slp = SLP()
        left = slp.from_text("abcabc")
        right = slp.pair(slp.from_text("abc"), slp.from_text("abc"))
        fp = Fingerprinter(slp)
        assert fp.equal(left, right)

    def test_different_documents_differ(self):
        slp = SLP()
        fp = Fingerprinter(slp)
        assert not fp.equal(slp.from_text("abcd"), slp.from_text("abdc"))
        assert not fp.equal(slp.from_text("ab"), slp.from_text("abc"))

    def test_exponential_documents(self):
        slp = SLP()
        a = slp.from_text("ab")
        x = a
        for _ in range(100):
            x = slp.pair(x, x)
        y = slp.pair(a, a)
        for _ in range(99):
            y = slp.pair(y, y)
        fp = Fingerprinter(slp)
        assert fp.equal(x, y)  # both (ab)^(2^100)

    @given(st.text(alphabet="ab", min_size=1, max_size=30),
           st.text(alphabet="ab", min_size=1, max_size=30))
    def test_fingerprint_equality_matches_string_equality(self, s, t):
        slp = SLP()
        fp = Fingerprinter(slp)
        assert fp.equal(slp.from_text(s), slp.from_text(t)) == (s == t)
