"""Tests for complex document editing (paper Section 4.3, experiment C4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CDEError, SLPError
from repro.slp import (
    Concat,
    Copy,
    Delete,
    Doc,
    DocumentDatabase,
    Editor,
    Extract,
    Insert,
    apply_cde,
    eval_cde,
)

TEXTS = {"D1": "ababbcabca", "D2": "bcabcaabbca", "D3": "ababbca"}


def editor():
    return Editor.from_texts(dict(TEXTS))


class TestStringSemantics:
    def test_concat(self):
        assert eval_cde(Concat(Doc("D2"), Doc("D1")), TEXTS) == TEXTS["D2"] + TEXTS["D1"]

    def test_extract_is_one_based_inclusive(self):
        assert eval_cde(Extract(Doc("D1"), 2, 4), TEXTS) == "bab"
        assert eval_cde(Extract(Doc("D1"), 1, 1), TEXTS) == "a"

    def test_delete(self):
        assert eval_cde(Delete(Doc("D3"), 2, 3), TEXTS) == "abbca"

    def test_insert(self):
        assert eval_cde(Insert(Doc("D3"), Doc("D1"), 1), TEXTS) == TEXTS["D1"] + TEXTS["D3"]
        assert eval_cde(Insert(Doc("D3"), Doc("D1"), 8), TEXTS) == TEXTS["D3"] + TEXTS["D1"]
        assert eval_cde(Insert(Doc("D3"), Doc("D1"), 3), TEXTS) == "ab" + TEXTS["D1"] + "abbca"

    def test_copy(self):
        # copy 'ba' (positions 2-3 of D1) to the front
        assert eval_cde(Copy(Doc("D1"), 2, 3, 1), TEXTS) == "ba" + TEXTS["D1"]

    def test_nested_expression(self):
        expr = Concat(Extract(Doc("D1"), 1, 2), Delete(Doc("D2"), 1, 9))
        assert eval_cde(expr, TEXTS) == "ab" + TEXTS["D2"][9:]

    def test_paper_style_compound_edit(self):
        """'cut a factor from one document, insert it into another, append
        a third' — the Section 4 narrative."""
        cut = Extract(Doc("D2"), 4, 6)
        inserted = Insert(Doc("D3"), cut, 3)
        appended = Concat(inserted, Doc("D1"))
        manual = TEXTS["D3"][:2] + TEXTS["D2"][3:6] + TEXTS["D3"][2:] + TEXTS["D1"]
        assert eval_cde(appended, TEXTS) == manual

    def test_errors(self):
        with pytest.raises(CDEError):
            eval_cde(Doc("missing"), TEXTS)
        with pytest.raises(CDEError):
            eval_cde(Extract(Doc("D1"), 0, 3), TEXTS)
        with pytest.raises(CDEError):
            eval_cde(Extract(Doc("D1"), 3, 99), TEXTS)
        with pytest.raises(CDEError):
            eval_cde(Insert(Doc("D1"), Doc("D2"), 99), TEXTS)

    def test_size(self):
        expr = Concat(Extract(Doc("D1"), 1, 2), Doc("D2"))
        assert expr.size() == 4


class TestSLPSemantics:
    EXPRESSIONS = [
        Concat(Doc("D2"), Doc("D1")),
        Extract(Doc("D1"), 2, 4),
        Delete(Doc("D3"), 2, 3),
        Insert(Doc("D3"), Doc("D1"), 3),
        Copy(Doc("D1"), 2, 3, 1),
        Concat(Extract(Doc("D1"), 1, 2), Delete(Doc("D2"), 1, 9)),
        Insert(Doc("D3"), Extract(Doc("D2"), 4, 6), 3),
        Copy(Concat(Doc("D1"), Doc("D3")), 5, 9, 17),
    ]

    @pytest.mark.parametrize(
        "expr", EXPRESSIONS, ids=[f"{type(e).__name__}{i}" for i, e in enumerate(EXPRESSIONS)]
    )
    def test_matches_string_semantics(self, expr):
        ed = editor()
        node = apply_cde(expr, ed.db)
        assert ed.db.slp.derive(node) == eval_cde(expr, TEXTS)
        assert ed.db.slp.is_strongly_balanced(node)

    def test_editor_stores_result(self):
        ed = editor()
        ed.apply("D4", Concat(Doc("D2"), Doc("D1")))
        assert ed.db.document("D4") == TEXTS["D2"] + TEXTS["D1"]
        # D4 is queryable in further expressions
        ed.apply("D5", Extract(Doc("D4"), 3, 7))
        assert ed.db.document("D5") == (TEXTS["D2"] + TEXTS["D1"])[2:7]

    def test_empty_result_rejected(self):
        ed = editor()
        with pytest.raises(CDEError):
            apply_cde(Delete(Doc("D3"), 1, len(TEXTS["D3"])), ed.db)

    def test_editor_requires_balanced_database(self):
        from repro.slp import figure_1_database

        db, _ = figure_1_database()  # A1..A3 are NOT balanced
        with pytest.raises(SLPError):
            Editor(db)

    def test_rebalance_document(self):
        from repro.slp import figure_1_database

        db, _ = figure_1_database()
        from repro.slp.balance import rebalance

        docs = {name: db.document(name) for name in db.names()}
        for name in db.names():
            db._docs[name] = rebalance(db.slp, db.node(name))
        ed = Editor(db)
        ed.apply("D4", Concat(Doc("D2"), Doc("D1")))
        assert ed.db.document("D4") == docs["D2"] + docs["D1"]

    def test_update_cost_is_logarithmic(self):
        """The [40] headline: a CDE step on a huge document creates only
        O(log d) fresh nodes."""
        from repro.slp import SLP, power_node

        slp = SLP()
        node = power_node(slp, "abcd", 18)  # document of length 2^20
        db = DocumentDatabase(slp)
        db.add_node("big", node)
        ed = Editor(db)
        before = slp.num_nodes()
        ed.apply("edited", Delete(Doc("big"), 12345, 23456))
        created = slp.num_nodes() - before
        assert created <= 60 * 21  # O(log d) with a generous constant

    @settings(max_examples=25, deadline=None)
    @given(
        st.text(alphabet="ab", min_size=2, max_size=30),
        st.text(alphabet="ab", min_size=1, max_size=20),
        st.data(),
    )
    def test_property_random_edit_scripts(self, base, other, data):
        ed = Editor.from_texts({"A": base, "B": other})
        texts = {"A": base, "B": other}
        i = data.draw(st.integers(1, len(base)))
        j = data.draw(st.integers(i, len(base)))
        k = data.draw(st.integers(1, len(base) + 1))
        for expr in [
            Extract(Doc("A"), i, j),
            Insert(Doc("A"), Doc("B"), k),
            Copy(Doc("A"), i, j, k),
            Concat(Doc("B"), Extract(Doc("A"), i, j)),
        ]:
            node = apply_cde(expr, ed.db)
            assert ed.db.slp.derive(node) == eval_cde(expr, texts)
            assert ed.db.slp.is_strongly_balanced(node)
