"""Tests for balanced-SLP primitives (paper Section 4.1)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SLPError
from repro.slp import (
    SLP,
    balanced_node,
    concat_balanced,
    extract_balanced,
    figure_1_slp,
    rebalance,
    repair_node,
    split_balanced,
)
from repro.slp.balance import assert_strongly_balanced


class TestConcatBalanced:
    def test_preserves_derivation_and_balance(self):
        slp = SLP()
        left = balanced_node(slp, "abcabc")
        right = balanced_node(slp, "xy")
        node = concat_balanced(slp, left, right)
        assert slp.derive(node) == "abcabcxy"
        assert slp.is_strongly_balanced(node)

    def test_none_is_empty(self):
        slp = SLP()
        node = balanced_node(slp, "ab")
        assert concat_balanced(slp, None, node) == node
        assert concat_balanced(slp, node, None) == node
        assert concat_balanced(slp, None, None) is None

    def test_extremely_unequal_orders(self):
        slp = SLP()
        big = balanced_node(slp, "ab" * 512)
        small = slp.terminal("z")
        for left, right in [(big, small), (small, big)]:
            node = concat_balanced(slp, left, right)
            assert slp.is_strongly_balanced(node)
            assert slp.length(node) == 1025

    def test_cost_is_logarithmic(self):
        """O(|ord(a) − ord(b)|) fresh nodes per concat."""
        slp = SLP()
        big = balanced_node(slp, "ab" * 2048)
        small = slp.terminal("z")
        before = slp.num_nodes()
        concat_balanced(slp, big, small)
        created = slp.num_nodes() - before
        assert created <= 3 * (slp.order(big) + 2)

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="ab", min_size=1, max_size=40),
           st.text(alphabet="ab", min_size=1, max_size=40))
    def test_property(self, s, t):
        slp = SLP()
        node = concat_balanced(slp, balanced_node(slp, s), balanced_node(slp, t))
        assert slp.derive(node) == s + t
        assert slp.is_strongly_balanced(node)


class TestSplitBalanced:
    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="abc", min_size=1, max_size=50), st.data())
    def test_split_round_trip(self, text, data):
        slp = SLP()
        node = balanced_node(slp, text)
        position = data.draw(st.integers(0, len(text)))
        prefix, suffix = split_balanced(slp, node, position)
        derived = (slp.derive(prefix) if prefix is not None else "") + (
            slp.derive(suffix) if suffix is not None else ""
        )
        assert derived == text
        if prefix is not None:
            assert slp.length(prefix) == position
            assert slp.is_strongly_balanced(prefix)
        if suffix is not None:
            assert slp.is_strongly_balanced(suffix)

    def test_out_of_range(self):
        slp = SLP()
        node = balanced_node(slp, "abc")
        with pytest.raises(SLPError):
            split_balanced(slp, node, 4)
        with pytest.raises(SLPError):
            split_balanced(slp, node, -1)

    def test_split_on_exponential_document(self):
        """Splitting a doubly-exponential document stays cheap: the paper's
        point that updates cost O(log d) regardless of compressibility."""
        slp = SLP()
        node = balanced_node(slp, "ab")
        for _ in range(40):
            node = slp.pair(node, node)
        before = slp.num_nodes()
        prefix, suffix = split_balanced(slp, node, 3)
        created = slp.num_nodes() - before
        assert slp.derive(prefix) == "aba"
        assert slp.length(suffix) == 2 ** 41 - 3
        assert created <= 10 * 41  # O(depth), NOT O(length)

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ab", min_size=2, max_size=40), st.data())
    def test_extract_balanced(self, text, data):
        slp = SLP()
        node = balanced_node(slp, text)
        begin = data.draw(st.integers(0, len(text)))
        end = data.draw(st.integers(begin, len(text)))
        middle = extract_balanced(slp, node, begin, end)
        if begin == end:
            assert middle is None
        else:
            assert slp.derive(middle) == text[begin:end]
            assert slp.is_strongly_balanced(middle)


class TestRebalance:
    def test_figure_1_roots_become_balanced(self):
        slp, nodes = figure_1_slp()
        for name in ["A1", "A2", "A3"]:
            balanced = rebalance(slp, nodes[name])
            assert slp.derive(balanced) == slp.derive(nodes[name])
            assert slp.is_strongly_balanced(balanced)

    def test_left_chain(self):
        """A degenerate left-spine SLP (order = n) becomes logarithmic."""
        slp = SLP()
        node = slp.terminal("a")
        for __ in range(63):
            node = slp.pair(node, slp.terminal("a"))
        assert slp.order(node) == 64
        balanced = rebalance(slp, node)
        assert slp.length(balanced) == 64
        assert slp.order(balanced) <= 2 * math.log2(64) + 2
        assert slp.is_strongly_balanced(balanced)

    def test_memoisation_shares_work(self):
        slp = SLP()
        chain = slp.terminal("a")
        for __ in range(20):
            chain = slp.pair(chain, slp.terminal("b"))
        shared = slp.pair(chain, chain)
        memo: dict[int, int] = {}
        balanced = rebalance(slp, shared, memo)
        assert slp.derive(balanced) == slp.derive(shared)
        # the shared chain was rebalanced once, not twice
        assert memo[chain] == memo[chain]

    def test_repair_output_can_be_rebalanced(self):
        slp = SLP()
        text = "abcabcabcabc" * 5
        node = repair_node(slp, text)
        balanced = rebalance(slp, node)
        assert slp.derive(balanced) == text
        assert slp.is_strongly_balanced(balanced)


class TestBalancednessPredicates:
    def test_strongly_balanced_implies_2_shallow(self):
        """Section 4.1: any strongly balanced SLP is 2-shallow."""
        slp = SLP()
        for text in ["ab" * 37, "abcabc" * 11, "a" * 100]:
            node = balanced_node(slp, text)
            assert slp.is_strongly_balanced(node)
            assert slp.is_c_shallow(node, 2.0)

    def test_chain_is_not_shallow(self):
        slp = SLP()
        node = slp.terminal("a")
        for __ in range(63):
            node = slp.pair(node, slp.terminal("a"))
        assert not slp.is_c_shallow(node, 2.0)

    def test_assert_strongly_balanced(self):
        slp, nodes = figure_1_slp()
        assert_strongly_balanced(slp, nodes["B"])
        with pytest.raises(SLPError):
            assert_strongly_balanced(slp, nodes["A1"])

    def test_order_bounds_of_strongly_balanced_nodes(self):
        """Section 4.1: log|D(A)| ≤ ord(A) − 1 ≤ 2·log|D(A)| for strongly
        balanced A (with |D(A)| ≥ 2)."""
        slp = SLP()
        for length in [2, 3, 7, 64, 100, 255]:
            node = balanced_node(slp, "ab" * length)  # length 2·length
            size = slp.length(node)
            order = slp.order(node)
            assert math.log2(size) <= order - 1 <= 2 * math.log2(size)
