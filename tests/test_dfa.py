"""Tests for determinisation, minimisation, equivalence, and containment."""

from hypothesis import given, strategies as st

from repro.automata import (
    NFA,
    compute_atoms,
    concat,
    contains,
    determinize,
    equivalent,
    literal_nfa,
    star,
    union,
)
from repro.core import Close, DOT, Open, char_class


def word_nfa(*words):
    return union(*(literal_nfa(w) for w in words))


class TestDeterminize:
    def test_simple(self):
        dfa = determinize(word_nfa("ab", "ac"))
        assert dfa.accepts("ab") and dfa.accepts("ac")
        assert not dfa.accepts("ad") and not dfa.accepts("a")

    def test_char_classes_are_atomised(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, char_class("ab"), t)
        nfa.add_arc(s, "a", s)  # 'a' also loops
        dfa = determinize(nfa)
        assert dfa.accepts("b")
        assert dfa.accepts("ab")
        assert dfa.accepts("aab")
        assert not dfa.accepts("ba")

    def test_remainder_atom_handles_unseen_chars(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, DOT, t)
        dfa = determinize(nfa)
        assert dfa.accepts("z")  # 'z' never mentioned on any arc
        assert dfa.accepts("α")
        assert not dfa.accepts("zz")

    def test_markers_are_atoms(self):
        nfa = NFA()
        s = nfa.add_state(initial=True)
        t = nfa.add_state(accepting=True)
        nfa.add_arc(s, Open("x"), t)
        dfa = determinize(nfa)
        assert dfa.accepts([Open("x")])
        assert not dfa.accepts([Close("x")])
        assert not dfa.accepts("a")

    @given(st.lists(st.text(alphabet="abc", max_size=4), max_size=5),
           st.text(alphabet="abcd", max_size=6))
    def test_determinize_preserves_language(self, words, probe):
        nfa = word_nfa(*words) if words else literal_nfa("zzz")
        dfa = determinize(nfa)
        assert dfa.accepts(probe) == nfa.accepts(probe)


class TestComplementAndEmptiness:
    def test_complement(self):
        dfa = determinize(literal_nfa("ab"))
        comp = dfa.complement()
        assert not comp.accepts("ab")
        assert comp.accepts("a") and comp.accepts("") and comp.accepts("abc")

    def test_double_complement_is_identity_language(self):
        dfa = determinize(word_nfa("a", "bb"))
        twice = dfa.complement().complement()
        for probe in ["a", "bb", "", "b", "ab"]:
            assert twice.accepts(probe) == dfa.accepts(probe)

    def test_is_empty(self):
        assert determinize(literal_nfa("a")).complement().complement().is_empty() is False
        nfa = NFA()
        nfa.add_state(initial=True)
        assert determinize(nfa).is_empty()


class TestMinimize:
    def test_minimize_collapses_equivalent_states(self):
        # (a|b)(a|b) built redundantly: 2-letter words over {a,b}
        nfa = word_nfa("aa", "ab", "ba", "bb")
        dfa = determinize(nfa).minimize()
        # minimal DFA: start, after-1, accept, dead = 4 states
        assert dfa.num_states <= 4

    def test_minimize_preserves_language(self):
        nfa = union(star(literal_nfa("ab")), literal_nfa("ab"))
        dfa = determinize(nfa)
        mini = dfa.minimize()
        for probe in ["", "ab", "abab", "a", "ba", "ababab"]:
            assert mini.accepts(probe) == dfa.accepts(probe)


class TestEquivalence:
    def test_same_language_different_shape(self):
        left = union(star(literal_nfa("a")), literal_nfa("aa"))  # a*
        right = star(literal_nfa("a"))
        assert equivalent(left, right)

    def test_different_languages(self):
        assert not equivalent(literal_nfa("a"), literal_nfa("b"))
        assert not equivalent(star(literal_nfa("a")), concat(literal_nfa("a"), star(literal_nfa("a"))))

    def test_equivalence_with_classes_vs_literals(self):
        by_class = NFA()
        s = by_class.add_state(initial=True)
        t = by_class.add_state(accepting=True)
        by_class.add_arc(s, char_class("ab"), t)
        by_literals = word_nfa("a", "b")
        assert equivalent(by_class, by_literals)

    def test_marker_language_equivalence(self):
        def build(order):
            nfa = NFA()
            states = nfa.add_states(3)
            nfa.initial = {states[0]}
            nfa.accepting = {states[-1]}
            nfa.add_arc(states[0], order[0], states[1])
            nfa.add_arc(states[1], order[1], states[2])
            return nfa

        same = build([Open("x"), Close("x")])
        also = build([Open("x"), Close("x")])
        different = build([Open("x"), Close("y")])
        assert equivalent(same, also)
        assert not equivalent(same, different)


class TestContainment:
    def test_strict_containment(self):
        small = literal_nfa("ab")
        big = star(char_nfa := word_nfa("a", "b"))
        assert contains(big, small)
        assert not contains(small, big)

    def test_self_containment(self):
        nfa = star(literal_nfa("ab"))
        assert contains(nfa, nfa)

    def test_containment_with_dot(self):
        anything = NFA()
        s = anything.add_state(initial=True, accepting=True)
        anything.add_arc(s, DOT, s)
        assert contains(anything, word_nfa("hello", "world"))
        assert not contains(word_nfa("hello"), anything)

    @given(st.lists(st.text(alphabet="ab", max_size=3), max_size=4),
           st.lists(st.text(alphabet="ab", max_size=3), max_size=4))
    def test_containment_matches_subset(self, small_words, big_words):
        small = word_nfa(*small_words) if small_words else literal_nfa("x")
        big = word_nfa(*big_words) if big_words else literal_nfa("x")
        expected = set(small_words or ["x"]) <= set(big_words or ["x"])
        assert contains(big, small) == expected

    def test_shared_atoms(self):
        left = literal_nfa("ab")
        right = word_nfa("ab", "cd")
        atoms = compute_atoms(left, right)
        assert "a" in atoms.base and "d" in atoms.base
        d1 = determinize(left, atoms)
        d2 = determinize(right, atoms)
        assert d1.accepts("ab") and d2.accepts("cd")
