"""Transactional semantics of SpannerDB mutations.

The invariant under test: after any failed mutation or rolled-back
transaction, the store is *exactly* what it was before — same documents,
same query answers, same arena size, no stale evaluator caches.
"""

import pytest

from repro import SpannerDB
from repro.errors import SLPError, TransactionError
from repro.slp import Concat, Delete, Doc


PATTERN = "(a|b)*!x{b}(a|b)*"


def store():
    db = SpannerDB()
    db.add_document("d1", "ababbab")
    db.add_document("d2", "bbaa")
    db.register_spanner("m", PATTERN)
    return db


def snapshot(db):
    return {
        "docs": db.documents(),
        "answers": {name: sorted(map(str, db.query("m", name))) for name in db.documents()},
        "arena": db.slp.mark(),
    }


class TestExplicitTransaction:
    def test_commit_applies_all(self):
        db = store()
        with db.transaction():
            db.add_document("d3", "abba")
            db.edit("d4", Delete(Doc("d3"), 1, 3))
        assert db.documents() == ["d1", "d2", "d3", "d4"]
        assert db.document_text("d4") == "a"  # delete positions 1..3 of "abba"

    def test_rollback_restores_everything(self):
        db = store()
        before = snapshot(db)
        with pytest.raises(RuntimeError, match="boom"):
            with db.transaction():
                db.add_document("d3", "abba")
                db.edit("d4", Concat(Doc("d3"), Doc("d1")))
                db.register_spanner("m2", "!y{a}(a|b)*")
                raise RuntimeError("boom")
        assert snapshot(db) == before
        assert db.spanners() == ["m"]

    def test_rollback_truncates_arena(self):
        db = store()
        mark = db.slp.mark()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.add_document("big", "xyzw" * 50)
                raise RuntimeError
        assert db.slp.mark() == mark

    def test_nested_inner_rollback_keeps_outer(self):
        db = store()
        with db.transaction():
            db.add_document("outer", "aaa")
            with pytest.raises(RuntimeError):
                with db.transaction():
                    db.add_document("inner", "bbb")
                    raise RuntimeError
            assert "inner" not in db.documents()
            assert "outer" in db.documents()
        assert db.documents() == ["d1", "d2", "outer"]

    def test_nested_outer_rollback_discards_inner_commit(self):
        db = store()
        before = snapshot(db)
        with pytest.raises(RuntimeError):
            with db.transaction():
                with db.transaction():
                    db.add_document("inner", "bbb")
                raise RuntimeError
        assert snapshot(db) == before

    def test_unbalanced_commit_is_an_error(self):
        db = store()
        with pytest.raises(TransactionError):
            db._commit()
        with pytest.raises(TransactionError):
            db._rollback()


class TestAutoTransactions:
    """Every single mutation is atomic on its own."""

    def test_failed_edit_rolls_back(self):
        db = store()
        before = snapshot(db)
        with pytest.raises(SLPError):
            db.edit("bad", Doc("no-such-document"))
        assert snapshot(db) == before

    def test_duplicate_name_rolls_back_arena(self):
        db = store()
        mark = db.slp.mark()
        with pytest.raises(SLPError):
            db.add_document("d1", "a completely fresh text")
        assert db.slp.mark() == mark
        assert db.document_text("d1") == "ababbab"

    def test_empty_document_rejected_cleanly(self):
        db = store()
        before = snapshot(db)
        with pytest.raises(SLPError):
            db.add_document("d3", "")
        assert snapshot(db) == before


class TestCacheConsistencyAfterRollback:
    """Node ids are reused after truncation; stale matrices would silently
    answer for the *rolled-back* document.  This is the regression test."""

    def test_reused_node_ids_answer_for_the_new_document(self):
        db = store()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.add_document("ghost", "bbbbbbbb")  # many b-matches
                raise RuntimeError
        # reuse the freed ids for a document with *different* answers
        db.add_document("real", "aaaa")
        assert list(db.query("m", "real")) == []  # no b in "aaaa"

    def test_committed_documents_unaffected_by_rollback(self):
        db = store()
        before = snapshot(db)["answers"]
        for attempt in range(5):
            with pytest.raises(RuntimeError):
                with db.transaction():
                    db.add_document(f"t{attempt}", "ab" * (attempt + 2))
                    raise RuntimeError
        after = {name: sorted(map(str, db.query("m", name))) for name in db.documents()}
        assert after == before
