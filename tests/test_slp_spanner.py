"""Tests for spanner evaluation over SLP-compressed documents
(paper Section 4 / [39, 40]; experiments C3 and C4)."""

from hypothesis import given, settings, strategies as st

from repro.core import Span, SpanTuple
from repro.enumeration import Enumerator
from repro.regex import spanner_from_regex
from repro.slp import (
    Concat,
    Delete,
    Doc,
    DocumentDatabase,
    Editor,
    Insert,
    SLP,
    SLPSpannerEvaluator,
    balanced_node,
    figure_1_slp,
    power_node,
    repair_node,
)


PATTERNS = [
    "!x{(a|b)*}!y{b}!z{(a|b)*}",
    "(a|b)*!x{ab}(a|b)*",
    "(a|b)*!x{a+}!y{b+}(a|b)*",
    "(!x{a})?(a|b)*",
    "!x{a*}",
]

DOCS = ["a", "b", "ab", "abab", "ababbab", "bbaab"]


class TestCorrectness:
    def test_agrees_with_uncompressed_pipeline(self):
        for pattern in PATTERNS:
            spanner = spanner_from_regex(pattern)
            compressed = SLPSpannerEvaluator(spanner)
            uncompressed = Enumerator(spanner)
            for doc in DOCS:
                slp = SLP()
                node = balanced_node(slp, doc)
                got = compressed.evaluate(slp, node)
                want = uncompressed.evaluate(doc)
                assert got == want, (pattern, doc)

    def test_no_duplicates(self):
        spanner = spanner_from_regex("(a|b)*!x{ab}(a|b)*")
        evaluator = SLPSpannerEvaluator(spanner)
        slp = SLP()
        node = repair_node(slp, "abab" * 8)
        produced = list(evaluator.enumerate(slp, node))
        assert len(produced) == len(set(produced))

    def test_compression_does_not_change_results(self):
        """Different SLPs for the same document give the same relation —
        the compression-awareness discussion of Section 4.2."""
        from repro.slp import lz78_node

        spanner = spanner_from_regex("(a|b|c)*!x{bca}(a|b|c)*")
        evaluator = SLPSpannerEvaluator(spanner)
        doc = "ababbcabca"
        relations = []
        for builder in [balanced_node, repair_node, lz78_node]:
            slp = SLP()
            relations.append(evaluator.evaluate(slp, builder(slp, doc)))
        assert relations[0] == relations[1] == relations[2]

    def test_figure_1_document(self):
        """Section 4.2's example: extracting from D(A1) = ababbcabca, where
        the two occurrences of D(C) = bca are shared by one node."""
        slp, nodes = figure_1_slp()
        spanner = spanner_from_regex("(a|b|c)*!x{bca}(a|b|c)*")
        evaluator = SLPSpannerEvaluator(spanner)
        relation = evaluator.evaluate(slp, nodes["A1"])
        # bca occurs at positions 5 and 8 of ababbcabca; the span tuples
        # treat the two shared occurrences differently (partial decompression)
        assert {t["x"] for t in relation} == {Span(5, 8), Span(8, 11)}

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ab", min_size=1, max_size=10))
    def test_property(self, doc):
        spanner = spanner_from_regex("(a|b)*!x{a(a|b)*b}(a|b)*")
        evaluator = SLPSpannerEvaluator(spanner)
        slp = SLP()
        node = repair_node(slp, doc)
        assert evaluator.evaluate(slp, node) == Enumerator(spanner).evaluate(doc)

    def test_empty_relation(self):
        spanner = spanner_from_regex("(a|b)*!x{c}(a|b)*")
        evaluator = SLPSpannerEvaluator(spanner)
        slp = SLP()
        assert len(evaluator.evaluate(slp, balanced_node(slp, "abab"))) == 0


class TestCompressedScaling:
    def test_preprocessing_linear_in_slp_not_document(self):
        """Experiment C3's core: |S| matrices, not |D| table columns."""
        spanner = spanner_from_regex("(a|b)*!x{ab}(a|b)*")
        evaluator = SLPSpannerEvaluator(spanner)
        slp = SLP()
        node = power_node(slp, "ab", 30)  # |D| = 2^31, |S| ~ 33
        fresh = evaluator.preprocess(slp, node)
        assert fresh <= 40

    def test_nonemptiness_on_astronomical_document(self):
        spanner = spanner_from_regex("(a|b)*!x{ab}(a|b)*")
        evaluator = SLPSpannerEvaluator(spanner)
        slp = SLP()
        node = power_node(slp, "ab", 50)
        assert evaluator.is_nonempty(slp, node)
        all_a = power_node(slp, "a", 50)
        assert not evaluator.is_nonempty(slp, all_a)

    def test_first_tuples_of_huge_document(self):
        """Enumeration is lazy: the first results of a 2^21-char document
        arrive after descending one root-to-leaf path, not after scanning."""
        import itertools

        spanner = spanner_from_regex("(a|b)*!x{ab}(a|b)*")
        evaluator = SLPSpannerEvaluator(spanner)
        slp = SLP()
        node = power_node(slp, "ab", 20)
        first_three = list(itertools.islice(evaluator.enumerate(slp, node), 3))
        assert SpanTuple.of(x=Span(1, 3)) in first_three


class TestDynamicUpdates:
    """[40]: after a CDE edit, only the fresh nodes need new matrices."""

    def test_incremental_matrices_after_edit(self):
        spanner = spanner_from_regex("(a|b|c|d)*!x{ab}(a|b|c|d)*")
        evaluator = SLPSpannerEvaluator(spanner)
        slp = SLP()
        node = power_node(slp, "abcd", 12)
        db = DocumentDatabase(slp)
        db.add_node("big", node)
        editor = Editor(db)
        evaluator.preprocess(slp, node)
        cached = evaluator.cached_nodes()
        edited = editor.apply("edited", Delete(Doc("big"), 100, 2000))
        fresh = evaluator.preprocess(slp, edited)
        # only the O(log d) fresh spine nodes got new matrices
        assert fresh <= 60 * 14
        assert evaluator.cached_nodes() == cached + fresh

    def test_query_after_edits_matches_string_semantics(self):
        spanner = spanner_from_regex("(a|b)*!x{ab}(a|b)*")
        evaluator = SLPSpannerEvaluator(spanner)
        editor = Editor.from_texts({"A": "abba", "B": "baab"})
        texts = {"A": "abba", "B": "baab"}
        from repro.slp import eval_cde

        for expr in [
            Concat(Doc("A"), Doc("B")),
            Insert(Doc("A"), Doc("B"), 3),
            Delete(Doc("B"), 2, 3),
        ]:
            node = editor.db.slp
            from repro.slp import apply_cde

            result = apply_cde(expr, editor.db)
            doc = eval_cde(expr, texts)
            got = evaluator.evaluate(editor.db.slp, result)
            want = Enumerator(spanner).evaluate(doc)
            assert got == want, doc
