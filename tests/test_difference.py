"""Tests for spanner difference (closure of regular spanners, [9])."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.dfa import dfa_to_nfa, determinize, difference
from repro.automata import literal_nfa, star, union
from repro.errors import SchemaError
from repro.spanners import RegularSpanner


class TestLanguageDifference:
    def test_basic(self):
        left = union(literal_nfa("a"), literal_nfa("b"), literal_nfa("c"))
        right = literal_nfa("b")
        diff = difference(left, right)
        assert diff.accepts("a") and diff.accepts("c")
        assert not diff.accepts("b")

    def test_difference_with_star(self):
        left = star(literal_nfa("a"))            # a*
        right = union(literal_nfa(""), literal_nfa("aa"))
        diff = difference(left, right)           # a* minus {ε, aa}
        assert diff.accepts("a") and diff.accepts("aaa")
        assert not diff.accepts("") and not diff.accepts("aa")

    def test_empty_difference(self):
        nfa = literal_nfa("ab")
        diff = difference(nfa, nfa)
        assert diff.is_empty()

    @given(st.lists(st.text(alphabet="ab", max_size=3), max_size=5),
           st.lists(st.text(alphabet="ab", max_size=3), max_size=5),
           st.text(alphabet="ab", max_size=4))
    def test_property(self, left_words, right_words, probe):
        left = union(*(literal_nfa(w) for w in left_words)) if left_words else literal_nfa("zz")
        right = union(*(literal_nfa(w) for w in right_words)) if right_words else literal_nfa("zz")
        diff = difference(left, right)
        expected = probe in (set(left_words or ["zz"]) - set(right_words or ["zz"]))
        assert diff.accepts(probe) == expected

    def test_dfa_round_trip(self):
        nfa = union(literal_nfa("ab"), star(literal_nfa("ba")))
        back = dfa_to_nfa(determinize(nfa))
        for probe in ["ab", "ba", "baba", "", "abab"]:
            assert back.accepts(probe) == nfa.accepts(probe)


class TestSpannerDifference:
    def test_functional_flag_preserved(self):
        """Difference yields a subset of the left operand's relation, so
        left-functional implies result-functional; the flag must survive
        (it used to be hardcoded False) because downstream join planning
        takes the strict-product fast path only for functional operands."""
        from repro.regex.compile import spanner_from_regex
        from repro.spanners import join_lenient

        left = spanner_from_regex("(a|b)*!x{(a|b)(a|b)}(a|b)*")
        right = spanner_from_regex("(a|b)*!x{ab}(a|b)*")
        assert left.functional
        diff = left.difference(right)
        assert diff.functional

        # differential: with the flag intact the strict product join is
        # chosen for diff ⋈ functional — it must agree with the lenient
        # join and with the relation-level join on every document
        other = spanner_from_regex("(a|b)*!x{(a|b)(a|b)}!y{(a|b)}(a|b)*")
        strict = diff.join(other)
        lenient = join_lenient(diff, other)
        for doc in ["abba", "bb", "aabb"]:
            expected = diff.evaluate(doc).natural_join(other.evaluate(doc))
            assert strict.evaluate(doc) == expected, doc
            assert lenient.evaluate(doc) == expected, doc

    def test_schemaless_difference_not_marked_functional(self):
        from repro.regex.compile import spanner_from_regex

        left = spanner_from_regex("(!x{a})?(a|b)*")  # x optional: not functional
        right = spanner_from_regex("(a|b)*(!x{b})?")
        assert not left.difference(right).functional

    def test_removes_matching_tuples(self):
        all_pairs = RegularSpanner.from_regex("(a|b)*!x{(a|b)(a|b)}(a|b)*")
        just_ab = RegularSpanner.from_regex("(a|b)*!x{ab}(a|b)*")
        diff = all_pairs.difference(just_ab)
        doc = "abba"
        expected = all_pairs.evaluate(doc).tuples - just_ab.evaluate(doc).tuples
        assert diff.evaluate(doc).tuples == expected
        assert expected  # sanity: something remains ('bb', 'ba')

    def test_marker_order_insensitive(self):
        """Difference normalises first, so representations with different
        marker orders subtract correctly."""
        spanner = RegularSpanner.from_regex("!x{a}!y{b}")
        diff = spanner.difference(spanner)
        assert len(diff.evaluate("ab")) == 0

    def test_schema_mismatch_rejected(self):
        left = RegularSpanner.from_regex("!x{a}")
        right = RegularSpanner.from_regex("!y{a}")
        with pytest.raises(SchemaError):
            left.difference(right)

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="ab", max_size=5))
    def test_difference_property(self, doc):
        big = RegularSpanner.from_regex("(a|b)*!x{(a|b)+}(a|b)*")
        small = RegularSpanner.from_regex("(a|b)*!x{a+}(a|b)*")
        diff = big.difference(small)
        assert diff.evaluate(doc).tuples == (
            big.evaluate(doc).tuples - small.evaluate(doc).tuples
        )

    def test_schemaless_difference(self):
        left = RegularSpanner.from_regex("(!x{a})?(a|b)*")
        right = RegularSpanner.from_regex("(a|b)+")  # only the empty tuple
        right = RegularSpanner(right.automaton.__class__(right.automaton.nfa, frozenset({"x"})))
        diff = left.difference(right)
        relation = diff.evaluate("ab")
        # the empty tuple came from both sides and is subtracted
        from repro.core import SpanTuple, Span

        assert SpanTuple.empty() not in relation
        assert SpanTuple.of(x=Span(1, 2)) in relation
