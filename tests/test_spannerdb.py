"""Tests for the integrated SpannerDB system (the Section 4 narrative)."""

import pytest

from repro.core import Span, SpanTuple
from repro.db import SpannerDB
from repro.errors import SchemaError, SLPError
from repro.regex import spanner_from_regex
from repro.slp import Concat, Delete, Doc, Extract, Insert


@pytest.fixture
def db():
    store = SpannerDB()
    store.add_document("d1", "ababbab")
    store.add_document("d2", "bbaabb")
    store.register_spanner("pairs", "(a|b)*!x{ab}(a|b)*")
    return store


class TestDocuments:
    def test_ingest_and_read_back(self, db):
        assert db.documents() == ["d1", "d2"]
        assert db.document_text("d1") == "ababbab"
        assert db.document_length("d2") == 6

    def test_empty_document_rejected(self, db):
        with pytest.raises(SLPError):
            db.add_document("bad", "")

    def test_duplicate_name_rejected(self, db):
        with pytest.raises(SLPError):
            db.add_document("d1", "zz")

    def test_documents_are_strongly_balanced(self, db):
        for name in db.documents():
            node = db._db.node(name)
            assert db.slp.is_strongly_balanced(node)


class TestQueries:
    def test_evaluate_matches_uncompressed(self, db):
        spanner = spanner_from_regex("(a|b)*!x{ab}(a|b)*")
        for name in db.documents():
            assert db.evaluate("pairs", name) == spanner.evaluate(
                db.document_text(name)
            )

    def test_streaming_query(self, db):
        first = next(db.query("pairs", "d1"))
        assert first == SpanTuple.of(x=Span(1, 3))

    def test_is_nonempty(self, db):
        assert db.is_nonempty("pairs", "d1")
        db.add_document("no_ab", "bbb")
        assert not db.is_nonempty("pairs", "no_ab")

    def test_unknown_names(self, db):
        with pytest.raises(SchemaError):
            db.evaluate("nope", "d1")
        with pytest.raises(SLPError):
            db.evaluate("pairs", "nope")

    def test_register_after_ingest_preprocesses(self, db):
        db.register_spanner("runs", "(a|b)*!x{a+}(a|b)*")
        assert len(db.evaluate("runs", "d2")) > 0

    def test_duplicate_spanner_rejected(self, db):
        with pytest.raises(SchemaError):
            db.register_spanner("pairs", "!x{a}")


class TestEditing:
    def test_edit_and_requery(self, db):
        db.edit("d3", Concat(Doc("d1"), Doc("d2")))
        expected_doc = "ababbab" + "bbaabb"
        assert db.document_text("d3") == expected_doc
        spanner = spanner_from_regex("(a|b)*!x{ab}(a|b)*")
        assert db.evaluate("pairs", "d3") == spanner.evaluate(expected_doc)

    def test_compound_edit_script(self, db):
        db.edit("cut", Extract(Doc("d1"), 2, 5))          # "babb"
        db.edit("spliced", Insert(Doc("d2"), Doc("cut"), 3))
        db.edit("final", Delete(Doc("spliced"), 1, 2))
        text = db.document_text("final")
        assert text == ("bb" + "babb" + "aabb")[2:]
        spanner = spanner_from_regex("(a|b)*!x{ab}(a|b)*")
        assert db.evaluate("pairs", "final") == spanner.evaluate(text)

    def test_edit_updates_are_incremental(self):
        db = SpannerDB()
        db.add_document("big", "abcd" * 4096)
        db.register_spanner("cd", "(a|b|c|d)*!x{cd}(a|b|c|d)*")
        fresh = db.edit("edited", Delete(Doc("big"), 100, 200))
        # one spanner, O(log d) fresh nodes
        assert 0 < fresh <= 80 * 15
        assert db.is_nonempty("cd", "edited")

    def test_stats(self, db):
        stats = db.stats()
        assert stats["documents"] == 2
        assert stats["spanners"] == 1
        assert stats["total_characters"] == 13
        assert stats["slp_nodes"] >= 1
        assert "pairs" in stats["cached_matrices"]
