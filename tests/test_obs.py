"""Tests for repro.obs: tracer, metrics, delay profiler, and the
instrumentation threaded through the engine (ISSUE 2)."""

import io
import json

import pytest

from repro import Budget, SpannerDB, obs
from repro.errors import EvaluationLimitError, MemoryLimitError
from repro.obs import Counter, DelayProfiler, Gauge, Histogram, Metrics, Tracer


@pytest.fixture(autouse=True)
def _obs_reset():
    """Leave the global observability state as each test found it: off."""
    obs.configure(enabled=False, reset=True)
    yield
    obs.configure(enabled=False, reset=True)


# ----------------------------------------------------------------------
# metrics primitives
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        counter, gauge = Counter(), Gauge()
        counter.inc()
        counter.inc(41)
        gauge.set(7)
        gauge.set(3)
        assert counter.value == 42
        assert gauge.value == 3

    def test_histogram_buckets_and_percentiles(self):
        hist = Histogram()
        for value in [100, 100, 100, 100, 100, 100, 100, 100, 100, 10_000]:
            hist.record(value)
        assert hist.count == 10
        assert hist.total == 10_900
        # 100 has bit_length 7 → bucket upper bound 128; the p99 sample
        # 10_000 has bit_length 14 → upper bound 16384
        assert hist.percentile(50) == 128.0
        assert hist.percentile(99) == 16384.0
        assert hist.min == 64.0 and hist.max == 16384.0
        assert hist.percentile(50) <= 2 * 100  # never more than 2x truth

    def test_histogram_empty_and_zero(self):
        hist = Histogram()
        assert hist.percentile(50) == 0.0
        assert hist.count == 0 and hist.min is None and hist.max is None
        hist.record(0)
        hist.record(-5)  # clamps
        assert hist.count == 2
        assert hist.percentile(99) == 0.0

    def test_registry_get_or_create_and_snapshot(self):
        registry = Metrics()
        registry.counter("a").inc(2)
        assert registry.counter("a").value == 2  # same instrument back
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(300)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        json.dumps(snap)  # must be JSON-serialisable as-is
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        span_a = tracer.span("x", k=1)
        span_b = tracer.span("y")
        assert span_a is span_b  # the shared null span: no allocation
        with span_a:
            pass
        assert tracer.records() == []

    def test_nesting_parent_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            tracer.event("tick", n=1)
        records = tracer.records()
        names = [r["name"] for r in records]
        # inner closes first, then the event is recorded, then outer closes
        assert names == ["inner", "tick", "outer"]
        inner, tick, outer = records
        assert inner["parent"] == outer["id"]
        assert tick["parent"] == outer["id"]
        assert outer["parent"] is None
        assert inner["dur_ns"] >= 0 and outer["dur_ns"] >= inner["dur_ns"]

    def test_span_records_error(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (record,) = tracer.records()
        assert record["error"] == "ValueError"

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True, sink=path)
        with tracer.span("a", doc="d1"):
            tracer.event("e", detail=[1, 2])
        tracer.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["type"] for r in records] == ["event", "span"]
        assert records[1]["attrs"] == {"doc": "d1"}
        assert records[0]["parent"] == records[1]["id"]

    def test_filelike_sink(self):
        sink = io.StringIO()
        tracer = Tracer(enabled=True, sink=sink)
        with tracer.span("s"):
            pass
        assert json.loads(sink.getvalue())["name"] == "s"

    def test_in_memory_cap_drops_and_counts(self):
        tracer = Tracer(enabled=True, max_records=2)
        for i in range(4):
            tracer.event("e", i=i)
        assert len(tracer.records()) == 2
        assert tracer.dropped == 2


# ----------------------------------------------------------------------
# delay profiler
# ----------------------------------------------------------------------
class TestDelayProfiler:
    def test_drain_counts_every_item(self):
        profiler = DelayProfiler(keep_samples=True)
        items = profiler.drain(iter(range(100)))
        assert items == list(range(100))
        assert profiler.histogram.count == 100
        assert len(profiler.samples_ns) == 100
        assert all(s >= 0 for s in profiler.samples_ns)
        assert profiler.report()["count"] == 100

    def test_wrap_is_lazy_and_records(self):
        profiler = DelayProfiler()
        wrapped = profiler.wrap(iter("abc"))
        assert profiler.histogram.count == 0  # nothing consumed yet
        assert list(wrapped) == ["a", "b", "c"]
        assert profiler.histogram.count == 3

    def test_shared_registry_histogram(self):
        registry = Metrics()
        profiler = DelayProfiler(registry.histogram("x.delay_ns"))
        profiler.drain(iter(range(5)))
        assert registry.histogram("x.delay_ns").count == 5


# ----------------------------------------------------------------------
# global configuration
# ----------------------------------------------------------------------
class TestConfigure:
    def test_default_off(self):
        assert not obs.enabled()
        assert obs.tracer().span("x") is obs.tracer().span("y")

    def test_enable_disable_and_reset(self):
        obs.configure(enabled=True)
        assert obs.enabled() and obs.tracer().enabled
        obs.metrics().counter("c").inc()
        with obs.tracer().span("s"):
            pass
        obs.configure(enabled=False)
        assert not obs.enabled()
        # state survives disable, reset clears it
        assert obs.metrics().counter("c").value == 1
        obs.configure(reset=True)
        assert obs.metrics().snapshot()["counters"] == {}
        assert obs.tracer().records() == []


# ----------------------------------------------------------------------
# engine instrumentation
# ----------------------------------------------------------------------
def _store_with_data() -> SpannerDB:
    db = SpannerDB()
    db.add_document("logs", "aabab" * 20)
    db.register_spanner("m", "(a|b)*!x{ab}(a|b)*")
    return db


class TestInstrumentation:
    def test_query_span_and_delay_histogram(self):
        db = _store_with_data()
        obs.configure(enabled=True)
        tuples = list(db.query("m", "logs"))
        assert tuples
        names = [r["name"] for r in obs.tracer().records()]
        assert "db.query" in names and "slp.eval.enumerate" in names
        query_span = next(r for r in obs.tracer().records() if r["name"] == "db.query")
        assert query_span["attrs"]["tuples"] == len(tuples)
        snap = obs.metrics().snapshot()
        assert snap["histograms"]["slp.eval.delay_ns"]["count"] == len(tuples)

    def test_evaluator_cache_counters(self):
        db = _store_with_data()
        obs.configure(enabled=True)
        list(db.query("m", "logs"))  # warm store: everything preprocessed
        hits = obs.metrics().counter("slp.eval.cache_hits").value
        misses = obs.metrics().counter("slp.eval.cache_misses").value
        assert hits > 0 and misses == 0
        db.add_document("fresh", "ababab")
        assert obs.metrics().counter("slp.eval.cache_misses").value > 0

    def test_journal_append_latency_recorded(self, tmp_path):
        path = str(tmp_path / "s.slpdb")
        db = SpannerDB()
        db.save(path)
        obs.configure(enabled=True)
        db.add_document("d", "abcabc")
        snap = obs.metrics().snapshot()
        assert snap["histograms"]["db.journal.append_ns"]["count"] >= 1
        assert snap["counters"]["db.journal.appends"] >= 1

    def test_recovery_stats_in_metrics_and_stats(self, tmp_path):
        path = str(tmp_path / "s.slpdb")
        db = SpannerDB()
        db.save(path)
        db.add_document("d", "abcabc")  # journaled, not yet checkpointed
        obs.configure(enabled=True)
        recovered = SpannerDB.open(path)
        assert recovered.document_text("d") == "abcabc"
        assert obs.metrics().counter("db.recovery.replayed_records").value == 1
        stats = recovered.stats()
        assert stats["recovery"]["replayed_records"] == 1
        assert stats["recovery"]["journal_clean"] is True

    def test_budget_exceeded_event(self):
        db = _store_with_data()
        obs.configure(enabled=True)
        with pytest.raises(EvaluationLimitError):
            list(db.query("m", "logs", Budget(max_steps=1)))
        assert obs.metrics().counter("db.budget_exceeded").value == 1
        events = [r for r in obs.tracer().records() if r["type"] == "event"]
        assert any(
            e["name"] == "db.budget_exceeded"
            and e["attrs"]["error"] == "EvaluationLimitError"
            for e in events
        )

    def test_memory_limit_event_on_text(self):
        db = _store_with_data()
        obs.configure(enabled=True)
        with pytest.raises(MemoryLimitError):
            db.document_text("logs", budget=Budget(max_bytes=5))
        assert obs.metrics().counter("budget.bytes_charged").value > 0

    def test_budget_steps_gauge_published(self):
        db = _store_with_data()
        obs.configure(enabled=True)
        budget = Budget(max_steps=10**6, check_interval=8)
        list(db.query("m", "logs", budget))
        assert obs.metrics().gauge("budget.steps").value > 0

    def test_stats_extended_fields(self):
        db = _store_with_data()
        stats = db.stats()
        assert stats["slp_arena_bytes"] > 0
        assert stats["evaluator_cache_entries"] == stats["cached_matrices"]["m"] > 0
        assert stats["journal_records"] is None  # not persistent
        assert stats["metrics"] is None  # observability off
        obs.configure(enabled=True)
        list(db.query("m", "logs"))
        live = db.stats()
        assert live["observability_enabled"] is True
        assert live["metrics"]["histograms"]["slp.eval.delay_ns"]["count"] > 0

    def test_disabled_leaves_no_trace(self):
        db = _store_with_data()
        list(db.query("m", "logs"))
        assert obs.tracer().records() == []
        assert obs.metrics().snapshot()["counters"] == {}
