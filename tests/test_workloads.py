"""Tests for the synthetic workload generators."""

import re

from repro.util import (
    gene_sequence,
    log_document,
    random_text,
    repetitive_text,
    sparse_matches,
)


class TestGenerators:
    def test_random_text_deterministic(self):
        assert random_text(50, seed=1) == random_text(50, seed=1)
        assert random_text(50, seed=1) != random_text(50, seed=2)
        assert len(random_text(50)) == 50
        assert set(random_text(100, alphabet="xy")) <= {"x", "y"}

    def test_repetitive_text(self):
        assert repetitive_text("ab", 3) == "ababab"

    def test_gene_sequence(self):
        seq = gene_sequence(500, seed=4)
        assert len(seq) == 500
        assert set(seq) <= set("ACGT")
        # the motif makes it compressible: it must actually occur
        assert "ACGTGACT" in seq

    def test_log_document_shape(self):
        doc = log_document(10, seed=0)
        lines = doc.strip().split("\n")
        assert len(lines) == 10
        pattern = re.compile(
            r"^(INFO|WARN|ERROR) user=[a-z]+ code=\d+ [a-z ]+;$"
        )
        for line in lines:
            assert pattern.match(line), line

    def test_log_document_code_range(self):
        doc = log_document(20, seed=0, codes=(500, 501))
        codes = set(re.findall(r"code=(\d+)", doc))
        assert codes <= {"500", "501"}

    def test_sparse_matches(self):
        doc = sparse_matches("ab", "x", count=3, gap=2)
        assert doc == "xxabxxabxxab"
        assert doc.count("ab") == 3
