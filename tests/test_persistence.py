"""Checksummed snapshots, the edit journal, and SpannerDB.save/open."""

import io
import os

import pytest

from repro import SpannerDB
from repro.errors import PersistenceError, SLPError, TransactionError
from repro.slp import (
    Delete,
    Doc,
    DocumentDatabase,
    dumps_database,
    dumps_snapshot,
    loads_database,
    read_journal,
)
from repro.slp.serialize import (
    JOURNAL_MAGIC,
    decode_journal_line,
    encode_commit_marker,
    encode_journal_record,
)


def sample_db():
    return DocumentDatabase.from_texts({"d1": "ababbab", "d2": "bb aa\nz"})


class TestSnapshotFormat:
    def test_snapshot_round_trips(self):
        blob = dumps_snapshot(sample_db())
        loaded = loads_database(blob)
        assert loaded.document("d1") == "ababbab"
        assert loaded.document("d2") == "bb aa\nz"

    def test_snapshot_carries_checksum_trailer(self):
        blob = dumps_snapshot(sample_db())
        assert blob.startswith("SLPDB 2\n")
        assert blob.splitlines()[-1].startswith("C ")

    def test_v1_format_still_loads(self):
        blob = dumps_database(sample_db())
        assert blob.startswith("SLPDB 1\n")
        assert loads_database(blob).document("d1") == "ababbab"

    def test_torn_snapshot_detected(self):
        blob = dumps_snapshot(sample_db())
        with pytest.raises(PersistenceError):
            loads_database(blob[: len(blob) // 2])

    def test_bit_flip_detected(self):
        blob = dumps_snapshot(sample_db())
        index = len(blob) // 2
        flipped = blob[:index] + ("X" if blob[index] != "X" else "Y") + blob[index + 1:]
        with pytest.raises((PersistenceError, SLPError)):
            loads_database(flipped)

    def test_missing_trailer_detected(self):
        blob = dumps_snapshot(sample_db())
        body = "\n".join(blob.splitlines()[:-1]) + "\n"  # drop the C line
        with pytest.raises(PersistenceError):
            loads_database(body)


class TestJournalFormat:
    def test_record_round_trips(self):
        fields = ["A", "my doc", "text with\nnewline and \\ backslash"]
        assert decode_journal_line(encode_journal_record(fields)) == fields

    def test_corrupt_line_returns_none(self):
        line = encode_journal_record(["A", "d", "text"])
        assert decode_journal_line(line[:-1]) is None  # torn tail
        assert decode_journal_line("deadbeef not the payload") is None
        assert decode_journal_line("") is None

    def test_read_journal_stops_at_torn_record(self):
        good = encode_journal_record(["A", "d1", "aa"])
        seal = encode_commit_marker(1)
        torn = encode_journal_record(["A", "d2", "bb"])[:-3]
        stream = io.StringIO(f"{JOURNAL_MAGIC}\n{good}\n{seal}\n{torn}\n")
        records, clean = read_journal(stream)
        assert records == [["A", "d1", "aa"]]
        assert clean is False

    def test_read_journal_clean(self):
        good = encode_journal_record(["E", "d", "doc(x)"])
        seal = encode_commit_marker(1)
        stream = io.StringIO(f"{JOURNAL_MAGIC}\n{good}\n{seal}\n")
        records, clean = read_journal(stream)
        assert records == [["E", "d", "doc(x)"]]
        assert clean is True

    def test_unsealed_batch_is_discarded_whole(self):
        """A torn append can leave complete record lines without their
        commit marker; replay must not resurrect part of a transaction."""
        first = encode_journal_record(["A", "a", "xx"])
        second = encode_journal_record(["A", "b", "yy"])
        stream = io.StringIO(f"{JOURNAL_MAGIC}\n{first}\n{second}\n")
        records, clean = read_journal(stream)
        assert records == []
        assert clean is False

    def test_sealed_batch_then_unsealed_tail(self):
        batch = (
            encode_journal_record(["A", "a", "xx"])
            + "\n"
            + encode_journal_record(["A", "b", "yy"])
            + "\n"
            + encode_commit_marker(2)
        )
        tail = encode_journal_record(["A", "c", "zz"])
        stream = io.StringIO(f"{JOURNAL_MAGIC}\n{batch}\n{tail}\n")
        records, clean = read_journal(stream)
        assert records == [["A", "a", "xx"], ["A", "b", "yy"]]
        assert clean is False

    def test_commit_marker_with_wrong_count_stops_replay(self):
        record = encode_journal_record(["A", "a", "xx"])
        bad_seal = encode_commit_marker(2)  # claims 2 records, only 1 present
        stream = io.StringIO(f"{JOURNAL_MAGIC}\n{record}\n{bad_seal}\n")
        records, clean = read_journal(stream)
        assert records == []
        assert clean is False

    def test_torn_header_is_an_empty_journal(self):
        records, clean = read_journal(io.StringIO("SLPJR"))
        assert records == [] and clean is False


class TestSaveOpen:
    def test_save_open_round_trip(self, tmp_path):
        path = str(tmp_path / "s.slpdb")
        db = SpannerDB()
        db.add_document("d", "ababbab")
        db.save(path)
        db.edit("e", Delete(Doc("d"), 1, 3))
        reopened = SpannerDB.open(path)
        assert reopened.documents() == ["d", "e"]
        assert reopened.document_text("e") == "bbab"

    def test_save_is_atomic_keeps_bak(self, tmp_path):
        path = str(tmp_path / "s.slpdb")
        db = SpannerDB()
        db.add_document("d", "aa")
        db.save(path)
        db.add_document("d2", "bb")
        db.save(path)
        assert os.path.exists(path + ".bak")
        assert SpannerDB.load(path + ".bak").documents() == ["d"]

    def test_open_missing_and_corrupt_bak_raises(self, tmp_path):
        path = str(tmp_path / "s.slpdb")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage")
        with open(path + ".bak", "w", encoding="utf-8") as handle:
            handle.write("more garbage")
        with pytest.raises(PersistenceError):
            SpannerDB.open(path)

    def test_legacy_load_still_works(self, tmp_path):
        path = str(tmp_path / "s.slpdb")
        db = SpannerDB()
        db.add_document("d", "abc")
        db.save(path)
        assert SpannerDB.load(path).documents() == ["d"]

    def test_journal_grows_and_resets(self, tmp_path):
        path = str(tmp_path / "s.slpdb")
        db = SpannerDB()
        db.save(path)
        db.add_document("a", "xy")
        db.add_document("b", "zw")
        with open(path + ".journal", encoding="utf-8") as handle:
            # header + 2 × (record + commit marker)
            assert len(handle.read().splitlines()) == 5
        db.save(path)
        with open(path + ".journal", encoding="utf-8") as handle:
            assert handle.read() == JOURNAL_MAGIC + "\n"

    def test_transaction_batches_journal_records(self, tmp_path):
        path = str(tmp_path / "s.slpdb")
        db = SpannerDB()
        db.save(path)
        with db.transaction():
            db.add_document("a", "xy")
            db.add_document("b", "zw")
        assert SpannerDB.open(path).documents() == ["a", "b"]

    def test_rolled_back_transaction_writes_no_journal_records(self, tmp_path):
        path = str(tmp_path / "s.slpdb")
        db = SpannerDB()
        db.save(path)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.add_document("a", "xy")
                raise RuntimeError
        with open(path + ".journal", encoding="utf-8") as handle:
            assert handle.read() == JOURNAL_MAGIC + "\n"
        assert SpannerDB.open(path).documents() == []

    def test_transaction_batch_shares_one_commit_marker(self, tmp_path):
        path = str(tmp_path / "s.slpdb")
        db = SpannerDB()
        db.save(path)
        with db.transaction():
            db.add_document("a", "xy")
            db.add_document("b", "zw")
        with open(path + ".journal", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 4  # header + 2 records + 1 marker
        assert decode_journal_line(lines[-1]) == ["C", "2"]

    def test_save_inside_transaction_is_refused(self, tmp_path):
        """A mid-transaction snapshot would persist uncommitted staged
        state that a rollback could not undo on disk."""
        path = str(tmp_path / "s.slpdb")
        db = SpannerDB()
        db.add_document("d", "aa")
        with pytest.raises(TransactionError):
            with db.transaction():
                db.add_document("e", "bb")
                db.save(path)
        # the refusal aborted the transaction; nothing leaked to disk
        assert db.documents() == ["d"]
        assert not os.path.exists(path)
        db.save(path)  # fine outside the transaction
        assert SpannerDB.open(path).documents() == ["d"]
