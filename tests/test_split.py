"""Tests for split evaluation / split-correctness ([7], cited in Section 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Span, SpanTuple
from repro.errors import SchemaError
from repro.regex import spanner_from_regex
from repro.spanners.split import is_split_correct_on, split_document, split_evaluate


class TestSplitDocument:
    def test_single_char_separator(self):
        assert split_document("a;bb;c", ";") == [(0, "a"), (2, "bb"), (5, "c")]

    def test_no_separator_occurrence(self):
        assert split_document("abc", ";") == [(0, "abc")]

    def test_adjacent_separators_give_empty_chunk(self):
        assert split_document("a;;b", ";") == [(0, "a"), (2, ""), (3, "b")]

    def test_leading_and_trailing(self):
        assert split_document(";a;", ";") == [(0, ""), (1, "a"), (3, "")]

    def test_multichar_greedy_separator(self):
        # separator ;+ takes the maximal run
        assert split_document("a;;;b", ";+") == [(0, "a"), (4, "b")]

    def test_empty_separator_language_rejected(self):
        with pytest.raises(SchemaError):
            split_document("ab", "x*")

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ab;", max_size=15))
    def test_offsets_are_consistent(self, doc):
        for offset, chunk in split_document(doc, ";"):
            assert doc[offset: offset + len(chunk)] == chunk


class TestSplitEvaluate:
    def test_record_extractor_is_split_correct(self):
        # the filler may cross separators, the capture may not
        spanner = spanner_from_regex("([ab]|;)*!x{a+}b([ab]|;)*")
        doc = "aab;ba;aaab"
        assert is_split_correct_on(spanner, doc, ";")
        relation = split_evaluate(spanner, doc, ";")
        assert relation == spanner.evaluate(doc)

    def test_spans_are_shifted_to_global_positions(self):
        spanner = spanner_from_regex("[ab]*!x{ab}[ab]*")
        relation = split_evaluate(spanner, "ab;ab", ";")
        assert {t["x"] for t in relation} == {Span(1, 3), Span(4, 6)}

    def test_cross_separator_matches_detected_as_incorrect(self):
        # the spanner matches 'a;a' across the separator: split loses it
        spanner = spanner_from_regex("(a|b|;)*!x{a;a}(a|b|;)*")
        doc = "ba;ab"
        assert not is_split_correct_on(spanner, doc, ";")
        global_relation = spanner.evaluate(doc)
        split_relation = split_evaluate(spanner, doc, ";")
        assert split_relation.tuples < global_relation.tuples

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ab;", max_size=12))
    def test_split_is_always_a_subset(self, doc):
        """Split evaluation never invents tuples — it can only lose the
        separator-crossing ones."""
        spanner = spanner_from_regex("(a|b|;)*!x{a+}(a|b|;)*")
        split_relation = split_evaluate(spanner, doc, ";")
        assert split_relation.tuples <= spanner.evaluate(doc).tuples

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ab;", max_size=12))
    def test_separator_free_spanners_are_split_correct(self, doc):
        """A spanner whose matches cannot contain or touch the separator is
        split-correct on every document."""
        spanner = spanner_from_regex("([^;]|;)*(()|;)!x{[^;]+}(;([^;]|;)*)?")
        # x is a maximal-or-not ;-free factor anchored after a separator:
        # never crosses a separator
        assert is_split_correct_on(spanner, doc, ";")
