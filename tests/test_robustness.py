"""Failure injection and fuzz robustness.

The contract under attack: malformed *input* must produce a
:class:`~repro.errors.SpanlibError` subclass (or a clean boolean result) —
never an arbitrary internal exception.  Hypothesis feeds each parser /
loader garbage and asserts the error discipline.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpanlibError
from repro.regex.parser import parse
from repro.slp.serialize import dumps_database, loads_database


class TestRegexParserFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=25))
    def test_parse_raises_only_spanlib_errors(self, pattern):
        try:
            parse(pattern)
        except SpanlibError:
            pass  # RegexSyntaxError is the contract

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="ab|*+?(){}[].&!\\x0-9,^-", max_size=20))
    def test_metacharacter_soup(self, pattern):
        from repro.regex.compile import spanner_from_regex

        try:
            spanner = spanner_from_regex(pattern)
        except SpanlibError:
            return
        # if it parsed, it must also evaluate without blowing up
        spanner.evaluate("ab")


class TestSerializationFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.text(max_size=120))
    def test_loads_raises_only_slp_errors(self, blob):
        try:
            loads_database(blob)
        except SpanlibError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_mutated_valid_dump(self, data):
        """Flip one line of a valid dump: either still loads (to *some*
        database) or fails with a clean error."""
        from repro.slp import DocumentDatabase

        db = DocumentDatabase.from_texts({"d": "abab"})
        lines = dumps_database(db).splitlines()
        index = data.draw(st.integers(0, len(lines) - 1))
        mutation = data.draw(st.text(max_size=12))
        lines[index] = mutation
        try:
            loads_database("\n".join(lines) + "\n")
        except SpanlibError:
            pass


class TestMarkedWordFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.text(alphabet="ab[]<>&x", max_size=20))
    def test_parse_marked_error_discipline(self, text):
        from repro.core import parse_marked

        try:
            parse_marked(text)
        except SpanlibError:
            pass


class TestCdeFuzz:
    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(-3, 40),
        st.integers(-3, 40),
        st.integers(-3, 40),
    )
    def test_random_positions_never_corrupt_the_store(self, i, j, k):
        from repro.errors import CDEError, SLPError
        from repro.slp import Copy, Doc, Editor, apply_cde, eval_cde

        editor = Editor.from_texts({"d": "abcdefgh"})
        expr = Copy(Doc("d"), i, j, k)
        try:
            node = apply_cde(expr, editor.db)
        except (CDEError, SLPError):
            # rejected cleanly; the stored document must be intact
            assert editor.db.document("d") == "abcdefgh"
            return
        # accepted: must agree with the string semantics
        assert editor.db.slp.derive(node) == eval_cde(expr, {"d": "abcdefgh"})


class TestSpanFuzz:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(-5, 15), st.integers(-5, 15), st.text(alphabet="ab", max_size=8))
    def test_span_construction_discipline(self, start, end, doc):
        from repro.core import Span

        try:
            span = Span(start, end)
        except SpanlibError:
            return
        try:
            content = span.extract(doc)
        except SpanlibError:
            return
        assert content == doc[start - 1: end - 1]
