"""Failure injection and fuzz robustness.

The contract under attack: malformed *input* must produce a
:class:`~repro.errors.SpanlibError` subclass (or a clean boolean result) —
never an arbitrary internal exception.  Hypothesis feeds each parser /
loader garbage and asserts the error discipline.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpanlibError
from repro.regex.parser import parse
from repro.slp.serialize import dumps_database, loads_database


class TestRegexParserFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=25))
    def test_parse_raises_only_spanlib_errors(self, pattern):
        try:
            parse(pattern)
        except SpanlibError:
            pass  # RegexSyntaxError is the contract

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="ab|*+?(){}[].&!\\x0-9,^-", max_size=20))
    def test_metacharacter_soup(self, pattern):
        from repro.regex.compile import spanner_from_regex

        try:
            spanner = spanner_from_regex(pattern)
        except SpanlibError:
            return
        # if it parsed, it must also evaluate without blowing up
        spanner.evaluate("ab")


class TestSerializationFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.text(max_size=120))
    def test_loads_raises_only_slp_errors(self, blob):
        try:
            loads_database(blob)
        except SpanlibError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_mutated_valid_dump(self, data):
        """Flip one line of a valid dump: either still loads (to *some*
        database) or fails with a clean error."""
        from repro.slp import DocumentDatabase

        db = DocumentDatabase.from_texts({"d": "abab"})
        lines = dumps_database(db).splitlines()
        index = data.draw(st.integers(0, len(lines) - 1))
        mutation = data.draw(st.text(max_size=12))
        lines[index] = mutation
        try:
            loads_database("\n".join(lines) + "\n")
        except SpanlibError:
            pass


class TestMarkedWordFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.text(alphabet="ab[]<>&x", max_size=20))
    def test_parse_marked_error_discipline(self, text):
        from repro.core import parse_marked

        try:
            parse_marked(text)
        except SpanlibError:
            pass


class TestCdeFuzz:
    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(-3, 40),
        st.integers(-3, 40),
        st.integers(-3, 40),
    )
    def test_random_positions_never_corrupt_the_store(self, i, j, k):
        from repro.errors import CDEError, SLPError
        from repro.slp import Copy, Doc, Editor, apply_cde, eval_cde

        editor = Editor.from_texts({"d": "abcdefgh"})
        expr = Copy(Doc("d"), i, j, k)
        try:
            node = apply_cde(expr, editor.db)
        except (CDEError, SLPError):
            # rejected cleanly; the stored document must be intact
            assert editor.db.document("d") == "abcdefgh"
            return
        # accepted: must agree with the string semantics
        assert editor.db.slp.derive(node) == eval_cde(expr, {"d": "abcdefgh"})


class TestCdeParserFuzz:
    """The textual CDE format (used by the edit journal) under attack."""

    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=40))
    def test_parse_cde_raises_only_spanlib_errors(self, blob):
        from repro.slp import parse_cde

        try:
            parse_cde(blob)
        except SpanlibError:
            pass  # CDEError is the contract

    @settings(max_examples=120, deadline=None)
    @given(st.text(alphabet="docncatexrilpy(),0123456789\\ ", max_size=40))
    def test_cde_keyword_soup(self, blob):
        from repro.slp import parse_cde

        try:
            parse_cde(blob)
        except SpanlibError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_formatted_cde_round_trips_and_mutations_fail_cleanly(self, data):
        from repro.slp import Copy, Delete, Doc, Extract, format_cde, parse_cde

        expr = data.draw(
            st.sampled_from(
                [
                    Doc("a b\\c"),
                    Delete(Doc("d"), 1, 3),
                    Extract(Doc("d"), 2, 2),
                    Copy(Doc("x,y"), 1, 2, 3),
                ]
            )
        )
        text = format_cde(expr)
        assert format_cde(parse_cde(text)) == text
        index = data.draw(st.integers(0, max(0, len(text) - 1)))
        mutation = data.draw(st.characters(blacklist_categories=("Cs",)))
        mutated = text[:index] + mutation + text[index + 1:]
        try:
            parse_cde(mutated)
        except SpanlibError:
            pass

    def test_deeply_nested_cde_rejected_not_recursion_error(self):
        from repro.slp import parse_cde

        blob = "delete(" * 2000 + "doc(d),1,2" + ",1,2)" * 2000
        try:
            parse_cde(blob)
        except SpanlibError:
            pass


class TestJournalFuzz:
    """The journal loader must never raise on garbage and never return a
    record that was not written — corruption means replay stops."""

    @settings(max_examples=150, deadline=None)
    @given(st.text(max_size=200))
    def test_read_journal_never_raises(self, blob):
        import io

        from repro.slp import read_journal

        records, clean = read_journal(io.StringIO(blob))
        assert isinstance(records, list)
        assert isinstance(clean, bool)

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_bit_flips_never_forge_records(self, data):
        """Flip one character of a valid journal: every record returned must
        be one of the records actually written (prefix property)."""
        import io

        from repro.slp.serialize import (
            JOURNAL_MAGIC,
            encode_commit_marker,
            encode_journal_record,
        )
        from repro.slp import read_journal

        written = [["A", "d1", "aaaa"], ["E", "d2", "doc(d1)"], ["A", "d3", "zz"]]
        text = JOURNAL_MAGIC + "\n" + "".join(
            encode_journal_record(r) + "\n" + encode_commit_marker(1) + "\n"
            for r in written
        )
        index = data.draw(st.integers(0, len(text) - 1))
        mutation = data.draw(st.characters(blacklist_categories=("Cs",)))
        mutated = text[:index] + mutation + text[index + 1:]
        records, clean = read_journal(io.StringIO(mutated))
        for record in records:
            assert record in written
        if mutated != text:
            assert records == written[: len(records)] or not clean

    @pytest.mark.slow_fuzz
    @settings(max_examples=2000, deadline=None)
    @given(st.text(max_size=400))
    def test_deep_snapshot_fuzz(self, blob):
        """Extended-depth fuzz of the snapshot loader (excluded from the
        default run; enable with ``pytest -m slow_fuzz``)."""
        try:
            loads_database(blob)
        except SpanlibError:
            pass


class TestSpanFuzz:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(-5, 15), st.integers(-5, 15), st.text(alphabet="ab", max_size=8))
    def test_span_construction_discipline(self, start, end, doc):
        from repro.core import Span

        try:
            span = Span(start, end)
        except SpanlibError:
            return
        try:
            content = span.extract(doc)
        except SpanlibError:
            return
        assert content == doc[start - 1: end - 1]
