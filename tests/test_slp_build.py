"""Tests for SLP construction / compression (experiment C10's correctness)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SLPError
from repro.slp import (
    SLP,
    balanced_node,
    fibonacci_node,
    lz78_node,
    power_node,
    repair_node,
    repeat_node,
)


BUILDERS = [balanced_node, repair_node, lz78_node]


class TestRoundTrips:
    @pytest.mark.parametrize("builder", BUILDERS, ids=lambda b: b.__name__)
    def test_catalogue(self, builder):
        for text in [
            "a",
            "ab",
            "aaaa",
            "abcabcabc",
            "mississippi",
            "ab" * 100,
            "abc" * 33 + "x",
        ]:
            slp = SLP()
            assert slp.derive(builder(slp, text)) == text

    @pytest.mark.parametrize("builder", BUILDERS, ids=lambda b: b.__name__)
    def test_empty_rejected(self, builder):
        with pytest.raises(SLPError):
            builder(SLP(), "")

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="abc", min_size=1, max_size=80))
    def test_property_round_trip(self, text):
        for builder in BUILDERS:
            slp = SLP()
            assert slp.derive(builder(slp, text)) == text


class TestCompression:
    def test_repair_compresses_repetitive_text(self):
        text = "abcabc" * 64
        slp = SLP()
        node = repair_node(slp, text)
        assert slp.size(node) < len(text) // 4

    def test_lz78_compresses_repetitive_text(self):
        text = "ab" * 256
        slp = SLP()
        node = lz78_node(slp, text)
        assert slp.size(node) < len(text) // 4

    def test_power_node_is_logarithmic(self):
        slp = SLP()
        node = power_node(slp, "ab", 20)
        assert slp.length(node) == 2 * 2 ** 20
        assert slp.size(node) <= 3 + 20  # O(|w| + exponent)

    def test_balanced_node_is_linear_not_compressed(self):
        slp = SLP()
        text = "abcdefgh" * 4
        node = balanced_node(slp, text)
        assert slp.size(node) >= len(text) // 2


class TestRepeat:
    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ab", min_size=1, max_size=6), st.integers(1, 40))
    def test_repeat_round_trip(self, word, times):
        slp = SLP()
        base = balanced_node(slp, word)
        node = repeat_node(slp, base, times)
        assert slp.derive(node) == word * times
        assert slp.is_strongly_balanced(node)

    def test_repeat_zero_rejected(self):
        slp = SLP()
        with pytest.raises(SLPError):
            repeat_node(slp, slp.terminal("a"), 0)

    def test_repeat_is_logarithmic_in_count(self):
        slp = SLP()
        base = balanced_node(slp, "xyz")
        before = slp.num_nodes()
        repeat_node(slp, base, 10**6)
        created = slp.num_nodes() - before
        assert created <= 40 * math.ceil(math.log2(10**6))


class TestFibonacci:
    def test_first_words(self):
        slp = SLP()
        expected = ["b", "a", "ab", "aba", "abaab", "abaababa"]
        for index, word in enumerate(expected, start=1):
            assert slp.derive(fibonacci_node(slp, index)) == word

    def test_recurrence(self):
        slp = SLP()
        f9 = slp.derive(fibonacci_node(slp, 9))
        f8 = slp.derive(fibonacci_node(slp, 8))
        f7 = slp.derive(fibonacci_node(slp, 7))
        assert f9 == f8 + f7

    def test_strongly_balanced_by_construction(self):
        slp = SLP()
        node = fibonacci_node(slp, 25)
        assert slp.is_strongly_balanced(node)
        assert slp.size(node) <= 2 * 25

    def test_bad_index(self):
        with pytest.raises(SLPError):
            fibonacci_node(SLP(), 0)
