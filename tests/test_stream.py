"""Streaming ingestion suite: windowed evaluation, session robustness,
and the differential fuzz lanes (acceptance tests of the streaming issue).

Three layers, matching the implementation:

* ``SLP.append_text`` — right-spine recompression must preserve the
  derived text, strong balance, and (through the evaluator) produce
  entries bit-for-bit equal to a rebuild;
* ``WindowedSpannerStream`` — per-window deltas reconcile to exactly the
  one-shot result set; overruns ship typed markers; the frontier byte
  bound and the differential guard raise typed errors;
* ``StreamSession`` — backpressure, drain, and the seeded 30 %-fault-rate
  chaos lane: no lost or duplicated results in non-overrun windows, only
  typed errors escape, close always drains within its deadline.

The 200-seed differential lane is under the ``slow_fuzz`` marker, like
every other deep fuzz suite in this repo.
"""

import random
import time

import pytest

from repro import RegularSpanner
from repro.errors import (
    MemoryLimitError,
    OverloadedError,
    ServiceStoppedError,
    StreamError,
    WindowOverrunError,
)
from repro.regex import spanner_from_regex
from repro.serve import StreamSession, StreamSessionConfig
from repro.slp import SLP, balanced_node
from repro.slp.balance import assert_strongly_balanced, rebalance
from repro.slp.build import repair_node
from repro.slp.spanner_eval import SLPSpannerEvaluator
from repro.stream import (
    StreamConfig,
    WindowedSpannerStream,
    span_tuple_bytes,
    stream_windows,
)
from repro.stream.windowed import _entries_equal
from repro.util.budget import Deadline
from repro.util.faults import FeedChaos

PATTERN = "(a|b)*!x{b}(a|b)*"
#: a span ending at the document boundary stops matching once the
#: document grows — the retraction-exercising pattern
BOUNDARY_PATTERN = "(a|b)*!x{b*}"

#: astral-plane and combining characters the feed lanes mix in
EXOTIC = "\U0001f600\U00010308́é世"


def one_shot(pattern: str, text: str) -> set:
    """Reference: the full result set of a one-shot query."""
    return {str(t) for t in RegularSpanner.from_regex(pattern).enumerate(text)}


def random_chunks(rng: random.Random, *, max_chunks: int = 12, exotic: bool = True):
    """A random append sequence: ab-alphabet plus astral/combining chars,
    with empty chunks (heartbeats) sprinkled in."""
    alphabet = "ab" + (EXOTIC if exotic else "")
    chunks = []
    for _ in range(rng.randint(0, max_chunks)):
        if rng.random() < 0.15:
            chunks.append("")
        else:
            chunks.append(
                "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 10)))
            )
    return chunks


# ---------------------------------------------------------------------------
# SLP.append_text
# ---------------------------------------------------------------------------
class TestAppendText:
    def test_appends_derive_the_concatenation_and_stay_balanced(self):
        rng = random.Random(9)
        for _ in range(25):
            slp = SLP()
            node, text = None, ""
            for chunk in random_chunks(rng):
                node = slp.append_text(node, chunk)
                text += chunk
                if node is not None:
                    assert slp.derive(node) == text
                    assert_strongly_balanced(slp, node)
                else:
                    assert text == ""

    def test_empty_chunk_is_identity(self):
        slp = SLP()
        node = slp.append_text(None, "ab")
        assert slp.append_text(node, "") == node
        assert slp.append_text(None, "") is None

    def test_entries_bit_for_bit_equal_rebuild(self):
        """Acceptance: append_text + preprocess produces the same root
        entry, bit for bit, as rebuild-from-scratch + preprocess."""
        rng = random.Random(31)
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
        for _ in range(10):
            slp = SLP()
            node, text = None, ""
            for chunk in random_chunks(rng, max_chunks=8):
                node = slp.append_text(node, chunk)
                text += chunk
            if node is None:
                continue
            evaluator.preprocess(slp, node)
            fresh = SLP()
            rebuilt = rebalance(fresh, repair_node(fresh, text))
            evaluator.preprocess(fresh, rebuilt)
            left = evaluator.node_entry(slp, node)
            right = evaluator.node_entry(fresh, rebuilt)
            assert _entries_equal(left, right), text


# ---------------------------------------------------------------------------
# WindowedSpannerStream
# ---------------------------------------------------------------------------
class TestWindowedStream:
    def test_deltas_reconcile_to_one_shot_after_every_window(self):
        stream = WindowedSpannerStream(PATTERN)
        text = ""
        frontier = set()
        for chunk in ["ab", "", "abb", "b", "a" * 7, "bab"]:
            result = stream.append(chunk)
            text += chunk
            assert not result.overrun
            assert result.document_chars == len(text)
            added = {str(t) for t in result.added}
            retracted = {str(t) for t in result.retracted}
            assert not added & frontier, "duplicated result emission"
            assert retracted <= frontier, "retracted something never emitted"
            frontier = (frontier | added) - retracted
            assert frontier == one_shot(PATTERN, text)
        assert {str(t) for t in stream.results()} == frontier
        assert stream.frontier_complete

    def test_retraction_at_the_append_boundary(self):
        stream = WindowedSpannerStream(BOUNDARY_PATTERN)
        stream.append("ab")
        result = stream.append("a")
        # x{b*} spans that were maximal at the old boundary are not
        # results of the extended document: results are NOT monotone
        # under append, and the stream must emit the retractions
        assert result.retracted, "boundary retraction was not emitted"
        assert {str(t) for t in stream.results()} == one_shot(BOUNDARY_PATTERN, "aba")
        stream.append("b")
        assert {str(t) for t in stream.results()} == one_shot(BOUNDARY_PATTERN, "abab")

    def test_astral_unicode_chunks(self):
        stream = WindowedSpannerStream(PATTERN)
        text = ""
        for chunk in ["a" + EXOTIC, "b", EXOTIC, "ab"]:
            stream.append(chunk)
            text += chunk
        assert {str(t) for t in stream.results()} == one_shot(PATTERN, text)

    def test_overrun_ships_typed_marker_and_later_window_reconciles(self):
        stream = WindowedSpannerStream(PATTERN)
        stream.append("ab")
        expired = Deadline.after(0.0)
        result = stream.append("ba", deadline=expired)
        assert result.overrun
        assert isinstance(result.error, WindowOverrunError)
        assert result.error.window == result.window == 1
        assert not stream.frontier_complete
        # the chunk IS part of the document (resumable partial state)
        assert stream.document_chars == 4
        # an unconstrained heartbeat window completes the evaluation
        final = stream.append("")
        assert not final.overrun
        assert stream.frontier_complete
        assert {str(t) for t in stream.results()} == one_shot(PATTERN, "abba")

    def test_frontier_byte_bound_is_typed_and_holds(self):
        bound = span_tuple_bytes(("x",)) * 2  # room for ~2 tuples
        stream = WindowedSpannerStream(
            PATTERN, StreamConfig(frontier_max_bytes=bound)
        )
        stream.append("ab")  # 1 result, fits
        assert stream.frontier_bytes <= bound
        with pytest.raises(MemoryLimitError):
            stream.append("bbbb")  # 5 results, over the bound
        # the frontier was not mutated past the bound
        assert stream.frontier_bytes <= bound
        assert {str(t) for t in stream.results()} == one_shot(PATTERN, "ab")

    def test_guard_trip_is_typed_and_rolls_back(self):
        stream = WindowedSpannerStream(PATTERN)
        stream.append("ab")
        # corrupt the raw-feed fold: the next ingest must detect the
        # bit-level disagreement, raise typed, and roll the chunk back
        sigma = stream._prefix_entry[0].copy()
        sigma[0] ^= 1
        stream._prefix_entry = (sigma,) + stream._prefix_entry[1:]
        with pytest.raises(StreamError):
            stream.ingest("b")
        assert stream.document_chars == 2  # rolled back
        assert stream.stats()["guard_trips"] == 1
        # rebuild-from-scratch heals the corrupt guard state
        stream.rebuild("b")
        stream.append("")
        assert {str(t) for t in stream.results()} == one_shot(PATTERN, "abb")

    def test_rebuild_matches_incremental_path(self):
        rng = random.Random(5)
        stream = WindowedSpannerStream(PATTERN)
        text = ""
        for index, chunk in enumerate(random_chunks(rng, max_chunks=10)):
            if index % 3 == 2:
                stream.rebuild(chunk)
                stream.append("")
            else:
                stream.append(chunk)
            text += chunk
            assert {str(t) for t in stream.results()} == one_shot(PATTERN, text)
        assert stream.stats()["rebuilds"] >= 1

    def test_rebuild_respects_the_decompression_guard(self):
        stream = WindowedSpannerStream(PATTERN, StreamConfig(rebuild_max_chars=4))
        stream.append("ab")
        with pytest.raises(MemoryLimitError):
            stream.rebuild("abc")  # 5 chars > guard
        assert stream.document_chars == 2  # untouched

    def test_stream_windows_convenience(self):
        windows = list(stream_windows(PATTERN, ["ab", "b"]))
        assert [w.window for w in windows] == [0, 1]
        assert windows[0].document_chars == 2
        frontier = set()
        for w in windows:
            frontier |= {str(t) for t in w.added}
            frontier -= {str(t) for t in w.retracted}
        assert frontier == one_shot(PATTERN, "abb")

    def test_stats_surface(self):
        stream = WindowedSpannerStream(PATTERN)
        stream.append("ab")
        stats = stream.stats()
        for key in [
            "windows",
            "document_chars",
            "frontier_tuples",
            "frontier_bytes",
            "frontier_complete",
            "rebuilds",
            "guard_trips",
            "arena_nodes",
            "cache_bytes",
        ]:
            assert key in stats, key
        assert stats["windows"] == 1
        assert stats["frontier_complete"] is True


# ---------------------------------------------------------------------------
# FeedChaos (the seeded schedule itself)
# ---------------------------------------------------------------------------
class TestFeedChaos:
    def test_schedule_is_deterministic_per_seed(self):
        chaos = FeedChaos(seed=7, fault_rate=0.3, stall_rate=0.2)
        verdicts = [chaos.decide(k) for k in range(64)]
        again = [FeedChaos(seed=7, fault_rate=0.3, stall_rate=0.2).decide(k) for k in range(64)]
        assert verdicts == again
        assert "fault" in verdicts and None in verdicts
        other = [FeedChaos(seed=8, fault_rate=0.3, stall_rate=0.2).decide(k) for k in range(64)]
        assert verdicts != other

    def test_perturb_preserves_concatenation(self):
        rng = random.Random(3)
        for seed in range(20):
            chunks = random_chunks(rng)
            chaos = FeedChaos(seed=seed, tear_rate=0.4, burst_rate=0.3, max_burst=3)
            perturbed = list(chaos.perturb(chunks))
            assert "".join(perturbed) == "".join(chunks), seed
            # replay is identical (pure function of the seed)
            assert perturbed == list(chaos.perturb(chunks))

    def test_perturb_tears_and_bursts(self):
        chunks = ["abcd"] * 32
        torn = list(FeedChaos(seed=1, tear_rate=1.0).perturb(chunks))
        assert len(torn) == 64  # every chunk split once
        assert all(chunk for chunk in torn)
        burst = list(FeedChaos(seed=1, burst_rate=1.0, max_burst=4).perturb(chunks))
        assert any(len(chunk) > 4 for chunk in burst)
        assert "".join(burst) == "".join(chunks)

    def test_empty_chunks_pass_through(self):
        chaos = FeedChaos(seed=2, tear_rate=1.0)
        assert list(chaos.perturb(["", "", ""])) == ["", "", ""]


# ---------------------------------------------------------------------------
# StreamSession
# ---------------------------------------------------------------------------
def drive(session: StreamSession, chunks, *, drain: float = 30.0):
    """Feed every chunk (backing off on OverloadedError), close, and
    return (results, stats).  Nothing is allowed to be lost to shedding —
    the producer retries exactly as the retry_after contract intends."""
    results = []
    with session:
        for chunk in chunks:
            for _ in range(2000):
                try:
                    session.feed(chunk)
                    break
                except OverloadedError as exc:
                    assert exc.retry_after > 0
                    time.sleep(min(exc.retry_after, 0.01))
            else:  # pragma: no cover - diagnostic
                pytest.fail("producer could not place a chunk in 2000 tries")
        stats = session.close(drain)
    return list(session.results()), stats


def replay(results, *, pattern: str, text: str, check_frontier=True):
    """Replay per-window deltas and assert the streaming invariants."""
    frontier = set()
    complete = True
    for result in results:
        assert result.error is None or isinstance(result.error, WindowOverrunError)
        added = {str(t) for t in result.added}
        retracted = {str(t) for t in result.retracted}
        if not result.overrun:
            assert not added & frontier, f"window {result.window} duplicated results"
            assert retracted <= frontier, f"window {result.window} phantom retraction"
        frontier = (frontier | added) - retracted
        complete = not result.overrun
    if check_frontier and complete:
        assert frontier == one_shot(pattern, text)
    return frontier


class TestStreamSession:
    def test_clean_run_matches_one_shot(self):
        chunks = ["ab", "babb", "", "a" * 9, "bb"]
        session = StreamSession(PATTERN)
        results, stats = drive(session, chunks)
        text = "".join(chunks)
        assert stats["windows"] == len(chunks)
        assert stats["overruns"] == 0
        assert stats["discarded"] == 0
        assert stats["internal_errors"] == 0
        assert len(results) == len(chunks)
        replay(results, pattern=PATTERN, text=text)
        assert {str(t) for t in session.frontier()} == one_shot(PATTERN, text)

    def test_feed_before_start_and_after_close_is_typed(self):
        session = StreamSession(PATTERN)
        with pytest.raises(ServiceStoppedError):
            session.feed("ab")
        with session:
            session.feed("ab")
        with pytest.raises(ServiceStoppedError):
            session.feed("ab")

    def test_backpressure_sheds_with_retry_after(self):
        # stall every window so the producer outruns the 1-slot queue
        config = StreamSessionConfig(
            queue_limit=1,
            chaos=FeedChaos(seed=4, stall_rate=1.0, stall_seconds=0.05),
        )
        session = StreamSession(PATTERN, config)
        shed = None
        with session:
            for _ in range(50):
                try:
                    session.feed("ab")
                except OverloadedError as exc:
                    shed = exc
                    break
            assert shed is not None, "queue never filled"
            assert shed.retry_after > 0
            session.close(10.0)
        assert session.stats()["shed"] >= 1

    def test_close_drains_within_deadline(self):
        # every window stalls well past the drain allowance: close must
        # come back inside deadline + join slack, discarding the backlog
        config = StreamSessionConfig(
            queue_limit=64,
            chaos=FeedChaos(seed=6, stall_rate=1.0, stall_seconds=0.1),
        )
        session = StreamSession(PATTERN, config)
        with session:
            for _ in range(30):
                session.feed("ab")
            t0 = time.monotonic()
            stats = session.close(0.3)
            elapsed = time.monotonic() - t0
        assert elapsed < 0.3 + 1.5, f"close took {elapsed:.2f}s"
        assert not stats["running"]
        # every chunk is accounted for: processed or counted discarded
        assert stats["windows"] + stats["discarded"] == 30

    def test_double_close_is_idempotent(self):
        session = StreamSession(PATTERN)
        session.start()
        session.feed("ab")
        first = session.close()
        second = session.close()
        assert not first["running"] and not second["running"]

    def test_fault_opens_breaker_and_rebuild_path_heals(self):
        # windows 0..: seed chosen so faults fire; breaker_failures=1
        # reroutes the retry through rebuild, which must stay correct
        chaos = FeedChaos(seed=11, fault_rate=0.5)
        assert any(chaos.decide(k) == "fault" for k in range(6))
        config = StreamSessionConfig(
            chaos=chaos, breaker_failures=1, breaker_reset_after=60.0
        )
        chunks = ["ab", "bb", "aab", "b", "aba", "bbb"]
        session = StreamSession(PATTERN, config)
        results, stats = drive(session, chunks)
        text = "".join(chunks)
        assert stats["faults"] >= 1
        assert stats["rebuilds"] >= 1
        assert stats["overruns"] == 0  # retries absorbed every fault
        replay(results, pattern=PATTERN, text=text)
        assert {str(t) for t in session.frontier()} == one_shot(PATTERN, text)

    def test_chaos_lane_30_percent(self):
        """The acceptance chaos lane: 30 % seeded feed faults plus torn
        and burst chunks.  Invariants: no lost or duplicated results in
        non-overrun windows, only typed errors escape, frontier bytes
        stay under the configured bound, close drains in deadline."""
        base = ["ab", "ba", "bbb", "", "aab", "abab", "b" * 5, "a", "bba"]
        for seed in [1, 7, 23]:
            chaos = FeedChaos(
                seed=seed, fault_rate=0.3, tear_rate=0.3, burst_rate=0.2
            )
            chunks = list(chaos.perturb(base))
            text = "".join(chunks)
            assert text == "".join(base)
            bound = span_tuple_bytes(("x",)) * (len(text) + 4)
            session = StreamSession(
                PATTERN,
                StreamSessionConfig(
                    chaos=chaos, breaker_failures=2, breaker_reset_after=0.05
                ),
                StreamConfig(frontier_max_bytes=bound),
            )
            results, stats = drive(session, chunks)
            assert stats["discarded"] == 0, seed
            assert stats["internal_errors"] == 0, seed
            assert len(results) == stats["windows"], seed
            for result in results:
                assert result.frontier_bytes <= bound, seed
            replay(results, pattern=PATTERN, text=text)
            assert {str(t) for t in session.frontier()} == one_shot(PATTERN, text), seed
            assert stats["stream"]["frontier_bytes"] <= bound, seed


# ---------------------------------------------------------------------------
# the deep differential lane (acceptance: >= 200 seeds)
# ---------------------------------------------------------------------------
@pytest.mark.slow_fuzz
class TestStreamDifferentialDeep:
    PATTERNS = [
        PATTERN,
        BOUNDARY_PATTERN,
        "!x{(a|b)*}",
        "(a|b)*!x{a}(a|b)*!y{b}(a|b)*",
        "(a|b)*!x{(ab)*}(a|b)*",
    ]

    def test_streamed_equals_one_shot_across_seeds(self):
        """Randomized append sequences (astral unicode, empty and torn
        chunks): streamed results over all windows equal a one-shot query
        over the final document, exact set equality, 200+ seeds."""
        for seed in range(220):
            rng = random.Random(20260808 + seed)
            pattern = rng.choice(self.PATTERNS)
            chunks = random_chunks(rng, max_chunks=10)
            if rng.random() < 0.5:
                chaos = FeedChaos(seed=seed, tear_rate=0.4, burst_rate=0.3)
                chunks = list(chaos.perturb(chunks))
            stream = WindowedSpannerStream(pattern)
            frontier = set()
            # a final heartbeat flushes feeds that end (or consist
            # entirely of) empty chunks — at least one window runs
            for chunk in chunks + [""]:
                result = stream.append(chunk)
                assert not result.overrun, (seed, pattern)
                frontier |= {str(t) for t in result.added}
                frontier -= {str(t) for t in result.retracted}
            text = "".join(chunks)
            assert frontier == one_shot(pattern, text), (seed, pattern, text)
            # the differential guard verified every window bit-for-bit
            assert stream.stats()["guard_trips"] == 0

    def test_append_entries_equal_rebuild_across_seeds(self):
        evaluator = SLPSpannerEvaluator(spanner_from_regex(PATTERN))
        for seed in range(60):
            rng = random.Random(777 + seed)
            chunks = random_chunks(rng, max_chunks=8)
            slp, node, text = SLP(), None, ""
            for chunk in chunks:
                node = slp.append_text(node, chunk)
                text += chunk
            if node is None:
                continue
            evaluator.preprocess(slp, node)
            fresh = SLP()
            rebuilt = rebalance(fresh, repair_node(fresh, text))
            evaluator.preprocess(fresh, rebuilt)
            assert _entries_equal(
                evaluator.node_entry(slp, node),
                evaluator.node_entry(fresh, rebuilt),
            ), (seed, text)
