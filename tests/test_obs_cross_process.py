"""Tests for cross-process observability (ISSUE 7).

The contract under test, end to end:

* **harvest exactness** — the worker-side ``HarvestState.collect`` →
  parent-side ``Metrics.merge`` round trip is *exact* for counters and
  histograms (property-tested: any split of a workload across workers
  and harvest boundaries yields the same totals as a single-process
  run), and last-writer-wins *per worker label* for gauges;
* **trace stitching** — a process-backend ``query_bulk`` under tracing
  leaves per-process JSONL files that all carry the request's trace id,
  and ``stitch`` re-assembles them into one ordered tree;
* **crash flight recorder** — a SIGKILLed worker's last trace records
  survive in the parent-owned shm ring and surface on the
  ``worker.crash`` event, with the crash cause typed in ``stats()``;
* **reset resilience** — ``obs.configure(reset=True)`` with live pool
  workers must not strand subsequently harvested telemetry;
* **export surface** — the Prometheus text exposition and the
  ``obs stitch`` / ``metrics --format`` CLI actions.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

import repro.parallel.api as parallel_api
from repro import obs
from repro.__main__ import main
from repro.db import SpannerDB
from repro.errors import DeadlineExceededError
from repro.obs import TraceContext, export_prometheus
from repro.obs.harvest import HarvestState
from repro.obs.metrics import Metrics, qualify
from repro.obs.stitch import load_records, render_tree, stitch
from repro.parallel import ProcCall, ProcPool, configure_pool, flight, live_segments, shutdown_pool
from repro.parallel.procpool import pool_stats
from repro.parallel.shm import SegmentRegistry
from repro.serve import ServeConfig, SpannerService
from repro.util import Deadline, WorkerChaos

ECHO = "repro.parallel.procpool:_task_echo"
SLEEP = "repro.parallel.procpool:_task_sleep_ms"
TELEMETRY = "tests.test_obs_cross_process:_task_record_telemetry"

NAMES = ("alpha", "beta", "gamma")


def _task_record_telemetry():
    """Worker-side probe: touch one instrument of each kind."""
    registry = obs.metrics()
    registry.counter("test.worker.tasks").inc()
    registry.histogram("test.worker.latency_ns").record(2048)
    registry.gauge("test.worker.value").set(41)
    return "ok"


@pytest.fixture(autouse=True)
def _clean_slate():
    """Observability off and empty around every test; no pool, breaker,
    or shm segment may leak across tests (the leak oracle from
    test_procpool applies here too — crash tests included)."""
    obs.configure(enabled=False, reset=True)
    with parallel_api._breaker_lock:
        parallel_api._breaker = None
    yield
    shutdown_pool()
    obs.configure(enabled=False, reset=True)
    assert live_segments() == []
    with parallel_api._breaker_lock:
        parallel_api._breaker = None


# ----------------------------------------------------------------------
# harvest → merge exactness (the property that makes cross-process
# totals trustworthy)
# ----------------------------------------------------------------------
class TestMergeExactness:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.tuples(st.sampled_from(NAMES), st.integers(1, 1 << 20)),
                max_size=20,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_counter_round_trip_is_exact(self, per_worker):
        """Counters split across workers and harvest boundaries merge to
        exactly the single-process totals."""
        parent = Metrics()
        expected: dict = {}
        for worker_id, ops in enumerate(per_worker):
            registry, state = Metrics(), HarvestState()
            for position, (name, increment) in enumerate(ops):
                registry.counter(name).inc(increment)
                expected[name] = expected.get(name, 0) + increment
                if position % 2 == 1:  # harvest mid-stream, not just at the end
                    delta = state.collect(registry)
                    if delta:
                        parent.merge(delta, labels={"worker": worker_id})
            delta = state.collect(registry)
            if delta:
                parent.merge(delta, labels={"worker": worker_id})
        assert parent.snapshot()["counters"] == expected

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 1 << 40), max_size=25),
            min_size=1,
            max_size=3,
        )
    )
    def test_histogram_round_trip_is_exact(self, per_worker):
        """Power-of-two buckets are alignment-free: merged per-worker
        histograms equal one histogram that saw every sample."""
        anchor = Metrics()
        parent = Metrics()
        for worker_id, samples in enumerate(per_worker):
            registry, state = Metrics(), HarvestState()
            for position, sample in enumerate(samples):
                registry.histogram("lat").record(sample)
                anchor.histogram("lat").record(sample)
                if position % 3 == 2:
                    delta = state.collect(registry)
                    if delta:
                        parent.merge(delta, labels={"worker": worker_id})
            delta = state.collect(registry)
            if delta:
                parent.merge(delta, labels={"worker": worker_id})
        merged = parent._histograms.get("lat")
        truth = anchor._histograms.get("lat")
        if truth is None:
            assert merged is None or merged.count == 0
        else:
            assert merged.counts == truth.counts
            assert merged.total == truth.total

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.fixed_dictionaries(
                {
                    "counters": st.dictionaries(
                        st.sampled_from(NAMES), st.integers(1, 1000), max_size=3
                    ),
                    "gauges": st.dictionaries(
                        st.sampled_from(NAMES), st.integers(0, 1000), max_size=2
                    ),
                    "histograms": st.dictionaries(
                        st.sampled_from(NAMES),
                        st.fixed_dictionaries(
                            {
                                "counts": st.dictionaries(
                                    st.integers(0, 63),
                                    st.integers(1, 100),
                                    max_size=4,
                                ),
                                "sum": st.integers(0, 10**9),
                            }
                        ),
                        max_size=2,
                    ),
                }
            ),
            min_size=2,
            max_size=5,
        )
    )
    def test_merge_order_does_not_matter(self, deltas):
        """Merging per-worker deltas is commutative (each worker's gauges
        land under its own label, so nothing is order-dependent)."""
        forward, backward = Metrics(), Metrics()
        for worker_id, delta in enumerate(deltas):
            forward.merge(delta, labels={"worker": worker_id})
        for worker_id, delta in reversed(list(enumerate(deltas))):
            backward.merge(delta, labels={"worker": worker_id})
        assert forward.snapshot() == backward.snapshot()

    def test_gauges_are_last_writer_per_worker_label(self):
        registry = Metrics()
        registry.merge({"gauges": {"depth": 3}}, labels={"worker": 1})
        registry.merge({"gauges": {"depth": 9}}, labels={"worker": 2})
        registry.merge({"gauges": {"depth": 5}}, labels={"worker": 1})
        gauges = registry.snapshot()["gauges"]
        assert gauges == {'depth{worker="1"}': 5, 'depth{worker="2"}': 9}
        assert qualify("depth", {"worker": 1}) == 'depth{worker="1"}'


class TestHarvestState:
    def test_quiet_registry_yields_none(self):
        registry, state = Metrics(), HarvestState()
        registry.counter("hits").inc()
        assert state.collect(registry) is not None
        assert state.collect(registry) is None  # nothing changed since

    def test_worker_side_reset_ships_full_current_value(self):
        """A value below the baseline (the worker's registry was reset)
        must ship as the full current value, never a negative delta."""
        registry, state = Metrics(), HarvestState()
        registry.counter("hits").inc(10)
        registry.histogram("lat").record(100)
        state.collect(registry)
        registry.reset()
        registry.counter("hits").inc(3)
        registry.histogram("lat").record(7)
        delta = state.collect(registry)
        assert delta["counters"]["hits"] == 3
        assert delta["histograms"]["lat"]["sum"] == 7

    def test_concurrent_merges_stay_exact(self):
        """The hammer: merge runs under the registry lock, so concurrent
        harvest folds (e.g. from serve worker threads finishing process
        batches) lose nothing."""
        registry = Metrics()
        threads, per_thread = 8, 200

        def hammer(worker_id):
            for _ in range(per_thread):
                registry.merge(
                    {
                        "counters": {"hits": 1},
                        "gauges": {"depth": worker_id},
                        "histograms": {"lat": {"counts": {3: 1}, "sum": 5}},
                    },
                    labels={"worker": worker_id},
                )

        pool = [
            threading.Thread(target=hammer, args=(worker_id,))
            for worker_id in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits"] == threads * per_thread
        assert snapshot["histograms"]["lat"]["count"] == threads * per_thread
        assert snapshot["histograms"]["lat"]["sum"] == 5 * threads * per_thread
        assert len(snapshot["gauges"]) == threads  # one per worker label


# ----------------------------------------------------------------------
# trace-context propagation and stitching
# ----------------------------------------------------------------------
class TestCrossProcessTracing:
    def _build_db(self):
        db = SpannerDB()
        for name, text in (("one", "abba" * 4), ("two", "bb"), ("three", "ab" * 9)):
            db.add_document(name, text)
        db.register_spanner("s", "(a|b)*!x{ab}(a|b)*")
        return db

    def test_process_bulk_query_stitches_into_one_tree(self, tmp_path):
        """The acceptance scenario: process-backend ``query_bulk`` under a
        file sink leaves parent + per-worker trace files sharing the
        request's trace id, and ``stitch`` renders a single tree with the
        worker spans nested inside it."""
        configure_pool(workers=2)
        sink = tmp_path / "trace.jsonl"
        obs.configure(enabled=True, reset=True, sink=str(sink))
        db = self._build_db()
        db.query_bulk("s", ["one", "two", "three"], backend="process")
        obs.configure(enabled=False)  # flush + detach the parent sink

        files = sorted(tmp_path.glob("trace.jsonl*"))
        assert len(files) >= 2, "expected the parent sink plus worker sinks"
        records = load_records([str(path) for path in files])
        traces = {r["trace"] for r in records if r.get("trace")}
        assert len(traces) == 1, f"one request must mean one trace id: {traces}"
        trace_id = traces.pop()

        roots = stitch(records, trace=trace_id)
        assert len(roots) == 1
        assert roots[0]["record"]["name"] == "db.query_bulk"
        rendered = render_tree(roots)
        assert "proc.task" in rendered
        worker_procs = {
            r["proc"] for r in records if r.get("proc", "main") != "main"
        }
        assert worker_procs, "worker processes must have contributed records"
        # every worker record hangs off the request tree, none are orphans
        assert "~ " not in rendered

    def test_untraced_entry_points_mint_a_fallback_trace(self):
        """``db.query_bulk`` is the fallback admission point: with no
        context active it mints one, so worker records are still
        stitchable."""
        configure_pool(workers=2)
        obs.configure(enabled=True, reset=True)
        db = self._build_db()
        db.query_bulk("s", ["one", "three"], backend="process")
        records = obs.tracer().records()
        bulk = [r for r in records if r.get("name") == "db.query_bulk"]
        assert bulk and all(r.get("trace") for r in bulk)

    def test_service_admission_mints_the_trace_and_reports_pool_stats(self):
        configure_pool(workers=2)
        obs.configure(enabled=True, reset=True)
        db = self._build_db()
        with SpannerService(db, ServeConfig(workers=2)) as service:
            result = service.query_bulk(
                "s", ["one", "three"], backend="process", timeout=60
            )
            stats = service.stats()
        assert sorted(result.results) == ["one", "three"]
        pool = stats["process_pool"]
        assert pool is not None and pool["runs"] >= 1
        assert "harvests" in pool
        assert pool_stats()["runs"] == pool["runs"]
        traces = {
            r.get("trace") for r in obs.tracer().records() if r.get("trace")
        }
        assert len(traces) == 1  # one admission, one trace id

    def test_child_context_reroots_at_the_open_span(self):
        obs.configure(enabled=True, reset=True)
        ctx = obs.new_trace()
        assert isinstance(ctx, TraceContext)
        with obs.use_context(ctx):
            with obs.tracer().span("outer"):
                child = obs.child_context()
                assert child.trace_id == ctx.trace_id
                assert child.parent_span_id == obs.tracer().current_span_id()
        assert obs.current_context() is None

    def test_stitch_promotes_orphans_to_annotated_roots(self):
        records = [
            {"type": "span", "name": "root", "proc": "main", "id": 1,
             "t0_ns": 0, "dur_ns": 90, "trace": "t1"},
            {"type": "span", "name": "task", "proc": "w1", "id": 1,
             "parent": 1, "parent_proc": "main", "t0_ns": 10, "dur_ns": 5,
             "trace": "t1"},
            {"type": "span", "name": "lost", "proc": "w2", "id": 9,
             "parent": 77, "t0_ns": 20, "dur_ns": 1, "trace": "t1"},
        ]
        roots = stitch(records, trace="t1")
        by_name = {node["record"]["name"]: node for node in roots}
        assert set(by_name) == {"root", "lost"}
        assert by_name["lost"]["orphan"]
        assert [c["record"]["name"] for c in by_name["root"]["children"]] == ["task"]
        rendered = render_tree(roots)
        assert "~ lost (w2)" in rendered
        assert "\n  task (w1)" in rendered  # indented under the root


# ----------------------------------------------------------------------
# the flight recorder and typed crash causes
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_roundtrip_keeps_the_last_slots(self):
        with SegmentRegistry() as registry:
            ring = flight.create_ring(registry, slots=4, slot_size=256)
            writer = flight.FlightWriter(ring.name)
            for seq in range(6):
                writer.write({"name": "event", "seq": seq})
            writer.close()
            salvaged = flight.salvage(ring)
            assert [r["seq"] for r in salvaged] == [2, 3, 4, 5]
        assert live_segments() == []

    def test_oversized_record_sheds_attrs_before_dropping(self):
        with SegmentRegistry() as registry:
            ring = flight.create_ring(registry, slots=2, slot_size=128)
            writer = flight.FlightWriter(ring.name)
            writer.write({"name": "big", "attrs": {"blob": "x" * 500}})
            writer.close()
            salvaged = flight.salvage(ring)
            assert [r["name"] for r in salvaged] == ["big"]
            assert "attrs" not in salvaged[0]

    def test_torn_slot_is_skipped_not_misread(self):
        with SegmentRegistry() as registry:
            ring = flight.create_ring(registry, slots=4, slot_size=64)
            writer = flight.FlightWriter(ring.name)
            for seq in range(3):
                writer.write({"seq": seq})
            writer.close()
            # corrupt the middle slot's payload in place (a mid-write kill)
            offset = flight._HEADER.size + 1 * (flight._LENGTH.size + 64)
            (length,) = flight._LENGTH.unpack_from(ring.buf, offset)
            start = offset + flight._LENGTH.size
            ring.buf[start : start + length] = b"\xff" * length
            salvaged = flight.salvage(ring)
            assert [r["seq"] for r in salvaged] == [0, 2]
        assert live_segments() == []

    def test_sigkilled_worker_leaves_a_salvaged_crash_event(self):
        """The acceptance scenario: under a seeded SIGKILL schedule the
        batch still answers exactly, and every ``worker.crash`` event
        carries the victim's salvaged last records — including the
        ``proc.task.recv`` breadcrumb emitted before the kill fired."""
        obs.configure(enabled=True, reset=True)
        chaos = WorkerChaos(seed=0, kill_rate=0.3)
        pool = ProcPool(workers=2, chaos=chaos, task_retries=3, crash_tolerance=100)
        try:
            assert pool.run([ProcCall(ECHO, (i,)) for i in range(4)]) == [0, 1, 2, 3]
            stats = pool.stats()
        finally:
            pool.shutdown()
        assert stats["crashes"] >= 1
        assert stats["crash_sigkill"] == stats["crashes"]
        crash_events = [
            r for r in obs.tracer().records() if r.get("name") == "worker.crash"
        ]
        assert len(crash_events) == stats["crashes"]
        for event in crash_events:
            attrs = event["attrs"]
            assert attrs["cause"] == "sigkill"
            assert attrs["pid"] > 0
            salvaged_names = [r.get("name") for r in attrs["salvaged"]]
            assert "proc.task.recv" in salvaged_names
        counters = obs.metrics().snapshot()["counters"]
        assert counters["parallel.proc.crashes"] == stats["crashes"]
        assert counters["parallel.proc.crashes.sigkill"] == stats["crashes"]

    def test_stall_kill_is_typed_as_stall(self):
        obs.configure(enabled=True, reset=True)
        chaos = WorkerChaos(seed=11, stall_rate=0.3, stall_seconds=5.0)
        pool = ProcPool(workers=2, chaos=chaos, stall_timeout=0.4,
                        task_retries=4, crash_tolerance=100)
        try:
            assert pool.run([ProcCall(ECHO, (i,)) for i in range(10)]) == list(range(10))
            stats = pool.stats()
        finally:
            pool.shutdown()
        assert stats["crash_stall"] >= 1
        assert stats["crash_stall"] == stats["stalls"]
        causes = {
            r["attrs"]["cause"]
            for r in obs.tracer().records()
            if r.get("name") == "worker.crash"
        }
        assert "stall" in causes

    def test_deadline_kill_is_typed_without_counting_as_a_crash(self):
        """A deadline kill is the supervisor keeping its latency promise,
        not a worker fault: it lands under ``crash_deadline`` only, so
        the legacy ``crashes`` count still means 'workers died on us'."""
        obs.configure(enabled=True, reset=True)
        pool = ProcPool(workers=1)
        try:
            with pytest.raises(DeadlineExceededError):
                pool.run([ProcCall(SLEEP, (5000,))], deadline=Deadline.after(0.3))
            stats = pool.stats()
        finally:
            pool.shutdown()
        assert stats["crash_deadline"] == 1
        assert stats["crashes"] == 0
        causes = [
            r["attrs"]["cause"]
            for r in obs.tracer().records()
            if r.get("name") == "worker.crash"
        ]
        assert causes == ["deadline"]

    def test_dead_at_dispatch_is_typed(self):
        pool = ProcPool(workers=1)
        try:
            assert pool.run([ProcCall(ECHO, (0,))]) == [0]
            team = pool._checkout(1)
            try:
                [worker] = team
                worker.conn.close()  # deterministic OSError at dispatch
                results = pool._supervise(team, [ProcCall(ECHO, (7,))], None)
            finally:
                pool._checkin(team)
            assert results == [7]
            stats = pool.stats()
        finally:
            pool.shutdown()
        assert stats["crash_dead_at_dispatch"] == 1
        assert stats["crashes"] == 1


# ----------------------------------------------------------------------
# reset resilience (the ISSUE 7 bug fix)
# ----------------------------------------------------------------------
class TestResetResilience:
    def test_merge_after_reset_recreates_instruments(self):
        registry = Metrics()
        delta = {
            "counters": {"hits": 2},
            "gauges": {"depth": 4},
            "histograms": {"lat": {"counts": {3: 1}, "sum": 5}},
        }
        registry.merge(delta, labels={"worker": 0})
        registry.reset()
        registry.merge(delta, labels={"worker": 0})
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits"] == 2
        assert snapshot["gauges"]['depth{worker="0"}'] == 4
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_reset_with_live_workers_does_not_strand_harvests(self):
        """``obs.configure(reset=True)`` between batches on a warm pool:
        the next batch's harvests must land in full (lazily re-created
        instruments), not vanish against stale instrument handles."""
        obs.configure(enabled=True, reset=True)
        pool = ProcPool(workers=1)
        try:
            assert pool.run([ProcCall(TELEMETRY)]) == ["ok"]
            assert obs.metrics().snapshot()["counters"]["test.worker.tasks"] == 1
            obs.configure(reset=True)  # live worker keeps its baselines
            assert "test.worker.tasks" not in obs.metrics().snapshot()["counters"]
            assert pool.run([ProcCall(TELEMETRY)]) == ["ok"]
        finally:
            pool.shutdown()
        snapshot = obs.metrics().snapshot()
        # only the post-reset batch's delta: the worker's baseline tracking
        # is unaffected by the parent-side reset
        assert snapshot["counters"]["test.worker.tasks"] == 1
        assert snapshot["histograms"]["test.worker.latency_ns"]["count"] == 1
        assert [
            key for key in snapshot["gauges"] if key.startswith("test.worker.value{")
        ], "the worker's gauge must reappear under its worker label"


# ----------------------------------------------------------------------
# export surfaces: Prometheus text and the CLI
# ----------------------------------------------------------------------
class TestPrometheusExport:
    def test_exposition_format(self):
        registry = Metrics()
        registry.counter("db.query_bulk").inc(3)
        registry.merge({"gauges": {"pool.depth": 7}}, labels={"worker": 2})
        registry.histogram("lat.ns").record(5)   # bucket 3, upper bound 8
        registry.histogram("lat.ns").record(100)  # bucket 7, upper bound 128
        text = export_prometheus(registry)
        lines = text.splitlines()
        assert "# TYPE db_query_bulk_total counter" in lines
        assert "db_query_bulk_total 3" in lines
        assert 'pool_depth{worker="2"} 7' in lines
        assert 'lat_ns_bucket{le="8"} 1' in lines
        assert 'lat_ns_bucket{le="128"} 2' in lines
        assert 'lat_ns_bucket{le="+Inf"} 2' in lines
        assert "lat_ns_sum 105" in lines
        assert "lat_ns_count 2" in lines
        assert text.endswith("\n")

    def test_empty_registry_exports_empty(self):
        assert export_prometheus(Metrics()) == ""

    def test_cli_metrics_prom_format(self, tmp_path, capsys):
        store = str(tmp_path / "store.slpdb")
        assert main(["db", store, "add", "d", "aabab"]) == 0
        trace = str(tmp_path / "out.jsonl")
        assert main(
            ["db", store, "bulk", "(a|b)*!x{ab}(a|b)*", "d", "--trace", trace]
        ) == 0
        capsys.readouterr()
        assert main(["db", store, "metrics", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE db_query_bulk_total counter" in out
        assert "db_query_bulk_total 1" in out


class TestStitchCLI:
    def _write_records(self, path):
        path.write_text(
            "\n".join(
                [
                    '{"type": "span", "name": "root", "proc": "main", "id": 1,'
                    ' "t0_ns": 0, "dur_ns": 90, "trace": "t1"}',
                    '{"type": "span", "name": "task", "proc": "w1", "id": 1,'
                    ' "parent": 1, "parent_proc": "main", "t0_ns": 10,'
                    ' "dur_ns": 5, "trace": "t1"}',
                    "not json at all",
                ]
            )
            + "\n",
            encoding="utf-8",
        )

    def test_stitch_renders_one_tree_per_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        self._write_records(path)
        assert main(["obs", "stitch", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace t1\n")
        assert "root (main)" in out
        assert "\n  task (w1)" in out  # nested under the root

    def test_stitch_unknown_trace_is_an_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write_records(path)
        with pytest.raises(SystemExit, match="no records"):
            main(["obs", "stitch", str(path), "--trace", "nope"])

    def test_stitch_requires_files(self):
        with pytest.raises(SystemExit, match="usage"):
            main(["obs", "stitch"])
