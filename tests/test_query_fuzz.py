"""Differential fuzzing of the query planner.

The contract from ``repro/query/__init__.py``: for every expression, the
cost-based planner's answer (compile-vs-materialize choices, join
re-ordering, plan-cache interning, SLP-compressed evaluation) equals
naive bottom-up left-to-right materialization over the decompressed
text, where atoms run through the naive enumerator — a disjoint code
path.  Random expressions over random documents (including multi-byte
and astral-plane unicode) assert exactly that.

The default lane covers a fast seed subset; the full 200-seed sweep
runs under ``-m slow_fuzz`` in CI's fuzz stage.
"""

import random

import pytest

from repro.db import SpannerDB
from repro.query import QuerySession, evaluate_query_naive
from repro.query import ast

#: atom pool: (regex-formula template, schema it produces)
_ATOMS = [
    (".*!x{[ab]+}.*", ("x",)),
    (".*!x{a+}.*", ("x",)),
    (".*!x{ab?}.*", ("x",)),
    (".*!x{.}.*", ("x",)),
    (".*!x{a+}!y{b+}.*", ("x", "y")),
    (".*!x{[ab]}.*!y{[ab]}.*", ("x", "y")),
    (".*!y{b+}.*", ("y",)),
    (".*!y{.}.*", ("y",)),
]

_DOCUMENTS = [
    "aabba",
    "ab ab ba",
    "bbbb",
    "a",
    "b a",
    "aába",                  # combining latin
    "aあbいa",               # multi-byte BMP
    "a😀ab🎉b",              # astral plane (surrogate-pair pitfalls)
    "𝕒a𝕓b",                 # mathematical alphanumerics
    "ab\x00ba",            # NUL inside the document
]


def _random_expr(rng: random.Random, depth: int) -> tuple[ast.Expr, tuple[str, ...]]:
    """A random expression plus its schema (variables it can bind)."""
    if depth <= 0 or rng.random() < 0.35:
        source, schema = rng.choice(_ATOMS)
        return ast.RegexAtom(source=source), schema
    op = rng.choice(["join", "union", "diff", "project", "rename"])
    if op in ("join", "union"):
        left, ls = _random_expr(rng, depth - 1)
        right, rs = _random_expr(rng, depth - 1)
        schema = tuple(sorted(set(ls) | set(rs)))
        kind = ast.Join if op == "join" else ast.Union
        return kind(left=left, right=right), schema
    if op == "diff":
        # difference requires equal schemas: draw both sides from atoms
        # with the same variable set, possibly wrapped once
        source, schema = rng.choice(_ATOMS)
        candidates = [a for a in _ATOMS if a[1] == schema]
        other = rng.choice(candidates)[0]
        return (
            ast.Difference(
                left=ast.RegexAtom(source=source),
                right=ast.RegexAtom(source=other),
            ),
            schema,
        )
    inner, schema = _random_expr(rng, depth - 1)
    if not schema:
        return inner, schema
    if op == "project":
        keep = tuple(sorted(rng.sample(schema, rng.randint(1, len(schema)))))
        return ast.Project(inner=inner, variables=keep), keep
    renamed = rng.choice(schema)
    fresh = "z" if "z" not in schema else "w"
    return (
        ast.Rename(inner=inner, renaming=((renamed, fresh),)),
        tuple(sorted((set(schema) - {renamed}) | {fresh})),
    )


def _check_seed(seed: int) -> None:
    rng = random.Random(seed)
    text = rng.choice(_DOCUMENTS)
    expr, _ = _random_expr(rng, depth=3)
    db = SpannerDB()
    db.add_document("d", text)
    session = QuerySession(db)
    planned = session.evaluate(expr, "d")
    naive = evaluate_query_naive(expr, text)
    assert planned == naive, (
        f"seed {seed}: planner and naive disagree on {text!r} "
        f"({session.last_plan.describe()})"
    )
    # second run goes through warm statistics (possibly different join
    # order) and the warm plan cache — the answer must not move
    assert session.evaluate(expr, "d") == naive, f"seed {seed}: warm run diverged"


@pytest.mark.parametrize("seed", range(40))
def test_planner_matches_naive_fast(seed):
    _check_seed(seed)


@pytest.mark.slow_fuzz
class TestFullSweep:
    def test_planner_matches_naive_200_seeds(self):
        for seed in range(200):
            _check_seed(seed)
