"""Reader/writer coordination properties of the serving layer.

Two properties from the issue's acceptance list:

* queries running while a transaction is open observe **consistent
  snapshots** — never staged state, and never state a rollback erased;
* journal recovery after a crash **mid-commit under concurrent query
  load** recovers exactly the committed documents.
"""

import threading

import pytest

from repro import SpannerDB
from repro.errors import SpanlibError
from repro.serve import ServeConfig, SpannerService
from repro.util import truncate_journal_write

PATTERN = "(a|b)*!x{b}(a|b)*"


def store():
    db = SpannerDB()
    db.add_document("d1", "ababbab")
    db.register_spanner("m", PATTERN)
    return db


class TestSnapshotConsistency:
    def test_queries_see_commit_only_after_the_transaction_closes(self):
        db = store()
        service = SpannerService(db, ServeConfig(workers=2))
        in_txn = threading.Event()
        release = threading.Event()
        with service:
            def committer():
                with service.transaction() as txn_db:
                    txn_db.add_document("d2", "bbb")
                    in_txn.set()
                    release.wait(timeout=10)

            writer = threading.Thread(target=committer)
            writer.start()
            assert in_txn.wait(timeout=10)
            # the write lock is held: these queries queue behind it
            tickets = [service.submit("m", "d2") for _ in range(3)]
            assert not any(t.done() for t in tickets)
            release.set()
            writer.join(timeout=10)
            for ticket in tickets:
                # resolved strictly after commit: the full document is there
                assert len(ticket.result(timeout=10).tuples) == 3

    def test_rolled_back_state_is_never_observed(self):
        db = store()
        service = SpannerService(db, ServeConfig(workers=2))
        in_txn = threading.Event()
        release = threading.Event()
        observed: list[object] = []
        with service:
            def aborter():
                try:
                    with service.transaction() as txn_db:
                        txn_db.add_document("ghost", "bb")
                        in_txn.set()
                        release.wait(timeout=10)
                        raise SpanlibError("abort")
                except SpanlibError:
                    pass

            writer = threading.Thread(target=aborter)
            writer.start()
            assert in_txn.wait(timeout=10)
            tickets = [service.submit("m", "ghost") for _ in range(3)]
            release.set()
            writer.join(timeout=10)
            for ticket in tickets:
                try:
                    observed.append(ticket.result(timeout=10))
                except SpanlibError:
                    pass  # "no document named 'ghost'" — the only legal answer
        assert not observed, "a query observed rolled-back state"
        assert "ghost" not in db.documents()
        # the store still answers correctly after the rollback
        with SpannerService(db) as fresh:
            assert len(fresh.query("m", "d1").tuples) == 4

    def test_interleaved_edits_and_queries_always_see_committed_text(self):
        """A stream of edits (new names) racing a stream of queries: every
        answer matches the creation-time text of its document."""
        db = store()
        service = SpannerService(db, ServeConfig(workers=3))
        errors: list[str] = []
        with service:
            def writer():
                for index in range(10):
                    service.add_document(f"g{index}", "b" * (index + 1))

            thread = threading.Thread(target=writer)
            thread.start()
            for round_index in range(30):
                name = f"g{round_index % 10}"
                try:
                    result = service.query("m", name, timeout=30)
                except SpanlibError:
                    continue  # not added yet: a consistent pre-state
                expected = (round_index % 10) + 1
                if len(result.tuples) != expected:
                    errors.append(f"{name}: {len(result.tuples)} != {expected}")
            thread.join(timeout=30)
        assert not errors, errors


class TestCrashRecoveryUnderLoad:
    def test_mid_commit_crash_with_concurrent_queries_recovers_committed_state(
        self, tmp_path
    ):
        """A torn journal write fires while query threads hammer the
        service; reopen recovers every *committed* document exactly."""
        path = str(tmp_path / "store.slpdb")
        db = store()
        db.save(path)
        service = SpannerService(db, ServeConfig(workers=3))
        stop_querying = threading.Event()
        query_errors: list[str] = []

        def querier():
            while not stop_querying.is_set():
                try:
                    result = service.query("m", "d1", timeout=30)
                except SpanlibError:
                    continue
                if len(result.tuples) != 4:
                    query_errors.append(f"saw {len(result.tuples)} tuples")

        committed: list[str] = []
        with service:
            threads = [threading.Thread(target=querier) for _ in range(2)]
            for thread in threads:
                thread.start()
            # the 3rd journal append tears mid-record: that mutation fails,
            # everything committed before it must survive recovery
            with truncate_journal_write(keep_bytes=7, at=3):
                for index in range(6):
                    name = f"c{index}"
                    try:
                        service.add_document(name, "ab" * (index + 2))
                    except SpanlibError:
                        continue
                    committed.append(name)
            stop_querying.set()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()
        assert not query_errors, query_errors
        assert len(committed) < 6  # the fault really fired

        recovered = SpannerDB.open(path)
        docs = set(recovered.documents())
        assert "d1" in docs
        for name in committed[:2]:  # appends before the torn record
            assert name in docs
            assert recovered.document_text(name) == db.document_text(name)
        # nothing uncommitted leaked into the recovered store
        for name in set(f"c{i}" for i in range(6)) - set(committed):
            assert name not in docs
