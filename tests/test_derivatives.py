"""Tests for the Brzozowski-derivative engine and its agreement with the
Thompson/NFA pipeline (two independent engines, one language)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RegexSyntaxError
from repro.regex import compile_nfa, parse
from repro.regex.derivatives import derivative, matches, nullable


class TestNullable:
    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ("()", True),
            ("a", False),
            ("a*", True),
            ("a+", False),
            ("a?", True),
            ("a|()", True),
            ("ab", False),
            ("a*b*", True),
            ("a{0,3}", True),
            ("a{2}", False),
        ],
    )
    def test_cases(self, pattern, expected):
        assert nullable(parse(pattern)) == expected


class TestDerivative:
    def test_literal(self):
        assert matches("a", "a")
        assert not matches("a", "b")
        assert not matches("a", "aa")

    def test_classic_examples(self):
        assert matches("(a|b)*abb", "aababb")
        assert not matches("(a|b)*abb", "aabab")
        assert matches("a*b*", "aabbb")
        assert matches(".*", "xyz")
        assert matches("[a-c]+", "cab")
        assert not matches("[^a]", "a")

    def test_repeat(self):
        assert matches("a{2,3}", "aa")
        assert matches("a{2,3}", "aaa")
        assert not matches("a{2,3}", "aaaa")
        assert matches("(ab){2,}", "ababab")

    def test_derivative_shape(self):
        # ∂_a(ab) = b
        node = derivative(parse("ab"), "a")
        assert str(node) == "b"

    def test_captures_rejected(self):
        with pytest.raises(RegexSyntaxError):
            matches("!x{a}", "a")
        with pytest.raises(RegexSyntaxError):
            matches("!x{a}&x", "aa")


PATTERNS = [
    "(a|b)*abb",
    "a*b*a*",
    "(ab|ba)+",
    "a?b{2,3}(a|b)*",
    "((a|b)(a|b))*",
    ".[ab]*",
    "(a+b)*a*",
]


class TestAgreementWithThompson:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_catalogue(self, pattern):
        nfa = compile_nfa(pattern)
        for length in range(0, 6):
            for value in range(2 ** length):
                word = "".join(
                    "ab"[(value >> bit) & 1] for bit in range(length)
                )
                assert matches(pattern, word) == nfa.accepts(word), (pattern, word)

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(PATTERNS), st.text(alphabet="abc", max_size=8))
    def test_property(self, pattern, word):
        assert matches(pattern, word) == compile_nfa(pattern).accepts(word)

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="ab", max_size=6))
    def test_against_python_re(self, word):
        import re

        pattern = "(a|b)*a(a|b)b*"
        assert matches(pattern, word) == bool(re.fullmatch(pattern, word))
