"""Tests for the spanner regex engine: parser, validity, compilation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Span, SpanTuple
from repro.errors import RegexSyntaxError
from repro.regex import (
    Alt,
    Capture,
    Concat,
    Literal,
    Reference,
    Star,
    check_capture_validity,
    compile_nfa,
    parse,
    ref_nfa_from_regex,
    references_of,
    spanner_from_regex,
    variables_of,
)


class TestParser:
    def test_literal_concat(self):
        node = parse("abc")
        assert isinstance(node, Concat)
        assert [p.char for p in node.parts] == ["a", "b", "c"]

    def test_alternation_precedence(self):
        node = parse("ab|c")
        assert isinstance(node, Alt)
        assert isinstance(node.parts[0], Concat)

    def test_star_binds_tighter_than_concat(self):
        node = parse("ab*")
        assert isinstance(node, Concat)
        assert isinstance(node.parts[1], Star)

    def test_grouping(self):
        node = parse("(ab)*")
        assert isinstance(node, Star)
        assert isinstance(node.inner, Concat)

    def test_empty_group_is_epsilon(self):
        nfa = compile_nfa("()")
        assert nfa.accepts("")
        assert not nfa.accepts("a")

    def test_capture(self):
        node = parse("!x{ab}")
        assert isinstance(node, Capture)
        assert node.var == "x"
        assert variables_of(node) == {"x"}

    def test_reference(self):
        node = parse("&foo")
        assert isinstance(node, Reference)
        assert references_of(node) == {"foo"}

    def test_nesting_inside_the_depth_limit_parses(self):
        depth = 50
        node = parse("(" * depth + "a" + ")" * depth)
        assert node is not None

    def test_pathological_nesting_raises_typed_error_not_recursionerror(self):
        depth = 5000
        pattern = "(" * depth + "a" + ")" * depth
        with pytest.raises(RegexSyntaxError, match="depth limit"):
            parse(pattern)

    def test_deep_capture_nesting_is_also_guarded(self):
        pattern = "".join(f"!v{i}{{" for i in range(5000))
        pattern += "a" + "}" * 5000
        with pytest.raises(RegexSyntaxError, match="depth limit"):
            parse(pattern)

    def test_variable_names(self):
        node = parse("!long_name2{a}")
        assert node.var == "long_name2"

    def test_escapes(self):
        node = parse(r"\*\{\&")
        assert [p.char for p in node.parts] == ["*", "{", "&"]

    def test_char_class_with_range(self):
        nfa = compile_nfa("[a-c]")
        for ch, ok in [("a", True), ("b", True), ("c", True), ("d", False)]:
            assert nfa.accepts(ch) == ok

    def test_negated_class(self):
        nfa = compile_nfa("[^ab]")
        assert nfa.accepts("z") and not nfa.accepts("a")

    def test_class_with_literal_dash_and_bracket(self):
        nfa = compile_nfa(r"[\]a]")
        assert nfa.accepts("]") and nfa.accepts("a")

    @pytest.mark.parametrize(
        "pattern",
        [
            "0{²",       # the recorded fuzz counterexample: superscript two
            "a{²}",      # superscript digit inside complete braces
            "a{٣}",      # ARABIC-INDIC DIGIT THREE (str.isdigit() accepts it)
            "a{Ⅷ}",      # ROMAN NUMERAL EIGHT (isnumeric, non-digit to int())
            "a{1,²}",    # non-ASCII digit in the upper bound
            "a{١٢}",     # several Unicode digits, no ASCII ones
        ],
    )
    def test_non_ascii_digits_raise_typed_error(self, pattern):
        """str.isdigit() accepts Unicode digit classes that int() rejects;
        the parser must turn them into RegexSyntaxError, never ValueError."""
        with pytest.raises(RegexSyntaxError):
            parse(pattern)

    def test_ascii_digits_still_parse(self):
        node = parse("a{2,13}")
        assert node.low == 2 and node.high == 13

    def test_syntax_errors_report_position(self):
        for pattern in ["(", "a)", "a{", "a{2,1}", "[", "[]", "!x", "!{a}", "a**b|)"]:
            with pytest.raises(RegexSyntaxError):
                parse(pattern)

    def test_unparse_round_trip(self):
        for pattern in ["abc", "(a|b)*c+d?", "!x{(a|b)*}", "a{2,4}", "[abc]", "&x", "."]:
            node = parse(pattern)
            assert parse(str(node)) == node


class TestValidity:
    def test_capture_under_star_rejected(self):
        with pytest.raises(RegexSyntaxError):
            check_capture_validity(parse("(!x{a})*"))

    def test_capture_under_bounded_repeat_gt1_rejected(self):
        with pytest.raises(RegexSyntaxError):
            check_capture_validity(parse("(!x{a}){2}"))

    def test_capture_under_repeat_1_allowed(self):
        check_capture_validity(parse("(!x{a}){1}"))
        check_capture_validity(parse("(!x{a}){0,1}"))

    def test_duplicate_capture_on_path_rejected(self):
        with pytest.raises(RegexSyntaxError):
            check_capture_validity(parse("!x{a}!x{b}"))

    def test_nested_same_variable_rejected(self):
        with pytest.raises(RegexSyntaxError):
            check_capture_validity(parse("!x{a!x{b}c}"))

    def test_duplicate_capture_across_branches_allowed(self):
        check_capture_validity(parse("!x{a}|!x{b}"))

    def test_capture_under_maybe_allowed(self):
        # zero-or-one occurrences: schemaless semantics
        check_capture_validity(parse("(!x{a})?"))


class TestCompileNFA:
    @pytest.mark.parametrize(
        "pattern,accepted,rejected",
        [
            ("a*b", ["b", "ab", "aaab"], ["a", "ba", ""]),
            ("(a|b)+", ["a", "ab", "bba"], ["", "c"]),
            ("a{2,3}", ["aa", "aaa"], ["a", "aaaa"]),
            ("a{2}", ["aa"], ["a", "aaa"]),
            ("a{2,}", ["aa", "aaaaa"], ["a", ""]),
            ("a?b", ["b", "ab"], ["aab"]),
            (".*", ["", "xyz"], []),
            ("a.c", ["abc", "azc"], ["ac", "abbc"]),
        ],
    )
    def test_membership(self, pattern, accepted, rejected):
        nfa = compile_nfa(pattern)
        for word in accepted:
            assert nfa.accepts(word), (pattern, word)
        for word in rejected:
            assert not nfa.accepts(word), (pattern, word)

    def test_captures_rejected(self):
        with pytest.raises(RegexSyntaxError):
            compile_nfa("!x{a}")

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ab", max_size=6))
    def test_agrees_with_python_re(self, probe):
        import re

        pattern = "(a|b)*abb"
        assert compile_nfa(pattern).accepts(probe) == bool(
            re.fullmatch("(a|b)*abb", probe)
        )


class TestSpannerFromRegex:
    def test_example_1_1(self):
        """Experiment P1: the regex α of the paper's introduction."""
        spanner = spanner_from_regex("!x{(a|b)*}!y{b}!z{(a|b)*}")
        relation = spanner.evaluate("ababbab")
        expected = {
            SpanTuple.of(x=Span(1, 2), y=Span(2, 3), z=Span(3, 8)),
            SpanTuple.of(x=Span(1, 4), y=Span(4, 5), z=Span(5, 8)),
            SpanTuple.of(x=Span(1, 5), y=Span(5, 6), z=Span(6, 8)),
            SpanTuple.of(x=Span(1, 7), y=Span(7, 8), z=Span(8, 8)),
        }
        assert relation.tuples == expected
        assert spanner.functional

    def test_functional_inference(self):
        assert spanner_from_regex("!x{a}").functional
        assert not spanner_from_regex("(!x{a})?").functional
        assert spanner_from_regex("!x{a}|!x{b}").functional

    def test_nested_captures(self):
        spanner = spanner_from_regex("!x{a!y{b}c}")
        relation = spanner.evaluate("abc")
        assert relation.tuples == frozenset(
            {SpanTuple.of(x=Span(1, 4), y=Span(2, 3))}
        )

    def test_hierarchicality_of_regex_formulas(self):
        # regex-formulas are hierarchical by construction (Section 2.2):
        # nested or disjoint, never properly overlapping
        spanner = spanner_from_regex("!x{ab}!y{ab}")
        for tup in spanner.evaluate("abab"):
            assert not tup["x"].overlaps(tup["y"])

    def test_references_rejected(self):
        with pytest.raises(RegexSyntaxError):
            spanner_from_regex("!x{a}&x")

    def test_empty_capture(self):
        spanner = spanner_from_regex("a!x{()}b")
        relation = spanner.evaluate("ab")
        assert relation.tuples == frozenset({SpanTuple.of(x=Span(2, 2))})


class TestRefNFA:
    def test_compiles_reference_arcs(self):
        nfa, variables = ref_nfa_from_regex("!x{(a|b)*}c&x")
        assert variables == {"x"}
        assert len(nfa.ref_symbols()) == 1

    def test_dangling_reference_rejected(self):
        with pytest.raises(RegexSyntaxError):
            ref_nfa_from_regex("a&x")
