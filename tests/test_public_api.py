"""Sanity tests of the public package surface."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.automata",
    "repro.regex",
    "repro.enumeration",
    "repro.spanners",
    "repro.decision",
    "repro.slp",
    "repro.wordeq",
    "repro.util",
    "repro.serve",
    "repro.stream",
    "repro.obs",
    "repro.kernels",
    "repro.parallel",
    "repro.query",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    """Every name in each package's __all__ is actually importable."""
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), name
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol}"


def test_version():
    import repro

    assert repro.__version__


def test_top_level_quickstart_snippet():
    """The README quickstart must keep working verbatim."""
    from repro import RegularSpanner

    spanner = RegularSpanner.from_regex("!x{(a|b)*}!y{b}!z{(a|b)*}")
    table = spanner.evaluate("ababbab").to_table()
    assert table.count("\n") == 5  # header + rule + 4 rows


def test_errors_hierarchy():
    from repro import errors

    for name in [
        "InvalidSpanError",
        "InvalidMarkedWordError",
        "RegexSyntaxError",
        "NotFunctionalError",
        "SchemaError",
        "UnsupportedSpannerError",
        "EvaluationLimitError",
        "SLPError",
        "CDEError",
    ]:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.SpanlibError), name


def test_spanner_abc_contract():
    """Every concrete spanner class implements the Spanner interface."""
    from repro import CoreSpanner, ReflSpanner, RegularSpanner, Spanner
    from repro.automata import VSetAutomaton

    for cls in [RegularSpanner, ReflSpanner, VSetAutomaton]:
        assert issubclass(cls, Spanner), cls
    assert issubclass(CoreSpanner, Spanner)
