"""Tests for SLP database serialisation and SpannerDB persistence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import SpannerDB
from repro.errors import SLPError
from repro.slp import DocumentDatabase, figure_1_database
from repro.slp.serialize import dumps_database, loads_database


class TestRoundTrip:
    def test_figure_1_database(self):
        db, _ = figure_1_database()
        loaded = loads_database(dumps_database(db))
        assert loaded.names() == db.names()
        for name in db.names():
            assert loaded.document(name) == db.document(name)

    def test_sharing_survives(self):
        db = DocumentDatabase.from_texts({"a": "abab" * 16, "b": "abab" * 32})
        loaded = loads_database(dumps_database(db))
        # the loaded arena is freshly hash-consed: sharing at least as good
        assert loaded.size() <= db.size()

    def test_only_reachable_nodes_written(self):
        db = DocumentDatabase.from_texts({"a": "ab"})
        # create unreachable garbage in the arena
        db.slp.pair(db.slp.terminal("z"), db.slp.terminal("z"))
        text = dumps_database(db)
        assert "z" not in text

    def test_special_characters(self):
        db = DocumentDatabase.from_texts({"weird name\n": "a b\nc\\d"})
        loaded = loads_database(dumps_database(db))
        assert loaded.document("weird name\n") == "a b\nc\\d"

    def test_empty_database(self):
        db = DocumentDatabase()
        loaded = loads_database(dumps_database(db))
        assert loaded.names() == []

    @settings(max_examples=30, deadline=None)
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=6),
            st.text(alphabet="ab \n\\", min_size=1, max_size=20),
            min_size=1,
            max_size=3,
        )
    )
    def test_round_trip_property(self, texts):
        db = DocumentDatabase.from_texts(texts)
        loaded = loads_database(dumps_database(db))
        for name, text in texts.items():
            assert loaded.document(name) == text


class TestCorruption:
    def test_bad_header(self):
        with pytest.raises(SLPError):
            loads_database("NOPE 9\n")

    def test_bad_record(self):
        with pytest.raises(SLPError):
            loads_database("SLPDB 1\nX what\n")

    def test_forward_reference(self):
        with pytest.raises(SLPError):
            loads_database("SLPDB 1\nP 0 1 2\n")

    def test_unknown_document_node(self):
        with pytest.raises(SLPError):
            loads_database("SLPDB 1\nT 0 a\nD doc 7\n")


class TestSpannerDBPersistence:
    def test_save_and_load(self, tmp_path):
        store = SpannerDB()
        store.add_document("d1", "ababbab")
        store.register_spanner("pairs", "(a|b)*!x{ab}(a|b)*")
        before = store.evaluate("pairs", "d1")
        path = tmp_path / "store.slpdb"
        store.save(str(path))

        loaded = SpannerDB.load(str(path))
        assert loaded.documents() == ["d1"]
        assert loaded.document_text("d1") == "ababbab"
        # spanners are re-registered after load
        loaded.register_spanner("pairs", "(a|b)*!x{ab}(a|b)*")
        assert loaded.evaluate("pairs", "d1") == before

    def test_loaded_store_is_editable(self, tmp_path):
        from repro.slp import Concat, Doc

        store = SpannerDB()
        store.add_document("d1", "abc" * 10)
        path = tmp_path / "store.slpdb"
        store.save(str(path))
        loaded = SpannerDB.load(str(path))
        loaded.edit("d2", Concat(Doc("d1"), Doc("d1")))
        assert loaded.document_text("d2") == "abc" * 20
