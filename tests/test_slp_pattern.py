"""Tests for compressed pattern matching on SLPs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SLPError
from repro.slp import (
    SLP,
    CompressedPatternMatcher,
    balanced_node,
    fibonacci_node,
    power_node,
    repair_node,
)


def overlapping_count(text: str, pattern: str) -> int:
    return sum(
        1 for i in range(len(text) - len(pattern) + 1)
        if text.startswith(pattern, i)
    )


def overlapping_positions(text: str, pattern: str) -> list[int]:
    return [
        i for i in range(len(text) - len(pattern) + 1)
        if text.startswith(pattern, i)
    ]


class TestCounting:
    def test_simple(self):
        slp = SLP()
        node = balanced_node(slp, "abababa")
        matcher = CompressedPatternMatcher("aba")
        assert matcher.count(slp, node) == 3  # overlapping!
        assert matcher.contains(slp, node)

    def test_no_match(self):
        slp = SLP()
        node = balanced_node(slp, "aaaa")
        assert CompressedPatternMatcher("b").count(slp, node) == 0

    def test_single_char_pattern(self):
        slp = SLP()
        node = balanced_node(slp, "abcabc")
        assert CompressedPatternMatcher("c").count(slp, node) == 2

    def test_pattern_longer_than_document(self):
        slp = SLP()
        node = balanced_node(slp, "ab")
        assert CompressedPatternMatcher("abc").count(slp, node) == 0

    def test_empty_pattern_rejected(self):
        with pytest.raises(SLPError):
            CompressedPatternMatcher("")

    def test_boundary_crossing_matches(self):
        slp = SLP()
        left = balanced_node(slp, "xxab")
        right = balanced_node(slp, "cdyy")
        node = slp.pair(left, right)
        assert CompressedPatternMatcher("abcd").count(slp, node) == 1

    def test_exponential_document(self):
        """(ab)^(2^40): 2^40 occurrences of 'ab', counted in O(log |D|)."""
        slp = SLP()
        node = power_node(slp, "ab", 40)
        matcher = CompressedPatternMatcher("ab")
        assert matcher.count(slp, node) == 2 ** 40
        # 'ba' occurs at every boundary: 2^40 - 1 times
        assert CompressedPatternMatcher("ba").count(slp, node) == 2 ** 40 - 1

    def test_fibonacci_never_contains_bb(self):
        slp = SLP()
        node = fibonacci_node(slp, 35)
        assert CompressedPatternMatcher("bb").count(slp, node) == 0
        assert CompressedPatternMatcher("aa").count(slp, node) > 0

    @settings(max_examples=50, deadline=None)
    @given(
        st.text(alphabet="ab", min_size=1, max_size=60),
        st.text(alphabet="ab", min_size=1, max_size=4),
    )
    def test_count_property(self, text, pattern):
        slp = SLP()
        node = repair_node(slp, text)
        matcher = CompressedPatternMatcher(pattern)
        assert matcher.count(slp, node) == overlapping_count(text, pattern)


class TestOccurrences:
    def test_positions_in_order(self):
        slp = SLP()
        text = "abaabababa"
        node = balanced_node(slp, text)
        matcher = CompressedPatternMatcher("aba")
        assert list(matcher.occurrences(slp, node)) == overlapping_positions(text, "aba")

    def test_lazy_on_huge_document(self):
        import itertools

        slp = SLP()
        node = power_node(slp, "ab", 40)
        matcher = CompressedPatternMatcher("ab")
        first = list(itertools.islice(matcher.occurrences(slp, node), 4))
        assert first == [0, 2, 4, 6]

    @settings(max_examples=40, deadline=None)
    @given(
        st.text(alphabet="abc", min_size=1, max_size=40),
        st.text(alphabet="abc", min_size=1, max_size=3),
    )
    def test_positions_property(self, text, pattern):
        slp = SLP()
        node = repair_node(slp, text)
        matcher = CompressedPatternMatcher(pattern)
        assert list(matcher.occurrences(slp, node)) == overlapping_positions(
            text, pattern
        )

    def test_shared_matcher_across_documents(self):
        slp = SLP()
        matcher = CompressedPatternMatcher("ab")
        a = balanced_node(slp, "abab")
        b = slp.pair(a, a)
        assert matcher.count(slp, a) == 2
        assert matcher.count(slp, b) == 4
