"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import build_parser, main


class TestEval:
    def test_eval_prints_table(self, capsys):
        assert main(["eval", "!x{(a|b)*}!y{b}!z{(a|b)*}", "ababbab"]) == 0
        out = capsys.readouterr().out
        assert "[1,2⟩" in out and out.count("\n") >= 5

    def test_eval_contents(self, capsys):
        assert main(["eval", "!x{a+}b", "aab", "--contents"]) == 0
        out = capsys.readouterr().out
        assert "aa" in out and "[1,3⟩" not in out

    def test_eval_limit_streams(self, capsys):
        assert main(["eval", "(a|b)*!x{a}(a|b)*", "aaaa", "--limit", "2"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2

    def test_eval_from_file(self, tmp_path, capsys):
        doc = tmp_path / "doc.txt"
        doc.write_text("abab")
        assert main(["eval", "(a|b)*!x{ab}(a|b)*", "--file", str(doc)]) == 0
        assert "[1,3⟩" in capsys.readouterr().out

    def test_missing_document(self):
        with pytest.raises(SystemExit):
            main(["eval", "!x{a}"])

    def test_regex_error_is_reported(self, capsys):
        assert main(["eval", "!x{a", "a"]) == 2
        assert "error" in capsys.readouterr().err


class TestRefl:
    def test_refl_eval(self, capsys):
        assert main(["refl", "!x{(a|b)+}&x", "abab"]) == 0
        assert "[1,3⟩" in capsys.readouterr().out


class TestCompress:
    def test_compress_stats(self, capsys):
        assert main(["compress", "abab" * 64, "--builder", "repair"]) == 0
        out = capsys.readouterr().out
        assert "document length : 256" in out
        assert "slp nodes" in out

    @pytest.mark.parametrize("builder", ["repair", "lz78", "balanced"])
    def test_all_builders(self, builder, capsys):
        assert main(["compress", "abcabc", "--builder", builder]) == 0


class TestCheck:
    def test_match(self, capsys):
        assert main(["check", "!x{a+}!y{b+}", "aab", "x=1:3", "y=3:4"]) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_no_match(self, capsys):
        assert main(["check", "!x{a+}!y{b+}", "aab", "x=1:2", "y=3:4"]) == 1
        assert "NO MATCH" in capsys.readouterr().out

    def test_bad_binding(self):
        with pytest.raises(SystemExit):
            main(["check", "!x{a}", "a", "x=zzz"])


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
