"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestEval:
    def test_eval_prints_table(self, capsys):
        assert main(["eval", "!x{(a|b)*}!y{b}!z{(a|b)*}", "ababbab"]) == 0
        out = capsys.readouterr().out
        assert "[1,2⟩" in out and out.count("\n") >= 5

    def test_eval_contents(self, capsys):
        assert main(["eval", "!x{a+}b", "aab", "--contents"]) == 0
        out = capsys.readouterr().out
        assert "aa" in out and "[1,3⟩" not in out

    def test_eval_limit_streams(self, capsys):
        assert main(["eval", "(a|b)*!x{a}(a|b)*", "aaaa", "--limit", "2"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2

    def test_eval_from_file(self, tmp_path, capsys):
        doc = tmp_path / "doc.txt"
        doc.write_text("abab")
        assert main(["eval", "(a|b)*!x{ab}(a|b)*", "--file", str(doc)]) == 0
        assert "[1,3⟩" in capsys.readouterr().out

    def test_missing_document(self):
        with pytest.raises(SystemExit):
            main(["eval", "!x{a}"])

    def test_regex_error_is_reported(self, capsys):
        assert main(["eval", "!x{a", "a"]) == 2
        assert "error" in capsys.readouterr().err


class TestRefl:
    def test_refl_eval(self, capsys):
        assert main(["refl", "!x{(a|b)+}&x", "abab"]) == 0
        assert "[1,3⟩" in capsys.readouterr().out


class TestCompress:
    def test_compress_stats(self, capsys):
        assert main(["compress", "abab" * 64, "--builder", "repair"]) == 0
        out = capsys.readouterr().out
        assert "document length : 256" in out
        assert "slp nodes" in out

    @pytest.mark.parametrize("builder", ["repair", "lz78", "balanced"])
    def test_all_builders(self, builder, capsys):
        assert main(["compress", "abcabc", "--builder", builder]) == 0


class TestCheck:
    def test_match(self, capsys):
        assert main(["check", "!x{a+}!y{b+}", "aab", "x=1:3", "y=3:4"]) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_no_match(self, capsys):
        assert main(["check", "!x{a+}!y{b+}", "aab", "x=1:2", "y=3:4"]) == 1
        assert "NO MATCH" in capsys.readouterr().out

    def test_bad_binding(self):
        with pytest.raises(SystemExit):
            main(["check", "!x{a}", "a", "x=zzz"])

    # the PR 5 non-ASCII digit corpus, aimed at the span-binding parser:
    # bare int() would accept every one of these and silently mis-parse
    @pytest.mark.parametrize(
        "binding",
        [
            "x=٣:5",      # Arabic-Indic digit
            "x=1:٣",
            "x=²:3",      # superscript (isdigit() but not decimal)
            "x=Ⅷ:9",      # Roman numeral (isnumeric())
            "x=١٢:13",    # multi-char Arabic-Indic
            "x=𝟙:2",      # mathematical double-struck digit
            "x= 1:2",     # int() strips whitespace; the CLI must not
            "x=+1:2",     # int() accepts signs; the CLI must not
        ],
    )
    def test_non_ascii_digit_bindings_rejected(self, binding):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "!x{a+}", "aaaa", binding])
        assert "ASCII digits" in str(excinfo.value)


class TestDb:
    """Round-trip coverage for the persistent `db` subcommand."""

    @pytest.fixture
    def store(self, tmp_path):
        return str(tmp_path / "store.slpdb")

    def test_add_text_ls_roundtrip(self, store, capsys):
        assert main(["db", store, "add", "logs", "error at line three"]) == 0
        assert "added 'logs' (19 chars)" in capsys.readouterr().out
        assert main(["db", store, "text", "logs"]) == 0
        assert capsys.readouterr().out.strip() == "error at line three"
        assert main(["db", store, "ls"]) == 0
        assert capsys.readouterr().out == "logs\t19\n"

    def test_edit_derives_document(self, store, capsys):
        assert main(["db", store, "add", "logs", "abcdef"]) == 0
        assert main(["db", store, "edit", "head", "extract(doc(logs),1,4)"]) == 0
        assert "edited -> 'head' (4 chars)" in capsys.readouterr().out
        assert main(["db", store, "text", "head"]) == 0
        assert capsys.readouterr().out.strip() == "abcd"

    def test_query_streams_tuples(self, store, capsys):
        assert main(["db", store, "add", "d", "aabab"]) == 0
        capsys.readouterr()
        assert main(["db", store, "query", "(a|b)*!x{ab}(a|b)*", "d"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2 and all("x=" in line for line in out)

    def test_state_persists_across_invocations(self, store, capsys):
        assert main(["db", store, "add", "a", "xyz"]) == 0
        assert main(["db", store, "add", "b", "pqr"]) == 0
        capsys.readouterr()
        assert main(["db", store, "ls"]) == 0
        assert capsys.readouterr().out == "a\t3\nb\t3\n"

    def test_save_checkpoints(self, store, capsys):
        assert main(["db", store, "add", "a", "xyz"]) == 0
        assert main(["db", store, "save"]) == 0
        assert f"snapshot written to {store}" in capsys.readouterr().out

    def test_stats_reports_diagnostics(self, store, capsys):
        assert main(["db", store, "add", "logs", "aabb"]) == 0
        capsys.readouterr()
        assert main(["db", store, "stats"]) == 0
        out = capsys.readouterr().out
        assert "documents: 1" in out
        assert "slp_arena_bytes:" in out
        assert "journal_records: 0" in out

    def test_metrics_action_prints_registry(self, store, capsys):
        assert main(["db", store, "add", "d", "aabab"]) == 0
        capsys.readouterr()
        assert main(["db", store, "metrics"]) == 0
        out = capsys.readouterr().out
        # opening the store replays the (empty) journal under observability
        assert "counter   db.recovery.replayed_records = 0" in out

    def test_trace_writes_valid_jsonl(self, store, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        assert main(["db", store, "add", "d", "aabab"]) == 0
        capsys.readouterr()
        assert (
            main(["db", store, "query", "(a|b)*!x{ab}(a|b)*", "d", "--trace", trace]) == 0
        )
        records = [
            json.loads(line)
            for line in open(trace, encoding="utf-8").read().splitlines()
        ]
        assert records, "trace file must contain JSONL records"
        names = {r["name"] for r in records}
        assert {"db.open", "db.query"} <= names
        query_span = next(r for r in records if r["name"] == "db.query")
        assert query_span["attrs"]["tuples"] == 2
        assert all({"type", "name", "t0_ns"} <= r.keys() for r in records)
        # the CLI detaches the sink afterwards: the process is back to off
        from repro import obs

        assert not obs.enabled()

    def test_budget_flag_exits_with_typed_error(self, store, capsys):
        assert main(["db", store, "add", "d", "ab" * 200]) == 0
        capsys.readouterr()
        code = main(
            ["db", store, "query", "(a|b)*!x{ab}(a|b)*", "d", "--max-steps", "1"]
        )
        assert code == 2
        assert "step budget" in capsys.readouterr().err

    def test_bad_operands_exit(self, store):
        with pytest.raises(SystemExit):
            main(["db", store, "add", "only-name"])


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
