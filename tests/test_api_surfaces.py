"""Direct tests for small public API surfaces exercised only indirectly
elsewhere (identified by a coverage sweep of the test corpus)."""

import pytest

from repro.core import (
    Close,
    MarkedWord,
    Open,
    Ref,
    Span,
    SpanTuple,
    marker_sort_key,
    sort_markers,
    symbol_matches,
)
from repro.core.alphabet import canonical_marker_set, char_class
from repro.errors import InvalidMarkedWordError


class TestMarkerOrdering:
    def test_canonical_order_opens_before_closes(self):
        markers = [Close("a"), Open("z"), Close("z"), Open("a")]
        assert sort_markers(markers) == [Open("a"), Open("z"), Close("a"), Close("z")]

    def test_sort_key_shape(self):
        assert marker_sort_key(Open("x")) < marker_sort_key(Close("x"))
        assert marker_sort_key(Open("a")) < marker_sort_key(Open("b"))

    def test_canonical_marker_set_rejects_duplicates(self):
        with pytest.raises(InvalidMarkedWordError):
            canonical_marker_set([Open("x"), Open("x")])
        assert canonical_marker_set([Open("x"), Close("x")]) == frozenset(
            {Open("x"), Close("x")}
        )

    def test_marker_kind_properties(self):
        assert Open("x").is_open and not Open("x").is_close
        assert Close("x").is_close and not Close("x").is_open


class TestSymbolMatches:
    def test_char_symbols(self):
        assert symbol_matches("a", "a")
        assert not symbol_matches("a", "b")
        assert symbol_matches(char_class("ab"), "b")
        assert not symbol_matches(char_class("ab", negated=True), "b")

    def test_markers_and_refs_never_match_chars(self):
        assert not symbol_matches(Open("x"), "x")
        assert not symbol_matches(Ref("x"), "x")


class TestMarkedWordPredicates:
    def test_has_references(self):
        with_ref = MarkedWord([Open("x"), "a", Close("x"), Ref("x")])
        without = MarkedWord([Open("x"), "a", Close("x")])
        assert with_ref.has_references()
        assert not without.has_references()

    def test_is_functional_for(self):
        word = MarkedWord([Open("x"), "a", Close("x")])
        assert word.is_functional_for({"x"})
        assert not word.is_functional_for({"x", "y"})


class TestSpanTupleHelpers:
    def test_as_dict(self):
        tup = SpanTuple.of(x=Span(1, 2), y=Span(3, 4))
        assert tup.as_dict() == {"x": Span(1, 2), "y": Span(3, 4)}

    def test_sort_key_orders_undefined_first(self):
        defined = SpanTuple.of(x=Span(1, 2))
        undefined = SpanTuple.empty()
        assert undefined.sort_key(("x",)) < defined.sort_key(("x",))


class TestConstructors:
    def test_regular_spanner_from_automaton(self):
        from repro.regex import spanner_from_regex
        from repro.spanners import RegularSpanner

        automaton = spanner_from_regex("!x{a}")
        spanner = RegularSpanner.from_automaton(automaton)
        assert spanner.evaluate("a").tuples == frozenset(
            {SpanTuple.of(x=Span(1, 2))}
        )

    def test_core_normal_form_equality_variables(self):
        from repro.spanners import prim

        form = prim("!x{a+}!y{a+}").select_equal({"x", "y"}).simplify()
        assert form.equality_variables() == frozenset().union(*form.groups)


class TestEmissionsAPI:
    def test_enumerate_emissions_positions(self):
        from repro.enumeration import Enumerator
        from repro.regex import spanner_from_regex

        enumerator = Enumerator(spanner_from_regex("!x{ab}"))
        index = enumerator.preprocess("ab")
        emissions = list(enumerator.enumerate_emissions(index))
        assert len(emissions) == 1
        positions = sorted(position for position, _ in emissions[0])
        assert positions == [1, 3]  # open at 1, close at 3

    def test_emissions_to_tuple_drops_dangling_open(self):
        from repro.enumeration import emissions_to_tuple

        tup = emissions_to_tuple([(1, Open("x")), (3, Close("x")), (2, Open("y"))])
        assert tup == SpanTuple.of(x=Span(1, 3))
