#!/usr/bin/env python3
"""The integrated system: a compressed, editable, spanner-indexed store.

This is the full Section 4 workflow of the paper in one object:

1. ingest documents (compressed with Re-Pair, stored strongly balanced);
2. register spanners M1…Mk — their evaluation structures are built once,
   per SLP node, shared across documents;
3. edit documents with CDE expressions — O(log d) per operation, and every
   registered spanner stays queryable without re-preprocessing;
4. query any spanner on any document version, streamed from the
   compressed form.

Run:  python examples/spanner_db.py
"""

from repro import SpannerDB
from repro.slp import Concat, Delete, Doc, Extract, Insert
from repro.util import log_document


def main() -> None:
    db = SpannerDB()

    # --- ingest --------------------------------------------------------
    db.add_document("log_eu", log_document(40, seed=1, codes=(500, 504)))
    db.add_document("log_us", log_document(40, seed=2, codes=(500, 504)))
    print("ingested:", ", ".join(
        f"{name} ({db.document_length(name)} chars)" for name in db.documents()
    ))

    # --- register spanners ----------------------------------------------
    body = r"[^;\n]"
    db.register_spanner(
        "errors",
        f"({body}|;|\n)*ERROR user=!user{{[a-z]+}} code={body}*;({body}|;|\n)*",
    )
    db.register_spanner(
        "codes",
        f"({body}|;|\n)*code=!code{{[0-9]+}}( {body}*)?;({body}|;|\n)*",
    )
    print("registered spanners:", ", ".join(db.spanners()))

    for name in db.documents():
        doc = db.document_text(name)
        users = sorted({t["user"].extract(doc) for t in db.query("errors", name)})
        print(f"    {name}: users with errors = {users}")

    # --- edit: merge the two logs, cut a window, splice ------------------
    fresh = db.edit("merged", Concat(Doc("log_eu"), Doc("log_us")))
    print(f"\nedit 'merged': {fresh} fresh node-matrices across all spanners")
    fresh = db.edit("window", Extract(Doc("merged"), 1, 400))
    print(f"edit 'window': {fresh} fresh node-matrices")
    fresh = db.edit(
        "patched", Insert(Doc("window"), Extract(Doc("log_us"), 1, 40), 100)
    )
    print(f"edit 'patched': {fresh} fresh node-matrices")

    # --- query the edited versions immediately ---------------------------
    doc = db.document_text("patched")
    codes = sorted({t["code"].extract(doc) for t in db.query("codes", "patched")})
    print(f"\ncodes present in 'patched': {codes}")

    stats = db.stats()
    print(
        f"\nstats: {stats['documents']} documents, "
        f"{stats['total_characters']} characters, "
        f"{stats['slp_nodes']} shared SLP nodes, "
        f"matrices cached per spanner: {stats['cached_matrices']}"
    )


if __name__ == "__main__":
    main()
