#!/usr/bin/env python3
"""The integrated system: a compressed, editable, spanner-indexed store.

This is the full Section 4 workflow of the paper in one object:

1. ingest documents (compressed with Re-Pair, stored strongly balanced);
2. register spanners M1…Mk — their evaluation structures are built once,
   per SLP node, shared across documents;
3. edit documents with CDE expressions — O(log d) per operation, and every
   registered spanner stays queryable without re-preprocessing;
4. query any spanner on any document version, streamed from the
   compressed form;
5. persist, crash, and recover: an atomic checksummed snapshot plus an
   append-only edit journal make every committed mutation durable
   (docs/RELIABILITY.md).

Run:  python examples/spanner_db.py
"""

import os
import tempfile

from repro import Budget, SpannerDB
from repro.errors import DeadlineExceededError
from repro.slp import Concat, Delete, Doc, Extract, Insert
from repro.util import log_document, truncate_file


def main() -> None:
    db = SpannerDB()

    # --- ingest --------------------------------------------------------
    db.add_document("log_eu", log_document(40, seed=1, codes=(500, 504)))
    db.add_document("log_us", log_document(40, seed=2, codes=(500, 504)))
    print("ingested:", ", ".join(
        f"{name} ({db.document_length(name)} chars)" for name in db.documents()
    ))

    # --- register spanners ----------------------------------------------
    body = r"[^;\n]"
    db.register_spanner(
        "errors",
        f"({body}|;|\n)*ERROR user=!user{{[a-z]+}} code={body}*;({body}|;|\n)*",
    )
    db.register_spanner(
        "codes",
        f"({body}|;|\n)*code=!code{{[0-9]+}}( {body}*)?;({body}|;|\n)*",
    )
    print("registered spanners:", ", ".join(db.spanners()))

    for name in db.documents():
        doc = db.document_text(name)
        users = sorted({t["user"].extract(doc) for t in db.query("errors", name)})
        print(f"    {name}: users with errors = {users}")

    # --- edit: merge the two logs, cut a window, splice ------------------
    fresh = db.edit("merged", Concat(Doc("log_eu"), Doc("log_us")))
    print(f"\nedit 'merged': {fresh} fresh node-matrices across all spanners")
    fresh = db.edit("window", Extract(Doc("merged"), 1, 400))
    print(f"edit 'window': {fresh} fresh node-matrices")
    fresh = db.edit(
        "patched", Insert(Doc("window"), Extract(Doc("log_us"), 1, 40), 100)
    )
    print(f"edit 'patched': {fresh} fresh node-matrices")

    # --- query the edited versions immediately ---------------------------
    doc = db.document_text("patched")
    codes = sorted({t["code"].extract(doc) for t in db.query("codes", "patched")})
    print(f"\ncodes present in 'patched': {codes}")

    stats = db.stats()
    print(
        f"\nstats: {stats['documents']} documents, "
        f"{stats['total_characters']} characters, "
        f"{stats['slp_nodes']} shared SLP nodes, "
        f"matrices cached per spanner: {stats['cached_matrices']}"
    )

    # --- transactions: all-or-nothing batches ----------------------------
    try:
        with db.transaction():
            db.edit("tmp1", Delete(Doc("merged"), 1, 100))
            db.edit("tmp2", Doc("no such document"))  # fails -> rollback
    except Exception as exc:
        print(f"\ntransaction rolled back cleanly: {type(exc).__name__}")
    print(f"tmp1 discarded with the batch: {'tmp1' not in db.documents()}")

    # --- governance: a budget terminates pathological workloads ----------
    db.edit("x0", Concat(Doc("merged"), Doc("merged")))
    for index in range(30):  # ~10^9 x the original length, still O(log) nodes
        db.edit(f"x{index + 1}", Concat(Doc(f"x{index}"), Doc(f"x{index}")))
    print(f"\n'x30' is now {db.document_length('x30'):,} chars")
    try:
        for _ in db.query("codes", "x30", Budget(deadline=0.3)):
            pass
    except DeadlineExceededError as exc:
        print(f"budgeted query stopped cleanly: {exc}")

    # --- crash-safe persistence ------------------------------------------
    demo_crash_recovery()


def demo_crash_recovery() -> None:
    """Save, mutate, 'crash', and recover the committed state."""
    print("\n--- crash recovery ---")
    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "store.slpdb")

        db = SpannerDB()
        db.add_document("config", "mode=fast; retries=3")
        db.save(path)  # atomic checksummed snapshot; journal attached

        db.add_document("audit", "login ok; login fail")  # journaled, durable
        db.edit("audit_head", Extract(Doc("audit"), 1, 8))  # journaled too
        del db  # the process "crashes": no final save

        recovered = SpannerDB.open(path)  # snapshot + journal replay
        print("recovered documents:", recovered.documents())
        print("audit_head =", recovered.document_text("audit_head"))

        # harsher: a crash tears the last journal append mid-write(2)
        recovered.add_document("inflight", "half written")
        journal = path + ".journal"
        truncate_file(journal, keep_bytes=os.path.getsize(journal) - 5)
        recovered = SpannerDB.open(path)  # the torn batch is dropped whole
        print("after a torn journal tail:", recovered.documents())


if __name__ == "__main__":
    main()
