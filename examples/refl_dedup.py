#!/usr/bin/env python3
"""Refl-spanners: repeated-content detection with references
(paper Section 3).

1. reproduce the Section 3.1 dereferencing chain (nested references);
2. use a refl-spanner to find duplicated phrases in a document —
   the string-equality workload that motivates going beyond regular
   spanners — and compare with the equivalent core spanner;
3. translate the refl-spanner to a core spanner (Section 3.2) and back
   for the non-overlapping concatenation fragment.

Run:  python examples/refl_dedup.py
"""

from repro import ReflSpanner, core_to_refl_concat, prim
from repro.core import Close, MarkedWord, Open, Ref


def section_3_1_derivation() -> None:
    """w := x▷aa y▷bbb◁x cc x ◁y abc y  ⇝*  aabbbccaabbbabcbbbccaabbb."""
    w = MarkedWord([
        Open("x"), "a", "a", Open("y"), "b", "b", "b", Close("x"),
        "c", "c", Ref("x"), Close("y"), "a", "b", "c", Ref("y"),
    ])
    print("ref-word      w =", w)
    derefd = w.deref()
    print("d(w)            =", derefd)
    doc = derefd.erase()
    tup = derefd.span_tuple()
    print("document        =", doc)
    assert doc == "aabbbccaabbbabcbbbccaabbb"  # the paper's result
    print("extracted spans =", tup, "->", tup.contents(doc))


def duplicated_phrases() -> None:
    # a document with a duplicated phrase, separator-structured
    doc = "abba;cab;abba;bc"
    # refl: some factor x recurs later, right after a separator (&x)
    refl = ReflSpanner.from_regex(
        "([abc]|;)*!x{[abc]+};([abc]|;)*!y{&x}([abc]|;)*"
    )
    print(f"\nduplicate factors in {doc!r} (refl-spanner with &x):")
    relation = refl.evaluate(doc)
    longest = {}
    for tup in relation:
        content = tup["x"].extract(doc)
        longest.setdefault(content, (tup["x"], tup["y"]))
    for content, (x, y) in sorted(longest.items(), key=lambda kv: -len(kv[0]))[:5]:
        print(f"    {content!r} at {x} and again at {y}")

    # the same task as a core spanner: ς={x,y} over a regular spanner
    core = (
        prim("([abc]|;)*!x{[abc]+};([abc]|;)*!y{[abc]+}([abc]|;)*")
        .select_equal({"x", "y"})
    )
    assert core.evaluate(doc) == relation
    print("    (core spanner with ς=_{x,y} agrees)")


def translations() -> None:
    # refl -> core (Section 3.2): reference-bounded spanners are core
    refl = ReflSpanner.from_regex("!x{(a|b)+}c!y{&x}")
    core = refl.to_core()
    doc = "abcab"
    print(f"\nrefl->core on {doc!r}:")
    print("    refl:", [str(t) for t in refl.evaluate(doc)])
    print("    core:", [str(t) for t in core.evaluate(doc)])
    assert refl.evaluate(doc) == core.evaluate(doc)

    # core -> refl for the non-overlapping concat fragment: the paper's
    # β example, where the leader's content language is intersected
    beta = "ab*!x{a(a|b)*}(b|c)*!y{(a|b)*b}b*"
    back = core_to_refl_concat(beta, {"x", "y"})
    core_beta = prim(beta).select_equal({"x", "y"})
    probe = "aabcabb"  # a · x{ab} · c · y{ab} · b
    print(f"\ncore->refl on the paper's β, document {probe!r}:")
    print("    core:", [str(t) for t in core_beta.evaluate(probe)])
    print("    refl:", [str(t) for t in back.evaluate(probe)])
    assert core_beta.evaluate(probe) == back.evaluate(probe)

    # an unbounded-reference refl-spanner (provably NOT a core spanner)
    unbounded = ReflSpanner.from_regex("a+!x{b+}(a+&x)*a+")
    print(
        "\na+ x{b+} (a+ &x)* a+  reference-bounded?",
        unbounded.is_reference_bounded(),
        "(so it has no core equivalent, [9, Thm 6.1])",
    )


def main() -> None:
    section_3_1_derivation()
    duplicated_phrases()
    translations()


if __name__ == "__main__":
    main()
