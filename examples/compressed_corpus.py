#!/usr/bin/env python3
"""An SLP-compressed document database with editing and querying
(paper Section 4, reproducing Figure 1 along the way).

1. rebuild the paper's Figure 1 SLP and its document database;
2. balance it, then apply complex document editing (Section 4.3):
   concat, extract, insert — in O(log d) per operation;
3. run a regular spanner over the compressed documents *without
   decompressing* ([39]), including a document of length 2^24;
4. check compressed NFA membership on the same documents (Section 4.2).

Run:  python examples/compressed_corpus.py
"""

from repro import spanner_from_regex
from repro.regex import compile_nfa
from repro.slp import (
    CompressedMembership,
    Concat,
    Doc,
    DocumentDatabase,
    Editor,
    Extract,
    Insert,
    SLPSpannerEvaluator,
    figure_1_database,
    power_node,
    rebalance,
)


def main() -> None:
    # --- Figure 1, exactly --------------------------------------------------
    db, nodes = figure_1_database()
    slp = db.slp
    print("the Figure 1 document database:")
    for name in db.names():
        node = db.node(name)
        print(
            f"    {name} -> {db.document(name)!r}   "
            f"ord={slp.order(node)}, bal={slp.bal(node)}"
        )
    print(f"    |S| = {db.size()} nodes for "
          f"{sum(len(db.document(n)) for n in db.names())} characters")

    # --- balance, then edit (Section 4.3) -----------------------------------
    for name in db.names():
        db._docs[name] = rebalance(slp, db.node(name))
    editor = Editor(db)
    # the grey extension of Figure 1: D4 = D2 · D1
    editor.apply("D4", Concat(Doc("D2"), Doc("D1")))
    print(f"\nafter CDE concat:  D4 = {db.document('D4')!r}")
    # a compound edit: insert characters 4..6 of D2 at position 3 of D3
    editor.apply("D5", Insert(Doc("D3"), Extract(Doc("D2"), 4, 6), 3))
    print(f"after CDE insert:  D5 = {db.document('D5')!r}")

    # --- spanner evaluation without decompression ([39]) --------------------
    spanner = spanner_from_regex("(a|b|c)*!x{bca}(a|b|c)*")
    evaluator = SLPSpannerEvaluator(spanner)
    print("\noccurrences of 'bca' per document (evaluated on the SLP):")
    for name in db.names():
        relation = evaluator.evaluate(slp, db.node(name))
        spans = sorted(t["x"] for t in relation)
        print(f"    {name}: {[str(s) for s in spans]}")

    # --- the same machinery scales to astronomically compressed inputs ------
    big = power_node(slp, "abbca", 22)  # document of length 5 · 2^22
    big_db_entry = db.add_node("BIG", big)
    print(
        f"\nBIG = (abbca)^(2^22): length {slp.length(big):,}, "
        f"only {slp.size(big)} SLP nodes"
    )
    print("    spanner nonempty on BIG:", evaluator.is_nonempty(slp, big))
    import itertools

    first = list(itertools.islice(evaluator.enumerate(slp, big), 3))
    print("    first 3 tuples:", [str(t) for t in first])

    # --- compressed membership (Section 4.2) --------------------------------
    oracle = CompressedMembership(compile_nfa("(abbca)*"))
    print("\ncompressed membership D(BIG) ∈ L((abbca)*):",
          oracle.accepts(slp, big))
    print("compressed membership D(D4) ∈ L((abbca)*):",
          oracle.accepts(slp, db.node("D4")))


if __name__ == "__main__":
    main()
