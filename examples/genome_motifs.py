#!/usr/bin/env python3
"""Motif analysis on a compressed genome — the bio-sequence workload the
paper's Section 4 motivates ("bio-sequences ... contain many redundancies").

1. generate a DNA-like sequence with a recurring motif and compress it
   into an SLP (Re-Pair);
2. count motif occurrences directly on the SLP (compressed pattern
   matching, footnote 5 of the paper);
3. run a spanner over the compressed sequence to extract each motif
   occurrence *with its flanking context* — no decompression;
4. verify both against the uncompressed baselines.

Run:  python examples/genome_motifs.py
"""

from repro import spanner_from_regex
from repro.enumeration import Enumerator
from repro.slp import SLP, CompressedPatternMatcher, SLPSpannerEvaluator, repair_node
from repro.util import gene_sequence

MOTIF = "ACGTGACT"


def main() -> None:
    genome = gene_sequence(6000, seed=42, motif=MOTIF)
    slp = SLP()
    node = repair_node(slp, genome)
    print(f"genome: {len(genome)} bases, SLP size |S| = {slp.size(node)} nodes "
          f"(ratio {slp.size(node) / len(genome):.3f})")

    # --- compressed pattern counting ---------------------------------------
    matcher = CompressedPatternMatcher(MOTIF)
    count = matcher.count(slp, node)
    baseline = sum(
        1 for i in range(len(genome) - len(MOTIF) + 1)
        if genome.startswith(MOTIF, i)
    )
    print(f"\nmotif {MOTIF!r}: {count} occurrences (compressed count)")
    assert count == baseline
    positions = list(matcher.occurrences(slp, node))[:5]
    print(f"first occurrences at offsets {positions}")

    # --- spanner extraction on the SLP --------------------------------------
    # capture the motif plus three bases of right context
    base = "(A|C|G|T)"
    spanner = spanner_from_regex(
        f"{base}*!site{{{MOTIF}{base}{{3}}}}{base}*"
    )
    evaluator = SLPSpannerEvaluator(spanner)
    relation = evaluator.evaluate(slp, node)
    print(f"\nspanner found {len(relation)} motif+context sites on the SLP")
    for tup in relation.sorted()[:5]:
        span = tup["site"]
        print(f"    {span}: {span.extract(genome)}")

    # cross-check against the uncompressed enumeration pipeline
    assert relation == Enumerator(spanner).evaluate(genome)
    print("\nmatches the uncompressed pipeline ✓")


if __name__ == "__main__":
    main()
