#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Reproduces Example 1.1 of Schmid & Schweikardt (PODS 2022): the spanner

    α := x▷(a|b)*◁x · y▷b◁y · z▷(a|b)*◁z

written in spanlib's regex syntax as ``!x{(a|b)*}!y{b}!z{(a|b)*}``,
evaluated on the document ``ababbab``.  Shows evaluation, the table of
Example 1.1, streaming enumeration, model checking, and the subword-marked
words of L_ababbab (Section 2.1).

Run:  python examples/quickstart.py
"""

from repro import RegularSpanner, Span, SpanTuple, mark_document


def main() -> None:
    # --- compile the spanner regex into a regular spanner -----------------
    spanner = RegularSpanner.from_regex("!x{(a|b)*}!y{b}!z{(a|b)*}")
    doc = "ababbab"

    # --- evaluate: the table of Example 1.1 -------------------------------
    relation = spanner.evaluate(doc)
    print(f"S({doc!r}) — the span relation of Example 1.1:\n")
    print(relation.to_table())

    # --- the same relation as subword-marked words (Section 2.1) ----------
    print("\nAs the subword-marked language L_ababbab:")
    for tup in relation:
        print("   ", mark_document(doc, tup))

    # --- streaming enumeration (Section 2.5) ------------------------------
    # Linear preprocessing, constant delay: tuples arrive one by one.
    print("\nStreaming enumeration:")
    for index, tup in enumerate(spanner.enumerate(doc)):
        print(f"    tuple {index}: {tup}")

    # --- model checking (Section 2.4) --------------------------------------
    row = SpanTuple.of(x=Span(1, 4), y=Span(4, 5), z=Span(5, 8))
    bad = SpanTuple.of(x=Span(1, 3), y=Span(3, 4), z=Span(4, 8))
    print(f"\nModelChecking {row}: {spanner.model_check(doc, row)}")
    print(f"ModelChecking {bad}: {spanner.model_check(doc, bad)}")

    # --- spans extract factors ---------------------------------------------
    first = relation.sorted()[0]
    print("\nExtracted contents of the first row:", first.contents(doc))


if __name__ == "__main__":
    main()
