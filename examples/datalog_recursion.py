#!/usr/bin/env python3
"""Spanner-datalog: recursion over regular spanner atoms.

The survey (Section 1) cites Peterfreund, ten Cate, Fagin & Kimelfeld [33]:
datalog over regular spanners covers the whole class of core spanners.
This example shows both halves of that story:

1. recursion for its own sake — a transitive "reachable by chained tokens"
   relation that no single regular (or even core) spanner expresses as
   naturally;
2. the coverage argument, executably — the string-equality relation StrEq
   defined by recursion over regular atoms, used to simulate ς=_{x,y} and
   cross-checked against the core-spanner evaluator.

Run:  python examples/datalog_recursion.py
"""

from repro import prim, spanner_from_regex
from repro.datalog import Atom, Program, Rule, select_equal_program


def chained_tokens() -> None:
    # Adj(x, y): x and y are consecutive lowercase tokens (dot-separated)
    doc = "ab.cd.ef.gh"
    # token boundaries are anchored: x starts after a dot (or the document
    # start) and y ends before a dot (or the document end)
    adjacency = spanner_from_regex(
        "(([a-z]|\\.)*\\.)?!x{[a-z]+}\\.!y{[a-z]+}(\\.([a-z]|\\.)*)?"
    )
    program = Program(
        edb={"Adj": (adjacency, ("x", "y"))},
        rules=[
            Rule(Atom("Reach", ("x", "y")), (Atom("Adj", ("x", "y")),)),
            Rule(
                Atom("Reach", ("x", "z")),
                (Atom("Adj", ("x", "y")), Atom("Reach", ("y", "z"))),
            ),
        ],
    )
    print(f"token reachability in {doc!r} (datalog recursion):")
    for x, y in sorted(program.query(doc, "Reach")):
        print(f"    {x.extract(doc)!r} ->* {y.extract(doc)!r}")


def simulate_string_equality() -> None:
    pattern = "(a|b)*!x{(a|b)+}(a|b)*!y{(a|b)+}(a|b)*"
    doc = "abab"
    program = select_equal_program(spanner_from_regex(pattern), "x", "y", "ab")
    datalog_pairs = program.query(doc, "Answer")
    core_relation = prim(pattern).select_equal({"x", "y"}).evaluate(doc)
    print(f"\nς=_(x,y) simulated by recursive StrEq on {doc!r}:")
    for x, y in sorted(datalog_pairs):
        print(f"    x={x} y={y}   ({x.extract(doc)!r} == {y.extract(doc)!r})")
    assert {(t["x"], t["y"]) for t in core_relation} == set(datalog_pairs)
    print("    matches the core-spanner evaluator ✓")


def main() -> None:
    chained_tokens()
    simulate_string_equality()


if __name__ == "__main__":
    main()
