#!/usr/bin/env python3
"""Information extraction from server logs — the AQL/SystemT-style workload.

Document spanners were introduced to formalise IBM SystemT's query language
AQL (paper Section 1).  This example runs that style of pipeline on a
synthetic log file:

1. primitive regex-formula spanners extract levels, users, and codes;
2. the relational algebra (join, projection) combines them per record;
3. a string-equality selection finds users that appear with the *same*
   error code in two different records — a genuinely non-regular query
   (a core spanner).

Run:  python examples/log_extraction.py
"""

from repro import RegularSpanner, prim
from repro.util import log_document

#: characters that may appear inside a log record (everything except
#: the record separator ';' and newline)
BODY = r"[^;\n]"


def record_spanner() -> RegularSpanner:
    """One spanner per record: level, user, and code of the same record.

    The captures are anchored inside a single ``…;``-terminated record, so
    joining them happens at construction time (one automaton), the way a
    regex-formula in an AQL extract statement would.
    """
    # note the anchors around each capture: the character *after* a capture
    # must not extend it, otherwise the spanner also reports every prefix
    # (spanners return ALL matches, not the leftmost-longest one).
    return RegularSpanner.from_regex(
        f"({BODY}|;|\n)*"
        f"!level{{INFO|WARN|ERROR}}"
        f" user=!user{{[a-z]+}}"
        f" code=!code{{[0-9]+}}"
        f"( {BODY}*)?;"
        f"({BODY}|;|\n)*"
    )


def main() -> None:
    # a narrow code range forces repeated (user, code) pairs
    doc = log_document(lines=30, seed=7, codes=(500, 504))
    print("input log (first 5 lines):")
    for line in doc.splitlines()[:5]:
        print("   ", line)

    # --- primitive extraction ---------------------------------------------
    records = record_spanner()
    relation = records.evaluate(doc)
    print(f"\nextracted {len(relation)} (level, user, code) records")
    for tup in relation.sorted()[:5]:
        print("   ", tup.contents(doc))

    # --- algebra: who ever logged an ERROR? (projection) -------------------
    errors = RegularSpanner.from_regex(
        f"({BODY}|;|\n)*ERROR user=!user{{[a-z]+}} code={BODY}*;({BODY}|;|\n)*"
    )
    error_users = errors.evaluate(doc).project({"user"})
    print("\nusers with at least one ERROR record:")
    print("   ", sorted({t['user'].extract(doc) for t in error_users}))

    # --- core spanner: same user, same code, two records --------------------
    # two independent record extractions, joined by nothing (cross product),
    # then string-equality on the user *and* the code columns.
    left = prim(records.rename({"level": "l1", "user": "u1", "code": "c1"}))
    right = prim(records.rename({"level": "l2", "user": "u2", "code": "c2"}))
    same_user_same_code = (
        left.join(right)
        .select_equal({"u1", "u2"})
        .select_equal({"c1", "c2"})
        .project({"u1", "c1", "u2", "c2"})
    )
    result = same_user_same_code.evaluate(doc)
    pairs = {
        (t["u1"].extract(doc), t["c1"].extract(doc))
        for t in result
        if t["u1"] != t["u2"]  # two *different* occurrences
    }
    print("\n(user, code) pairs occurring in two different records:")
    for user, code in sorted(pairs):
        print(f"    {user}: {code}")


if __name__ == "__main__":
    main()
