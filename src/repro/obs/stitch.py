"""Trace stitching: merge per-process JSONL files into one ordered tree.

A multi-process run leaves one trace file per process — the parent's sink
plus one ``<sink>.w<pid>.jsonl`` per pool worker.  Span ids are only
unique *within* a process, so a record's identity here is the pair
``(proc, id)``; cross-process edges use the ``parent`` + ``parent_proc``
fields stamped by :class:`~repro.obs.trace.Tracer` when a
:class:`~repro.obs.context.TraceContext` is active (see that module for
the schema).  Because workers adopt the parent's clock epoch
(:meth:`Tracer.set_epoch`), ``t0_ns`` values are directly comparable
across files and siblings can be ordered by start time.

Used by the ``python -m repro obs stitch`` CLI action and by tests;
tolerates the mess real trace files accumulate — unparseable lines,
events without ids, parents that died before emitting (orphans become
roots, annotated as such by :func:`render_tree`).
"""

from __future__ import annotations

import json
from typing import Iterable

__all__ = ["load_records", "stitch", "render_tree"]

_MAIN = "main"


def load_records(paths: Iterable[str]) -> list[dict]:
    """Parse JSONL trace files, skipping blank and malformed lines."""
    records: list[dict] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    return records


def _key(record: dict) -> tuple[str, int] | None:
    """A record's process-qualified identity, or None for id-less events."""
    span_id = record.get("id")
    if span_id is None:
        return None
    return (record.get("proc", _MAIN), span_id)


def _parent_key(record: dict) -> tuple[str, int] | None:
    parent = record.get("parent")
    if parent is None:
        return None
    # parent_proc marks a cross-process edge; otherwise the parent lives
    # in the same process as the record itself.
    return (record.get("parent_proc", record.get("proc", _MAIN)), parent)


def stitch(records: list[dict], trace: str | None = None) -> list[dict]:
    """Assemble *records* into trees of nodes, ordered by start time.

    Each node is ``{"record": <record>, "children": [...], "orphan": bool}``;
    the returned list holds the roots.  *trace* filters to one trace id;
    records with no ``trace`` field are kept only when no filter is given.
    An *orphan* is a record whose parent never emitted (e.g. the parent
    span was open in a worker that was SIGKILLed) — it is promoted to a
    root so its subtree is still rendered.
    """
    if trace is not None:
        records = [r for r in records if r.get("trace") == trace]
    nodes = {}
    for record in records:
        node = {"record": record, "children": [], "orphan": False}
        key = _key(record)
        if key is not None:
            # last writer wins on duplicate ids (e.g. a re-ingested copy
            # of a harvested span alongside the worker's own sink line)
            nodes[key] = node
        else:
            nodes[(record.get("proc", _MAIN), "event", id(record))] = node
    roots: list[dict] = []
    for node in nodes.values():
        parent_key = _parent_key(node["record"])
        if parent_key is None:
            roots.append(node)
            continue
        parent = nodes.get(parent_key)
        if parent is None or parent is node:
            node["orphan"] = True
            roots.append(node)
        else:
            parent["children"].append(node)

    def start(node: dict) -> int:
        return node["record"].get("t0_ns", 0)

    def sort(siblings: list[dict]) -> None:
        siblings.sort(key=start)
        for node in siblings:
            sort(node["children"])

    sort(roots)
    return roots


def _describe(record: dict) -> str:
    kind = record.get("type", "?")
    name = record.get("name", "?")
    proc = record.get("proc", _MAIN)
    t0 = record.get("t0_ns", 0)
    if kind == "span":
        detail = f"dur={record.get('dur_ns', 0)}ns"
        error = record.get("error")
        if error:
            detail += f" error={error}"
    else:
        detail = "event"
    attrs = record.get("attrs") or {}
    if attrs:
        body = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        detail += f" [{body}]"
    return f"{name} ({proc}) t0={t0}ns {detail}"


def render_tree(roots: list[dict], indent: str = "  ") -> str:
    """Human-readable indented rendering of :func:`stitch` output."""
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        marker = "~ " if node["orphan"] else ""
        lines.append(f"{indent * depth}{marker}{_describe(node['record'])}")
        for child in node["children"]:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
