"""Delay profiling: histogram-backed per-item latency for iterators.

The constant-delay claims of the paper (Section 2.5: delay independent of
``|D|``; Section 4.2: ``O(log |D|)`` delay on compressed documents) are
claims about the gap between *consecutive outputs*.  :class:`DelayProfiler`
measures exactly that: it drains (or wraps) an iterator, records the
nanoseconds spent producing each item into a
:class:`~repro.obs.metrics.Histogram`, and answers percentile queries —
replacing the ad-hoc wall-clock sampling the benchmarks used to hand-roll.

All timing uses :func:`time.perf_counter_ns`.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator

from repro.obs.metrics import Histogram

__all__ = ["DelayProfiler"]


class DelayProfiler:
    """Record per-item production delays of an iterator.

    Parameters
    ----------
    histogram:
        Record into this histogram (e.g. one from a shared
        :class:`~repro.obs.metrics.Metrics` registry); a private one is
        created when omitted.
    keep_samples:
        Also keep the raw per-item delays (ns, in order) in
        :attr:`samples_ns` — needed when the caller wants exact
        medians/tails rather than bucketed percentiles.
    """

    __slots__ = ("histogram", "samples_ns")

    def __init__(self, histogram: Histogram | None = None, keep_samples: bool = False) -> None:
        self.histogram = histogram if histogram is not None else Histogram()
        self.samples_ns: list[int] | None = [] if keep_samples else None

    # ------------------------------------------------------------------
    def wrap(self, iterator: Iterable) -> Iterator:
        """Yield items from *iterator*, recording each production delay.

        The clock restarts after every ``yield``, so time spent in the
        *consumer* is excluded — this measures the producer's delay, which
        is what the enumeration bounds are about.

        The loop body updates the histogram's ``counts``/``total`` slots
        directly through hoisted locals: the instrumented path must stay
        well under the <5% overhead target on microsecond-delay streams.
        """
        hist = self.histogram
        counts = hist.counts
        samples = self.samples_ns
        clock = time.perf_counter_ns
        advance = iter(iterator).__next__
        while True:
            last = clock()
            try:
                item = advance()
            except StopIteration:
                return
            delay = clock() - last
            counts[delay.bit_length()] += 1
            hist.total += delay
            if samples is not None:
                samples.append(delay)
            yield item

    def drain(self, iterator: Iterable) -> list:
        """Consume *iterator* entirely; return the items as a list."""
        items = []
        append = items.append
        hist = self.histogram
        counts = hist.counts
        samples = self.samples_ns
        clock = time.perf_counter_ns
        last = clock()
        for item in iterator:
            delay = clock() - last
            counts[delay.bit_length()] += 1
            hist.total += delay
            if samples is not None:
                samples.append(delay)
            append(item)
            last = clock()
        return items

    # ------------------------------------------------------------------
    def percentile(self, p: float) -> float:
        """Bucketed percentile in nanoseconds (see Histogram.percentile)."""
        return self.histogram.percentile(p)

    def report(self) -> dict:
        """Summary row: count plus p50/p90/p99 delay in nanoseconds."""
        return self.histogram.snapshot()
