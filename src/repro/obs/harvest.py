"""Worker-side telemetry harvest: metrics deltas for the parent to merge.

A pool worker owns a process-local :class:`~repro.obs.metrics.Metrics`
registry that would vanish on checkin or SIGKILL.  :class:`HarvestState`
turns it into a stream of *deltas*: after each task the worker calls
:meth:`HarvestState.collect`, which diffs the registry against the
baseline captured at the previous harvest and returns only what changed —
small enough to piggyback on every task-result message over the existing
duplex pipe (no new transport, no extra syscalls).

The delta wire format (plain dicts/ints, picklable and JSON-able)::

    {"counters":   {name: increment},
     "gauges":     {name: value},                  # point-in-time, all sent
     "histograms": {name: {"counts": {bucket_index: increment},
                           "sum": total_increment}}}

The parent folds deltas in with :meth:`repro.obs.metrics.Metrics.merge`.
Because counters and power-of-two histogram buckets are pure sums, the
round trip ``collect → merge`` is *exact*: the parent's totals equal what
a single-process run would have recorded (property-tested in
``tests/test_obs_cross_process.py``).

If the worker's registry was reset (or an instrument disappeared) the
current value can be *below* the baseline; the harvester then treats the
full current value as the delta rather than sending a negative — losing
nothing, at worst double-counting a window that a reset already discarded
on purpose.
"""

from __future__ import annotations

from repro.obs.metrics import Metrics

__all__ = ["HarvestState"]


class HarvestState:
    """Baseline tracker producing per-harvest metric deltas.

    One instance lives in each pool worker for the lifetime of the
    process; it is not thread-safe (workers are single-threaded)."""

    __slots__ = ("_counters", "_hist_counts", "_hist_totals")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._hist_counts: dict[str, list[int]] = {}
        self._hist_totals: dict[str, int] = {}

    def collect(self, registry: Metrics) -> dict | None:
        """Diff *registry* against the last harvest's baseline.

        Returns the delta dict described in the module docstring, or
        ``None`` when nothing changed since the previous call (the common
        case for metrics-quiet tasks — the pool then skips shipping an
        empty payload)."""
        delta_counters: dict[str, int] = {}
        for name, counter in registry._counters.items():
            value = counter.value
            base = self._counters.get(name, 0)
            if value < base:  # registry was reset mid-flight
                base = 0
            if value != base:
                delta_counters[name] = value - base
            self._counters[name] = value

        gauges = {name: g.value for name, g in registry._gauges.items()}

        delta_hists: dict[str, dict] = {}
        for name, hist in registry._histograms.items():
            counts = hist.counts
            base_counts = self._hist_counts.get(name)
            base_total = self._hist_totals.get(name, 0)
            if base_counts is None or hist.total < base_total:
                base_counts, base_total = None, 0
            bucket_deltas = {
                i: c - (base_counts[i] if base_counts is not None else 0)
                for i, c in enumerate(counts)
                if c != (base_counts[i] if base_counts is not None else 0)
            }
            if bucket_deltas:
                delta_hists[name] = {
                    "counts": bucket_deltas,
                    "sum": hist.total - base_total,
                }
            self._hist_counts[name] = list(counts)
            self._hist_totals[name] = hist.total

        if not delta_counters and not gauges and not delta_hists:
            return None
        return {
            "counters": delta_counters,
            "gauges": gauges,
            "histograms": delta_hists,
        }
