"""Prometheus text exposition for the global metrics registry.

:func:`export_prometheus` renders a :class:`~repro.obs.metrics.Metrics`
registry in the Prometheus text format (version 0.0.4): counters and
gauges as single samples, power-of-two histograms as the conventional
cumulative ``_bucket{le="..."}`` series plus ``_sum`` and ``_count``.

Name handling:

* metric names are sanitised to ``[a-zA-Z0-9_:]`` (dots become
  underscores, so ``parallel.proc.tasks`` exports as
  ``parallel_proc_tasks``);
* a ``{k="v",...}`` suffix produced by
  :func:`repro.obs.metrics.qualify` (how :meth:`Metrics.merge` keys
  per-worker gauges) is split back out into Prometheus labels.

Histogram ``le`` bounds are the buckets' upper edges ``2^i`` — exact
powers of two rather than the usual decimal ladder, which keeps the
export lossless with respect to what the registry actually stores.
"""

from __future__ import annotations

import re

from repro.obs.metrics import Metrics

__all__ = ["export_prometheus"]

_NAME_SANITISE = re.compile(r"[^a-zA-Z0-9_:]")
_LABELLED = re.compile(r"^(?P<name>[^{]+)\{(?P<labels>.*)\}$")


def _split(qualified: str) -> tuple[str, str]:
    """``'x{worker="3"}'`` → ``('x', 'worker="3"')``; plain names pass
    through with an empty label body."""
    match = _LABELLED.match(qualified)
    if match is None:
        return qualified, ""
    return match.group("name"), match.group("labels")


def _sanitise(name: str) -> str:
    return _NAME_SANITISE.sub("_", name)


def _sample(name: str, labels: str, value) -> str:
    if labels:
        return f"{name}{{{labels}}} {value}"
    return f"{name} {value}"


def export_prometheus(registry: Metrics | None = None) -> str:
    """The registry (default: the global one) as Prometheus text format."""
    if registry is None:
        from repro import obs

        registry = obs.metrics()
    snapshot_counters = {k: c.value for k, c in sorted(registry._counters.items())}
    snapshot_gauges = {k: g.value for k, g in sorted(registry._gauges.items())}
    histograms = dict(sorted(registry._histograms.items()))

    lines: list[str] = []
    for qualified, value in snapshot_counters.items():
        raw, labels = _split(qualified)
        name = _sanitise(raw) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(_sample(name, labels, value))
    for qualified, value in snapshot_gauges.items():
        raw, labels = _split(qualified)
        name = _sanitise(raw)
        lines.append(f"# TYPE {name} gauge")
        lines.append(_sample(name, labels, value))
    for qualified, hist in histograms.items():
        raw, labels = _split(qualified)
        name = _sanitise(raw)
        lines.append(f"# TYPE {name} histogram")
        prefix = f"{labels}," if labels else ""
        cumulative = 0
        for i, bucket in enumerate(hist.counts):
            if not bucket:
                continue
            cumulative += bucket
            upper = 0 if i == 0 else 1 << i
            lines.append(f'{name}_bucket{{{prefix}le="{upper}"}} {cumulative}')
        lines.append(f'{name}_bucket{{{prefix}le="+Inf"}} {hist.count}')
        lines.append(_sample(name + "_sum", labels, hist.total))
        lines.append(_sample(name + "_count", labels, hist.count))
    return "\n".join(lines) + "\n" if lines else ""
