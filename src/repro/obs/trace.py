"""Tracing: nestable spans on the monotonic clock, exported as JSONL.

A :class:`Tracer` produces *span* records (name, start, duration, nested
parent, free-form attributes) and *event* records (a point in time).  All
timestamps come from :func:`time.perf_counter_ns` relative to the tracer's
construction instant — never the wall clock — so traces are immune to NTP
steps and are meaningful to diff.

Cost model:

* **disabled** (the default): :meth:`Tracer.span` returns a shared no-op
  context manager without allocating — one ``if`` and one attribute read;
* **enabled**: entering/exiting a span is two clock reads, one small dict,
  and (with a sink) one ``json.dumps`` + ``write``.

Record schema (one JSON object per line)::

    {"type": "span",  "name": str, "id": int, "parent": int | null,
     "t0_ns": int, "dur_ns": int, "attrs": {...}, "error": str | null}
    {"type": "event", "name": str, "parent": int | null,
     "t0_ns": int, "attrs": {...}}

Thread-safety: the span stack is *per-thread* (thread-local), so spans
opened by concurrent :mod:`repro.serve` workers nest correctly within
their own thread and never adopt another thread's span as parent.  Record
emission (ring append / sink write) and id allocation are serialised by a
small lock, so JSONL lines never interleave mid-line; the lock is only
ever touched when tracing is enabled.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO

__all__ = ["Tracer"]


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """An open span; created by :meth:`Tracer.span`, closed by ``with``."""

    __slots__ = ("_tracer", "name", "attrs", "id", "parent", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.id = tracer._next_id()
        self.parent: int | None = None
        self._t0 = 0

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack
        self.parent = stack[-1].id if stack else None
        stack.append(self)
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter_ns() - self._t0
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        tracer._emit(
            {
                "type": "span",
                "name": self.name,
                "id": self.id,
                "parent": self.parent,
                "t0_ns": self._t0 - tracer._epoch,
                "dur_ns": dur,
                "attrs": self.attrs,
                "error": exc_type.__name__ if exc_type is not None else None,
            }
        )
        return False


class Tracer:
    """Span/event recorder with a JSONL sink or an in-memory ring.

    Parameters
    ----------
    enabled:
        When false (default) every :meth:`span` returns the shared no-op
        span and :meth:`event` returns immediately.
    sink:
        ``None`` — keep records in memory (:meth:`records`), capped at
        *max_records* (oldest kept, newest dropped, drop count reported);
        a path string — append JSONL lines to that file (opened lazily,
        flushed on :meth:`close`); or any object with a ``write`` method.
    """

    def __init__(self, enabled: bool = False, sink=None, max_records: int = 100_000) -> None:
        self.enabled = bool(enabled)
        self._records: list[dict] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._ids = 0
        self._epoch = time.perf_counter_ns()
        self._max_records = max_records
        self.dropped = 0
        self._sink_path: str | None = None
        self._sink_file: IO[str] | None = None
        self._owns_sink = False
        self.set_sink(sink)

    @property
    def _stack(self) -> list:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_sink(self, sink) -> None:
        """Point the tracer at a new sink, closing any owned file first."""
        self.close_sink()
        if sink is None:
            return
        if isinstance(sink, str):
            self._sink_path = sink  # opened lazily on first record
        else:
            self._sink_file = sink  # caller-owned file-like object

    def close_sink(self) -> None:
        if self._sink_file is not None and self._owns_sink:
            try:
                self._sink_file.flush()
            finally:
                self._sink_file.close()
        self._sink_file = None
        self._sink_path = None
        self._owns_sink = False

    def close(self) -> None:
        """Flush and release the sink (idempotent)."""
        if self._sink_file is not None and not self._owns_sink:
            try:
                self._sink_file.flush()
            except (AttributeError, ValueError):
                pass
        self.close_sink()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        with self._lock:
            self._ids += 1
            return self._ids

    def span(self, name: str, **attrs):
        """A context manager timing one named scope (no-op when disabled).

        ::

            with tracer.span("enumerate", doc=name):
                ...
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event (no-op when disabled)."""
        if not self.enabled:
            return
        self._emit(
            {
                "type": "event",
                "name": name,
                "parent": self._stack[-1].id if self._stack else None,
                "t0_ns": time.perf_counter_ns() - self._epoch,
                "attrs": attrs,
            }
        )

    def _emit(self, record: dict) -> None:
        with self._lock:
            if self._sink_path is not None and self._sink_file is None:
                self._sink_file = open(self._sink_path, "a", encoding="utf-8")
                self._owns_sink = True
            if self._sink_file is not None:
                self._sink_file.write(json.dumps(record, default=str) + "\n")
            elif len(self._records) < self._max_records:
                self._records.append(record)
            else:
                self.dropped += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """The in-memory records (empty when a sink is attached)."""
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()
        self._stack.clear()
        self.dropped = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, records={len(self._records)})"
