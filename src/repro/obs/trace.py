"""Tracing: nestable spans on the monotonic clock, exported as JSONL.

A :class:`Tracer` produces *span* records (name, start, duration, nested
parent, free-form attributes) and *event* records (a point in time).  All
timestamps come from :func:`time.perf_counter_ns` relative to the tracer's
construction instant — never the wall clock — so traces are immune to NTP
steps and are meaningful to diff.

Cost model:

* **disabled** (the default): :meth:`Tracer.span` returns a shared no-op
  context manager without allocating — one ``if`` and one attribute read;
* **enabled**: entering/exiting a span is two clock reads, one small dict,
  and (with a sink) one ``json.dumps`` + ``write``.

Record schema (one JSON object per line)::

    {"type": "span",  "name": str, "id": int, "parent": int | null,
     "t0_ns": int, "dur_ns": int, "attrs": {...}, "error": str | null}
    {"type": "event", "name": str, "parent": int | null,
     "t0_ns": int, "attrs": {...}}

Thread-safety: the span stack is *per-thread* (thread-local), so spans
opened by concurrent :mod:`repro.serve` workers nest correctly within
their own thread and never adopt another thread's span as parent.  Record
emission (ring append / sink write) and id allocation are serialised by a
small lock, so JSONL lines never interleave mid-line; the lock is only
ever touched when tracing is enabled.

Cross-process extensions (ISSUE 7): a tracer may carry a *process label*
(``process``) stamped on every record as ``"proc"``, and a thread may
activate a :class:`~repro.obs.context.TraceContext` — records then carry
``"trace"`` (the request's trace id) and a span with no local parent
adopts the context's remote parent (``"parent"`` + ``"parent_proc"``).
``set_epoch`` aligns a worker tracer's clock origin with its parent's so
``t0_ns`` values are directly comparable across the per-process JSONL
files that :mod:`repro.obs.stitch` merges.  A ``record_hook`` (used by
the worker-side flight recorder) and a bounded ``recent`` ring (drained
by telemetry harvests) observe every record as it is emitted.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import IO

__all__ = ["Tracer"]


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """An open span; created by :meth:`Tracer.span`, closed by ``with``."""

    __slots__ = ("_tracer", "name", "attrs", "id", "parent", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.id = tracer._next_id()
        self.parent: int | None = None
        self._t0 = 0

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack
        self.parent = stack[-1].id if stack else None
        stack.append(self)
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter_ns() - self._t0
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        record = {
            "type": "span",
            "name": self.name,
            "id": self.id,
            "parent": self.parent,
            "t0_ns": self._t0 - tracer._epoch,
            "dur_ns": dur,
            "attrs": self.attrs,
            "error": exc_type.__name__ if exc_type is not None else None,
        }
        ctx = tracer.current_context()
        if ctx is not None:
            record["trace"] = ctx.trace_id
            if self.parent is None and ctx.parent_span_id is not None:
                record["parent"] = ctx.parent_span_id
                record["parent_proc"] = ctx.process
        if tracer.process is not None:
            record["proc"] = tracer.process
        tracer._emit(record)
        return False


class Tracer:
    """Span/event recorder with a JSONL sink or an in-memory ring.

    Parameters
    ----------
    enabled:
        When false (default) every :meth:`span` returns the shared no-op
        span and :meth:`event` returns immediately.
    sink:
        ``None`` — keep records in memory (:meth:`records`), capped at
        *max_records* (oldest kept, newest dropped, drop count reported);
        a path string — append JSONL lines to that file (opened lazily,
        flushed on :meth:`close`); or any object with a ``write`` method.
    """

    def __init__(
        self,
        enabled: bool = False,
        sink=None,
        max_records: int = 100_000,
        process: str | None = None,
    ) -> None:
        self.enabled = bool(enabled)
        self.process = process
        self._records: list[dict] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._ids = 0
        self._epoch = time.perf_counter_ns()
        self._max_records = max_records
        self.dropped = 0
        self._sink_path: str | None = None
        self._sink_file: IO[str] | None = None
        self._owns_sink = False
        #: bounded ring of recent records (telemetry harvests drain it);
        #: None until a harvester asks for retention via keep_recent()
        self.recent: deque | None = None
        #: called with every emitted record (the flight recorder's mirror);
        #: must never raise into the hot path
        self.record_hook = None
        self.set_sink(sink)

    @property
    def _stack(self) -> list:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    # cross-process identity
    # ------------------------------------------------------------------
    def current_context(self):
        """This thread's active :class:`~repro.obs.context.TraceContext`
        (or ``None``)."""
        return getattr(self._local, "context", None)

    def activate_context(self, ctx):
        """Set this thread's trace context; returns the previous one."""
        previous = getattr(self._local, "context", None)
        self._local.context = ctx
        return previous

    def current_span_id(self) -> int | None:
        """Id of this thread's innermost open span (``None`` outside any)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1].id if stack else None

    def set_epoch(self, epoch_ns: int) -> None:
        """Align this tracer's clock origin with another process's.

        ``perf_counter_ns`` reads ``CLOCK_MONOTONIC``, which is system-wide
        on Linux, so a worker that adopts its parent's epoch emits ``t0_ns``
        values directly comparable with the parent's trace file."""
        self._epoch = int(epoch_ns)

    @property
    def epoch_ns(self) -> int:
        return self._epoch

    @property
    def sink_path(self) -> str | None:
        """The path sink, if the sink was given as a path (else ``None``)."""
        return self._sink_path

    def keep_recent(self, capacity: int = 64) -> deque:
        """Retain the last *capacity* records in :attr:`recent` (idempotent;
        re-sizing replaces the ring)."""
        if self.recent is None or self.recent.maxlen != capacity:
            self.recent = deque(maxlen=capacity)
        return self.recent

    def drain_recent(self) -> list[dict]:
        """Pop and return everything in the recent-record ring."""
        ring = self.recent
        if not ring:
            return []
        drained = []
        while True:
            try:
                drained.append(ring.popleft())
            except IndexError:
                return drained

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_sink(self, sink) -> None:
        """Point the tracer at a new sink, closing any owned file first."""
        self.close_sink()
        if sink is None:
            return
        if isinstance(sink, str):
            self._sink_path = sink  # opened lazily on first record
        else:
            self._sink_file = sink  # caller-owned file-like object

    def close_sink(self) -> None:
        if self._sink_file is not None and self._owns_sink:
            try:
                self._sink_file.flush()
            finally:
                self._sink_file.close()
        self._sink_file = None
        self._sink_path = None
        self._owns_sink = False

    def close(self) -> None:
        """Flush and release the sink (idempotent)."""
        if self._sink_file is not None and not self._owns_sink:
            try:
                self._sink_file.flush()
            except (AttributeError, ValueError):
                pass
        self.close_sink()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        with self._lock:
            self._ids += 1
            return self._ids

    def span(self, name: str, **attrs):
        """A context manager timing one named scope (no-op when disabled).

        ::

            with tracer.span("enumerate", doc=name):
                ...
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event (no-op when disabled)."""
        if not self.enabled:
            return
        record = {
            "type": "event",
            "name": name,
            "parent": self._stack[-1].id if self._stack else None,
            "t0_ns": time.perf_counter_ns() - self._epoch,
            "attrs": attrs,
        }
        ctx = self.current_context()
        if ctx is not None:
            record["trace"] = ctx.trace_id
            if record["parent"] is None and ctx.parent_span_id is not None:
                record["parent"] = ctx.parent_span_id
                record["parent_proc"] = ctx.process
        if self.process is not None:
            record["proc"] = self.process
        self._emit(record)

    def ingest(self, record: dict) -> None:
        """Re-emit a record produced elsewhere (a harvested worker span)
        verbatim — it already carries its own ``proc``/``trace`` labels."""
        if not self.enabled:
            return
        self._emit(dict(record))

    def _emit(self, record: dict) -> None:
        with self._lock:
            if self._sink_path is not None and self._sink_file is None:
                self._sink_file = open(self._sink_path, "a", encoding="utf-8")
                self._owns_sink = True
            if self._sink_file is not None:
                self._sink_file.write(json.dumps(record, default=str) + "\n")
            elif len(self._records) < self._max_records:
                self._records.append(record)
            else:
                self.dropped += 1
        ring = self.recent
        if ring is not None:
            ring.append(record)
        hook = self.record_hook
        if hook is not None:
            try:
                hook(record)
            except Exception:  # never let a mirror break the traced path
                pass

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """The in-memory records (empty when a sink is attached)."""
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()
        self._stack.clear()
        if self.recent is not None:
            self.recent.clear()
        self.dropped = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, records={len(self._records)})"
