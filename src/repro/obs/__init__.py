"""``repro.obs`` — tracing, metrics, and delay profiling for the engine.

A dependency-free observability layer with near-zero cost when disabled
(the default).  One global :class:`~repro.obs.trace.Tracer` and one global
:class:`~repro.obs.metrics.Metrics` registry serve the whole process;
instrumented code guards with :func:`enabled` (a bool read) and therefore
adds nothing measurable to hot paths until :func:`configure` switches
observability on.

Usage::

    from repro import obs

    obs.configure(enabled=True, sink="trace.jsonl")
    with obs.tracer().span("ingest", doc="logs"):
        db.add_document("logs", text)
    print(obs.metrics().snapshot())
    obs.configure(enabled=False)       # flushes and detaches the sink

The CLI exposes the same switches: ``python -m repro db store.slpdb query
... --trace out.jsonl`` and ``python -m repro db store.slpdb metrics``.
See ``docs/OBSERVABILITY.md`` for the trace-file schema and the measured
overhead numbers.

This package imports only the standard library — it must never depend on
the rest of :mod:`repro` (everything in :mod:`repro` is allowed to depend
on it, including :mod:`repro.util.budget` during package initialisation).
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, Histogram, Metrics
from repro.obs.profile import DelayProfiler
from repro.obs.trace import Tracer

__all__ = [
    "Counter",
    "DelayProfiler",
    "Gauge",
    "Histogram",
    "Metrics",
    "Tracer",
    "configure",
    "enabled",
    "metrics",
    "tracer",
]

_tracer = Tracer(enabled=False)
_metrics = Metrics()
_enabled = False


def configure(
    enabled: bool | None = None,
    sink=None,
    reset: bool = False,
) -> None:
    """Reconfigure the global tracer and metrics registry.

    Parameters
    ----------
    enabled:
        Turn the whole layer on or off; ``None`` leaves the state as is.
        Disabling flushes and detaches any file sink.
    sink:
        New trace sink — a JSONL file path or a file-like object; passing
        one implies tracing output goes there instead of the in-memory
        ring.  Ignored unless provided.
    reset:
        Also clear accumulated metrics and in-memory trace records.
    """
    global _enabled
    if reset:
        _metrics.reset()
        _tracer.clear()
    if sink is not None:
        _tracer.set_sink(sink)
    if enabled is not None:
        _enabled = bool(enabled)
        _tracer.enabled = _enabled
        if not _enabled:
            _tracer.close()


def enabled() -> bool:
    """Is observability globally on?  (The hot-path guard.)"""
    return _enabled


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _tracer


def metrics() -> Metrics:
    """The process-wide metrics registry."""
    return _metrics
