"""``repro.obs`` — tracing, metrics, and delay profiling for the engine.

A dependency-free observability layer with near-zero cost when disabled
(the default).  One global :class:`~repro.obs.trace.Tracer` and one global
:class:`~repro.obs.metrics.Metrics` registry serve the whole process;
instrumented code guards with :func:`enabled` (a bool read) and therefore
adds nothing measurable to hot paths until :func:`configure` switches
observability on.

Usage::

    from repro import obs

    obs.configure(enabled=True, sink="trace.jsonl")
    with obs.tracer().span("ingest", doc="logs"):
        db.add_document("logs", text)
    print(obs.metrics().snapshot())
    obs.configure(enabled=False)       # flushes and detaches the sink

Cross-process requests additionally carry a
:class:`~repro.obs.context.TraceContext`: :func:`new_trace` mints one at
the admission point, :func:`use_context` activates it for a scope, and
:func:`child_context` derives the picklable context that
``repro.parallel.procpool`` ships to worker processes so their spans
stitch under the request's tree (``python -m repro obs stitch``).

The CLI exposes the same switches: ``python -m repro db store.slpdb query
... --trace out.jsonl`` and ``python -m repro db store.slpdb metrics
[--format prom]``.  See ``docs/OBSERVABILITY.md`` for the trace-file
schema and the measured overhead numbers.

This package imports only the standard library — it must never depend on
the rest of :mod:`repro` (everything in :mod:`repro` is allowed to depend
on it, including :mod:`repro.util.budget` during package initialisation).
"""

from __future__ import annotations

import contextlib
import os
import threading

from repro.obs.context import TraceContext
from repro.obs.export import export_prometheus
from repro.obs.metrics import Counter, Gauge, Histogram, Metrics
from repro.obs.profile import DelayProfiler
from repro.obs.trace import Tracer

__all__ = [
    "Counter",
    "DelayProfiler",
    "Gauge",
    "Histogram",
    "Metrics",
    "TraceContext",
    "Tracer",
    "child_context",
    "configure",
    "current_context",
    "enabled",
    "export_prometheus",
    "metrics",
    "new_trace",
    "tracer",
    "use_context",
]

_tracer = Tracer(enabled=False)
_metrics = Metrics()
_enabled = False


def configure(
    enabled: bool | None = None,
    sink=None,
    reset: bool = False,
) -> None:
    """Reconfigure the global tracer and metrics registry.

    Parameters
    ----------
    enabled:
        Turn the whole layer on or off; ``None`` leaves the state as is.
        Disabling flushes and detaches any file sink.
    sink:
        New trace sink — a JSONL file path or a file-like object; passing
        one implies tracing output goes there instead of the in-memory
        ring.  Ignored unless provided.
    reset:
        Also clear accumulated metrics and in-memory trace records.
        Safe while pool workers are live: later harvest merges re-create
        instruments lazily (see :meth:`Metrics.merge`), so no worker
        telemetry is stranded.
    """
    global _enabled
    if reset:
        _metrics.reset()
        _tracer.clear()
    if sink is not None:
        _tracer.set_sink(sink)
    if enabled is not None:
        _enabled = bool(enabled)
        _tracer.enabled = _enabled
        if not _enabled:
            _tracer.close()


def enabled() -> bool:
    """Is observability globally on?  (The hot-path guard.)"""
    return _enabled


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _tracer


def metrics() -> Metrics:
    """The process-wide metrics registry."""
    return _metrics


# ----------------------------------------------------------------------
# trace-context helpers (cross-process identity)
# ----------------------------------------------------------------------
def new_trace() -> TraceContext:
    """Mint a fresh request-level trace context (admission points only)."""
    return TraceContext.mint(process=_tracer.process or "main")


def current_context() -> TraceContext | None:
    """The calling thread's active trace context (or ``None``)."""
    return _tracer.current_context()


@contextlib.contextmanager
def use_context(ctx: TraceContext | None):
    """Activate *ctx* for the calling thread within a ``with`` block.

    ``use_context(None)`` is a true no-op that leaves whatever context is
    already active untouched — callers can pass an optional context
    straight through without branching."""
    if ctx is None:
        yield None
        return
    previous = _tracer.activate_context(ctx)
    try:
        yield ctx
    finally:
        _tracer.activate_context(previous)


def child_context() -> TraceContext | None:
    """The context to ship to a child process from *here*.

    The current context re-rooted at the calling thread's innermost open
    span, so the child's spans nest under the caller's; ``None`` when no
    context is active (tracing off, or an un-traced entry point)."""
    ctx = _tracer.current_context()
    if ctx is None:
        return None
    return ctx.child_of(_tracer.current_span_id(), _tracer.process or "main")


def _reset_after_fork() -> None:
    """Make the child's obs state safe after ``os.fork``.

    The child shares the parent's buffered sink file object; flushing or
    closing it here would duplicate buffered lines into the file, so the
    handle is *abandoned* (the parent still owns the real one).  The
    inherited metric values and any open-span stack are dropped too:
    they are the *parent's* measurements, and a pool worker that kept
    them would ship them back as a harvest delta — double-counting
    everything recorded before the fork.  The child starts disabled —
    pool workers re-enable via the dispatch spec they receive with their
    first task."""
    global _enabled
    _enabled = False
    _tracer.enabled = False
    _tracer._sink_file = None
    _tracer._sink_path = None
    _tracer._owns_sink = False
    _tracer._lock = threading.Lock()
    _tracer._local = threading.local()
    _tracer._records = []
    _tracer.record_hook = None
    _tracer.recent = None
    _metrics.reset()


if hasattr(os, "register_at_fork"):  # pragma: no branch - linux container
    os.register_at_fork(after_in_child=_reset_after_fork)
