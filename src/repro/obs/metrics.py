"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

Everything here is dependency-free (no numpy in any hot path) and designed
for single-digit-nanosecond-to-sub-microsecond cost per update:

* :class:`Counter` and :class:`Gauge` are a single attribute update;
* :class:`Histogram` buckets samples by ``int.bit_length()`` — bucket *i*
  holds values in ``[2^(i-1), 2^i)`` — so recording is O(1) with no search
  and no allocation, while still supporting percentile queries with a
  worst-case factor-2 quantisation error (plenty for "is the delay flat?"
  questions; exact ``min``/``max``/``sum`` are kept alongside).

A :class:`Metrics` registry hands out named instruments get-or-create
style; :meth:`Metrics.snapshot` renders the whole registry as plain dicts
for ``SpannerDB.stats()``, the ``db ... metrics`` CLI action, and tests.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "Metrics", "qualify"]

#: bit_length of a 63-bit int is at most 63; one bucket per bit_length
_NUM_BUCKETS = 64


def qualify(name: str, labels: dict | None) -> str:
    """Append a deterministic ``{k="v",...}`` label suffix to *name*.

    Keys are sorted so the same label set always produces the same
    registry key; :func:`repro.obs.export.export_prometheus` splits the
    suffix back out into Prometheus labels."""
    if not labels:
        return name
    body = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{body}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.value})"


class Histogram:
    """Power-of-two-bucket histogram for non-negative integer samples.

    Intended for durations in nanoseconds (from
    :func:`time.perf_counter_ns`).  Bucket ``i`` counts samples whose
    ``bit_length()`` is ``i``, i.e. the half-open range ``[2^(i-1), 2^i)``;
    bucket 0 counts exact zeros.  :meth:`percentile` returns the *upper
    bound* of the bucket containing the requested rank — a conservative
    estimate that is never more than 2× the true value; ``min``/``max``
    are likewise bucket bounds, not exact samples.

    The recording state is deliberately just ``counts`` and ``total`` so
    that hot loops (see :class:`~repro.obs.profile.DelayProfiler`) can
    update the two attributes directly — everything else is derived at
    read time, keeping the per-sample cost to an increment and an add.
    """

    __slots__ = ("counts", "total")

    def __init__(self) -> None:
        self.counts = [0] * _NUM_BUCKETS
        self.total = 0

    def record(self, value: int) -> None:
        """Record one sample (negative values clamp to 0)."""
        value = int(value)
        if value < 0:
            value = 0
        self.counts[min(value.bit_length(), _NUM_BUCKETS - 1)] += 1
        self.total += value

    @property
    def count(self) -> int:
        return sum(self.counts)

    @property
    def min(self) -> float | None:
        """Lower bound of the lowest occupied bucket (None when empty)."""
        for i, bucket in enumerate(self.counts):
            if bucket:
                return 0.0 if i == 0 else float(1 << (i - 1))
        return None

    @property
    def max(self) -> float | None:
        """Upper bound of the highest occupied bucket (None when empty)."""
        for i in range(_NUM_BUCKETS - 1, -1, -1):
            if self.counts[i]:
                return 0.0 if i == 0 else float(1 << i)
        return None

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the *p*-th percentile sample.

        ``p`` is in ``[0, 100]``; returns 0.0 for an empty histogram."""
        count = self.count
        if count == 0:
            return 0.0
        rank = max(1, math.ceil(count * p / 100.0))
        cumulative = 0
        for i, bucket in enumerate(self.counts):
            cumulative += bucket
            if cumulative >= rank:
                return 0.0 if i == 0 else float(1 << i)
        return float(1 << (_NUM_BUCKETS - 1))  # pragma: no cover - unreachable

    @property
    def mean(self) -> float:
        count = self.count
        return self.total / count if count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram(count={self.count}, mean={self.mean:.1f})"


class Metrics:
    """A named registry of counters, gauges, and histograms.

    Instruments are created on first access and live for the registry's
    lifetime; hot paths should hoist the instrument handle out of loops
    (``hist = metrics.histogram("x"); ... hist.record(v)``) so the per-event
    cost is one method call, not a dict lookup.

    Thread-safety: instrument *creation* is locked (double-checked, so the
    common get path stays a lock-free dict read) — without this, two
    threads racing on first access would each create an instrument and one
    would silently swallow the other's updates.  Instrument *updates* are
    deliberately unlocked: under the GIL an interleaved ``+=`` can at worst
    lose an occasional increment, which is an acceptable trade for keeping
    the hot path a single attribute update; correctness-critical serving
    counters are accounted separately under the service's own lock (see
    ``SpannerService.stats``)."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_create_lock")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._create_lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram()
        return instrument

    # ------------------------------------------------------------------
    def merge(self, delta: dict, labels: dict | None = None) -> None:
        """Fold a harvested *delta* (see :mod:`repro.obs.harvest`) into
        this registry.

        Counters and histograms merge **exactly** — increments add and
        power-of-two buckets are alignment-free, so merging per-worker
        deltas is associative and commutative (property-tested).  Gauges
        are last-writer-wins *per label set*: with ``labels={"worker": 3}``
        a gauge ``x`` lands as ``x{worker="3"}``, so concurrent workers
        never clobber each other's point-in-time readings.

        Instruments are created lazily, so a merge arriving after
        ``obs.configure(reset=True)`` re-creates everything it touches —
        worker telemetry harvested across a reset is never stranded.

        The whole merge runs under the registry's creation lock: unlike
        hot-path updates (deliberately lock-free, see the class docstring)
        a merge is a per-task-result event, and exactness here is what
        makes cross-process totals trustworthy."""
        with self._create_lock:
            for name, amount in delta.get("counters", {}).items():
                counter = self._counters.get(name)
                if counter is None:
                    counter = self._counters[name] = Counter()
                counter.value += int(amount)
            for name, value in delta.get("gauges", {}).items():
                name = qualify(name, labels)
                gauge = self._gauges.get(name)
                if gauge is None:
                    gauge = self._gauges[name] = Gauge()
                gauge.value = value
            for name, payload in delta.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram()
                counts = histogram.counts
                for index, count in payload.get("counts", {}).items():
                    counts[int(index)] += int(count)
                histogram.total += int(payload.get("sum", 0))

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The whole registry as plain nested dicts (JSON-serialisable)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.snapshot() for k, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (used between benchmark phases and tests)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
