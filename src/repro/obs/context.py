"""Trace context: the identity that stitches multi-process traces.

A :class:`TraceContext` names one *logical request* — a trace id minted
once at the request's admission point (``repro.serve`` admission, or
``SpannerDB.query_bulk`` entry as the fallback) — plus the coordinates a
*child process* needs to hang its spans under the parent's tree: the
parent's currently-open span id and the parent's process label.

The context is deliberately tiny and picklable: it rides inside
:class:`~repro.parallel.procpool.ProcCall` dispatch messages to worker
processes, where :func:`repro.obs.use_context` activates it for the
duration of the task.  While a context is active, every emitted record
carries ``"trace": trace_id``, and a span with no *local* parent adopts
``parent_span_id`` (annotated with ``"parent_proc"``) as its
cross-process parent — which is exactly what :mod:`repro.obs.stitch`
needs to reassemble one ordered tree from per-process JSONL files.

Trace ids come from :func:`secrets.token_hex` — no wall clock, no
coordination, collision-free in practice across processes and restarts.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, replace

__all__ = ["TraceContext"]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one logical request, shippable across processes.

    Attributes
    ----------
    trace_id:
        Hex token shared by every span/event of the request, in every
        process that worked on it.
    parent_span_id:
        The span (in process *process*) under which a receiving child
        process's spans nest; ``None`` at the admission point.
    process:
        Label of the process that owns *parent_span_id* (``"main"`` for
        the serving parent, ``"w<id>"`` for pool workers).
    """

    trace_id: str
    parent_span_id: int | None = None
    process: str = "main"

    @classmethod
    def mint(cls, process: str = "main") -> "TraceContext":
        """A fresh trace rooted in *process* (no parent span yet)."""
        return cls(trace_id=secrets.token_hex(8), process=process)

    def child_of(self, span_id: int | None, process: str) -> "TraceContext":
        """The context to ship to a child process whose spans should nest
        under span *span_id* of process *process*."""
        return replace(self, parent_span_id=span_id, process=process)
