"""The metric-name catalog: every instrument name used anywhere in repro.

``tools/check_metric_names.py`` walks the AST of ``src/`` and fails CI if
any ``counter(...)`` / ``gauge(...)`` / ``histogram(...)`` call uses a
name literal that is not listed here.  The point is discoverability and
hygiene: dashboards, the Prometheus export, and docs/OBSERVABILITY.md can
treat this file as the complete, reviewed inventory — a typo'd or ad-hoc
metric name fails the build instead of silently forking a time series.

Dynamic names (f-strings) must start with a prefix from
:data:`METRIC_PREFIXES`; the convention is one classifying suffix segment
(an exception type, a degradation reason, a crash cause) on a catalogued
stem.  Per-worker gauge variants like ``x{worker="3"}`` are *not* listed:
those are produced at merge time by :func:`repro.obs.metrics.qualify`
from names that are themselves catalogued.
"""

from __future__ import annotations

__all__ = ["METRIC_NAMES", "METRIC_PREFIXES", "is_catalogued"]

#: every exact instrument name creatable from src/ code
METRIC_NAMES = frozenset(
    {
        # util.budget
        "budget.bytes_charged",
        "budget.bytes_last",
        "budget.steps",
        # db
        "db.budget_exceeded",
        "db.edit.fresh_matrices",
        "db.journal.append_ns",
        "db.journal.appends",
        "db.journal.bytes",
        "db.query_bulk",
        "db.query_decompressed",
        "db.recovery.fallback_snapshots",
        "db.recovery.replayed_records",
        "db.recovery.torn_journals",
        "db.saves",
        # enumeration
        "enumeration.delay_ns",
        # kernels
        "kernels.mm",
        "kernels.mm_collapsed",
        "kernels.mm_interned",
        "kernels.plan_cache.evictions",
        "kernels.plan_cache.hits",
        "kernels.plan_cache.misses",
        "kernels.plan_cache.over_budget",
        # parallel (thread + process backends)
        "parallel.bulk_fresh",
        "parallel.degraded",
        "parallel.fanout_ns",
        "parallel.fold_ns",
        "parallel.phase.fanout_ns",
        "parallel.phase.fold_ns",
        "parallel.proc.crashes",
        "parallel.proc.exhausted",
        "parallel.proc.harvests",
        "parallel.proc.respawned",
        "parallel.proc.retries",
        "parallel.proc.spawned",
        "parallel.proc.tasks",
        "parallel.shards",
        "parallel.shm.attach_ns",
        "parallel.shm.bytes",
        "parallel.shm.create_ns",
        "parallel.shm.pack_ns",
        "parallel.shm.segments",
        "parallel.shm.unpack_ns",
        # query (the repro.query language layer)
        "query.evaluations",
        "query.plan.compile",
        "query.plan.load",
        "query.plan.materialize",
        "query.plan.scan",
        "query.statements",
        # serve
        "serve.breaker.closed",
        "serve.breaker.opened",
        "serve.breaker.state",
        "serve.completed",
        "serve.degraded",
        "serve.exec_ns",
        "serve.failed",
        "serve.mutation_failures",
        "serve.pool_exhausted",
        "serve.queue_depth",
        "serve.queue_ns",
        "serve.retries",
        "serve.shed",
        "serve.submitted",
        # stream (windowed ingestion; see docs/OBSERVABILITY.md)
        "stream.appended_chars",
        "stream.backpressure",
        "stream.degraded",
        "stream.discarded",
        "stream.fresh_nodes",
        "stream.frontier_bytes",
        "stream.frontier_tuples",
        "stream.guard_trips",
        "stream.overruns",
        "stream.queue_depth",
        "stream.rebuilds",
        "stream.results",
        "stream.retracted",
        "stream.window_ns",
        "stream.windows",
        # slp
        "slp.eval.cache_hits",
        "slp.eval.cache_misses",
        "slp.eval.delay_ns",
        "slp.eval.kernel_ns",
        "slp.eval.sealed_hits",
        "slp.eval.walk_skipped",
        "slp.eval.walk_visited",
        "slp.membership.cache_hits",
        "slp.membership.cache_misses",
        "slp.membership.kernel_ns",
        "slp.membership.sealed_hits",
    }
)

#: stems that dynamic (f-string) names may extend with one suffix segment
METRIC_PREFIXES = (
    "db.budget_exceeded.",
    "parallel.degraded.",
    "parallel.proc.crashes.",
    "query.plan.",
    "serve.failed.",
)


def is_catalogued(name: str) -> bool:
    """Is *name* an exact catalogued name or under an allowed prefix?"""
    if name in METRIC_NAMES:
        return True
    return any(name.startswith(prefix) for prefix in METRIC_PREFIXES)
