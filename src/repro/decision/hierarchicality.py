"""The Hierarchicality problem (paper Sections 2.2 and 2.4).

A spanner is *hierarchical* if in every extracted tuple, the spans of any
two variables are either disjoint or nested — never properly overlapping.
Regex-formulas are hierarchical by construction; general vset-automata need
not be (e.g. the subword-marked word (1) of the paper).

For regular spanners the problem is decidable by a purely regular argument:
the spanner is non-hierarchical iff its subword-marked language intersects,
for some ordered variable pair (x, y), the *overlap-pattern language*

    Γ* x▷ Γ* c Γ* y▷ Γ* c Γ* ◁x Γ* c Γ* ◁y Γ*

where c ranges over document characters and Γ over all symbols.  (At least
one character between the markers is exactly what makes the spans properly
overlap: equal endpoints yield nesting or disjointness.)
"""

from __future__ import annotations

import itertools

from repro.automata.nfa import NFA
from repro.automata.ops import intersection, is_empty
from repro.automata.vset import VSetAutomaton
from repro.core.alphabet import Close, DOT, Marker, Open
from repro.spanners.regular import RegularSpanner

__all__ = ["is_hierarchical", "overlap_pattern_nfa"]


def overlap_pattern_nfa(x: str, y: str, all_markers: set[Marker]) -> NFA:
    """The pattern automaton for "x and y properly overlap, x first"."""
    nfa = NFA()
    # states 0..4: before x▷ / after x▷ / after y▷ / after ◁x / after ◁y;
    # the "after" states are doubled: (seen no char yet, seen >= 1 char)
    s0 = nfa.add_state(initial=True)
    s1a, s1b = nfa.add_state(), nfa.add_state()
    s2a, s2b = nfa.add_state(), nfa.add_state()
    s3a, s3b = nfa.add_state(), nfa.add_state()
    s4 = nfa.add_state(accepting=True)

    def loops(state: int, with_char: bool = True) -> None:
        if with_char:
            nfa.add_arc(state, DOT, state)
        for marker in all_markers:
            if marker.var in (x, y):
                continue
            nfa.add_arc(state, marker, state)

    loops(s0)
    nfa.add_arc(s0, Open(x), s1a)
    loops(s1a, with_char=False)
    nfa.add_arc(s1a, DOT, s1b)
    loops(s1b)
    nfa.add_arc(s1b, Open(y), s2a)
    loops(s2a, with_char=False)
    nfa.add_arc(s2a, DOT, s2b)
    loops(s2b)
    nfa.add_arc(s2b, Close(x), s3a)
    loops(s3a, with_char=False)
    nfa.add_arc(s3a, DOT, s3b)
    loops(s3b)
    nfa.add_arc(s3b, Close(y), s4)
    loops(s4)
    return nfa


def is_hierarchical(spanner) -> bool:
    """Decide hierarchicality of a regular spanner.

    Accepts a :class:`RegularSpanner` or :class:`VSetAutomaton`.  Runs one
    regular-language intersection-emptiness test per ordered variable pair.
    """
    if isinstance(spanner, RegularSpanner):
        spanner = spanner.automaton
    if not isinstance(spanner, VSetAutomaton):
        raise TypeError(
            "hierarchicality is decided for regular spanner representations; "
            f"got {type(spanner).__name__}"
        )
    nfa = spanner.nfa
    all_markers = set(nfa.marker_symbols())
    variables = sorted(spanner.variables)
    for x, y in itertools.permutations(variables, 2):
        pattern = overlap_pattern_nfa(x, y, all_markers)
        if not is_empty(intersection(nfa, pattern)):
            return False
    return True
