"""Decision problems for spanners (paper Sections 2.4 and 3.3)."""

from repro.decision.containment import (
    contained_in,
    equivalent_spanners,
    refl_contained_in,
)
from repro.decision.hierarchicality import is_hierarchical, overlap_pattern_nfa
from repro.decision.model_checking import model_check
from repro.decision.nonemptiness import first_tuple, is_nonempty_on
from repro.decision.satisfiability import is_satisfiable, satisfying_document

__all__ = [
    "contained_in",
    "equivalent_spanners",
    "first_tuple",
    "is_hierarchical",
    "is_nonempty_on",
    "is_satisfiable",
    "model_check",
    "overlap_pattern_nfa",
    "refl_contained_in",
    "satisfying_document",
]
