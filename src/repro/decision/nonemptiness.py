"""The NonEmptiness problem: given S and D, decide ``S(D) ≠ ∅``
(paper Sections 2.4 and 3.3).

* **regular**: PTIME — interpret marker transitions as ε and test NFA
  membership of the document (the Section 3.3 recipe);
* **refl**: NP-hard [38] — backtracking search, stopping at the first
  witness;
* **core**: NP-hard [12] — the core-simplification normal form's automaton
  is *enumerated* (constant-delay pipeline) and each candidate is filtered
  through the equality selections, stopping at the first survivor.  The
  exponential behaviour this exhibits on the Section 2.4 gadgets is
  benchmark experiment C6.
"""

from __future__ import annotations

from repro.automata.vset import VSetAutomaton
from repro.core.spanner import Spanner
from repro.enumeration.constant_delay import Enumerator
from repro.spanners.core import CoreSpanner
from repro.spanners.refl import ReflSpanner
from repro.spanners.regular import RegularSpanner

__all__ = ["is_nonempty_on", "first_tuple"]


def first_tuple(spanner: Spanner, doc: str):
    """A witness tuple of ``spanner(doc)``, or ``None`` if empty.

    For core spanner expressions, candidates are streamed from the
    simplified automaton and filtered through the equality selections, so a
    witness (if any) is found without materialising the full relation.
    """
    if isinstance(spanner, CoreSpanner):
        form = spanner.simplify()
        enumerator = Enumerator(form.automaton)
        for candidate in enumerator.enumerate(doc):
            if all(
                candidate.satisfies_equality(doc, group) for group in form.groups
            ):
                return candidate.project(form.visible)
        return None
    for tup in spanner.enumerate(doc):
        return tup
    return None


def is_nonempty_on(spanner: Spanner, doc: str) -> bool:
    """Decide ``spanner(doc) ≠ ∅`` with the class-appropriate algorithm."""
    if isinstance(spanner, RegularSpanner):
        return spanner.is_nonempty_on(doc)
    if isinstance(spanner, VSetAutomaton):
        return spanner.nonemptiness_nfa().accepts(doc)
    if isinstance(spanner, (CoreSpanner, ReflSpanner)):
        return first_tuple(spanner, doc) is not None
    return spanner.is_nonempty_on(doc)
