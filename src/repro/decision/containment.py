"""Containment and Equivalence of spanners (paper Sections 2.4 and 3.3).

* **regular** spanners: decidable (PSpace) — two regular spanners are
  equivalent iff their *canonical* subword-marked languages (normalised
  marker order) are equal as regular languages, so the problems reduce to
  containment/equivalence of NFAs over the extended alphabet.  This is the
  "suitably modified NFAs" reduction the paper sketches.
* **core** spanners: undecidable (not even semi-decidable) [12] — calling
  these functions on a core expression raises
  :class:`~repro.errors.UnsupportedSpannerError`.
* **refl** spanners: [38] shows decidability when every reference is
  extracted by its own private variable.  :func:`refl_contained_in`
  implements the regular *ref-language* containment test, which is sound
  for spanner containment (equal canonical ref-languages describe equal
  spanners) and complete on the private-extraction fragment where distinct
  canonical ref-words denote distinct (document, tuple) pairs.
"""

from __future__ import annotations

from repro.automata.dfa import contains as language_contains
from repro.automata.dfa import equivalent as language_equivalent
from repro.automata.vset import VSetAutomaton
from repro.errors import UnsupportedSpannerError
from repro.spanners.core import CoreSpanner
from repro.spanners.refl import ReflSpanner
from repro.spanners.regular import RegularSpanner

__all__ = [
    "contained_in",
    "equivalent_spanners",
    "refl_contained_in",
]


def _as_vset(spanner) -> VSetAutomaton:
    if isinstance(spanner, RegularSpanner):
        return spanner.automaton
    if isinstance(spanner, VSetAutomaton):
        return spanner
    if isinstance(spanner, CoreSpanner):
        raise UnsupportedSpannerError(
            "containment/equivalence of core spanners is undecidable "
            "(not even semi-decidable, [12])"
        )
    raise TypeError(f"unsupported spanner representation: {spanner!r}")


def contained_in(small, big, budget=None) -> bool:
    """Decide ``small(D) ⊆ big(D)`` for all documents D (regular spanners).

    Both spanners are normalised to the canonical marker order, after which
    spanner containment coincides with containment of the subword-marked
    languages.  The problem is PSpace-hard, so an optional
    :class:`~repro.util.Budget` deadline is checked between the pipeline
    stages (normalisation, per operand, and the language test).
    """
    small_nfa = _as_vset(small).normalized().nfa
    if budget is not None:
        budget.check_deadline()
    big_nfa = _as_vset(big).normalized().nfa
    if budget is not None:
        budget.check_deadline()
    return language_contains(big_nfa, small_nfa)


def equivalent_spanners(left, right, budget=None) -> bool:
    """Decide ``left(D) = right(D)`` for all documents D (regular spanners)."""
    left_nfa = _as_vset(left).normalized().nfa
    if budget is not None:
        budget.check_deadline()
    right_nfa = _as_vset(right).normalized().nfa
    if budget is not None:
        budget.check_deadline()
    return language_equivalent(left_nfa, right_nfa)


def refl_contained_in(small: ReflSpanner, big: ReflSpanner) -> bool:
    """Sound containment test for refl-spanners via ref-language containment.

    If the (raw) ref-language of *small* is contained in that of *big*, then
    the spanner of *small* is contained in that of *big* (every witness
    ref-word of small is a witness for big).  The converse holds on the
    private-extraction fragment of [38]; outside it the test may return
    ``False`` for contained spanners, never ``True`` for non-contained ones.
    """
    if not isinstance(small, ReflSpanner) or not isinstance(big, ReflSpanner):
        raise TypeError("refl_contained_in expects two ReflSpanners")
    return language_contains(big.nfa, small.nfa)
