"""The Satisfiability problem: does some document D have ``S(D) ≠ ∅``?
(paper Sections 2.4 and 3.3).

* **regular** and **refl**: PTIME — reduces to NFA non-emptiness: any
  accepted (ref-)word dereferences to a witness document ([38]);
* **core**: PSpace-complete [12] — a single string-equality selection can
  express *intersection non-emptiness of regular languages*.  The
  implementation searches documents of bounded length and raises
  :class:`~repro.errors.EvaluationLimitError` when the budget is exhausted
  without a verdict (the bound is the caller's completeness trade-off).
"""

from __future__ import annotations

import itertools

from repro.automata.vset import VSetAutomaton
from repro.core.marked import MarkedWord
from repro.core.spanner import Spanner
from repro.decision.nonemptiness import is_nonempty_on
from repro.errors import EvaluationLimitError
from repro.spanners.core import CoreSpanner
from repro.spanners.refl import ReflSpanner
from repro.spanners.regular import RegularSpanner

__all__ = ["is_satisfiable", "satisfying_document"]


def satisfying_document(
    spanner: Spanner, alphabet: str = "ab", max_length: int = 8, budget=None
) -> str | None:
    """A witness document with ``S(D) ≠ ∅``, or ``None``.

    Polynomial for regular and refl-spanners (the witness is read off a
    shortest accepted word).  For core spanners, documents over *alphabet*
    up to *max_length* are searched; :class:`EvaluationLimitError` is
    raised when the budget runs out undecided.  An optional
    :class:`~repro.util.Budget` is charged one step per candidate document,
    so a deadline or step limit cuts the exponential search off cleanly.
    """
    if isinstance(spanner, RegularSpanner):
        spanner = spanner.automaton
    if isinstance(spanner, VSetAutomaton):
        word = spanner.nfa.trim().shortest_word()
        if word is None:
            return None
        return MarkedWord(word).erase()
    if isinstance(spanner, ReflSpanner):
        word = spanner.nfa.trim().shortest_word()
        if word is None:
            return None
        return MarkedWord(word).deref().erase()
    if isinstance(spanner, CoreSpanner):
        for length in range(max_length + 1):
            for letters in itertools.product(alphabet, repeat=length):
                if budget is not None:
                    budget.step()
                doc = "".join(letters)
                if is_nonempty_on(spanner, doc):
                    return doc
        raise EvaluationLimitError(
            f"core-spanner satisfiability undecided up to document length "
            f"{max_length} over alphabet {alphabet!r} (the problem is "
            f"PSpace-complete in general)"
        )
    raise TypeError(f"unsupported spanner representation: {spanner!r}")


def is_satisfiable(
    spanner: Spanner, alphabet: str = "ab", max_length: int = 8, budget=None
) -> bool:
    """Decide Satisfiability (see :func:`satisfying_document`)."""
    return satisfying_document(spanner, alphabet, max_length, budget) is not None
