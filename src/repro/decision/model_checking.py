"""The ModelChecking problem (paper Section 2.4).

Given a spanner S, a document D, and a span tuple t, decide ``t ∈ S(D)``.

Complexity landscape reproduced here:

* **regular** spanners: polynomial — membership of the extended word in the
  eVA view (the marker-ordering issue of Section 2.4 is handled by the
  extended form);
* **refl**-spanners: polynomial — reference expansion (Section 3.3): the
  tuple fixes the content of every reference;
* **core** spanners: NP-hard in general [12] — implemented by evaluation of
  the core-simplification normal form and membership (an auxiliary-variable
  assignment must be *guessed*, which is where the hardness lives).
"""

from __future__ import annotations

from repro.automata.vset import VSetAutomaton
from repro.core.spanner import Spanner
from repro.core.spans import SpanTuple
from repro.spanners.core import CoreSpanner
from repro.spanners.refl import ReflSpanner
from repro.spanners.regular import RegularSpanner

__all__ = ["model_check"]


def model_check(spanner: Spanner, doc: str, tup: SpanTuple) -> bool:
    """Decide ``tup ∈ spanner(doc)``, dispatching to the best algorithm.

    For regular spanners (``RegularSpanner`` / ``VSetAutomaton``) and
    refl-spanners this runs in polynomial time; for core spanner
    expressions the call may take exponential time (ModelChecking for core
    spanners is NP-hard).
    """
    if isinstance(spanner, (RegularSpanner, VSetAutomaton, ReflSpanner)):
        return spanner.model_check(doc, tup)
    if isinstance(spanner, CoreSpanner):
        form = spanner.simplify()
        if not tup.variables <= form.visible or not tup.fits(doc):
            return False
        return tup in spanner.evaluate(doc)
    return spanner.model_check(doc, tup)
