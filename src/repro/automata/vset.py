"""Variable-set automata (vset-automata) of Fagin et al. [9].

A vset-automaton is an NFA over the extended alphabet ``Σ ∪ {x▷, ◁x}``.
If every accepted word is a valid subword-marked word, the automaton
*represents* the regular spanner ``⟦M⟧`` with
``⟦M⟧(D) = { st(w) : w ∈ L(M), e(w) = D }`` (Section 2.1 of the paper).

This module provides:

* :class:`VSetAutomaton` — the spanner-level wrapper: evaluation,
  enumeration, model checking, and the regular algebra operations that stay
  regular (union, projection, renaming);
* well-formedness and functionality analysis via a status-tracking product
  (Section 2.2);
* normalisation into the canonical marker order (Option 1 of Section 2.2),
  implemented by a round trip through extended vset-automata so that the
  represented spanner is preserved even when the input automaton only
  accepts non-canonical marker orders.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.automata.nfa import EPSILON, NFA
from repro.core.alphabet import Close, Marker, Open
from repro.core.marked import MarkedWord, mark_document
from repro.core.spanner import Spanner
from repro.core.spans import SpanRelation, SpanTuple
from repro.errors import NotFunctionalError, SchemaError

__all__ = ["VSetAutomaton"]

_UNSEEN, _OPEN, _CLOSED = 0, 1, 2
_ERROR = "error"


class VSetAutomaton(Spanner):
    """A regular spanner represented by an NFA over ``Σ ∪ markers``.

    Parameters
    ----------
    nfa:
        The underlying automaton.  Its marker symbols determine the variable
        universe unless *variables* widens it (a variable may be in the
        schema yet never marked — schemaless semantics).
    variables:
        Optional explicit schema.
    functional:
        If True, :meth:`evaluate` asserts that every produced tuple is total
        on the schema (classical semantics of [9]).
    """

    def __init__(
        self,
        nfa: NFA,
        variables: frozenset[str] | None = None,
        functional: bool = False,
    ) -> None:
        marked = frozenset(m.var for m in nfa.marker_symbols())
        if variables is None:
            variables = marked
        elif not marked <= variables:
            raise SchemaError(
                f"automaton marks variables {sorted(marked - variables)} "
                f"outside the declared schema"
            )
        if nfa.ref_symbols():
            raise SchemaError(
                "vset-automata must not contain reference symbols; "
                "use ReflSpanner for ref-languages"
            )
        self.nfa = nfa
        self._variables = frozenset(variables)
        self.functional = functional

    # ------------------------------------------------------------------
    # Spanner interface
    # ------------------------------------------------------------------
    @property
    def variables(self) -> frozenset[str]:
        return self._variables

    def evaluate(self, doc: str) -> SpanRelation:
        from repro.enumeration.naive import evaluate_vset

        relation = evaluate_vset(self, doc)
        if self.functional and not relation.is_functional():
            raise NotFunctionalError(
                "functional vset-automaton produced a partial tuple"
            )
        return relation

    def enumerate(self, doc: str) -> Iterator[SpanTuple]:
        from repro.enumeration.constant_delay import Enumerator

        yield from Enumerator(self).enumerate(doc)

    def model_check(self, doc: str, tup: SpanTuple) -> bool:
        """Decide ``tup ∈ ⟦M⟧(doc)`` without materialising the relation.

        The marker-ordering pitfall of Section 2.4 (we do not know a priori
        in which order consecutive markers must be inserted into the
        document) is sidestepped by checking membership of the *extended*
        word — marker sets between characters — against the extended
        vset-automaton view of this spanner.
        """
        from repro.automata.evset import ExtendedVSetAutomaton

        if not tup.variables <= self._variables:
            return False
        if not tup.fits(doc):
            return False
        word = mark_document(doc, tup)
        blocks, chars = word.extended_blocks()
        return ExtendedVSetAutomaton.from_vset(self).run(blocks, chars)

    # ------------------------------------------------------------------
    # analysis (Section 2.2)
    # ------------------------------------------------------------------
    def _status_search(self) -> tuple[bool, bool]:
        """Explore the (state, per-variable status) product.

        Returns ``(wellformed, functional)`` where *wellformed* means every
        accepted word is a valid subword-marked word and *functional* means
        additionally that every accepted word marks every schema variable.
        """
        variables = sorted(self._variables)
        var_index = {var: i for i, var in enumerate(variables)}
        initial_status = tuple([_UNSEEN] * len(variables))
        wellformed = True
        functional = True
        seen: set[tuple[int, object]] = set()
        stack: list[tuple[int, object]] = []
        for state in self.nfa.initial:
            node = (state, initial_status)
            seen.add(node)
            stack.append(node)
        # Pre-compute co-reachability in the raw NFA: an invalid prefix only
        # matters if it can still be completed to an accepted word.
        useful = self.nfa.coreachable_states()
        while stack:
            state, status = stack.pop()
            if state in self.nfa.accepting:
                if status == _ERROR:
                    wellformed = False
                else:
                    if any(s == _OPEN for s in status):
                        wellformed = False
                    if any(s != _CLOSED for s in status):
                        functional = False
            for symbol, target in self.nfa.arcs_from(state):
                if status == _ERROR:
                    new_status: object = _ERROR
                elif isinstance(symbol, Marker):
                    index = var_index[symbol.var]
                    expected = _UNSEEN if symbol.is_open else _OPEN
                    if status[index] != expected:
                        new_status = _ERROR if target in useful else None
                        if new_status is None:
                            continue
                    else:
                        updated = list(status)
                        updated[index] = _OPEN if symbol.is_open else _CLOSED
                        new_status = tuple(updated)
                else:
                    new_status = status
                node = (target, new_status)
                if node not in seen:
                    seen.add(node)
                    stack.append(node)
        return wellformed, functional and wellformed

    def is_wellformed(self) -> bool:
        """True if every accepted word is a valid subword-marked word."""
        return self._status_search()[0]

    def is_functional(self) -> bool:
        """True if additionally every accepted word marks all schema variables."""
        return self._status_search()[1]

    # ------------------------------------------------------------------
    # regular algebra (the operations under which regular spanners close)
    # ------------------------------------------------------------------
    def project(self, keep: frozenset[str] | set[str]) -> "VSetAutomaton":
        """Projection ``π_Y``: markers of dropped variables become ε."""
        keep = frozenset(keep)
        unknown = keep - self._variables
        if unknown:
            raise SchemaError(f"cannot project onto unknown variables {sorted(unknown)}")

        def rewrite(symbol):
            if isinstance(symbol, Marker) and symbol.var not in keep:
                return None
            return symbol

        projected = self.nfa.map_symbols(rewrite)
        return VSetAutomaton(projected, keep, functional=self.functional)

    def union(self, other: "VSetAutomaton") -> "VSetAutomaton":
        """Spanner union ``∪`` (schemas merged; schemaless semantics)."""
        from repro.automata.ops import union as nfa_union

        variables = self._variables | other._variables
        functional = (
            self.functional
            and other.functional
            and self._variables == other._variables
        )
        return VSetAutomaton(nfa_union(self.nfa, other.nfa), variables, functional)

    def join(self, other: "VSetAutomaton") -> "VSetAutomaton":
        """Natural join ``⋈`` via the extended vset-automaton product."""
        from repro.automata.evset import ExtendedVSetAutomaton, join as eva_join

        left = ExtendedVSetAutomaton.from_vset(self)
        right = ExtendedVSetAutomaton.from_vset(other)
        return eva_join(left, right).to_vset()

    def difference(self, other: "VSetAutomaton") -> "VSetAutomaton":
        """Spanner difference: ``(S1 \\ S2)(D) = S1(D) \\ S2(D)``.

        Regular spanners are closed under difference ([9]): both operands
        are normalised to the canonical marker order, where the spanner
        difference coincides with the difference of the subword-marked
        languages.  Requires equal schemas.

        The result's relation on any document is a subset of the left
        operand's, so left-functional implies result-functional — the
        flag is preserved so downstream planners can keep taking the
        strict-join fast path.
        """
        from repro.automata.dfa import difference as language_difference

        if self._variables != other._variables:
            raise SchemaError(
                "difference requires equal schemas: "
                f"{sorted(self._variables)} vs {sorted(other._variables)}"
            )
        left = self.normalized().nfa
        right = other.normalized().nfa
        return VSetAutomaton(
            language_difference(left, right),
            self._variables,
            functional=self.functional,
        )

    def rename(self, renaming: Mapping[str, str]) -> "VSetAutomaton":
        """Rename variables (injective on the schema)."""
        new_variables = [renaming.get(v, v) for v in self._variables]
        if len(set(new_variables)) != len(new_variables):
            raise SchemaError("renaming collapses two variables")

        def rewrite(symbol):
            if isinstance(symbol, Marker):
                var = renaming.get(symbol.var, symbol.var)
                return Open(var) if symbol.is_open else Close(var)
            return symbol

        return VSetAutomaton(
            self.nfa.map_symbols(rewrite), frozenset(new_variables), self.functional
        )

    def normalized(self) -> "VSetAutomaton":
        """An equivalent automaton accepting only canonical marker orders.

        Round-trips through the extended vset-automaton: marker runs are
        collapsed into sets and re-expanded in the canonical order, so the
        represented spanner is unchanged (Section 2.2, Options 1 and 2).
        """
        from repro.automata.evset import ExtendedVSetAutomaton

        return ExtendedVSetAutomaton.from_vset(self).to_vset()

    # ------------------------------------------------------------------
    # helpers for decision problems
    # ------------------------------------------------------------------
    def nonemptiness_nfa(self) -> NFA:
        """The NFA with marker transitions read as ε (Section 3.3).

        Its language over Σ is exactly ``{ D : ⟦M⟧(D) ≠ ∅ }`` — this is what
        makes NonEmptiness and Satisfiability of regular spanners tractable.
        """
        return self.nfa.map_symbols(
            lambda s: None if isinstance(s, Marker) else s
        )

    def accepts_marked_word(self, word: MarkedWord) -> bool:
        """Raw membership of a subword-marked word (exact marker order)."""
        return self.nfa.accepts_symbols(word.symbols)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VSetAutomaton(states={self.nfa.num_states}, "
            f"variables={sorted(self._variables)})"
        )
