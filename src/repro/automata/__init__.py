"""Automata substrate: NFAs, DFAs, vset- and extended vset-automata."""

from repro.automata.dfa import (
    DFA,
    Atoms,
    compute_atoms,
    contains,
    determinize,
    dfa_to_nfa,
    difference,
    equivalent,
)
from repro.automata.evset import DeterministicEVA, ExtendedVSetAutomaton
from repro.automata.ambiguity import ambiguous_witness, is_unambiguous
from repro.automata.glushkov import glushkov_nfa, glushkov_spanner
from repro.automata.transducer import Transducer, marker_eraser, marker_inserter
from repro.automata.evset import join as eva_join
from repro.automata.nfa import EPSILON, NFA, literal_nfa
from repro.automata.ops import (
    concat,
    epsilon_nfa,
    intersection,
    is_empty,
    is_universal,
    never_nfa,
    optional,
    plus,
    star,
    union,
)
from repro.automata.vset import VSetAutomaton

__all__ = [
    "Atoms",
    "DFA",
    "DeterministicEVA",
    "EPSILON",
    "ExtendedVSetAutomaton",
    "NFA",
    "Transducer",
    "ambiguous_witness",
    "VSetAutomaton",
    "compute_atoms",
    "concat",
    "contains",
    "determinize",
    "dfa_to_nfa",
    "difference",
    "epsilon_nfa",
    "equivalent",
    "glushkov_nfa",
    "glushkov_spanner",
    "eva_join",
    "intersection",
    "is_empty",
    "is_unambiguous",
    "is_universal",
    "literal_nfa",
    "marker_eraser",
    "marker_inserter",
    "never_nfa",
    "optional",
    "plus",
    "star",
    "union",
]
