"""Finite-state transducers and closure under transduction.

Section 2.1 of the paper notes that *any class of languages closed under
intersection with regular languages can directly be interpreted as a class
of spanners*, and points at closure under finite-state transductions as
the standard toolbox ([20, 26]).  This module supplies that toolbox
constructively:

* :class:`Transducer` — nondeterministic FSTs whose transitions read one
  symbol (or ε) and emit a (possibly empty) sequence of symbols;
* :meth:`Transducer.apply_to_nfa` — the image of a regular language under
  the transduction, again as an NFA (the closure construction);
* stock transducers that are meaningful for spanners:
  :func:`marker_eraser` realises the paper's ``e(·)`` on whole languages
  (so ``e(L(M))`` is computable for any vset-automaton M — this is exactly
  the NonEmptiness language), and :func:`marker_inserter` builds the
  *universal spanner* over a variable set (every document, every tuple).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.automata.nfa import EPSILON, NFA
from repro.automata.ops import intersect_symbols
from repro.core.alphabet import Close, Marker, Open, Symbol
from repro.errors import SpanlibError

__all__ = ["Transducer", "marker_eraser", "marker_inserter"]


@dataclass(frozen=True)
class _Rule:
    source: int
    read: Symbol | None
    emit: tuple[Symbol, ...]
    target: int


class Transducer:
    """A nondeterministic finite-state transducer.

    Input symbols follow the NFA conventions (chars, char classes, markers,
    references; ``None`` = read nothing); output is a tuple of *concrete*
    symbols per transition.  When the read symbol is a character class, the
    emitted special value :data:`Transducer.COPY` stands for "the character
    actually read" (needed for identity-on-Σ rules without enumerating Σ).
    """

    #: sentinel in an emit sequence: copy the input symbol through
    COPY = object()

    def __init__(self) -> None:
        self._num_states = 0
        self.initial: set[int] = set()
        self.accepting: set[int] = set()
        self._rules: list[_Rule] = []

    def add_state(self, initial: bool = False, accepting: bool = False) -> int:
        state = self._num_states
        self._num_states += 1
        if initial:
            self.initial.add(state)
        if accepting:
            self.accepting.add(state)
        return state

    def add_rule(
        self,
        source: int,
        read: Symbol | None,
        emit: Sequence,
        target: int,
    ) -> None:
        if not 0 <= source < self._num_states or not 0 <= target < self._num_states:
            raise SpanlibError("unknown transducer state")
        self._rules.append(_Rule(source, read, tuple(emit), target))

    # ------------------------------------------------------------------
    def apply_to_nfa(self, nfa: NFA) -> NFA:
        """The image NFA: ``{ output : input ∈ L(nfa), (input, output) ∈ T }``.

        Product construction over (nfa state, transducer state); reading
        rules synchronise with nfa arcs (symbol intersection), ε-input
        rules advance the transducer alone.  Emitted sequences become arc
        chains; :data:`COPY` re-emits the synchronised symbol.
        """
        result = NFA()
        index: dict[tuple[int, int], int] = {}

        def state_of(pair: tuple[int, int]) -> int:
            if pair not in index:
                index[pair] = result.add_state()
            return index[pair]

        def emit_chain(start: int, emitted: Iterable, landing: tuple[int, int]) -> None:
            emitted = list(emitted)
            here = start
            if not emitted:
                result.add_arc(here, EPSILON, state_of(landing))
                return
            for symbol in emitted[:-1]:
                fresh = result.add_state()
                result.add_arc(here, symbol, fresh)
                here = fresh
            result.add_arc(here, emitted[-1], state_of(landing))

        rules_by_source: dict[int, list[_Rule]] = {}
        for rule in self._rules:
            rules_by_source.setdefault(rule.source, []).append(rule)

        stack: list[tuple[int, int]] = []
        for nfa_state in nfa.initial:
            for fst_state in self.initial:
                pair = (nfa_state, fst_state)
                result.initial.add(state_of(pair))
                stack.append(pair)
        seen = set(stack)
        while stack:
            pair = stack.pop()
            nfa_state, fst_state = pair
            here = index[pair]
            if nfa_state in nfa.accepting and fst_state in self.accepting:
                result.accepting.add(here)
            moves: list[tuple[Iterable, tuple[int, int]]] = []
            # nfa ε-arcs advance the nfa alone
            for symbol, target in nfa.arcs_from(nfa_state):
                if symbol is EPSILON:
                    moves.append(((), (target, fst_state)))
            for rule in rules_by_source.get(fst_state, ()):
                if rule.read is None:
                    if any(e is Transducer.COPY for e in rule.emit):
                        raise SpanlibError("COPY in an ε-input rule")
                    moves.append((rule.emit, (nfa_state, rule.target)))
                    continue
                for symbol, target in nfa.arcs_from(nfa_state):
                    if symbol is EPSILON:
                        continue
                    met = intersect_symbols(symbol, rule.read)
                    if met is None:
                        continue
                    emitted = tuple(
                        met if e is Transducer.COPY else e for e in rule.emit
                    )
                    moves.append((emitted, (target, rule.target)))
            for emitted, landing in moves:
                emit_chain(here, emitted, landing)
                if landing not in seen:
                    seen.add(landing)
                    stack.append(landing)
        return result


def marker_eraser(
    variables: Iterable[str], passthrough: Iterable[str] = ()
) -> Transducer:
    """The FST realising the paper's ``e(·)``: delete all markers of
    *variables*, copy characters (and the markers of *passthrough*
    variables) through.  With ``passthrough`` this is projection-as-a-
    transduction."""
    from repro.core.alphabet import DOT

    fst = Transducer()
    state = fst.add_state(initial=True, accepting=True)
    fst.add_rule(state, DOT, (Transducer.COPY,), state)
    for var in variables:
        fst.add_rule(state, Open(var), (), state)
        fst.add_rule(state, Close(var), (), state)
    for var in passthrough:
        fst.add_rule(state, Open(var), (Open(var),), state)
        fst.add_rule(state, Close(var), (Close(var),), state)
    return fst


def marker_inserter(variables: Iterable[str]) -> Transducer:
    """The FST of the *universal spanner*: nondeterministically insert one
    well-ordered ``x▷ … ◁x`` pair per variable into the input.

    Applying it to a plain language L yields the subword-marked language of
    *all* (functional) tuples over all documents of L — including nested
    and overlapping spans — i.e. the top element of the spanner lattice
    over L.  States track which variables are open/closed, so the FST has
    3^|X| states; fine for the few variables real spanners use.
    """
    import itertools

    from repro.core.alphabet import DOT

    variables = sorted(variables)
    fst = Transducer()
    index: dict[tuple[frozenset, frozenset], int] = {}
    statuses = list(
        itertools.product(("unseen", "open", "closed"), repeat=len(variables))
    )
    for status in statuses:
        opened = frozenset(v for v, s in zip(variables, status) if s == "open")
        closed = frozenset(v for v, s in zip(variables, status) if s == "closed")
        index[(opened, closed)] = fst.add_state(
            initial=not opened and not closed,
            accepting=len(closed) == len(variables),
        )
    for (opened, closed), state in index.items():
        fst.add_rule(state, DOT, (Transducer.COPY,), state)
        for var in variables:
            if var not in opened and var not in closed:
                fst.add_rule(
                    state, None, (Open(var),), index[(opened | {var}, closed)]
                )
            elif var in opened:
                fst.add_rule(
                    state,
                    None,
                    (Close(var),),
                    index[(opened - {var}, closed | {var})],
                )
    return fst
