"""Glushkov (position) automata: an ε-free compilation of spanner regexes.

The Thompson construction (:mod:`repro.regex.compile`) is the library's
default; the Glushkov construction is the classical alternative that
produces an ε-free automaton with exactly ``#positions + 1`` states.  It
compiles the *same* spanner regex ASTs — markers and references are simply
treated as alphabet symbols, so regex-formulas become vset-automata here
too.  The property tests cross-check the two constructions against each
other (equal languages, equal spanners), which guards both.

The construction is the textbook one: for the linearised expression,
compute ``nullable``, ``first``, ``last`` and ``follow`` and wire

* an initial state with arcs to every first position,
* arcs p → q whenever q ∈ follow(p),
* accepting states = last positions (plus the initial state if nullable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.nfa import NFA
from repro.core.alphabet import CharClass, Close, Open, Ref as RefSymbol, Symbol
from repro.errors import RegexSyntaxError
from repro.regex import ast
from repro.regex.parser import parse

__all__ = ["glushkov_nfa", "glushkov_spanner"]


# ---------------------------------------------------------------------------
# linear IR: expressions over symbol leaves
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _Leaf:
    symbol: Symbol
    position: int


@dataclass(frozen=True)
class _Analysis:
    nullable: bool
    first: frozenset[int]
    last: frozenset[int]


def _desugar(node: ast.Node) -> ast.Node:
    """Expand Repeat/Plus/Capture/Reference into the core connectives with
    explicit symbol leaves (captures become marker literals)."""
    if isinstance(node, ast.Repeat):
        inner = _desugar(node.inner)
        required: list[ast.Node] = [inner] * node.low
        if node.high is None:
            required.append(ast.Star(inner))
        else:
            required.extend([ast.Maybe(inner)] * (node.high - node.low))
        if not required:
            return ast.Epsilon()
        return ast.Concat(tuple(required)) if len(required) > 1 else required[0]
    if isinstance(node, ast.Plus):
        inner = _desugar(node.inner)
        return ast.Concat((inner, ast.Star(inner)))
    if isinstance(node, ast.Capture):
        return ast.Concat(
            (_MarkerLeaf(Open(node.var)), _desugar(node.inner), _MarkerLeaf(Close(node.var)))
        )
    if isinstance(node, ast.Reference):
        return _MarkerLeaf(RefSymbol(node.var))
    if isinstance(node, ast.Concat):
        return ast.Concat(tuple(_desugar(p) for p in node.parts))
    if isinstance(node, ast.Alt):
        return ast.Alt(tuple(_desugar(p) for p in node.parts))
    if isinstance(node, ast.Star):
        return ast.Star(_desugar(node.inner))
    if isinstance(node, ast.Maybe):
        return ast.Maybe(_desugar(node.inner))
    return node


@dataclass(frozen=True)
class _MarkerLeaf(ast.Node):
    """An AST leaf carrying a non-character symbol (marker or reference)."""

    symbol: Symbol

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"⟨{self.symbol}⟩"


def _leaf_symbol(node: ast.Node) -> Symbol | None:
    if isinstance(node, ast.Literal):
        return node.char
    if isinstance(node, ast.AnyChar):
        return CharClass(frozenset(), negated=True)
    if isinstance(node, ast.ClassNode):
        return CharClass(node.chars, node.negated)
    if isinstance(node, _MarkerLeaf):
        return node.symbol
    return None


class _Builder:
    def __init__(self) -> None:
        self.leaves: list[_Leaf] = []
        self.follow: dict[int, set[int]] = {}

    def leaf(self, symbol: Symbol) -> _Analysis:
        position = len(self.leaves)
        self.leaves.append(_Leaf(symbol, position))
        self.follow[position] = set()
        only = frozenset({position})
        return _Analysis(False, only, only)

    def analyse(self, node: ast.Node) -> _Analysis:
        symbol = _leaf_symbol(node)
        if symbol is not None:
            return self.leaf(symbol)
        if isinstance(node, ast.Epsilon):
            return _Analysis(True, frozenset(), frozenset())
        if isinstance(node, ast.Concat):
            current = _Analysis(True, frozenset(), frozenset())
            for part in node.parts:
                nxt = self.analyse(part)
                for p in current.last:
                    self.follow[p] |= nxt.first
                current = _Analysis(
                    current.nullable and nxt.nullable,
                    current.first | (nxt.first if current.nullable else frozenset()),
                    nxt.last | (current.last if nxt.nullable else frozenset()),
                )
            return current
        if isinstance(node, ast.Alt):
            parts = [self.analyse(part) for part in node.parts]
            return _Analysis(
                any(p.nullable for p in parts),
                frozenset().union(*(p.first for p in parts)),
                frozenset().union(*(p.last for p in parts)),
            )
        if isinstance(node, ast.Star):
            inner = self.analyse(node.inner)
            for p in inner.last:
                self.follow[p] |= inner.first
            return _Analysis(True, inner.first, inner.last)
        if isinstance(node, ast.Maybe):
            inner = self.analyse(node.inner)
            return _Analysis(True, inner.first, inner.last)
        raise RegexSyntaxError(f"cannot build Glushkov automaton for {node!r}", 0)


def glushkov_nfa(pattern: str | ast.Node) -> NFA:
    """The ε-free position automaton of a (possibly spanner-) regex."""
    node = parse(pattern) if isinstance(pattern, str) else pattern
    ast.check_capture_validity(node)
    builder = _Builder()
    analysis = builder.analyse(_desugar(node))
    nfa = NFA()
    start = nfa.add_state(initial=True, accepting=analysis.nullable)
    states = [nfa.add_state() for _ in builder.leaves]
    for position in analysis.first:
        nfa.add_arc(start, builder.leaves[position].symbol, states[position])
    for position, successors in builder.follow.items():
        for successor in successors:
            nfa.add_arc(
                states[position], builder.leaves[successor].symbol, states[successor]
            )
    for position in analysis.last:
        nfa.accepting.add(states[position])
    return nfa


def glushkov_spanner(pattern: str | ast.Node):
    """A regex-formula compiled to a vset-automaton via Glushkov."""
    from repro.automata.vset import VSetAutomaton

    node = parse(pattern) if isinstance(pattern, str) else pattern
    if ast.references_of(node):
        raise RegexSyntaxError("regex contains references; build a ReflSpanner", 0)
    return VSetAutomaton(glushkov_nfa(node), ast.variables_of(node))
