"""Deterministic automata, subset construction, minimisation, equivalence.

Arc symbols may be character predicates over an unbounded alphabet (e.g. the
regex ``.``), so determinisation first *atomises* the symbol universe: all
explicitly mentioned characters become singleton atoms, every marker or
reference symbol is its own atom, and one *remainder* atom stands for "any
character never mentioned by any arc".  All characters in the remainder are
indistinguishable to every automaton under consideration, so languages over
the infinite alphabet are handled exactly.

The equivalence and containment procedures here are what make the static
analysis of regular spanners decidable with acceptable complexity bounds
(Section 2.4 of the paper).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Sequence

from repro.automata.nfa import NFA
from repro.core.alphabet import CharClass, Marker, Ref, Symbol

__all__ = [
    "Atoms",
    "DFA",
    "compute_atoms",
    "determinize",
    "dfa_to_nfa",
    "difference",
    "equivalent",
    "contains",
]

#: An atom is a concrete character, a marker/reference symbol, or the
#: remainder character class.
Atom = Hashable

DEAD = -1


class Atoms:
    """A finite, disjoint decomposition of the symbol universe.

    ``base`` is the set of explicitly mentioned characters; the remainder
    atom (``CharClass(base, negated=True)``) covers every other character.
    """

    __slots__ = ("base", "atoms", "remainder")

    def __init__(self, symbols: Iterable[Symbol]) -> None:
        base: set[str] = set()
        exact: set[Atom] = set()
        for symbol in symbols:
            if isinstance(symbol, str):
                base.add(symbol)
            elif isinstance(symbol, CharClass):
                base.update(symbol.chars)
            elif isinstance(symbol, (Marker, Ref)):
                exact.add(symbol)
            else:
                raise TypeError(f"cannot atomise symbol {symbol!r}")
        self.base: frozenset[str] = frozenset(base)
        self.remainder = CharClass(self.base, negated=True)
        self.atoms: tuple[Atom, ...] = tuple(
            sorted(base) + sorted(exact, key=repr) + [self.remainder]
        )

    def classify(self, symbol: Hashable) -> Atom | None:
        """Map an input-word symbol to its atom (``None`` if unmappable)."""
        if isinstance(symbol, str):
            return symbol if symbol in self.base else self.remainder
        if isinstance(symbol, (Marker, Ref)):
            return symbol if symbol in self.atoms else None
        return None

    def covered_by(self, arc_symbol: Symbol, atom: Atom) -> bool:
        """True if an arc labelled *arc_symbol* can read *atom*."""
        if isinstance(atom, Marker) or isinstance(atom, Ref):
            return arc_symbol == atom
        if isinstance(atom, str):
            if isinstance(arc_symbol, str):
                return arc_symbol == atom
            if isinstance(arc_symbol, CharClass):
                return arc_symbol.matches(atom)
            return False
        # atom is the remainder class: only complemented classes cover it,
        # because every char of a positive class is in the base set.
        return isinstance(arc_symbol, CharClass) and arc_symbol.negated

    def __len__(self) -> int:
        return len(self.atoms)


class DFA:
    """A deterministic automaton over a fixed atom decomposition.

    Transitions are partial; a missing entry goes to an implicit,
    non-accepting dead state.
    """

    __slots__ = ("atoms", "initial", "accepting", "transitions")

    def __init__(
        self,
        atoms: Atoms,
        initial: int,
        accepting: set[int],
        transitions: list[dict[Atom, int]],
    ) -> None:
        self.atoms = atoms
        self.initial = initial
        self.accepting = accepting
        self.transitions = transitions

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def step(self, state: int, symbol: Hashable) -> int:
        """One step; returns ``DEAD`` when no transition exists."""
        if state == DEAD:
            return DEAD
        atom = self.atoms.classify(symbol)
        if atom is None:
            return DEAD
        return self.transitions[state].get(atom, DEAD)

    def accepts(self, word: Iterable[Hashable]) -> bool:
        state = self.initial
        for symbol in word:
            state = self.step(state, symbol)
            if state == DEAD:
                return False
        return state in self.accepting

    def is_empty(self) -> bool:
        """True if no accepting state is reachable."""
        seen = {self.initial}
        queue = deque(seen)
        while queue:
            state = queue.popleft()
            if state in self.accepting:
                return False
            for target in self.transitions[state].values():
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return True

    def complement(self) -> "DFA":
        """The complement DFA (over the same atomised universe)."""
        dead = self.num_states
        transitions: list[dict[Atom, int]] = []
        for state in range(self.num_states):
            row = dict(self.transitions[state])
            for atom in self.atoms.atoms:
                row.setdefault(atom, dead)
            transitions.append(row)
        transitions.append({atom: dead for atom in self.atoms.atoms})
        accepting = {
            state for state in range(self.num_states + 1)
            if state not in self.accepting
        }
        return DFA(self.atoms, self.initial, accepting, transitions)

    def minimize(self) -> "DFA":
        """Moore's partition-refinement minimisation (with completion)."""
        complete = self.complement().complement()  # cheap way to complete
        n = complete.num_states
        atoms = complete.atoms.atoms
        block = [1 if s in complete.accepting else 0 for s in range(n)]
        while True:
            signatures: dict[tuple, int] = {}
            new_block = [0] * n
            for state in range(n):
                signature = (
                    block[state],
                    tuple(block[complete.transitions[state][atom]] for atom in atoms),
                )
                if signature not in signatures:
                    signatures[signature] = len(signatures)
                new_block[state] = signatures[signature]
            if new_block == block:
                break
            block = new_block
        num_blocks = max(block) + 1
        transitions: list[dict[Atom, int]] = [dict() for _ in range(num_blocks)]
        for state in range(n):
            b = block[state]
            for atom in atoms:
                transitions[b][atom] = block[complete.transitions[state][atom]]
        accepting = {block[s] for s in complete.accepting}
        # drop blocks unreachable from the initial block (completion debris)
        reachable = {block[complete.initial]}
        queue = deque(reachable)
        while queue:
            b = queue.popleft()
            for target in transitions[b].values():
                if target not in reachable:
                    reachable.add(target)
                    queue.append(target)
        renumber = {old: new for new, old in enumerate(sorted(reachable))}
        final_transitions = [
            {atom: renumber[t] for atom, t in transitions[old].items()}
            for old in sorted(reachable)
        ]
        return DFA(
            complete.atoms,
            renumber[block[complete.initial]],
            {renumber[b] for b in accepting if b in renumber},
            final_transitions,
        )


def dfa_to_nfa(dfa: DFA) -> NFA:
    """Re-embed a DFA into the NFA representation (atoms become symbols).

    Character atoms become literal arcs, the remainder atom becomes its
    complemented character class, and marker/reference atoms carry over
    unchanged — so the result is a drop-in NFA for every downstream
    construction.
    """
    nfa = NFA()
    nfa.add_states(dfa.num_states)
    nfa.initial = {dfa.initial}
    nfa.accepting = set(dfa.accepting)
    for state in range(dfa.num_states):
        for atom, target in dfa.transitions[state].items():
            nfa.add_arc(state, atom, target)
    return nfa


def difference(left: NFA, right: NFA) -> NFA:
    """An NFA for ``L(left) \\ L(right)``.

    Built as the product of the determinised operands over shared atoms,
    accepting where *left* accepts and *right* does not.
    """
    atoms = compute_atoms(left, right)
    d_left = determinize(left, atoms)
    d_right = determinize(right, atoms)
    index: dict[tuple[int, int], int] = {}
    transitions: list[dict[Atom, int]] = []
    accepting: set[int] = set()

    def state_of(pair: tuple[int, int]) -> int:
        if pair not in index:
            index[pair] = len(transitions)
            transitions.append({})
        return index[pair]

    start = (d_left.initial, d_right.initial)
    queue = deque([start])
    state_of(start)
    seen = {start}
    while queue:
        pair = queue.popleft()
        s_left, s_right = pair
        here = index[pair]
        if s_left in d_left.accepting and (
            s_right == DEAD or s_right not in d_right.accepting
        ):
            accepting.add(here)
        for atom, t_left in d_left.transitions[s_left].items():
            t_right = (
                DEAD if s_right == DEAD else d_right.transitions[s_right].get(atom, DEAD)
            )
            nxt = (t_left, t_right)
            transitions[here][atom] = state_of(nxt)
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return dfa_to_nfa(DFA(atoms, index[start], accepting, transitions))


def compute_atoms(*nfas: NFA) -> Atoms:
    """The shared atom decomposition of several automata's symbols."""
    symbols: set[Symbol] = set()
    for nfa in nfas:
        symbols.update(nfa.symbols())
    return Atoms(symbols)


def determinize(nfa: NFA, atoms: Atoms | None = None) -> DFA:
    """Subset construction over the (shared) atom decomposition."""
    if atoms is None:
        atoms = compute_atoms(nfa)
    start = nfa.start_states()
    index: dict[frozenset[int], int] = {start: 0}
    transitions: list[dict[Atom, int]] = [dict()]
    accepting: set[int] = set()
    queue: deque[frozenset[int]] = deque([start])
    while queue:
        current = queue.popleft()
        state_id = index[current]
        if current & nfa.accepting:
            accepting.add(state_id)
        for atom in atoms.atoms:
            targets: set[int] = set()
            for state in current:
                for symbol, target in nfa.arcs_from(state):
                    if symbol is not None and atoms.covered_by(symbol, atom):
                        targets.add(target)
            if not targets:
                continue
            closed = nfa.epsilon_closure(targets)
            if closed not in index:
                index[closed] = len(transitions)
                transitions.append(dict())
                queue.append(closed)
            transitions[state_id][atom] = index[closed]
    return DFA(atoms, 0, accepting, transitions)


def equivalent(left: NFA, right: NFA) -> bool:
    """Language equivalence of two NFAs (Hopcroft–Karp on the DFAs)."""
    atoms = compute_atoms(left, right)
    d1 = determinize(left, atoms)
    d2 = determinize(right, atoms)
    return _bisimilar(d1, d2, atoms)


def contains(outer: NFA, inner: NFA) -> bool:
    """True if ``L(inner) ⊆ L(outer)``.

    Decided by checking emptiness of ``L(inner) ∩ complement(L(outer))`` on
    the product of the determinised automata.
    """
    atoms = compute_atoms(outer, inner)
    d_out = determinize(outer, atoms)
    d_in = determinize(inner, atoms)
    seen = {(d_in.initial, d_out.initial)}
    queue = deque(seen)
    while queue:
        s_in, s_out = queue.popleft()
        in_accepting = s_in in d_in.accepting
        out_accepting = s_out != DEAD and s_out in d_out.accepting
        if in_accepting and not out_accepting:
            return False
        if s_in == DEAD:
            continue
        for atom, t_in in d_in.transitions[s_in].items():
            t_out = DEAD if s_out == DEAD else d_out.transitions[s_out].get(atom, DEAD)
            if (t_in, t_out) not in seen:
                seen.add((t_in, t_out))
                queue.append((t_in, t_out))
    return True


def _bisimilar(d1: DFA, d2: DFA, atoms: Atoms) -> bool:
    """Hopcroft–Karp union-find equivalence test of two DFAs."""
    parent: dict[tuple[int, int], tuple[int, int]] = {}

    def find(node: tuple[int, int]) -> tuple[int, int]:
        root = node
        while root in parent:
            root = parent[root]
        while node in parent:
            parent[node], node = root, parent[node]
        return root

    def accepting(which: int, state: int) -> bool:
        if state == DEAD:
            return False
        return state in (d1.accepting if which == 1 else d2.accepting)

    stack = [((1, d1.initial), (2, d2.initial))]
    while stack:
        a, b = stack.pop()
        ra, rb = find(a), find(b)
        if ra == rb:
            continue
        if accepting(*a) != accepting(*b):
            return False
        parent[ra] = rb
        for atom in atoms.atoms:
            which_a, state_a = a
            which_b, state_b = b
            ta = DEAD if state_a == DEAD else (
                d1.transitions[state_a].get(atom, DEAD)
                if which_a == 1 else d2.transitions[state_a].get(atom, DEAD)
            )
            tb = DEAD if state_b == DEAD else (
                d1.transitions[state_b].get(atom, DEAD)
                if which_b == 1 else d2.transitions[state_b].get(atom, DEAD)
            )
            stack.append(((which_a, ta), (which_b, tb)))
    return True
