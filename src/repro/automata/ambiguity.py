"""Ambiguity analysis of NFAs and vset-automata.

An automaton is *unambiguous* if every accepted word has exactly one
accepting run.  For spanners this matters twice:

* an unambiguous vset-automaton needs no determinisation for duplicate-free
  enumeration (every tuple corresponds to one run already), and
* the counting/probability semirings of :mod:`repro.spanners.weighted` are
  only meaningful annotations when run counts are what you intend to
  measure — :func:`is_unambiguous` tells you whether they will all be 1.

The decision procedure is the classical self-product: run the automaton
against itself, tracking whether the two runs have ever *diverged* (taken
different arcs on the same input position).  The automaton is ambiguous
iff an accepting pair is reachable in the diverged state.  ε-transitions
are removed first, so ε-ambiguity (two ε-paths between the same events) is
deliberately not counted — it has no observable effect on runs over
symbols.
"""

from __future__ import annotations

import itertools

from repro.automata.nfa import NFA
from repro.automata.ops import intersect_symbols

__all__ = ["is_unambiguous", "ambiguous_witness"]


def _diverging_product(nfa: NFA):
    """BFS over ((p, q), diverged) pairs; yields accepting diverged nodes."""
    stripped = nfa.remove_epsilon().trim()
    start_nodes = {
        (p, q, p != q)
        for p in stripped.initial
        for q in stripped.initial
    }
    seen = set(start_nodes)
    parent: dict[tuple, tuple | None] = {node: None for node in start_nodes}
    queue = list(start_nodes)
    while queue:
        node = queue.pop()
        p, q, diverged = node
        if (
            diverged
            and p in stripped.accepting
            and q in stripped.accepting
        ):
            yield node, parent, stripped
            continue
        arcs_p = list(stripped.arcs_from(p))
        arcs_q = list(stripped.arcs_from(q))
        for (index_p, (symbol_p, target_p)), (index_q, (symbol_q, target_q)) in (
            itertools.product(enumerate(arcs_p), enumerate(arcs_q))
        ):
            met = intersect_symbols(symbol_p, symbol_q)
            if met is None:
                continue
            now_diverged = diverged or (p == q and index_p != index_q) or (p != q)
            successor = (target_p, target_q, now_diverged)
            if successor not in seen:
                seen.add(successor)
                parent[successor] = (node, met)
                queue.append(successor)


def is_unambiguous(nfa: NFA) -> bool:
    """True if every accepted word has exactly one accepting run."""
    for _ in _diverging_product(nfa):
        return False
    return True


def ambiguous_witness(nfa: NFA) -> list | None:
    """A word (symbol list) with ≥ 2 accepting runs, or ``None``.

    Character-class arcs contribute a witness character.
    """
    from repro.core.alphabet import CharClass

    for node, parent, _ in _diverging_product(nfa):
        word = []
        current = node
        while parent[current] is not None:
            current, symbol = parent[current]
            if isinstance(symbol, CharClass):
                word.append(symbol.witness())
            else:
                word.append(symbol)
        word.reverse()
        return word
    return None
