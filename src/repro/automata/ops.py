"""Regular-language operations on NFAs.

These are the classical closure properties that the spanner framework
leans on throughout: union, concatenation, star, intersection (the
"intersection with regular languages" of Section 2.1, under which any
spanner-describing language class should be closed), emptiness, and
universality.
"""

from __future__ import annotations

from repro.automata.dfa import compute_atoms, determinize
from repro.automata.nfa import EPSILON, NFA
from repro.core.alphabet import CharClass, Symbol

__all__ = [
    "union",
    "concat",
    "star",
    "plus",
    "optional",
    "intersection",
    "intersect_symbols",
    "is_empty",
    "is_universal",
    "epsilon_nfa",
    "never_nfa",
]


def epsilon_nfa() -> NFA:
    """An NFA accepting exactly the empty word."""
    nfa = NFA()
    nfa.add_state(initial=True, accepting=True)
    return nfa


def never_nfa() -> NFA:
    """An NFA accepting nothing."""
    nfa = NFA()
    nfa.add_state(initial=True)
    return nfa


def _embed(target: NFA, source: NFA) -> dict[int, int]:
    """Copy *source*'s states and arcs into *target*; return the state map."""
    mapping = {old: target.add_state() for old in source.states()}
    for src, symbol, dst in source.arcs():
        target.add_arc(mapping[src], symbol, mapping[dst])
    return mapping


def union(*operands: NFA) -> NFA:
    """The disjoint-sum union of several NFAs."""
    result = NFA()
    start = result.add_state(initial=True)
    for operand in operands:
        mapping = _embed(result, operand)
        for state in operand.initial:
            result.add_arc(start, EPSILON, mapping[state])
        result.accepting.update(mapping[state] for state in operand.accepting)
    return result


def concat(*operands: NFA) -> NFA:
    """Concatenation of several NFAs (ε-linked)."""
    result = NFA()
    previous_accepting: list[int] | None = None
    for operand in operands:
        mapping = _embed(result, operand)
        entry = [mapping[state] for state in operand.initial]
        if previous_accepting is None:
            result.initial.update(entry)
        else:
            for accept in previous_accepting:
                for state in entry:
                    result.add_arc(accept, EPSILON, state)
        previous_accepting = [mapping[state] for state in operand.accepting]
    result.accepting.update(previous_accepting or [])
    if previous_accepting is None:  # zero operands: the empty word
        return epsilon_nfa()
    return result


def star(operand: NFA) -> NFA:
    """Kleene star."""
    result = NFA()
    hub = result.add_state(initial=True, accepting=True)
    mapping = _embed(result, operand)
    for state in operand.initial:
        result.add_arc(hub, EPSILON, mapping[state])
    for state in operand.accepting:
        result.add_arc(mapping[state], EPSILON, hub)
    return result


def plus(operand: NFA) -> NFA:
    """One-or-more repetitions."""
    return concat(operand, star(operand))


def optional(operand: NFA) -> NFA:
    """Zero-or-one occurrence."""
    return union(operand, epsilon_nfa())


def intersect_symbols(left: Symbol, right: Symbol) -> Symbol | None:
    """The symbol read by a synchronised product arc, or ``None`` if disjoint.

    Characters and character classes intersect as predicates; exact symbols
    (markers, references) must be equal.
    """
    if isinstance(left, str) and isinstance(right, str):
        return left if left == right else None
    if isinstance(left, str) and isinstance(right, CharClass):
        return left if right.matches(left) else None
    if isinstance(left, CharClass) and isinstance(right, str):
        return right if left.matches(right) else None
    if isinstance(left, CharClass) and isinstance(right, CharClass):
        meet = left.intersect(right)
        return None if meet.is_empty() else meet
    return left if left == right else None


def intersection(left: NFA, right: NFA) -> NFA:
    """The synchronised product automaton (language intersection).

    ε-arcs of either operand advance that component alone, so the operands
    need not be ε-free.
    """
    result = NFA()
    index: dict[tuple[int, int], int] = {}

    def state_of(pair: tuple[int, int]) -> int:
        if pair not in index:
            index[pair] = result.add_state()
        return index[pair]

    stack: list[tuple[int, int]] = []
    for s1 in left.initial:
        for s2 in right.initial:
            pair = (s1, s2)
            state_of(pair)
            result.initial.add(index[pair])
            stack.append(pair)
    seen = set(stack)
    while stack:
        pair = stack.pop()
        s1, s2 = pair
        here = state_of(pair)
        if s1 in left.accepting and s2 in right.accepting:
            result.accepting.add(here)
        moves: list[tuple[Symbol | None, tuple[int, int]]] = []
        for symbol, target in left.arcs_from(s1):
            if symbol is EPSILON:
                moves.append((EPSILON, (target, s2)))
        for symbol, target in right.arcs_from(s2):
            if symbol is EPSILON:
                moves.append((EPSILON, (s1, target)))
        for symbol1, target1 in left.arcs_from(s1):
            if symbol1 is EPSILON:
                continue
            for symbol2, target2 in right.arcs_from(s2):
                if symbol2 is EPSILON:
                    continue
                met = intersect_symbols(symbol1, symbol2)
                if met is not None:
                    moves.append((met, (target1, target2)))
        for symbol, next_pair in moves:
            result.add_arc(here, symbol, state_of(next_pair))
            if next_pair not in seen:
                seen.add(next_pair)
                stack.append(next_pair)
    return result


def is_empty(nfa: NFA) -> bool:
    """Emptiness of the accepted language."""
    return nfa.is_empty()


def is_universal(nfa: NFA) -> bool:
    """True if the NFA accepts *every* word over its symbol universe.

    Universality is decided via complementation of the determinised
    automaton — PSpace-complete in general, fine at library scale.
    """
    atoms = compute_atoms(nfa)
    return determinize(nfa, atoms).complement().is_empty()
