"""Extended vset-automata (eVA) and their determinisation.

Extended vset-automata — introduced by Florenzano et al. [10] and recalled
as "Option 2" in Section 2.2 of the paper — read, instead of individual
marker symbols, *sets* of markers in a single transition.  A document plus a
span tuple then has a *unique* extended representation (the marker sets
sitting between the document's characters), which removes the
marker-ordering ambiguity of plain vset-automata.  This canonicity is what
the library's duplicate-free enumeration (Section 2.5), join construction,
and containment/equivalence tests are built on.

The deterministic form (:class:`DeterministicEVA`) is the central compiled
artefact: every output of the spanner corresponds to exactly one run, so
path enumeration in the (automaton × document) product DAG enumerates the
span relation without repetition — and the per-node transition *functions*
compose, which the SLP-compressed evaluation of Section 4 exploits.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.automata.dfa import Atoms, compute_atoms
from repro.automata.nfa import NFA
from repro.automata.ops import intersect_symbols
from repro.core.alphabet import Marker, Symbol, sort_markers, symbol_matches
from repro.errors import SchemaError

__all__ = ["ExtendedVSetAutomaton", "DeterministicEVA", "join"]

MarkerSet = frozenset


class ExtendedVSetAutomaton:
    """An automaton whose arcs read characters or non-empty marker sets."""

    def __init__(
        self,
        num_states: int,
        initial: set[int],
        accepting: set[int],
        char_arcs: dict[int, list[tuple[Symbol, int]]],
        set_arcs: dict[int, list[tuple[MarkerSet, int]]],
        variables: frozenset[str],
        functional: bool = False,
    ) -> None:
        self.num_states = num_states
        self.initial = initial
        self.accepting = accepting
        self.char_arcs = char_arcs
        self.set_arcs = set_arcs
        self.variables = variables
        self.functional = functional

    # ------------------------------------------------------------------
    # construction from a vset-automaton
    # ------------------------------------------------------------------
    @classmethod
    def from_vset(cls, vset) -> "ExtendedVSetAutomaton":
        """Collapse runs of consecutive marker arcs into set arcs.

        ε-transitions are eliminated first; then, for every state, all
        states reachable by reading a duplicate-free sequence of markers
        become set-arc targets labelled by the set of markers read.  Paths
        repeating a marker are pruned — they can only generate invalid
        subword-marked words, which carry no spanner semantics.
        """
        nfa = vset.nfa.remove_epsilon()
        char_arcs: dict[int, list[tuple[Symbol, int]]] = {
            state: [] for state in nfa.states()
        }
        set_arcs: dict[int, list[tuple[MarkerSet, int]]] = {
            state: [] for state in nfa.states()
        }
        for state in nfa.states():
            for symbol, target in nfa.arcs_from(state):
                if not isinstance(symbol, Marker):
                    char_arcs[state].append((symbol, target))
            # DFS over marker arcs collecting duplicate-free marker sets.
            found: set[tuple[MarkerSet, int]] = set()
            stack: list[tuple[int, MarkerSet]] = [(state, frozenset())]
            visited: set[tuple[int, MarkerSet]] = {(state, frozenset())}
            while stack:
                here, markers = stack.pop()
                for symbol, target in nfa.arcs_from(here):
                    if not isinstance(symbol, Marker) or symbol in markers:
                        continue
                    extended = markers | {symbol}
                    node = (target, extended)
                    if node in visited:
                        continue
                    visited.add(node)
                    found.add((extended, target))
                    stack.append(node)
            set_arcs[state].extend(sorted(found, key=lambda a: (sorted(map(repr, a[0])), a[1])))
        return cls(
            nfa.num_states,
            set(nfa.initial),
            set(nfa.accepting),
            char_arcs,
            set_arcs,
            vset.variables,
            vset.functional,
        )

    # ------------------------------------------------------------------
    # running on extended words
    # ------------------------------------------------------------------
    def _step_block(self, states: Iterable[int], block: MarkerSet) -> set[int]:
        """Apply one marker block: the empty block is a no-op."""
        if not block:
            return set(states)
        targets = set()
        for state in states:
            for arc_set, target in self.set_arcs[state]:
                if arc_set == block:
                    targets.add(target)
        return targets

    def _step_char(self, states: Iterable[int], ch: str) -> set[int]:
        targets = set()
        for state in states:
            for symbol, target in self.char_arcs[state]:
                if symbol_matches(symbol, ch):
                    targets.add(target)
        return targets

    def run(self, blocks: Sequence[MarkerSet], doc: str) -> bool:
        """Membership of the extended word given by *blocks* and *doc*.

        ``blocks`` must have length ``len(doc) + 1`` (as produced by
        :meth:`repro.core.marked.MarkedWord.extended_blocks`).
        """
        if len(blocks) != len(doc) + 1:
            raise SchemaError("blocks must have length len(doc) + 1")
        current: set[int] = set(self.initial)
        for index, ch in enumerate(doc):
            current = self._step_block(current, blocks[index])
            if not current:
                return False
            current = self._step_char(current, ch)
            if not current:
                return False
        current = self._step_block(current, blocks[len(doc)])
        return bool(current & self.accepting)

    # ------------------------------------------------------------------
    # expansion back to a vset-automaton (canonical marker order)
    # ------------------------------------------------------------------
    def to_vset(self):
        """Expand set arcs into canonically ordered chains of marker arcs.

        The result accepts exactly the *canonical* subword-marked words of
        the represented spanner — i.e. it is a normalised vset-automaton.
        To prevent two set arcs from concatenating into a non-canonical
        marker run, each eVA state is split into a *pre-block* and a
        *post-block* copy: at every document position exactly one (possibly
        empty) marker block is read, in canonical order.
        """
        from repro.automata.vset import VSetAutomaton

        nfa = NFA()
        pre = [nfa.add_state() for _ in range(self.num_states)]
        post = [nfa.add_state() for _ in range(self.num_states)]
        nfa.initial = {pre[state] for state in self.initial}
        nfa.accepting = {post[state] for state in self.accepting}
        for state in range(self.num_states):
            nfa.add_arc(pre[state], None, post[state])  # empty block
            for symbol, target in self.char_arcs[state]:
                nfa.add_arc(post[state], symbol, pre[target])
            for marker_set, target in self.set_arcs[state]:
                ordered = sort_markers(marker_set)
                here = pre[state]
                for marker in ordered[:-1]:
                    fresh = nfa.add_state()
                    nfa.add_arc(here, marker, fresh)
                    here = fresh
                nfa.add_arc(here, ordered[-1], post[target])
        return VSetAutomaton(nfa, self.variables, self.functional)

    # ------------------------------------------------------------------
    # determinisation
    # ------------------------------------------------------------------
    def determinize(self, atoms: Atoms | None = None) -> "DeterministicEVA":
        """Subset construction over characters *and* marker-set letters.

        In the result, every extended word has at most one run, hence every
        (document, span tuple) pair is produced by at most one accepting
        run — the duplicate-freeness required for enumeration [10, 2].
        """
        if atoms is None:
            symbols = set()
            for arcs in self.char_arcs.values():
                symbols.update(symbol for symbol, _ in arcs)
            atoms = Atoms(symbols)
        start = frozenset(self.initial)
        index: dict[frozenset[int], int] = {start: 0}
        char_trans: list[dict] = [dict()]
        set_trans: list[dict[MarkerSet, int]] = [dict()]
        accepting: set[int] = set()
        queue: deque[frozenset[int]] = deque([start])
        while queue:
            current = queue.popleft()
            state_id = index[current]
            if current & self.accepting:
                accepting.add(state_id)
            for atom in atoms.atoms:
                targets = set()
                for state in current:
                    for symbol, target in self.char_arcs[state]:
                        if atoms.covered_by(symbol, atom):
                            targets.add(target)
                if targets:
                    key = frozenset(targets)
                    if key not in index:
                        index[key] = len(char_trans)
                        char_trans.append(dict())
                        set_trans.append(dict())
                        queue.append(key)
                    char_trans[state_id][atom] = index[key]
            blocks: dict[MarkerSet, set[int]] = {}
            for state in current:
                for marker_set, target in self.set_arcs[state]:
                    blocks.setdefault(marker_set, set()).add(target)
            for marker_set, targets in blocks.items():
                key = frozenset(targets)
                if key not in index:
                    index[key] = len(char_trans)
                    char_trans.append(dict())
                    set_trans.append(dict())
                    queue.append(key)
                set_trans[state_id][marker_set] = index[key]
        return DeterministicEVA(
            atoms, 0, accepting, char_trans, set_trans, self.variables, self.functional
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sets = sum(len(v) for v in self.set_arcs.values())
        chars = sum(len(v) for v in self.char_arcs.values())
        return (
            f"ExtendedVSetAutomaton(states={self.num_states}, "
            f"char_arcs={chars}, set_arcs={sets})"
        )


class DeterministicEVA:
    """A deterministic extended vset-automaton.

    ``char_trans[q]`` maps character atoms to successor states;
    ``set_trans[q]`` maps marker-set letters to successor states.  Every
    extended word has at most one run, so accepting runs are in bijection
    with the spanner's output tuples.
    """

    __slots__ = (
        "atoms",
        "initial",
        "accepting",
        "char_trans",
        "set_trans",
        "variables",
        "functional",
        # weak-referenceable: the shared char-table store is keyed on the
        # automaton instance without pinning it alive
        "__weakref__",
    )

    def __init__(
        self,
        atoms: Atoms,
        initial: int,
        accepting: set[int],
        char_trans: list[dict],
        set_trans: list[dict[MarkerSet, int]],
        variables: frozenset[str],
        functional: bool,
    ) -> None:
        self.atoms = atoms
        self.initial = initial
        self.accepting = accepting
        self.char_trans = char_trans
        self.set_trans = set_trans
        self.variables = variables
        self.functional = functional

    @property
    def num_states(self) -> int:
        return len(self.char_trans)

    def step_char(self, state: int, ch: str) -> int | None:
        atom = self.atoms.classify(ch)
        if atom is None:
            return None
        return self.char_trans[state].get(atom)

    def step_set(self, state: int, block: MarkerSet) -> int | None:
        if not block:
            return state
        return self.set_trans[state].get(block)

    def run(self, blocks: Sequence[MarkerSet], doc: str) -> bool:
        """Membership of an extended word (deterministic, linear time)."""
        state: int | None = self.initial
        for index, ch in enumerate(doc):
            state = self.step_set(state, blocks[index])
            if state is None:
                return False
            state = self.step_char(state, ch)
            if state is None:
                return False
        state = self.step_set(state, blocks[len(doc)])
        return state is not None and state in self.accepting

    def marker_set_alphabet(self) -> set[MarkerSet]:
        """All marker-set letters appearing on transitions."""
        letters: set[MarkerSet] = set()
        for row in self.set_trans:
            letters.update(row.keys())
        return letters

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeterministicEVA(states={self.num_states})"


def join(
    left: ExtendedVSetAutomaton, right: ExtendedVSetAutomaton
) -> ExtendedVSetAutomaton:
    """Natural join ``⋈`` of two regular spanners as an eVA product.

    Character arcs synchronise (predicates intersect).  At each position,
    each operand emits a (possibly empty) marker set; the emissions must
    agree on the markers of *shared* variables — that is exactly the
    requirement that joined tuples assign shared variables the same span —
    and the product arc emits their union.
    """
    shared = left.variables & right.variables

    def shared_part(markers: MarkerSet) -> MarkerSet:
        return frozenset(m for m in markers if m.var in shared)

    index: dict[tuple[int, int], int] = {}
    char_arcs: dict[int, list[tuple[Symbol, int]]] = {}
    set_arcs: dict[int, list[tuple[MarkerSet, int]]] = {}
    initial: set[int] = set()
    accepting: set[int] = set()

    def state_of(pair: tuple[int, int]) -> int:
        if pair not in index:
            index[pair] = len(index)
            char_arcs[index[pair]] = []
            set_arcs[index[pair]] = []
        return index[pair]

    stack: list[tuple[int, int]] = []
    for s1 in left.initial:
        for s2 in right.initial:
            pair = (s1, s2)
            initial.add(state_of(pair))
            stack.append(pair)
    seen = set(stack)
    while stack:
        pair = stack.pop()
        s1, s2 = pair
        here = index[pair]
        if s1 in left.accepting and s2 in right.accepting:
            accepting.add(here)
        # synchronised character steps
        for symbol1, t1 in left.char_arcs[s1]:
            for symbol2, t2 in right.char_arcs[s2]:
                met = intersect_symbols(symbol1, symbol2)
                if met is None:
                    continue
                nxt = (t1, t2)
                char_arcs[here].append((met, state_of(nxt)))
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        # marker-set steps: each side emits a set or stays idle
        left_options = [(frozenset(), s1)] + list(left.set_arcs[s1])
        right_options = [(frozenset(), s2)] + list(right.set_arcs[s2])
        for set1, t1 in left_options:
            for set2, t2 in right_options:
                if not set1 and not set2:
                    continue
                if shared_part(set1) != shared_part(set2):
                    continue
                combined = set1 | set2
                nxt = (t1, t2)
                set_arcs[here].append((combined, state_of(nxt)))
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
    return ExtendedVSetAutomaton(
        len(index),
        initial,
        accepting,
        char_arcs,
        set_arcs,
        left.variables | right.variables,
        functional=left.functional and right.functional,
    )
