"""Nondeterministic finite automata over extended alphabets.

The :class:`NFA` here is the workhorse beneath every spanner representation:
its arcs carry either

* a concrete character (a 1-character string),
* a :class:`~repro.core.alphabet.CharClass` predicate (e.g. ``.``),
* a :class:`~repro.core.alphabet.Marker` (for vset-automata),
* a :class:`~repro.core.alphabet.Ref` (for refl-spanner automata), or
* ``None`` — an ε-transition.

States are dense integers, which keeps the product constructions and the
boolean-matrix kernels (Section 4.2 of the paper) simple and fast.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable, Iterator

from repro.core.alphabet import CharClass, Marker, Ref, Symbol, symbol_matches
from repro.errors import SpanlibError

__all__ = ["NFA", "EPSILON"]

#: The ε label (transitions that consume nothing).
EPSILON = None


class NFA:
    """A nondeterministic finite automaton with ε-transitions.

    The class is a *builder*: states and arcs are added imperatively
    (:meth:`add_state`, :meth:`add_arc`), after which the automaton can be
    queried, run, and combined.  All combination operations return fresh
    automata and never mutate their operands.
    """

    __slots__ = ("_num_states", "initial", "accepting", "_arcs")

    def __init__(self) -> None:
        self._num_states = 0
        self.initial: set[int] = set()
        self.accepting: set[int] = set()
        #: state -> list of (symbol-or-None, target)
        self._arcs: dict[int, list[tuple[Symbol | None, int]]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_state(self, initial: bool = False, accepting: bool = False) -> int:
        """Create a new state and return its id."""
        state = self._num_states
        self._num_states += 1
        self._arcs[state] = []
        if initial:
            self.initial.add(state)
        if accepting:
            self.accepting.add(state)
        return state

    def add_states(self, count: int) -> list[int]:
        """Create *count* fresh states."""
        return [self.add_state() for _ in range(count)]

    def add_arc(self, source: int, symbol: Symbol | None, target: int) -> None:
        """Add an arc; ``symbol is None`` means an ε-transition."""
        self._check_state(source)
        self._check_state(target)
        self._arcs[source].append((symbol, target))

    def _check_state(self, state: int) -> None:
        if not 0 <= state < self._num_states:
            raise SpanlibError(f"unknown state {state}")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return self._num_states

    def states(self) -> range:
        return range(self._num_states)

    def arcs_from(self, state: int) -> list[tuple[Symbol | None, int]]:
        """The outgoing arcs of *state* as (symbol, target) pairs."""
        return self._arcs[state]

    def arcs(self) -> Iterator[tuple[int, Symbol | None, int]]:
        """Iterate over all arcs as (source, symbol, target) triples."""
        for source in self.states():
            for symbol, target in self._arcs[source]:
                yield source, symbol, target

    def num_arcs(self) -> int:
        return sum(len(v) for v in self._arcs.values())

    def symbols(self) -> set[Symbol]:
        """All non-ε symbols appearing on arcs."""
        return {symbol for _, symbol, _ in self.arcs() if symbol is not None}

    def char_symbols(self) -> set[Symbol]:
        """All character-reading symbols (chars and char classes)."""
        return {
            s for s in self.symbols() if isinstance(s, (str, CharClass))
        }

    def marker_symbols(self) -> set[Marker]:
        return {s for s in self.symbols() if isinstance(s, Marker)}

    def ref_symbols(self) -> set[Ref]:
        return {s for s in self.symbols() if isinstance(s, Ref)}

    # ------------------------------------------------------------------
    # runs
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        """All states reachable from *states* via ε-transitions."""
        seen = set(states)
        stack = list(seen)
        while stack:
            state = stack.pop()
            for symbol, target in self._arcs[state]:
                if symbol is EPSILON and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def step_char(self, states: Iterable[int], ch: str) -> frozenset[int]:
        """One document-character step (including closing under ε)."""
        targets = set()
        for state in states:
            for symbol, target in self._arcs[state]:
                if symbol is not EPSILON and symbol_matches(symbol, ch):
                    targets.add(target)
        return self.epsilon_closure(targets)

    def step_exact(self, states: Iterable[int], symbol: Symbol) -> frozenset[int]:
        """One step on an exact (non-character) symbol such as a marker."""
        targets = set()
        for state in states:
            for arc_symbol, target in self._arcs[state]:
                if arc_symbol == symbol:
                    targets.add(target)
        return self.epsilon_closure(targets)

    def start_states(self) -> frozenset[int]:
        return self.epsilon_closure(self.initial)

    def accepts(self, word: str) -> bool:
        """Membership of a plain document string (chars only)."""
        current = self.start_states()
        for ch in word:
            if not current:
                return False
            current = self.step_char(current, ch)
        return bool(current & self.accepting)

    def accepts_symbols(self, word: Iterable[Hashable]) -> bool:
        """Membership of a word mixing characters and exact symbols.

        Characters are matched against char predicates; markers and
        references must match arcs exactly.  This is the membership routine
        used for subword-marked words.
        """
        current = self.start_states()
        for symbol in word:
            if not current:
                return False
            if isinstance(symbol, str):
                current = self.step_char(current, symbol)
            else:
                current = self.step_exact(current, symbol)
        return bool(current & self.accepting)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def reachable_states(self) -> set[int]:
        """States reachable from an initial state."""
        seen = set(self.initial)
        queue = deque(seen)
        while queue:
            state = queue.popleft()
            for _, target in self._arcs[state]:
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen

    def coreachable_states(self) -> set[int]:
        """States from which an accepting state is reachable."""
        backward: dict[int, set[int]] = {state: set() for state in self.states()}
        for source, _, target in self.arcs():
            backward[target].add(source)
        seen = set(self.accepting)
        queue = deque(seen)
        while queue:
            state = queue.popleft()
            for source in backward[state]:
                if source not in seen:
                    seen.add(source)
                    queue.append(source)
        return seen

    def trim(self) -> "NFA":
        """The sub-automaton of useful (reachable and co-reachable) states."""
        useful = sorted(self.reachable_states() & self.coreachable_states())
        renumber = {old: new for new, old in enumerate(useful)}
        result = NFA()
        result.add_states(len(useful))
        result.initial = {renumber[s] for s in self.initial if s in renumber}
        result.accepting = {renumber[s] for s in self.accepting if s in renumber}
        for source, symbol, target in self.arcs():
            if source in renumber and target in renumber:
                result.add_arc(renumber[source], symbol, renumber[target])
        return result

    def copy(self) -> "NFA":
        result = NFA()
        result.add_states(self.num_states)
        result.initial = set(self.initial)
        result.accepting = set(self.accepting)
        for source, symbol, target in self.arcs():
            result.add_arc(source, symbol, target)
        return result

    def map_symbols(self, mapping: Callable[[Symbol], Symbol | None]) -> "NFA":
        """Rewrite every non-ε arc symbol through *mapping*.

        Returning ``None`` from *mapping* turns the arc into an ε-transition
        (this is how projection erases markers of dropped variables).
        """
        result = NFA()
        result.add_states(self.num_states)
        result.initial = set(self.initial)
        result.accepting = set(self.accepting)
        for source, symbol, target in self.arcs():
            new_symbol = symbol if symbol is EPSILON else mapping(symbol)
            result.add_arc(source, new_symbol, target)
        return result

    def reverse(self) -> "NFA":
        """The reversal automaton (accepts mirrored words)."""
        result = NFA()
        result.add_states(self.num_states)
        result.initial = set(self.accepting)
        result.accepting = set(self.initial)
        for source, symbol, target in self.arcs():
            result.add_arc(target, symbol, source)
        return result

    def remove_epsilon(self) -> "NFA":
        """An equivalent automaton without ε-transitions."""
        result = NFA()
        result.add_states(self.num_states)
        result.initial = set(self.initial)
        for state in self.states():
            closure = self.epsilon_closure([state])
            if closure & self.accepting:
                result.accepting.add(state)
            for mid in closure:
                for symbol, target in self._arcs[mid]:
                    if symbol is not EPSILON:
                        result.add_arc(state, symbol, target)
        return result

    # ------------------------------------------------------------------
    # decision helpers
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True if the accepted language is empty."""
        return not (self.reachable_states() & self.accepting)

    def shortest_word(self) -> list[Symbol] | None:
        """A shortest accepted word as a symbol list, or ``None`` if empty.

        Character-class symbols are reported by a witness character.
        ε-arcs contribute nothing.  BFS over states, so the result has
        minimum length.
        """
        parent: dict[int, tuple[int, Symbol | None] | None] = {}
        queue: deque[int] = deque()
        for state in self.initial:
            parent[state] = None
            queue.append(state)
        goal = None
        while queue:
            state = queue.popleft()
            if state in self.accepting:
                goal = state
                break
            for symbol, target in self._arcs[state]:
                if target not in parent:
                    parent[target] = (state, symbol)
                    queue.append(target)
        if goal is None:
            return None
        word: list[Symbol] = []
        state = goal
        while parent[state] is not None:
            state, symbol = parent[state]  # type: ignore[misc]
            if symbol is not EPSILON:
                if isinstance(symbol, CharClass):
                    witness = symbol.witness()
                    if witness is None:
                        raise SpanlibError("empty char class on a useful arc")
                    word.append(witness)
                else:
                    word.append(symbol)
        word.reverse()
        return word

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NFA(states={self.num_states}, arcs={self.num_arcs()}, "
            f"initial={sorted(self.initial)}, accepting={sorted(self.accepting)})"
        )


def literal_nfa(word: str) -> NFA:
    """An NFA accepting exactly *word*."""
    nfa = NFA()
    states = nfa.add_states(len(word) + 1)
    nfa.initial = {states[0]}
    nfa.accepting = {states[-1]}
    for index, ch in enumerate(word):
        nfa.add_arc(states[index], ch, states[index + 1])
    return nfa


__all__ += ["literal_nfa"]
