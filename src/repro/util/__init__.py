"""Utilities: synthetic workloads, resource budgets, fault injection."""

from repro.util.budget import Budget, Deadline
from repro.util.faults import (
    ChaosInjector,
    ChaosOperation,
    FeedChaos,
    WorkerChaos,
    fail_at_allocation,
    fail_at_call,
    fail_in_preprocess,
    truncate_file,
    truncate_journal_write,
)
from repro.util.workloads import (
    gene_sequence,
    log_document,
    random_text,
    repetitive_text,
    sparse_matches,
)

__all__ = [
    "Budget",
    "ChaosInjector",
    "ChaosOperation",
    "Deadline",
    "FeedChaos",
    "WorkerChaos",
    "fail_at_allocation",
    "fail_at_call",
    "fail_in_preprocess",
    "gene_sequence",
    "log_document",
    "random_text",
    "repetitive_text",
    "sparse_matches",
    "truncate_file",
    "truncate_journal_write",
]
