"""Utilities: synthetic workload generators."""

from repro.util.workloads import (
    gene_sequence,
    log_document,
    random_text,
    repetitive_text,
    sparse_matches,
)

__all__ = [
    "gene_sequence",
    "log_document",
    "random_text",
    "repetitive_text",
    "sparse_matches",
]
