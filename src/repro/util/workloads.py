"""Deterministic synthetic workload generators.

The paper's motivating data — AQL/SystemT-style text corpora, bio-sequences
and "sequential log-files of large systems" (Section 4) — are not shipped
with the paper, so the benchmarks substitute deterministic generators with
tunable size and compressibility (see DESIGN.md, "Substitutions").  All
generators are seeded, so every benchmark run sees identical documents.
"""

from __future__ import annotations

import random
import string

__all__ = [
    "random_text",
    "repetitive_text",
    "gene_sequence",
    "log_document",
    "sparse_matches",
]


def random_text(length: int, alphabet: str = "ab", seed: int = 0) -> str:
    """Uniform random (hence barely compressible) text."""
    rng = random.Random(seed)
    return "".join(rng.choice(alphabet) for _ in range(length))


def repetitive_text(unit: str, repeats: int) -> str:
    """``unit^repeats`` — maximally SLP-compressible."""
    return unit * repeats


def gene_sequence(length: int, seed: int = 0, motif: str = "ACGTGACT") -> str:
    """A DNA-like sequence: random ACGT with frequent copies of *motif*
    (moderate compressibility, realistic repeat structure)."""
    rng = random.Random(seed)
    out: list[str] = []
    while sum(len(part) for part in out) < length:
        if rng.random() < 0.3:
            out.append(motif)
        else:
            out.append(rng.choice("ACGT"))
    return "".join(out)[:length]


def log_document(
    lines: int, seed: int = 0, codes: tuple[int, int] = (100, 599)
) -> str:
    """A synthetic server log: one ``level user=NAME code=NNN msg;`` record
    per line — the information-extraction workload of the examples and the
    algebra benchmark (experiment C9).  Narrow the *codes* range to force
    repeated (user, code) pairs for equality-selection demos."""
    rng = random.Random(seed)
    levels = ["INFO", "WARN", "ERROR"]
    users = ["ada", "bob", "cleo", "dan", "eve"]
    words = ["login", "logout", "read", "write", "retry", "timeout"]
    records = []
    for _ in range(lines):
        level = rng.choice(levels)
        user = rng.choice(users)
        code = rng.randint(*codes)
        message = " ".join(rng.choice(words) for _ in range(rng.randint(1, 3)))
        records.append(f"{level} user={user} code={code} {message};")
    return "\n".join(records) + "\n"


def sparse_matches(match: str, filler: str, count: int, gap: int) -> str:
    """*count* copies of *match*, separated by *gap* copies of *filler* —
    the far-apart-matches document of the constant-delay benchmark (C1)."""
    return (filler * gap + match) * count
