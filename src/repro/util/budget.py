"""Resource governance for evaluation: deadlines, step budgets, byte guards.

SLP-compressed documents can be exponentially longer than their compressed
representation, and several spanner problems are intrinsically expensive
(core-spanner satisfiability is PSpace-complete).  A :class:`Budget` turns
"this call may hang or OOM" into "this call raises a clean, typed error":

>>> from repro.util import Budget
>>> budget = Budget(deadline=2.0, max_steps=1_000_000, max_bytes=10**8)

and is threaded through ``RegularSpanner.evaluate/enumerate``, the
constant-delay :class:`~repro.enumeration.constant_delay.Enumerator`,
:class:`~repro.slp.spanner_eval.SLPSpannerEvaluator`, CDE application,
``SpannerDB.query``/``evaluate``/``document_text``, and the decision
procedures.  Exhaustion raises

* :class:`~repro.errors.DeadlineExceededError` — wall-clock deadline hit;
* :class:`~repro.errors.EvaluationLimitError` — step allowance exhausted;
* :class:`~repro.errors.MemoryLimitError` — an operation would materialise
  more than ``max_bytes`` (the decompression-bomb guard).

Budgets are deliberately cheap: :meth:`Budget.step` is an integer
decrement, and the (comparatively costly) clock read happens only every
``check_interval`` steps, so governed evaluation stays within a few percent
of ungoverned evaluation (``benchmarks/bench_faults.py`` measures this).
"""

from __future__ import annotations

import time

from repro import obs
from repro.errors import (
    DeadlineExceededError,
    EvaluationLimitError,
    MemoryLimitError,
)

__all__ = ["Budget", "Deadline"]


class Deadline:
    """A wall-clock deadline on the monotonic clock.

    Construct with :meth:`after` (relative seconds) or directly from a
    ``time.monotonic()`` instant.  Shared between budgets if desired.
    """

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = float(at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """The deadline *seconds* from now."""
        return cls(time.monotonic() + float(seconds))

    @classmethod
    def earliest(cls, *deadlines: "Deadline | None") -> "Deadline | None":
        """The tightest of several optional deadlines (``None`` = unbounded).

        The serving layer combines a per-request deadline with the
        service-wide default this way; a request can tighten but never
        loosen the service's bound."""
        instants = [d.at for d in deadlines if d is not None]
        if not instants:
            return None
        return cls(min(instants))

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(remaining={self.remaining():.3f}s)"


class Budget:
    """A combined wall-clock / step / byte allowance for one unit of work.

    Parameters
    ----------
    deadline:
        Either a number of seconds from now or a :class:`Deadline`.
        Checked every ``check_interval`` steps;
        :class:`~repro.errors.DeadlineExceededError` on expiry.
    max_steps:
        Total abstract work units (matrix products, enumeration nodes,
        candidate documents, …) before
        :class:`~repro.errors.EvaluationLimitError`.
    max_bytes:
        High-water guard against materialising huge strings or indexes
        (:class:`~repro.errors.MemoryLimitError`).  This is a per-operation
        guard, not a cumulative allocator account.
    check_interval:
        How many steps between clock reads; the amortisation knob.

    A budget is *stateful*: ``steps`` accumulates across every call it is
    passed to, so one budget can govern a whole request end-to-end.
    """

    __slots__ = ("deadline", "max_steps", "max_bytes", "steps", "check_interval", "_until_check")

    def __init__(
        self,
        deadline: float | Deadline | None = None,
        max_steps: int | None = None,
        max_bytes: int | None = None,
        check_interval: int = 64,
    ) -> None:
        if deadline is not None and not isinstance(deadline, Deadline):
            deadline = Deadline.after(deadline)
        self.deadline = deadline
        self.max_steps = max_steps
        self.max_bytes = max_bytes
        self.steps = 0
        self.check_interval = max(1, int(check_interval))
        self._until_check = 0  # check the clock on the very first step

    # ------------------------------------------------------------------
    def step(self, cost: int = 1) -> None:
        """Charge *cost* abstract work units; raise when exhausted."""
        self.steps += cost
        if self.max_steps is not None and self.steps > self.max_steps:
            raise EvaluationLimitError(
                f"evaluation exceeded its step budget of {self.max_steps}"
            )
        self._until_check -= cost
        if self._until_check <= 0:
            self._until_check = self.check_interval
            # piggyback the (amortised) gauge publish on the same cadence
            # as the clock read, so the hot path stays a decrement
            if obs.enabled():
                obs.metrics().gauge("budget.steps").set(self.steps)
            self.check_deadline()

    def check_deadline(self) -> None:
        """Unconditionally check the wall-clock deadline (if any)."""
        if self.deadline is not None and self.deadline.expired():
            raise DeadlineExceededError(
                f"evaluation deadline exceeded after {self.steps} steps"
            )

    def charge_bytes(self, count: int, what: str = "operation") -> None:
        """Guard one materialisation of *count* bytes against ``max_bytes``."""
        if obs.enabled():
            registry = obs.metrics()
            registry.counter("budget.bytes_charged").inc(count)
            registry.gauge("budget.bytes_last").set(count)
        if self.max_bytes is not None and count > self.max_bytes:
            raise MemoryLimitError(
                f"{what} would materialise {count} bytes "
                f"(budget allows {self.max_bytes})"
            )

    def remaining_steps(self) -> int | None:
        """Steps left, or ``None`` when unlimited."""
        if self.max_steps is None:
            return None
        return max(0, self.max_steps - self.steps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"steps={self.steps}"]
        if self.max_steps is not None:
            parts.append(f"max_steps={self.max_steps}")
        if self.max_bytes is not None:
            parts.append(f"max_bytes={self.max_bytes}")
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline!r}")
        return f"Budget({', '.join(parts)})"
