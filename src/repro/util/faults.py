"""Fault injection for robustness testing (monkeypatch-style).

The fault-tolerance contract of :class:`~repro.db.SpannerDB` — mutations
are atomic, budgets terminate cleanly, crashes lose at most the last
non-durable record — is only worth anything if it survives failures at the
*worst* moments.  This module provides those moments on demand:

* :func:`fail_at_allocation` — raise on the N-th SLP node allocation
  (mid-``edit``/``add_document``, after some staged nodes already exist);
* :func:`fail_in_preprocess` — raise on the N-th spanner preprocess call
  (mid-``register_spanner``, or mid-``add_document`` between spanners);
* :func:`truncate_journal_write` — emit only a prefix of a journal record
  and then die (a torn write followed by a crash);
* :func:`truncate_file` — post-hoc torn-write simulation on any file;
* :func:`fail_at_call` — the generic primitive behind the above.

All injected errors are :class:`~repro.errors.FaultInjectedError`, a
:class:`~repro.errors.SpanlibError`, so they travel exactly the rollback
and recovery paths genuine failures take.  Every helper is a context
manager that restores the patched attribute on exit, so faults never leak
between tests.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

from repro.errors import FaultInjectedError

__all__ = [
    "fail_at_call",
    "fail_at_allocation",
    "fail_in_preprocess",
    "truncate_journal_write",
    "truncate_file",
]


@contextlib.contextmanager
def fail_at_call(
    target: object,
    attribute: str,
    at: int = 1,
    error: Exception | None = None,
) -> Iterator[dict]:
    """Patch ``target.attribute`` so its *at*-th invocation raises.

    Calls before the *at*-th pass through to the original; calls after it
    pass through again (the fault fires exactly once).  Yields a mutable
    ``{"calls": int}`` dict so tests can assert how far execution got.
    """
    if at < 1:
        raise ValueError(f"fault trigger must be >= 1, got {at}")
    original = getattr(target, attribute)
    state = {"calls": 0}

    def wrapper(*args, **kwargs):
        state["calls"] += 1
        if state["calls"] == at:
            raise error if error is not None else FaultInjectedError(
                f"injected fault in {attribute!r} (call {at})"
            )
        return original(*args, **kwargs)

    setattr(target, attribute, wrapper)
    try:
        yield state
    finally:
        setattr(target, attribute, original)


def fail_at_allocation(at: int = 1, error: Exception | None = None):
    """Raise on the *at*-th SLP node allocation (``SLP._new_node``).

    This is the sharpest mid-mutation failure point: ``edit`` and
    ``add_document`` allocate O(log d) staged nodes before committing, so a
    fault here leaves staged arena state for rollback to clean up.
    """
    from repro.slp.slp import SLP

    return fail_at_call(SLP, "_new_node", at=at, error=error)


def fail_in_preprocess(at: int = 1, error: Exception | None = None):
    """Raise on the *at*-th ``SLPSpannerEvaluator.preprocess`` call.

    With k spanners registered, ``add_document`` preprocesses the new node
    k times; ``register_spanner`` preprocesses once per stored document —
    so *at* selects "fail on the at-th spanner/document".
    """
    from repro.slp.spanner_eval import SLPSpannerEvaluator

    return fail_at_call(SLPSpannerEvaluator, "preprocess", at=at, error=error)


@contextlib.contextmanager
def truncate_journal_write(keep_bytes: int = 0, at: int = 1) -> Iterator[dict]:
    """Tear the *at*-th journal append after *keep_bytes* bytes, then die.

    Patches ``SpannerDB._journal_write`` so the targeted append writes only
    a prefix of its payload and raises :class:`FaultInjectedError` — the
    on-disk effect of a crash mid-``write(2)``.  Recovery must stop replay
    at the torn record.
    """
    from repro.db import SpannerDB

    original = SpannerDB._journal_write
    state = {"calls": 0}

    def wrapper(self, payload: str):
        state["calls"] += 1
        if state["calls"] == at:
            original(self, payload[:keep_bytes])
            raise FaultInjectedError(
                f"injected torn journal write (kept {keep_bytes} bytes)"
            )
        return original(self, payload)

    SpannerDB._journal_write = wrapper
    try:
        yield state
    finally:
        SpannerDB._journal_write = original


def truncate_file(path: str, keep_bytes: int) -> int:
    """Truncate *path* to *keep_bytes* bytes, simulating a torn write that
    a crash left behind.  Returns the number of bytes removed."""
    size = os.path.getsize(path)
    keep = max(0, min(size, keep_bytes))
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    return size - keep
