"""Fault injection for robustness testing (monkeypatch-style).

The fault-tolerance contract of :class:`~repro.db.SpannerDB` — mutations
are atomic, budgets terminate cleanly, crashes lose at most the last
non-durable record — is only worth anything if it survives failures at the
*worst* moments.  This module provides those moments on demand:

* :func:`fail_at_allocation` — raise on the N-th SLP node allocation
  (mid-``edit``/``add_document``, after some staged nodes already exist);
* :func:`fail_in_preprocess` — raise on the N-th spanner preprocess call
  (mid-``register_spanner``, or mid-``add_document`` between spanners);
* :func:`truncate_journal_write` — emit only a prefix of a journal record
  and then die (a torn write followed by a crash);
* :func:`truncate_file` — post-hoc torn-write simulation on any file;
* :func:`fail_at_call` — the generic primitive behind the above;
* :class:`ChaosInjector` — a *seedable, concurrency-aware* probabilistic
  schedule of errors and delays for multi-threaded chaos runs (the
  :mod:`repro.serve` chaos suite);
* :class:`WorkerChaos` — the process-pool counterpart: a picklable,
  seeded schedule of worker **SIGKILLs and stalls** evaluated *inside*
  :mod:`repro.parallel.procpool` workers, for chaos runs where the
  failure is a dead process rather than a raised exception;
* :class:`ChaosOperation` — a per-logical-operation view of a
  :class:`ChaosInjector` schedule, for generator-based (multi-step)
  operations whose resumed steps must replay the same seeded verdicts;
* :class:`FeedChaos` — the streaming counterpart: a seeded schedule of
  feed misbehaviour (torn chunks, bursts, stalls, mid-window evaluator
  faults) consumed by :class:`repro.serve.StreamSession` and the
  streaming chaos lane.

All injected errors are :class:`~repro.errors.FaultInjectedError`, a
:class:`~repro.errors.SpanlibError`, so they travel exactly the rollback
and recovery paths genuine failures take.  Every helper is a context
manager that restores the patched attribute on exit, so faults never leak
between tests.

Determinism contract
--------------------

Every injection in this module is a pure function of explicit inputs — a
call counter (:func:`fail_at_call` family) or an explicit integer seed
(:class:`ChaosInjector`).  There is **no module-level RNG state**: two
runs with the same seed draw the same fault schedule, so a chaos-test
failure replays exactly from its seed.  For multi-threaded runs the
schedule is *concurrency-aware*: the decision for the k-th call at a
given site is ``f(seed, site, k)`` regardless of which thread makes it,
so the multiset of injected faults is identical across interleavings even
though thread schedules are not.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import random
import signal
import threading
import time
from typing import Iterator

from repro.errors import FaultInjectedError

__all__ = [
    "ChaosInjector",
    "ChaosOperation",
    "FeedChaos",
    "WorkerChaos",
    "fail_at_call",
    "fail_at_allocation",
    "fail_in_preprocess",
    "truncate_journal_write",
    "truncate_file",
]


@contextlib.contextmanager
def fail_at_call(
    target: object,
    attribute: str,
    at: int = 1,
    error: Exception | None = None,
) -> Iterator[dict]:
    """Patch ``target.attribute`` so its *at*-th invocation raises.

    Calls before the *at*-th pass through to the original; calls after it
    pass through again (the fault fires exactly once).  Yields a mutable
    ``{"calls": int}`` dict so tests can assert how far execution got.
    """
    if at < 1:
        raise ValueError(f"fault trigger must be >= 1, got {at}")
    original = getattr(target, attribute)
    state = {"calls": 0}

    def wrapper(*args, **kwargs):
        state["calls"] += 1
        if state["calls"] == at:
            raise error if error is not None else FaultInjectedError(
                f"injected fault in {attribute!r} (call {at})"
            )
        return original(*args, **kwargs)

    setattr(target, attribute, wrapper)
    try:
        yield state
    finally:
        setattr(target, attribute, original)


def fail_at_allocation(at: int = 1, error: Exception | None = None):
    """Raise on the *at*-th SLP node allocation (``SLP._new_node``).

    This is the sharpest mid-mutation failure point: ``edit`` and
    ``add_document`` allocate O(log d) staged nodes before committing, so a
    fault here leaves staged arena state for rollback to clean up.
    """
    from repro.slp.slp import SLP

    return fail_at_call(SLP, "_new_node", at=at, error=error)


def fail_in_preprocess(at: int = 1, error: Exception | None = None):
    """Raise on the *at*-th ``SLPSpannerEvaluator.preprocess`` call.

    With k spanners registered, ``add_document`` preprocesses the new node
    k times; ``register_spanner`` preprocesses once per stored document —
    so *at* selects "fail on the at-th spanner/document".
    """
    from repro.slp.spanner_eval import SLPSpannerEvaluator

    return fail_at_call(SLPSpannerEvaluator, "preprocess", at=at, error=error)


@contextlib.contextmanager
def truncate_journal_write(keep_bytes: int = 0, at: int = 1) -> Iterator[dict]:
    """Tear the *at*-th journal append after *keep_bytes* bytes, then die.

    Patches ``SpannerDB._journal_write`` so the targeted append writes only
    a prefix of its payload and raises :class:`FaultInjectedError` — the
    on-disk effect of a crash mid-``write(2)``.  Recovery must stop replay
    at the torn record.
    """
    from repro.db import SpannerDB

    original = SpannerDB._journal_write
    state = {"calls": 0}

    def wrapper(self, payload: str):
        state["calls"] += 1
        if state["calls"] == at:
            original(self, payload[:keep_bytes])
            raise FaultInjectedError(
                f"injected torn journal write (kept {keep_bytes} bytes)"
            )
        return original(self, payload)

    SpannerDB._journal_write = wrapper
    try:
        yield state
    finally:
        SpannerDB._journal_write = original


class ChaosInjector:
    """A seeded, thread-safe schedule of probabilistic faults and delays.

    One injector drives a whole chaos run.  Each *site* (a short string
    naming an injection point, e.g. ``"preprocess"`` or ``"journal"``) has
    its own call counter; the decision for the k-th call at a site is::

        random.Random(f"{seed}:{site}:{k}").random() < rate

    ``random.Random`` seeded with a string hashes it with SHA-512, so the
    draw is stable across processes and interpreter runs (unlike ``hash``,
    which is salted).  The per-site counters are incremented under a lock,
    making the schedule *concurrency-aware*: however threads interleave,
    the k-th call at a site always gets the same verdict, so a run's fault
    multiset is a pure function of its seed.

    Use :meth:`maybe_fail` / :meth:`maybe_delay` directly at a call site
    you control, or :meth:`chaos` to monkeypatch one into an existing
    method for the duration of a ``with`` block.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._fired: dict[str, int] = {}

    def _draw(self, site: str) -> float:
        with self._lock:
            k = self._calls.get(site, 0)
            self._calls[site] = k + 1
        return random.Random(f"{self.seed}:{site}:{k}").random()

    def _record(self, site: str) -> None:
        with self._lock:
            self._fired[site] = self._fired.get(site, 0) + 1

    def maybe_fail(self, site: str, rate: float, error: Exception | None = None) -> None:
        """Raise :class:`~repro.errors.FaultInjectedError` with probability
        *rate* (per the deterministic schedule) at this site."""
        if rate <= 0.0:
            return
        if self._draw(site) < rate:
            self._record(site)
            raise error if error is not None else FaultInjectedError(
                f"chaos fault at {site!r} (seed {self.seed})"
            )

    def maybe_delay(self, site: str, rate: float, seconds: float) -> bool:
        """Sleep *seconds* with probability *rate*; returns whether it slept."""
        if rate <= 0.0:
            return False
        if self._draw(site) < rate:
            self._record(site)
            time.sleep(seconds)
            return True
        return False

    def fired(self) -> dict[str, int]:
        """Per-site count of faults/delays that actually fired so far."""
        with self._lock:
            return dict(self._fired)

    def calls(self) -> dict[str, int]:
        """Per-site call counts (schedule positions consumed so far)."""
        with self._lock:
            return dict(self._calls)

    @contextlib.contextmanager
    def chaos(
        self,
        target: object,
        attribute: str,
        site: str | None = None,
        error_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay: float = 0.0005,
    ) -> Iterator["ChaosInjector"]:
        """Patch ``target.attribute`` to consult this schedule on every call.

        A targeted call first (maybe) sleeps, then (maybe) raises, then
        passes through to the original — delays exercise slow-path races,
        errors exercise rollback/retry/degradation paths.  The patch is
        removed on exit, like every helper in this module."""
        point = site if site is not None else attribute
        original = getattr(target, attribute)

        def wrapper(*args, **kwargs):
            self.maybe_delay(f"{point}.delay", delay_rate, delay)
            self.maybe_fail(point, error_rate)
            return original(*args, **kwargs)

        setattr(target, attribute, wrapper)
        try:
            yield self
        finally:
            setattr(target, attribute, original)

    def operation(self, site: str, op_id) -> "ChaosOperation":
        """A per-logical-operation view of this schedule.

        The shared per-site counter is the right schedule for independent
        one-shot calls, but it *misbehaves* for generator-based
        operations: when a consumer resumes (or a retry restarts) a
        generator, other operations at the same site have advanced the
        counter in between, so the resumed step draws a *different*
        verdict than the run it is replaying.  A :class:`ChaosOperation`
        fixes the schedule to the logical operation instead — the k-th
        consult is a pure function of ``(seed, site, op_id, k)``,
        independent of every other operation's interleaving.
        """
        return ChaosOperation(self, site, op_id)


class ChaosOperation:
    """Schedule handle for one logical (possibly multi-step) operation.

    Owned by the single generator/loop it was minted for — the step
    counter is deliberately *not* shared, so it needs no lock and the
    verdict sequence is replayable: construct (or :meth:`reset`) a handle
    with the same ``(site, op_id)`` and it yields the same draws in the
    same order, whatever else the injector scheduled in between.  Fired
    faults/delays still report into the parent injector's
    :meth:`ChaosInjector.fired` ledger under ``"site@op_id"``.
    """

    __slots__ = ("_injector", "site", "op_id", "_steps")

    def __init__(self, injector: ChaosInjector, site: str, op_id) -> None:
        self._injector = injector
        self.site = str(site)
        self.op_id = op_id
        self._steps = 0

    @property
    def steps(self) -> int:
        """Schedule positions this handle has consumed."""
        return self._steps

    def reset(self) -> None:
        """Rewind to the first step (a retried operation replays its run)."""
        self._steps = 0

    def draw(self) -> float:
        k = self._steps
        self._steps += 1
        return random.Random(
            f"{self._injector.seed}:{self.site}:{self.op_id}:{k}"
        ).random()

    def maybe_fail(self, rate: float, error: Exception | None = None) -> None:
        """Raise :class:`~repro.errors.FaultInjectedError` with probability
        *rate* at this operation's next step."""
        if rate <= 0.0:
            return
        if self.draw() < rate:
            self._injector._record(f"{self.site}@{self.op_id}")
            raise error if error is not None else FaultInjectedError(
                f"chaos fault at {self.site!r} op {self.op_id!r} "
                f"(seed {self._injector.seed})"
            )

    def maybe_delay(self, rate: float, seconds: float) -> bool:
        """Sleep *seconds* with probability *rate*; returns whether it slept."""
        if rate <= 0.0:
            return False
        if self.draw() < rate:
            self._injector._record(f"{self.site}@{self.op_id}")
            time.sleep(seconds)
            return True
        return False


@dataclasses.dataclass(frozen=True)
class WorkerChaos:
    """A seeded schedule of worker-process kills and stalls.

    Instances are immutable and picklable: the parent ships one to every
    :mod:`repro.parallel.procpool` worker, and each worker consults it
    *before* executing a task.  The verdict for a task is a pure function
    of ``(seed, task_seq)`` — the pool assigns ``task_seq`` at dispatch,
    so a run's fault multiset is deterministic per seed regardless of
    which worker draws which task, the same concurrency-aware contract
    :class:`ChaosInjector` makes for threads.  A re-dispatched (retried)
    task gets a fresh sequence number and therefore a fresh draw — chaos
    cannot deterministically kill every retry of one shard.

    ``"kill"`` sends the worker ``SIGKILL`` — no cleanup, no goodbye, the
    exact failure mode of the OOM killer; ``"stall"`` sleeps through the
    supervisor's patience so deadline-kill and lost-shard retry paths get
    exercised too.
    """

    seed: int
    kill_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.05

    def decide(self, task_seq: int) -> str | None:
        """``"kill"``, ``"stall"``, or ``None`` for dispatch *task_seq*."""
        draw = random.Random(f"{self.seed}:proc-worker:{task_seq}").random()
        if draw < self.kill_rate:
            return "kill"
        if draw < self.kill_rate + self.stall_rate:
            return "stall"
        return None

    def apply(self, task_seq: int) -> None:
        """Enact the verdict in the calling (worker) process."""
        verdict = self.decide(task_seq)
        if verdict == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif verdict == "stall":
            time.sleep(self.stall_seconds)


@dataclasses.dataclass(frozen=True)
class FeedChaos:
    """A seeded schedule of live-feed misbehaviour for streaming chaos runs.

    Two halves, both pure functions of the seed:

    * **producer side** — :meth:`perturb` re-chunks a feed per the
      schedule: *torn* chunks arrive split at a seeded cut point, and
      *bursts* arrive with several chunks coalesced into one oversized
      append.  Concatenation is always preserved
      (``"".join(perturb(chunks)) == "".join(chunks)``), so the document
      the consumer assembles is exactly the producer's — only the window
      boundaries move, which is precisely what the differential fuzz lane
      wants to stress.
    * **consumer side** — :meth:`decide` gives the verdict for one
      evaluation window: ``"fault"`` (the session injects a
      :class:`~repro.errors.FaultInjectedError` into the window's first
      attempt, exercising retry and the circuit-broken rebuild fallback),
      ``"stall"`` (the session sleeps ``stall_seconds``, exercising
      backpressure and deadline overruns), or ``None``.

    The verdict for window *k* is ``f(seed, k)`` — the same
    concurrency-aware determinism contract as :class:`WorkerChaos`.
    """

    seed: int
    fault_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.005
    tear_rate: float = 0.0
    burst_rate: float = 0.0
    max_burst: int = 4

    def decide(self, window_seq: int) -> str | None:
        """``"fault"``, ``"stall"``, or ``None`` for window *window_seq*."""
        draw = random.Random(f"{self.seed}:feed-window:{window_seq}").random()
        if draw < self.fault_rate:
            return "fault"
        if draw < self.fault_rate + self.stall_rate:
            return "stall"
        return None

    def perturb(self, chunks) -> Iterator[str]:
        """Re-chunk *chunks* per the seeded tear/burst schedule.

        A generator, so unbounded feeds stay unbounded; empty chunks
        (heartbeats) pass through untouched."""
        pending = ""
        pending_count = 0
        for index, chunk in enumerate(chunks):
            rng = random.Random(f"{self.seed}:feed-chunk:{index}")
            draw = rng.random()
            if draw < self.burst_rate and pending_count + 1 < self.max_burst:
                pending += chunk
                pending_count += 1
                continue
            chunk = pending + chunk
            pending = ""
            pending_count = 0
            torn = self.burst_rate <= draw < self.burst_rate + self.tear_rate
            if torn and len(chunk) > 1:
                cut = 1 + rng.randrange(len(chunk) - 1)
                yield chunk[:cut]
                yield chunk[cut:]
            else:
                yield chunk
        if pending:
            yield pending


def truncate_file(path: str, keep_bytes: int) -> int:
    """Truncate *path* to *keep_bytes* bytes, simulating a torn write that
    a crash left behind.  Returns the number of bytes removed."""
    size = os.path.getsize(path)
    keep = max(0, min(size, keep_bytes))
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    return size - keep
