"""Word-combinatorial relations as core spanners (paper Section 2.4).

The paper recalls from Freydenberger & Holldack [12] that core spanners can
express relations classically described by *word equations*:

* ``u ~com v`` (commutation): ∃p with u, v ∈ p* — the equation xy = yx;
* ``u ~cyc v`` (conjugacy / cyclic shift): ∃w1, w2 with u = w1·w2 and
  v = w2·w1 — the equation xz = zy.

This module gives **constructive** core spanners for both relations on the
natural spanner reading "u and v are factors of the document":

* :func:`cyclic_shift_spanner` — u = contents of the fused pair (x1, x2),
  v = contents of (y1, y2), with the cross equalities ς={x1,y2}, ς={x2,y1}.
  This is precisely the equation xz = zy written with spans, and works for
  any non-overlapping placement of the two factors.
* :func:`adjacent_commuting_spanner` — for *adjacent* factors u = D[i..j),
  v = D[j..k): writing z = uv = D[i..k), the classical Fine–Wilf argument
  shows  ``uv = vu  ⟺  z has borders of lengths |u| and |v|``, i.e. the
  prefix of z of length |u| (= the span of x itself) equals its suffix of
  length |u|, and symmetrically for v.  Borders of z are *overlapping*
  string equalities — exactly the feature that separates core spanners
  from refl-spanners (Section 3).

Direct combinatorial oracles (:func:`commute`, :func:`is_cyclic_shift`,
:func:`primitive_root`) are provided for cross-validation and for the
benchmark baselines.
"""

from __future__ import annotations

from repro.automata.nfa import EPSILON, NFA
from repro.automata.vset import VSetAutomaton
from repro.core.alphabet import Close, Open
from repro.spanners.core import CoreSpanner, Prim

__all__ = [
    "commute",
    "is_cyclic_shift",
    "primitive_root",
    "cyclic_shift_spanner",
    "adjacent_commuting_spanner",
]


# ---------------------------------------------------------------------------
# combinatorial oracles
# ---------------------------------------------------------------------------
def commute(u: str, v: str) -> bool:
    """``u ~com v``: u·v == v·u (⇔ both are powers of a common root)."""
    return u + v == v + u


def is_cyclic_shift(u: str, v: str) -> bool:
    """``u ~cyc v``: v is a rotation of u."""
    return len(u) == len(v) and v in u + u


def primitive_root(word: str) -> str:
    """The primitive root p of *word* (the shortest p with word ∈ p*).

    Uses the classical border trick: the root length is
    ``n − border(word)`` when that divides n, else n.
    """
    n = len(word)
    if n == 0:
        return ""
    # longest proper border via the KMP failure function
    failure = [0] * n
    k = 0
    for i in range(1, n):
        while k and word[i] != word[k]:
            k = failure[k - 1]
        if word[i] == word[k]:
            k += 1
        failure[i] = k
    period = n - failure[-1]
    return word[:period] if n % period == 0 else word


# ---------------------------------------------------------------------------
# core spanner constructions
# ---------------------------------------------------------------------------
def _loop(nfa: NFA, state: int, alphabet: str) -> None:
    for ch in alphabet:
        nfa.add_arc(state, ch, state)


def cyclic_shift_spanner(alphabet: str = "ab") -> CoreSpanner:
    """The core spanner S_cyc of [12, Prop. 3.7] (split-variable form).

    Schema ``{x1, x2, y1, y2}``: x1·x2 is the factor u (x2 starts where x1
    ends), y1·y2 is the factor v, u ends at or before v's start, and the
    string equalities ς={x1,y2}, ς={x2,y1} force v = w2·w1 whenever
    u = w1·w2.  Fusing (x1, x2) → x and (y1, y2) → y with the Section 3.2
    operator recovers the paper's two-column S_cyc.
    """
    nfa = NFA()
    states = [nfa.add_state() for _ in range(9)]
    nfa.initial = {states[0]}
    nfa.accepting = {states[8]}
    _loop(nfa, states[0], alphabet)          # prefix
    nfa.add_arc(states[0], Open("x1"), states[1])
    _loop(nfa, states[1], alphabet)          # w1
    nfa.add_arc(states[1], Close("x1"), states[2])
    nfa.add_arc(states[2], Open("x2"), states[3])
    _loop(nfa, states[3], alphabet)          # w2
    nfa.add_arc(states[3], Close("x2"), states[4])
    _loop(nfa, states[4], alphabet)          # gap
    nfa.add_arc(states[4], Open("y1"), states[5])
    _loop(nfa, states[5], alphabet)          # w2 again
    nfa.add_arc(states[5], Close("y1"), states[6])
    nfa.add_arc(states[6], Open("y2"), states[7])
    _loop(nfa, states[7], alphabet)          # w1 again
    nfa.add_arc(states[7], Close("y2"), states[8])
    _loop(nfa, states[8], alphabet)          # suffix
    regular = Prim(VSetAutomaton(nfa, functional=True))
    return regular.select_equal({"x1", "y2"}).select_equal({"x2", "y1"})


def adjacent_commuting_spanner(alphabet: str = "ab") -> CoreSpanner:
    """The core spanner for ``u ~com v`` on adjacent factors.

    Schema ``{x, y, px, sx}`` projected to ``{x, y}``: x = u = D[i..j),
    y = v = D[j..k), and with z := D[i..k) = u·v,

    * ``sx`` is a suffix of z (it closes exactly where y closes) and
      ς={x, sx} forces sx to spell u — i.e. z has a border of length |u|;
    * ``px`` is a prefix of z (it opens exactly where x opens) and
      ς={y, px} forces px to spell v — i.e. z has a border of length |v|.

    By Fine and Wilf (|z| = |u| + |v| ≥ |u| + |v| − gcd), the two borders
    force z to have period gcd(|u|, |v|), hence u·v = v·u.  Note that px
    and sx *properly overlap* x and y in general — this spanner lives in
    the overlapping-equality fragment that refl-spanners deliberately
    exclude (Section 3).
    """
    nfa = NFA()
    start = nfa.add_state(initial=True)
    _loop(nfa, start, alphabet)
    # at position i: open x and px together
    opened = nfa.add_state()
    nfa.add_arc(start, Open("x"), opened)
    both_open = nfa.add_state()
    nfa.add_arc(opened, Open("px"), both_open)
    # px closes somewhere in [i, k]; sx opens somewhere in [i, k];
    # ◁x and y▷ happen together at j; ◁y and ◁sx happen together at k.
    # state = (x-phase, px closed?, sx open?) with x-phase ∈ {in_x, in_y}
    phase: dict[tuple[str, bool, bool], int] = {}
    for in_y in (False, True):
        for px_closed in (False, True):
            for sx_open in (False, True):
                phase[("y" if in_y else "x", px_closed, sx_open)] = nfa.add_state()
    nfa.add_arc(both_open, EPSILON, phase[("x", False, False)])
    for in_y in (False, True):
        tag = "y" if in_y else "x"
        for px_closed in (False, True):
            for sx_open in (False, True):
                here = phase[(tag, px_closed, sx_open)]
                _loop(nfa, here, alphabet)
                if not px_closed:
                    nfa.add_arc(here, Close("px"), phase[(tag, True, sx_open)])
                if not sx_open:
                    nfa.add_arc(here, Open("sx"), phase[(tag, px_closed, True)])
                if not in_y:
                    # the j boundary: close x, open y
                    mid = nfa.add_state()
                    nfa.add_arc(here, Close("x"), mid)
                    nfa.add_arc(mid, Open("y"), phase[("y", px_closed, sx_open)])
    # the k boundary: close y and sx together (requires px closed, sx open)
    closing = nfa.add_state()
    done = nfa.add_state(accepting=True)
    nfa.add_arc(phase[("y", True, True)], Close("y"), closing)
    nfa.add_arc(closing, Close("sx"), done)
    _loop(nfa, done, alphabet)
    regular = Prim(VSetAutomaton(nfa, functional=True))
    constrained = regular.select_equal({"x", "sx"}).select_equal({"y", "px"})
    return constrained.project({"x", "y"})
