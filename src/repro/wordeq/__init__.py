"""Word combinatorics via core spanners (paper Section 2.4, [12])."""

from repro.wordeq.patterns import Pattern, Var, repetition_pattern, square_pattern
from repro.wordeq.relations import (
    adjacent_commuting_spanner,
    commute,
    cyclic_shift_spanner,
    is_cyclic_shift,
    primitive_root,
)

__all__ = [
    "Pattern",
    "Var",
    "adjacent_commuting_spanner",
    "commute",
    "cyclic_shift_spanner",
    "is_cyclic_shift",
    "primitive_root",
    "repetition_pattern",
    "square_pattern",
]
