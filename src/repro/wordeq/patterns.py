"""Pattern matching with variables (paper Section 2.4's first gadget).

A *pattern* is a sequence of terminal strings and variables, e.g.
``x · ab · x · y``; a document matches if the variables can be substituted
by strings so that the pattern spells the document.  Deciding this
(the membership problem for pattern languages) is NP-complete, and the
paper uses it to show that core spanner evaluation is NP-hard: the pattern
translates into the core spanner

    π_∅ ( ς=_{Z1} … ς=_{Zk} ( ⟦ x1▷Σ*◁x1 · … · xn▷Σ*◁xn ⟧ ) )

where the equality groups Z identify the slots holding the same variable.

Provided here:

* :class:`Pattern` with a backtracking :meth:`Pattern.matches` (the direct
  NP algorithm, used as the baseline in benchmark C6);
* :meth:`Pattern.to_core_spanner` — the paper's encoding, evaluated through
  the core-spanner machinery;
* :func:`square_pattern` etc. — the stock hard instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.nfa import NFA
from repro.automata.vset import VSetAutomaton
from repro.core.alphabet import Close, DOT, Open
from repro.errors import SchemaError
from repro.spanners.core import CoreSpanner, Prim

__all__ = ["Pattern", "square_pattern", "repetition_pattern"]


@dataclass(frozen=True)
class Pattern:
    """A pattern over terminals and variables.

    ``items`` mixes plain strings (terminal factors) and :class:`Var`
    markers.  For ergonomic construction use :meth:`parse`: uppercase
    letters are variables, everything else is terminal — e.g.
    ``Pattern.parse("XabXY")`` is ``x · ab · x · y``.
    """

    items: tuple

    def __post_init__(self) -> None:
        for item in self.items:
            if isinstance(item, str):
                continue
            if isinstance(item, Var):
                continue
            raise SchemaError(f"pattern items must be str or Var, got {item!r}")

    @classmethod
    def parse(cls, text: str) -> "Pattern":
        """Uppercase letters are variables; other characters are terminals."""
        items: list = []
        for ch in text:
            if ch.isupper():
                items.append(Var(ch.lower()))
            elif items and isinstance(items[-1], str):
                items[-1] += ch
            else:
                items.append(ch)
        return cls(tuple(items))

    @property
    def variables(self) -> tuple[str, ...]:
        """Variable names in order of first occurrence."""
        seen: list[str] = []
        for item in self.items:
            if isinstance(item, Var) and item.name not in seen:
                seen.append(item.name)
        return tuple(seen)

    # ------------------------------------------------------------------
    # direct NP algorithm
    # ------------------------------------------------------------------
    def matches(self, doc: str) -> bool:
        """Backtracking membership test (assignment may use empty strings)."""
        return self.match_assignment(doc) is not None

    def match_assignment(self, doc: str) -> dict[str, str] | None:
        """A satisfying variable assignment, or ``None``."""
        items = self.items

        def search(index: int, position: int, bound: dict[str, str]):
            if index == len(items):
                return dict(bound) if position == len(doc) else None
            item = items[index]
            if isinstance(item, str):
                if doc.startswith(item, position):
                    return search(index + 1, position + len(item), bound)
                return None
            name = item.name
            if name in bound:
                value = bound[name]
                if doc.startswith(value, position):
                    return search(index + 1, position + len(value), bound)
                return None
            for end in range(position, len(doc) + 1):
                bound[name] = doc[position:end]
                found = search(index + 1, end, bound)
                if found is not None:
                    return found
            del bound[name]
            return None

        return search(0, 0, {})

    # ------------------------------------------------------------------
    # the paper's core-spanner encoding
    # ------------------------------------------------------------------
    def to_core_spanner(self) -> CoreSpanner:
        """``π_∅(ς=…ς=(⟦slot automaton⟧))``: nonempty on D iff D matches.

        Each pattern item becomes a slot: terminals are spelled literally,
        variable occurrences become ``slot_i▷ Σ* ◁slot_i`` captures; each
        variable's slots form one string-equality group.
        """
        nfa = NFA()
        current = nfa.add_state(initial=True)
        groups: dict[str, list[str]] = {}
        slot = 0
        for item in self.items:
            if isinstance(item, str):
                for ch in item:
                    nxt = nfa.add_state()
                    nfa.add_arc(current, ch, nxt)
                    current = nxt
                continue
            name = f"slot{slot}"
            slot += 1
            groups.setdefault(item.name, []).append(name)
            opened = nfa.add_state()
            nfa.add_arc(current, Open(name), opened)
            nfa.add_arc(opened, DOT, opened)
            closed = nfa.add_state()
            nfa.add_arc(opened, Close(name), closed)
            current = closed
        nfa.accepting = {current}
        expr: CoreSpanner = Prim(VSetAutomaton(nfa, functional=True))
        for slots in groups.values():
            if len(slots) > 1:
                expr = expr.select_equal(frozenset(slots))
        return expr.project(set())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "·".join(
            item if isinstance(item, str) else item.name.upper()
            for item in self.items
        )


@dataclass(frozen=True)
class Var:
    """A variable occurrence inside a :class:`Pattern`."""

    name: str


def square_pattern() -> Pattern:
    """``X·X`` — matches exactly the squares (the copy language ww)."""
    return Pattern((Var("x"), Var("x")))


def repetition_pattern(variables: int, repeats: int = 2) -> Pattern:
    """``X1^repeats · X2^repeats · … · Xn^repeats`` — the scaling family
    used by the NP-hardness benchmark (experiment C6)."""
    items: list = []
    for index in range(variables):
        items.extend([Var(f"x{index}")] * repeats)
    return Pattern(tuple(items))


Pattern.Var = Var  # convenient alias
__all__.append("Var")
