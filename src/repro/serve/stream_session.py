"""StreamSession: the concurrent surface over a windowed spanner stream.

:class:`repro.stream.WindowedSpannerStream` is deliberately
single-threaded; this module wraps it in the serving layer's robustness
machinery so a live producer and a results consumer can run against it
concurrently:

* **backpressure** — chunks enter through a bounded ingest queue;
  :meth:`StreamSession.feed` never blocks, it sheds with a typed
  :class:`~repro.errors.OverloadedError` whose ``retry_after`` comes from
  the same :class:`~repro.serve.service.RetryAfterHint` EWMA the query
  service uses, fed with observed per-window times;
* **per-window deadlines with degradation** — a window that overruns its
  budget ships the results collected so far plus a
  :class:`~repro.errors.WindowOverrunError` *marker* instead of stalling
  the feed (partial state is resumable; the next complete window
  reconciles the frontier);
* **circuit-broken rebuild fallback** — fault or differential-guard
  failures on the incremental-append path count against an internal
  :class:`~repro.serve.breaker.CircuitBreaker`; once it opens, windows go
  through :meth:`~repro.stream.WindowedSpannerStream.rebuild` (correct
  but O(n)) until probes show the incremental path healthy again;
* **clean draining** — :meth:`StreamSession.close` stops admissions,
  processes what is queued under a drain deadline, discards (and counts)
  the rest, and always returns within that deadline plus join slack.

Only typed errors cross the session boundary: ``OverloadedError`` and
``ServiceStoppedError`` from :meth:`feed`, ``WindowOverrunError`` as a
marker on degraded :class:`~repro.stream.WindowResult`\\ s.  Seeded feed
chaos (:class:`repro.util.faults.FeedChaos`) plugs in via the config —
``"stall"`` verdicts sleep before the window, ``"fault"`` verdicts
poison its first ingest attempt — which is how the streaming chaos lane
drives 30 %-fault-rate runs deterministically.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Iterator

from repro import obs
from repro.errors import (
    EvaluationLimitError,
    FaultInjectedError,
    MemoryLimitError,
    OverloadedError,
    ServiceStoppedError,
    SpanlibError,
    StreamError,
    WindowOverrunError,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.service import RetryAfterHint
from repro.stream.windowed import (
    StreamConfig,
    WindowResult,
    WindowedSpannerStream,
    record_window_metrics,
)
from repro.util.budget import Deadline
from repro.util.faults import FeedChaos

__all__ = ["StreamSession", "StreamSessionConfig"]

_DONE = object()


@dataclass(frozen=True)
class StreamSessionConfig:
    """Knobs of one :class:`StreamSession` (see the module docstring and
    the streaming ingestion runbook in ``docs/RELIABILITY.md``)."""

    #: bounded ingest queue; a full queue sheds with ``OverloadedError``
    queue_limit: int = 64
    #: default drain allowance of :meth:`StreamSession.close` (seconds)
    drain_deadline: float = 5.0
    #: ingest/evaluate attempts per window before it degrades
    window_attempts: int = 3
    #: consecutive incremental-path failures that open the rebuild breaker
    breaker_failures: int = 3
    #: seconds an open breaker waits before probing incremental again
    breaker_reset_after: float = 1.0
    #: seeded feed-fault schedule (``None`` = clean run)
    chaos: FeedChaos | None = None


class StreamSession:
    """Resilient streaming evaluation of one spanner over a live feed.

    One producer thread calls :meth:`feed`, one consumer thread iterates
    :meth:`results`; a single internal evaluation thread owns the
    underlying :class:`~repro.stream.WindowedSpannerStream` (preserving
    its single-owner safety argument).  Use as a context manager::

        with StreamSession("!x{err}") as session:
            session.feed(chunk)           # OverloadedError => back off
            ...
        # __exit__ drains within the configured deadline

    """

    def __init__(
        self,
        spanner,
        config: StreamSessionConfig | None = None,
        stream_config: StreamConfig | None = None,
    ) -> None:
        self.config = config or StreamSessionConfig()
        self._stream = WindowedSpannerStream(spanner, stream_config)
        self._ingest_q: queue.Queue = queue.Queue(maxsize=self.config.queue_limit)
        self._results_q: queue.SimpleQueue = queue.SimpleQueue()
        self._hint = RetryAfterHint()
        self._breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            reset_after=self.config.breaker_reset_after,
            half_open_probes=1,
        )
        self._lock = threading.Lock()
        self._counts = {
            "windows": 0,
            "overruns": 0,
            "shed": 0,
            "rebuilds": 0,
            "faults": 0,
            "discarded": 0,
            "internal_errors": 0,
        }
        self._running = False
        self._closing = False
        self._drain_deadline: Deadline | None = None
        #: a chunk whose ingest failed outright, retried as the next window
        self._carry: str | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "StreamSession":
        with self._lock:
            if self._running:
                return self
            self._running = True
            self._closing = False
        self._thread = threading.Thread(
            target=self._run, name="stream-eval", daemon=True
        )
        self._thread.start()
        return self

    def __enter__(self) -> "StreamSession":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, deadline: float | None = None) -> dict:
        """Stop admissions, drain queued windows, join; returns stats.

        Bounded: queued windows evaluate under budgets clamped to the
        drain deadline, and whatever is still queued when it expires is
        discarded (counted in ``stats()["discarded"]``), so close always
        returns within the deadline plus join slack.
        """
        with self._lock:
            already_stopped = not self._running
            if not already_stopped:
                seconds = self.config.drain_deadline if deadline is None else deadline
                self._drain_deadline = Deadline.after(seconds)
                self._closing = True
        if already_stopped:
            return self.stats()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=seconds + 1.0)
            if thread.is_alive():  # pragma: no cover - defensive
                self._results_q.put(_DONE)
        with self._lock:
            self._running = False
        return self.stats()

    # ------------------------------------------------------------------
    # producer surface
    # ------------------------------------------------------------------
    def feed(self, chunk: str) -> None:
        """Enqueue one chunk; never blocks.

        Raises :class:`~repro.errors.ServiceStoppedError` once the
        session is closed/closing, and :class:`~repro.errors.OverloadedError`
        (with a ``retry_after`` drain estimate) when the producer has
        outrun evaluation and the bounded queue is full.
        """
        if not self._running or self._closing:
            raise ServiceStoppedError("stream session is not accepting chunks")
        try:
            self._ingest_q.put_nowait(chunk)
        except queue.Full:
            with self._lock:
                self._counts["shed"] += 1
            if obs.enabled():
                obs.metrics().counter("stream.backpressure").inc()
            hint = self._hint.hint(self._ingest_q.qsize())
            raise OverloadedError(
                f"stream ingest queue full ({self.config.queue_limit} chunks); "
                f"retry after {hint:.3f}s",
                retry_after=hint,
            ) from None
        if obs.enabled():
            obs.metrics().gauge("stream.queue_depth").set(self._ingest_q.qsize())

    # ------------------------------------------------------------------
    # consumer surface
    # ------------------------------------------------------------------
    def results(self) -> Iterator[WindowResult]:
        """Yield :class:`~repro.stream.WindowResult` per processed window
        until the session drains.  Single consumer."""
        while True:
            item = self._results_q.get()
            if item is _DONE:
                return
            yield item

    def frontier(self) -> set:
        """Snapshot of the current full result set (authoritative once
        the session is closed; advisory while windows are in flight)."""
        return self._stream.results()

    def stats(self) -> dict:
        with self._lock:
            counts = dict(self._counts)
        return {
            **counts,
            "running": self._running,
            "queue_depth": self._ingest_q.qsize(),
            "queue_limit": self.config.queue_limit,
            "window_ema_s": self._hint.ema_s,
            "breaker": self._breaker.stats(),
            "stream": self._stream.stats(),
        }

    # ------------------------------------------------------------------
    # the evaluation thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            while True:
                drain = self._drain_deadline
                if self._closing and drain is not None and drain.expired():
                    break
                chunk = self._carry
                self._carry = None
                if chunk is None:
                    try:
                        chunk = self._ingest_q.get(timeout=0.02)
                    except queue.Empty:
                        if self._closing:
                            break
                        continue
                try:
                    self._process(chunk)
                except SpanlibError:
                    # nothing untyped leaves the session; the window is
                    # simply lost to accounting and the feed marches on
                    with self._lock:
                        self._counts["internal_errors"] += 1
            discarded = 1 if self._carry is not None else 0
            while True:
                try:
                    self._ingest_q.get_nowait()
                    discarded += 1
                except queue.Empty:
                    break
            if discarded:
                with self._lock:
                    self._counts["discarded"] += discarded
                if obs.enabled():
                    obs.metrics().counter("stream.discarded").inc(discarded)
        finally:
            self._results_q.put(_DONE)

    def _process(self, chunk: str) -> None:
        stream = self._stream
        seq = stream.begin_window()
        chaos = self.config.chaos
        verdict = chaos.decide(seq) if chaos is not None else None
        if verdict == "stall":
            time.sleep(chaos.stall_seconds)
        budget = stream.window_budget(self._drain_deadline if self._closing else None)
        t0 = time.perf_counter_ns()
        error: WindowOverrunError | None = None
        fresh = 0
        rebuilt = False
        discarded = False
        ingested = not chunk
        inject_fault = verdict == "fault"
        attempts = 0
        last_exc: BaseException | None = None

        while not ingested and error is None and attempts < self.config.window_attempts:
            attempts += 1
            incremental = self._breaker.allow()
            try:
                if inject_fault:
                    inject_fault = False
                    raise FaultInjectedError(
                        f"feed chaos: injected fault in window {seq} "
                        f"(seed {chaos.seed})"
                    )
                if incremental:
                    fresh = stream.ingest(chunk, budget)
                    self._breaker.record_success()
                else:
                    fresh = stream.rebuild(chunk, budget)
                    rebuilt = True
                ingested = True
            except MemoryLimitError as exc:
                # the rebuild_max_chars / byte guard is permanent for this
                # document: drop the chunk instead of wedging the feed on it
                if incremental:
                    self._breaker.record_success()
                error = self._overrun(seq, f"ingest refused by byte guard ({exc})", exc)
                discarded = True
            except EvaluationLimitError as exc:
                # deadline/step overrun — not the path's fault
                if incremental:
                    self._breaker.record_success()
                    # incremental ingest keeps resumable partial state:
                    # the chunk IS part of the document now
                    ingested = True
                error = self._overrun(seq, f"ingest overran its budget ({exc})", exc)
            except (StreamError, FaultInjectedError) as exc:
                # transient (or guard-tripped) failure: the chunk was
                # rolled back; retry, letting the breaker reroute
                if incremental:
                    self._breaker.record_failure()
                with self._lock:
                    self._counts["faults"] += 1
                last_exc = exc

        if not ingested and error is None:
            error = self._overrun(
                seq, f"ingest failed after {attempts} attempts ({last_exc})", last_exc
            )

        added: list = []
        retracted: list = []
        if error is None and (chunk or not stream.frontier_complete):
            for attempt in range(1, self.config.window_attempts + 1):
                try:
                    added, retracted, complete = stream.evaluate(budget)
                    if not complete:
                        error = self._overrun(
                            seq,
                            f"evaluation overran its budget "
                            f"({len(added)} results shipped partial)",
                        )
                    break
                except MemoryLimitError as exc:
                    # frontier bound: typed, permanent — degrade the window
                    # with the frontier untouched (still under the bound)
                    error = self._overrun(seq, f"frontier budget refused ({exc})", exc)
                    break
                except (StreamError, FaultInjectedError) as exc:
                    with self._lock:
                        self._counts["faults"] += 1
                    if attempt == self.config.window_attempts:
                        error = self._overrun(
                            seq, f"evaluation failed after {attempt} attempts ({exc})", exc
                        )

        result = WindowResult(
            window=seq,
            chunk_chars=len(chunk) if ingested else 0,
            document_chars=stream.document_chars,
            added=added,
            retracted=retracted,
            overrun=error is not None,
            error=error,
            rebuilt=rebuilt,
            fresh_nodes=fresh,
            frontier_bytes=stream.frontier_bytes,
            window_ns=time.perf_counter_ns() - t0,
        )
        record_window_metrics(result)
        self._hint.observe(result.window_ns / 1e9)
        with self._lock:
            self._counts["windows"] += 1
            if error is not None:
                self._counts["overruns"] += 1
            if rebuilt:
                self._counts["rebuilds"] += 1
        if error is not None and obs.enabled():
            obs.metrics().counter("stream.degraded").inc()
        if not ingested and not discarded and chunk:
            self._carry = chunk
        self._results_q.put(result)

    @staticmethod
    def _overrun(
        seq: int, detail: str, cause: BaseException | None = None
    ) -> WindowOverrunError:
        error = WindowOverrunError(f"window {seq}: {detail}", window=seq)
        if cause is not None:
            error.__cause__ = cause
        return error
