"""Retry with exponential backoff + jitter, capped by a retry budget.

Transient failures — an injected fault, a step budget exhausted on a cold
matrix cache — are worth one or two more attempts: the cache is warmer,
the fault schedule has moved on.  But naive retries *amplify* load
exactly when the service is least able to absorb it, so two mechanisms
bound them:

* :class:`RetryPolicy` — per-request attempt limit and exponential
  backoff with **seeded, deterministic jitter** (full-jitter style: the
  sleep is uniform in ``[base/2, base] · 2^attempt``, capped).  The jitter
  sequence comes from a policy-owned ``random.Random(seed)`` drawn under
  a lock — no module-level RNG state, so a chaos run's sleep schedule
  replays from its seed.
* :class:`RetryBudget` — a service-wide token bucket.  Each retry spends
  one token; each *successful first attempt* refills a fraction of one.
  During a fault storm the bucket drains and further failures fall
  through to degradation/error immediately instead of multiplying
  traffic; in steady state it stays full and retries are free.

Deadlines always win: the service never sleeps past a request's deadline.
"""

from __future__ import annotations

import random
import threading

__all__ = ["RetryPolicy", "RetryBudget"]


class RetryPolicy:
    """Attempt limits and deterministic backoff delays."""

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.005,
        max_delay: float = 0.25,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.seed = int(seed)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number *attempt* (1-based): exponential with
        jitter in ``[1/2, 1]`` of the step, capped at ``max_delay``."""
        step = min(self.max_delay, self.base_delay * (2 ** max(0, attempt - 1)))
        with self._lock:
            fraction = 0.5 + 0.5 * self._rng.random()
        return step * fraction


class RetryBudget:
    """A token bucket that stops retry storms from amplifying load.

    Starts full at *capacity* tokens.  :meth:`try_spend` takes one token
    (or refuses — no retry); :meth:`refill` adds ``refill_per_success``
    on each successful non-retried request, capped at capacity.  With the
    default ratio, sustained retries are bounded at ~10% of successful
    traffic once the initial burst allowance is spent.
    """

    def __init__(self, capacity: float = 20.0, refill_per_success: float = 0.1) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_success = float(refill_per_success)
        self._tokens = float(capacity)
        self._lock = threading.Lock()
        self._denied = 0

    def try_spend(self) -> bool:
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            self._denied += 1
            return False

    def refill(self) -> None:
        with self._lock:
            self._tokens = min(self.capacity, self._tokens + self.refill_per_success)

    def stats(self) -> dict:
        with self._lock:
            return {"tokens": self._tokens, "denied": self._denied}
