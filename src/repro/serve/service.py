"""`SpannerService`: a concurrent, fault-tolerant query service over
:class:`~repro.db.SpannerDB`.

The request path, end to end:

1. **Admission.**  :meth:`SpannerService.submit` enqueues the request in a
   bounded queue.  A full queue *sheds* instead of buffering without
   bound: :class:`~repro.errors.OverloadedError` carries a ``retry_after``
   hint derived from the backlog and the observed mean service time, so
   well-behaved clients drain the overload instead of amplifying it.
2. **Deadline.**  Each request gets the tightest of its own deadline and
   the service default (:meth:`Deadline.earliest <repro.util.Deadline.earliest>`),
   threaded into a fresh :class:`~repro.util.Budget` per attempt — the
   step allowance resets on retry (the cache is warmer), the wall-clock
   deadline never does.  A request that expires while queued is failed
   without doing any work.
3. **Execution.**  A worker evaluates on the SLP-compressed path under
   the coordinator's read lock, guarded by the
   :class:`~repro.serve.breaker.CircuitBreaker`.  Transient failures
   (injected faults, step budgets hit on a cold cache) are retried with
   seeded exponential backoff while the service-wide
   :class:`~repro.serve.retry.RetryBudget` lasts.
4. **Degradation.**  When the breaker is open — or the final retry of a
   compressed attempt fails — the query falls back to decompressed
   evaluation (:meth:`SpannerDB.query_decompressed`): identical tuples,
   worse latency, service up.  Every degraded answer is flagged on its
   :class:`QueryResult` and counted in ``serve.degraded``.
5. **Mutations** (:meth:`add_document` / :meth:`edit` /
   :meth:`register_spanner` / :meth:`transaction`) run under the
   exclusive write lock, so queries always see fully committed state and
   a rollback's arena truncation can never race a reader.

Everything emits :mod:`repro.obs` spans and metrics (queue depth, shed
count, breaker state, degraded/retry counts, queue-wait and execution
histograms); correctness-critical counts are *also* kept under the
service's own lock and reported by :meth:`stats`, immune to the
best-effort nature of unlocked metric updates under concurrency.

See ``docs/RELIABILITY.md`` ("Serving runbook") for the operational
semantics of every state and counter.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro import obs
from repro.core.spans import SpanTuple
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    EvaluationLimitError,
    FaultInjectedError,
    MemoryLimitError,
    OverloadedError,
    PoolExhaustedError,
    ServiceStoppedError,
    SpanlibError,
)
from repro.kernels.plan import plan_cache
from repro.parallel.procpool import pool_stats
from repro.serve.breaker import CircuitBreaker
from repro.serve.coordination import StoreCoordinator
from repro.serve.retry import RetryBudget, RetryPolicy
from repro.util.budget import Budget, Deadline

__all__ = [
    "ServeConfig",
    "SpannerService",
    "QueryResult",
    "BulkQueryResult",
    "RetryAfterHint",
    "Ticket",
]

_STOP = object()


class RetryAfterHint:
    """One EWMA of observed service time, shared by every admission surface.

    The query-queue shed path, the :class:`~repro.errors.PoolExhaustedError`
    mapping and stream backpressure (:class:`repro.serve.StreamSession`)
    all answer the same question — "how long until the backlog drains?" —
    so they must answer it from *one* estimator instead of diverging
    copies: ``hint()`` is queued work × mean service time per worker,
    floored at 1 ms so honouring clients never busy-spin.

    Thread-safe; the EWMA seeds from the first sample and then tracks a
    window of ``window`` observations (default 32, matching the historic
    service behaviour).
    """

    __slots__ = ("_lock", "_ema_s", "window")

    def __init__(self, window: int = 32) -> None:
        self._lock = threading.Lock()
        self._ema_s = 0.0
        self.window = max(1, int(window))

    def observe(self, seconds: float) -> None:
        """Feed one completed operation's service time."""
        with self._lock:
            if self._ema_s == 0.0:
                self._ema_s = seconds
            else:
                self._ema_s += (seconds - self._ema_s) / self.window

    @property
    def ema_s(self) -> float:
        """The current mean-service-time estimate (seconds)."""
        with self._lock:
            return self._ema_s

    def hint(self, depth: int, workers: int = 1) -> float:
        """Suggested retry-after seconds for a queue *depth* backlog."""
        return max(0.001, self.ema_s * max(1, depth) / max(1, workers))


def _is_transient(exc: BaseException) -> bool:
    """Worth another attempt?  Injected faults are, and so are step
    budgets exhausted on a cold cache — but an expired *deadline* stays
    expired and a *memory* guard will trip again on the same input."""
    if isinstance(exc, (DeadlineExceededError, MemoryLimitError)):
        return False
    return isinstance(exc, (FaultInjectedError, EvaluationLimitError))


@dataclass
class ServeConfig:
    """Tunables for one :class:`SpannerService` (defaults serve tests and
    small deployments; production would raise ``workers``/``queue_limit``)."""

    workers: int = 4
    queue_limit: int = 64
    #: seconds; every request's deadline is clamped to at most this
    default_deadline: float | None = None
    #: per-attempt step allowance threaded into each request's Budget
    max_steps: int | None = None
    #: allow degraded (decompressed) evaluation when the breaker is open
    degrade: bool = True
    retry_max_attempts: int = 3
    retry_base_delay: float = 0.005
    retry_max_delay: float = 0.1
    retry_budget_capacity: float = 20.0
    retry_budget_refill: float = 0.1
    breaker_failure_threshold: int = 5
    breaker_reset_after: float = 0.25
    breaker_half_open_probes: int = 2
    #: seeds the backoff jitter sequence (deterministic chaos replays)
    seed: int = 0


@dataclass
class QueryResult:
    """A completed query: the tuples plus how the service got them."""

    tuples: list[SpanTuple]
    degraded: bool
    attempts: int
    queue_ns: int = 0
    exec_ns: int = 0


@dataclass
class BulkQueryResult:
    """A completed batch: per-document tuples plus how the service got
    them.  One admission slot, one deadline, one retry/degradation loop
    for the whole batch — ``degraded`` and ``attempts`` describe the batch
    as a unit."""

    results: dict[str, list[SpanTuple]]
    degraded: bool
    attempts: int
    queue_ns: int = 0
    exec_ns: int = 0


class Ticket:
    """A handle to one submitted request (a minimal future)."""

    __slots__ = ("_event", "_result", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: QueryResult | None = None
        self._error: BaseException | None = None

    def _complete(self, result: QueryResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block for the outcome; re-raises the request's typed error.

        Raises :class:`~repro.errors.DeadlineExceededError` if *timeout*
        elapses first (the request itself keeps running)."""
        if not self._event.wait(timeout):
            raise DeadlineExceededError(
                f"no result within {timeout}s (request still in flight)"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


@dataclass
class _Request:
    """One single-document query.  The worker loop and the
    retry/degradation machinery talk to requests only through
    :meth:`describe` / :meth:`run_compressed` / :meth:`run_decompressed` /
    :meth:`make_result`, so batched request types slot in without touching
    the execution path."""

    spanner: str
    document: str
    deadline: Deadline | None
    max_steps: int | None
    ticket: Ticket
    enqueued_ns: int = field(default_factory=time.perf_counter_ns)
    #: the request's TraceContext, minted at admission when obs is on
    trace_ctx: object = None

    def describe(self) -> dict:
        return {"spanner": self.spanner, "document": self.document}

    def run_compressed(self, db, budget) -> list[SpanTuple]:
        return list(db.query(self.spanner, self.document, budget))

    def run_decompressed(self, db, budget) -> list[SpanTuple]:
        return list(db.query_decompressed(self.spanner, self.document, budget))

    def make_result(self, payload, degraded, attempts, queue_ns, exec_ns):
        return QueryResult(
            tuples=payload,
            degraded=degraded,
            attempts=attempts,
            queue_ns=queue_ns,
            exec_ns=exec_ns,
        )


@dataclass
class _BulkRequest:
    """One batched query over many stored documents.

    The compressed attempt goes through :meth:`SpannerDB.query_bulk
    <repro.db.SpannerDB.query_bulk>`, which amortises the spanner lookup
    across the batch and fans the per-document matrix preprocessing out
    over a :mod:`repro.parallel` worker pool; the degraded attempt falls
    back to per-document decompressed evaluation.  Either way the whole
    batch runs under one admission slot, one deadline, and one shared
    :class:`~repro.util.Budget`."""

    spanner: str
    documents: list[str]
    workers: int | None
    backend: str
    deadline: Deadline | None
    max_steps: int | None
    ticket: Ticket
    enqueued_ns: int = field(default_factory=time.perf_counter_ns)
    #: the request's TraceContext, minted at admission when obs is on
    trace_ctx: object = None

    def describe(self) -> dict:
        return {"spanner": self.spanner, "documents": len(self.documents)}

    def run_compressed(self, db, budget) -> dict[str, list[SpanTuple]]:
        relations = db.query_bulk(
            self.spanner,
            self.documents,
            workers=self.workers,
            backend=self.backend,
            budget=budget,
        )
        return {name: list(relation) for name, relation in relations.items()}

    def run_decompressed(self, db, budget) -> dict[str, list[SpanTuple]]:
        return {
            name: list(db.query_decompressed(self.spanner, name, budget))
            for name in self.documents
        }

    def make_result(self, payload, degraded, attempts, queue_ns, exec_ns):
        return BulkQueryResult(
            results=payload,
            degraded=degraded,
            attempts=attempts,
            queue_ns=queue_ns,
            exec_ns=exec_ns,
        )


@dataclass
class _ExprRequest:
    """One spanner-algebra query (the :mod:`repro.query` language).

    The compressed attempt plans and executes through
    :meth:`SpannerDB.query_expr <repro.db.SpannerDB.query_expr>` (cost-based
    planner, shared plan cache); the degraded attempt re-evaluates the same
    expression by naive bottom-up materialization over the decompressed
    text — machinery-disjoint, so a poisoned compiled path cannot leak into
    degraded answers, and extensionally identical by the differential
    contract of :mod:`repro.query`."""

    expression: str
    document: str | None
    deadline: Deadline | None
    max_steps: int | None
    ticket: Ticket
    enqueued_ns: int = field(default_factory=time.perf_counter_ns)
    #: the request's TraceContext, minted at admission when obs is on
    trace_ctx: object = None

    @property
    def spanner(self) -> str:
        # the shed/describe label slot shared with the other request kinds
        return f"query:{self.expression}"

    def describe(self) -> dict:
        return {"expression": self.expression, "document": self.document}

    def run_compressed(self, db, budget) -> list[SpanTuple]:
        return list(db.query_expr(self.expression, self.document, budget))

    def run_decompressed(self, db, budget) -> list[SpanTuple]:
        from repro.query.executor import evaluate_query_naive

        text = ""
        if self.document is not None:
            text = db.document_text(self.document, budget=budget)
        return list(
            evaluate_query_naive(self.expression, text, db=db, budget=budget)
        )

    def make_result(self, payload, degraded, attempts, queue_ns, exec_ns):
        return QueryResult(
            tuples=payload,
            degraded=degraded,
            attempts=attempts,
            queue_ns=queue_ns,
            exec_ns=exec_ns,
        )


class SpannerService:
    """A thread-pool query executor with admission control, retries,
    circuit-broken degradation, and reader/writer coordination."""

    def __init__(self, db, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.coordinator = StoreCoordinator(db)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_after=self.config.breaker_reset_after,
            half_open_probes=self.config.breaker_half_open_probes,
        )
        self.retry_policy = RetryPolicy(
            max_attempts=self.config.retry_max_attempts,
            base_delay=self.config.retry_base_delay,
            max_delay=self.config.retry_max_delay,
            seed=self.config.seed,
        )
        self.retry_budget = RetryBudget(
            capacity=self.config.retry_budget_capacity,
            refill_per_success=self.config.retry_budget_refill,
        )
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_limit)
        self._threads: list[threading.Thread] = []
        self._running = False
        self._stats_lock = threading.Lock()
        self._counts: dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "shed": 0,
            "expired_in_queue": 0,
            "degraded": 0,
            "retries": 0,
            "mutations": 0,
            "mutation_failures": 0,
            "pool_exhausted": 0,
        }
        #: recent per-request service times (ns), for p50/p99 and the
        #: retry-after hint; bounded so a long-lived service stays O(1)
        self._latencies_ns: deque[int] = deque(maxlen=4096)
        self._retry_hint = RetryAfterHint()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SpannerService":
        if self._running:
            return self
        self._running = True
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker, name=f"serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Stop accepting work, fail everything still queued, join workers."""
        if not self._running:
            return
        self._running = False
        # fail queued requests (workers also re-check _running on dequeue)
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                item.ticket._fail(ServiceStoppedError("service stopped"))
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout)
        alive = [t for t in self._threads if t.is_alive()]
        self._threads = []
        if alive:
            raise ServiceStoppedError(
                f"{len(alive)} worker(s) failed to stop within {timeout}s"
            )

    def __enter__(self) -> "SpannerService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # submission (admission control)
    # ------------------------------------------------------------------
    def submit(
        self,
        spanner: str,
        document: str,
        deadline: float | Deadline | None = None,
        max_steps: int | None = None,
    ) -> Ticket:
        """Enqueue one query; sheds with a retry-after hint when full."""
        if not self._running:
            raise ServiceStoppedError("submit on a stopped service")
        request = _Request(
            spanner=spanner,
            document=document,
            deadline=self._clamp_deadline(deadline),
            max_steps=max_steps if max_steps is not None else self.config.max_steps,
            ticket=Ticket(),
        )
        return self._admit(request)

    def submit_bulk(
        self,
        spanner: str,
        documents,
        *,
        deadline: float | Deadline | None = None,
        max_steps: int | None = None,
        workers: int | None = None,
        backend: str = "auto",
    ) -> Ticket:
        """Enqueue one *batch* of queries over many stored documents.

        *backend* defaults to ``"auto"``: the bulk preprocessing fans out
        to the crash-isolated process pool when the host and spanner
        allow it, degrading to threads otherwise (see
        :func:`repro.parallel.resolve_backend`).  An explicit
        ``"process"`` that finds the pool fully checked out surfaces as
        :class:`~repro.errors.OverloadedError` with a ``retry_after``
        hint, exactly like an admission-queue shed.

        The batch occupies a single admission slot (shedding whole batches
        keeps the retry-after hint honest under overload), shares one
        deadline and step budget, and amortises the spanner lookup and
        plan-cache hit across every document; matrix preprocessing fans
        out over *workers* :mod:`repro.parallel` threads.  The ticket
        resolves to a :class:`BulkQueryResult`."""
        if not self._running:
            raise ServiceStoppedError("submit on a stopped service")
        request = _BulkRequest(
            spanner=spanner,
            documents=list(documents),
            workers=workers,
            backend=backend,
            deadline=self._clamp_deadline(deadline),
            max_steps=max_steps if max_steps is not None else self.config.max_steps,
            ticket=Ticket(),
        )
        return self._admit(request)

    def submit_expression(
        self,
        expression: str,
        document: str | None = None,
        deadline: float | Deadline | None = None,
        max_steps: int | None = None,
    ) -> Ticket:
        """Enqueue one spanner-algebra expression (:mod:`repro.query`).

        Rides the same admission control, retry, and circuit-broken
        degradation loop as single-spanner queries; the degraded path is
        the language's naive materialization reference, so degraded
        answers stay extensionally identical."""
        if not self._running:
            raise ServiceStoppedError("submit on a stopped service")
        request = _ExprRequest(
            expression=expression,
            document=document,
            deadline=self._clamp_deadline(deadline),
            max_steps=max_steps if max_steps is not None else self.config.max_steps,
            ticket=Ticket(),
        )
        return self._admit(request)

    def query_expression(
        self,
        expression: str,
        document: str | None = None,
        deadline: float | Deadline | None = None,
        max_steps: int | None = None,
        timeout: float | None = 30.0,
    ) -> QueryResult:
        """Synchronous convenience: :meth:`submit_expression` + result."""
        return self.submit_expression(
            expression, document, deadline, max_steps
        ).result(timeout)

    def _clamp_deadline(self, deadline) -> Deadline | None:
        if deadline is not None and not isinstance(deadline, Deadline):
            deadline = Deadline.after(deadline)
        default = (
            Deadline.after(self.config.default_deadline)
            if self.config.default_deadline is not None
            else None
        )
        return Deadline.earliest(deadline, default)

    def _admit(self, request) -> Ticket:
        self._count("submitted")
        if obs.enabled() and request.trace_ctx is None:
            # admission is *the* minting point: every span this request
            # produces — in the worker thread, in pool worker processes —
            # carries this id, and `obs stitch` reassembles them by it
            request.trace_ctx = obs.new_trace()
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._count("shed")
            retry_after = self._retry_after_hint()
            if obs.enabled():
                obs.metrics().counter("serve.shed").inc()
                obs.tracer().event(
                    "serve.shed", spanner=request.spanner, retry_after=retry_after
                )
            raise OverloadedError(
                f"queue full ({self.config.queue_limit} requests); "
                f"retry after {retry_after:.3f}s",
                retry_after=retry_after,
            ) from None
        if obs.enabled():
            obs.metrics().gauge("serve.queue_depth").set(self._queue.qsize())
            obs.metrics().counter("serve.submitted").inc()
        return request.ticket

    def query(
        self,
        spanner: str,
        document: str,
        deadline: float | Deadline | None = None,
        max_steps: int | None = None,
        timeout: float | None = 30.0,
    ) -> QueryResult:
        """Synchronous convenience: :meth:`submit` + :meth:`Ticket.result`."""
        return self.submit(spanner, document, deadline, max_steps).result(timeout)

    def query_bulk(
        self,
        spanner: str,
        documents,
        *,
        deadline: float | Deadline | None = None,
        max_steps: int | None = None,
        workers: int | None = None,
        backend: str = "auto",
        timeout: float | None = 30.0,
    ) -> BulkQueryResult:
        """Synchronous convenience: :meth:`submit_bulk` + :meth:`Ticket.result`."""
        return self.submit_bulk(
            spanner,
            documents,
            deadline=deadline,
            max_steps=max_steps,
            workers=workers,
            backend=backend,
        ).result(timeout)

    def _retry_after_hint(self) -> float:
        """Backlog drain estimate, from the shared :class:`RetryAfterHint`."""
        return self._retry_hint.hint(self._queue.qsize(), self.config.workers)

    # ------------------------------------------------------------------
    # mutations (write-locked)
    # ------------------------------------------------------------------
    def add_document(self, name: str, text: str, budget=None, timeout: float | None = None) -> None:
        self._mutate(lambda db: db.add_document(name, text, budget), timeout)

    def edit(self, new_name: str, expression, budget=None, timeout: float | None = None) -> int:
        return self._mutate(lambda db: db.edit(new_name, expression, budget), timeout)

    def register_spanner(self, name: str, spanner, budget=None, timeout: float | None = None) -> None:
        self._mutate(lambda db: db.register_spanner(name, spanner, budget), timeout)

    def save(self, path: str, timeout: float | None = None) -> None:
        self._mutate(lambda db: db.save(path), timeout)

    def transaction(self, timeout: float | None = None):
        """A write-locked all-or-nothing batch (see
        :meth:`StoreCoordinator.transaction <repro.serve.coordination.StoreCoordinator.transaction>`)."""
        self._count("mutations")
        return self.coordinator.transaction(timeout)

    def _mutate(self, operation, timeout: float | None):
        self._count("mutations")
        try:
            with self.coordinator.write(timeout) as db:
                return operation(db)
        except SpanlibError:
            self._count("mutation_failures")
            if obs.enabled():
                obs.metrics().counter("serve.mutation_failures").inc()
            raise

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            if obs.enabled():
                obs.metrics().gauge("serve.queue_depth").set(self._queue.qsize())
            if not self._running:
                item.ticket._fail(ServiceStoppedError("service stopped"))
                continue
            queue_ns = time.perf_counter_ns() - item.enqueued_ns
            t0 = time.perf_counter_ns()
            try:
                if item.deadline is not None and item.deadline.expired():
                    self._count("expired_in_queue")
                    raise DeadlineExceededError(
                        "request deadline expired while queued "
                        f"(waited {queue_ns / 1e9:.3f}s)"
                    )
                with obs.use_context(getattr(item, "trace_ctx", None)):
                    payload, degraded, attempts = self._execute(item)
            except Exception as exc:  # noqa: BLE001 - tickets must resolve
                self._count("failed")
                if obs.enabled():
                    obs.metrics().counter("serve.failed").inc()
                    obs.metrics().counter(
                        f"serve.failed.{type(exc).__name__}"
                    ).inc()
                item.ticket._fail(exc)
                continue
            exec_ns = time.perf_counter_ns() - t0
            self._note_completion(exec_ns, degraded)
            if obs.enabled():
                registry = obs.metrics()
                registry.counter("serve.completed").inc()
                registry.histogram("serve.queue_ns").record(queue_ns)
                registry.histogram("serve.exec_ns").record(exec_ns)
                if degraded:
                    registry.counter("serve.degraded").inc()
            item.ticket._complete(
                item.make_result(payload, degraded, attempts, queue_ns, exec_ns)
            )

    def _execute(self, request) -> tuple:
        """The retry/degradation loop for one request (see module doc).

        Works for any request type implementing ``describe`` /
        ``run_compressed`` / ``run_decompressed`` — single queries and
        batches share one execution path."""
        attempt = 0
        while True:
            attempt += 1
            if request.deadline is not None and request.deadline.expired():
                raise DeadlineExceededError(
                    f"request deadline expired before attempt {attempt}"
                )
            compressed = self.breaker.allow()
            span = (
                obs.tracer().span(
                    "serve.attempt",
                    attempt=attempt,
                    path="slp" if compressed else "decompressed",
                    **request.describe(),
                )
                if obs.enabled()
                else None
            )
            try:
                if span is not None:
                    span.__enter__()
                if compressed:
                    payload = self._attempt_compressed(request)
                    if attempt == 1:
                        self.retry_budget.refill()
                    return payload, False, attempt
                if not self.config.degrade:
                    raise CircuitOpenError(
                        "compressed evaluation tripped and degradation is disabled"
                    )
                return self._attempt_decompressed(request), True, attempt
            except PoolExhaustedError as exc:
                # an explicitly requested process backend found every
                # pool worker checked out: backpressure, one layer down.
                # Surface it in the service's own vocabulary so clients
                # see a single overload signal with a usable hint.
                if span is not None:
                    span.__exit__(type(exc), exc, None)
                    span = None
                self._count("pool_exhausted")
                retry_after = max(exc.retry_after, self._retry_after_hint())
                if obs.enabled():
                    obs.metrics().counter("serve.pool_exhausted").inc()
                raise OverloadedError(
                    f"process pool exhausted; retry after {retry_after:.3f}s",
                    retry_after=retry_after,
                ) from exc
            except SpanlibError as exc:
                if span is not None:
                    span.__exit__(type(exc), exc, None)
                    span = None
                if not _is_transient(exc):
                    raise
                if attempt >= self.retry_policy.max_attempts or not self.retry_budget.try_spend():
                    # retries exhausted: one last-resort degradation if the
                    # failure was on the compressed path (its matrices, its
                    # faults); a failing decompressed path has nothing left
                    # to fall back to
                    if compressed and self.config.degrade:
                        return self._attempt_decompressed(request), True, attempt
                    raise
                self._count("retries")
                if obs.enabled():
                    obs.metrics().counter("serve.retries").inc()
                delay = self.retry_policy.backoff(attempt)
                if request.deadline is not None:
                    delay = min(delay, max(0.0, request.deadline.remaining()))
                if delay > 0:
                    time.sleep(delay)
            finally:
                if span is not None:
                    span.__exit__(None, None, None)

    def _attempt_compressed(self, request):
        """One compressed attempt, with breaker accounting.

        The stream is materialised *inside* the read lock: tuples must not
        be produced lazily after a writer may have truncated the arena."""
        budget = self._budget_for(request)
        try:
            with self.coordinator.read() as db:
                payload = request.run_compressed(db, budget)
        except SpanlibError as exc:
            if _is_transient(exc):
                self.breaker.record_failure()
            else:
                # a schema error or expired deadline says nothing about
                # the health of the compressed path
                self.breaker.record_success()
            raise
        self.breaker.record_success()
        return payload

    def _attempt_decompressed(self, request):
        budget = self._budget_for(request)
        with self.coordinator.read() as db:
            return request.run_decompressed(db, budget)

    def _budget_for(self, request) -> Budget | None:
        if request.deadline is None and request.max_steps is None:
            return None
        return Budget(deadline=request.deadline, max_steps=request.max_steps)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _count(self, key: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counts[key] += amount

    def _note_completion(self, exec_ns: int, degraded: bool) -> None:
        with self._stats_lock:
            self._counts["completed"] += 1
            if degraded:
                self._counts["degraded"] += 1
            self._latencies_ns.append(exec_ns)
        self._retry_hint.observe(exec_ns / 1e9)

    def latency_percentile(self, p: float) -> float:
        """Exact percentile (seconds) over the recent-latency window."""
        with self._stats_lock:
            window = sorted(self._latencies_ns)
        if not window:
            return 0.0
        rank = min(len(window) - 1, max(0, int(len(window) * p / 100.0)))
        return window[rank] / 1e9

    def stats(self) -> dict:
        """Accurate (service-locked) serving statistics plus component
        states — the numbers the chaos suite asserts on."""
        with self._stats_lock:
            counts = dict(self._counts)
        ema = self._retry_hint.ema_s
        return {
            **counts,
            "running": self._running,
            "workers": self.config.workers,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.config.queue_limit,
            "exec_ema_s": ema,
            "p50_s": self.latency_percentile(50),
            "p99_s": self.latency_percentile(99),
            "breaker": self.breaker.stats(),
            "retry_budget": self.retry_budget.stats(),
            "lock": self.coordinator.lock.stats(),
            "plan_cache": plan_cache().stats(),
            # with telemetry harvest folding worker deltas into this
            # process's registry, these are true cross-process totals
            "process_pool": pool_stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self._running else "stopped"
        return f"SpannerService({state}, workers={self.config.workers})"


def serve_queries(
    service: SpannerService,
    requests: Iterator[tuple[str, str]],
    deadline: float | None = None,
) -> Iterator[QueryResult | SpanlibError]:
    """Drive *requests* (``(spanner, document)`` pairs) through *service*,
    yielding a :class:`QueryResult` or the typed error for each — shed
    requests surface as :class:`~repro.errors.OverloadedError` items, not
    exceptions, so callers can measure shed rates.  Used by the CLI
    ``serve`` subcommand and the benchmark driver."""
    tickets: list[Ticket | SpanlibError] = []
    for spanner, document in requests:
        try:
            tickets.append(service.submit(spanner, document, deadline=deadline))
        except SpanlibError as exc:
            tickets.append(exc)
    for ticket in tickets:
        if isinstance(ticket, SpanlibError):
            yield ticket
            continue
        try:
            yield ticket.result(timeout=None)
        except SpanlibError as exc:
            yield exc
