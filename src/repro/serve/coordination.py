"""Reader/writer coordination between concurrent queries and edits.

:class:`~repro.db.SpannerDB` is single-threaded by construction: queries
fill the per-spanner matrix caches as they preprocess fresh nodes, and a
transaction rollback *truncates the SLP arena and invalidates caches* —
state that must never be observed half-changed.  The serving layer
therefore serialises access through one :class:`RWLock`:

* **queries** hold the read lock for their whole evaluation (admission to
  first-to-last tuple), so any number run concurrently against an
  immutable snapshot of the arena, catalogs, and caches;
* **mutations** (``add_document`` / ``edit`` / ``register_spanner`` /
  explicit transactions) hold the write lock exclusively, so a rollback's
  arena truncation and cache invalidation can never race a reader.

Benign exception: two concurrent readers may both preprocess the same
fresh node and write *identical* matrices into the evaluator cache — a
duplicated computation, never an inconsistency (the matrices are a pure
function of the automaton and the immutable node).  Everything else that
mutates evaluator-cache or arena state must run under :meth:`write` —
``tools/check_thread_safety.py`` lints that this stays true.

The lock is **writer-preferring**: once a writer is waiting, new readers
queue behind it, so a steady query stream cannot starve edits.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

from repro.errors import DeadlineExceededError

__all__ = ["RWLock", "StoreCoordinator"]


class RWLock:
    """A writer-preferring readers/writer lock.

    Any number of readers may hold the lock together; writers are
    exclusive against both readers and other writers.  Acquisitions accept
    an optional *timeout* (seconds) and raise
    :class:`~repro.errors.DeadlineExceededError` on expiry, so a stuck
    writer surfaces as a typed, bounded failure instead of a hang.
    Not reentrant — neither side may be acquired recursively.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def read(self, timeout: float | None = None) -> Iterator[None]:
        self.acquire_read(timeout)
        try:
            yield
        finally:
            self.release_read()

    @contextlib.contextmanager
    def write(self, timeout: float | None = None) -> Iterator[None]:
        self.acquire_write(timeout)
        try:
            yield
        finally:
            self.release_write()

    # ------------------------------------------------------------------
    def acquire_read(self, timeout: float | None = None) -> None:
        with self._cond:
            # writer preference: park behind any waiting writer
            if not self._cond.wait_for(
                lambda: not self._writer and self._writers_waiting == 0,
                timeout=timeout,
            ):
                raise DeadlineExceededError(
                    f"read lock not acquired within {timeout}s"
                )
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self, timeout: float | None = None) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                if not self._cond.wait_for(
                    lambda: not self._writer and self._readers == 0,
                    timeout=timeout,
                ):
                    raise DeadlineExceededError(
                        f"write lock not acquired within {timeout}s"
                    )
                self._writer = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._cond:
            return {
                "readers": self._readers,
                "writer": self._writer,
                "writers_waiting": self._writers_waiting,
            }


class StoreCoordinator:
    """One :class:`RWLock` bound to one :class:`~repro.db.SpannerDB`.

    All store access inside :class:`~repro.serve.SpannerService` goes
    through this object: worker threads evaluate under :meth:`read`, and
    every mutation — including multi-operation transactions — runs under
    :meth:`write`, so readers always observe a fully committed snapshot
    (see the concurrency test suite's snapshot-consistency properties).
    """

    def __init__(self, db) -> None:
        self.db = db
        self.lock = RWLock()

    @contextlib.contextmanager
    def read(self, timeout: float | None = None) -> Iterator:
        with self.lock.read(timeout):
            yield self.db

    @contextlib.contextmanager
    def write(self, timeout: float | None = None) -> Iterator:
        with self.lock.write(timeout):
            yield self.db

    @contextlib.contextmanager
    def transaction(self, timeout: float | None = None) -> Iterator:
        """A write-locked :meth:`SpannerDB.transaction` scope: the batch
        commits (or rolls back) before any reader can look again."""
        with self.lock.write(timeout):
            with self.db.transaction():
                yield self.db
