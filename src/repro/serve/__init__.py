"""``repro.serve`` — a concurrent, fault-tolerant query service.

The serving layer composes the robustness primitives of the engine —
transactions and budgets (:mod:`repro.db`, :mod:`repro.util.budget`),
observability (:mod:`repro.obs`), and fault injection
(:mod:`repro.util.faults`) — into a thread-pool executor that keeps
answering *correctly* while queries and edits race, faults fire, and load
exceeds capacity:

* **admission control** — a bounded queue that sheds with a retry-after
  hint (:class:`~repro.errors.OverloadedError`) instead of buffering
  without bound;
* **retries** — exponential backoff with seeded jitter, capped by a
  service-wide retry budget so failure storms cannot amplify;
* **circuit-broken degradation** — repeated failures on the
  SLP-compressed path trip a :class:`CircuitBreaker` and queries fall
  back to decompressed evaluation: identical tuples, worse latency,
  service up, with half-open probing to recover;
* **reader/writer coordination** — an :class:`RWLock` serialises edits
  against concurrent queries, so readers always see a committed snapshot.

Quickstart::

    from repro import SpannerDB
    from repro.serve import ServeConfig, SpannerService

    db = SpannerDB()
    db.add_document("logs", "error at line 3")
    db.register_spanner("words", "(.|\\n)*!w{[a-z]+}(.|\\n)*")

    with SpannerService(db, ServeConfig(workers=4)) as service:
        result = service.query("words", "logs", deadline=2.0)
        print(len(result.tuples), "tuples", "(degraded)" if result.degraded else "")

The chaos suite (``tests/test_chaos.py``) drives hundreds of seeded
multi-threaded runs with injected faults through this layer and asserts
zero wrong answers, zero hangs, and bounded shed rates; see
``docs/RELIABILITY.md`` for the serving runbook.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.coordination import RWLock, StoreCoordinator
from repro.serve.retry import RetryBudget, RetryPolicy
from repro.serve.service import (
    BulkQueryResult,
    QueryResult,
    RetryAfterHint,
    ServeConfig,
    SpannerService,
    Ticket,
    serve_queries,
)
from repro.serve.stream_session import StreamSession, StreamSessionConfig

__all__ = [
    "BulkQueryResult",
    "CircuitBreaker",
    "QueryResult",
    "RWLock",
    "RetryAfterHint",
    "RetryBudget",
    "RetryPolicy",
    "ServeConfig",
    "SpannerService",
    "StoreCoordinator",
    "StreamSession",
    "StreamSessionConfig",
    "Ticket",
    "serve_queries",
]
