"""A circuit breaker around the SLP-compressed evaluation path.

The compressed evaluator is the fast path — O(log |D|) delay — but it is
also the *stateful* path: shared matrix caches, arena-backed nodes, and
(under fault injection or real trouble) the path that fails first.  The
breaker keeps a run of failures on it from taking the whole service down:

* **closed** (healthy): requests use the compressed path; each failure
  increments a consecutive-failure count, each success resets it.
* **open** (tripped): after ``failure_threshold`` consecutive failures the
  breaker opens for ``reset_after`` seconds; :meth:`allow` answers False
  and the service degrades those queries to decompressed evaluation —
  identical results, worse latency, service up.
* **half-open** (probing): once ``reset_after`` elapses, up to
  ``half_open_probes`` requests are let through as probes.  A probe
  failure re-opens the breaker (with a fresh timer); ``half_open_probes``
  consecutive probe successes close it again.

All timing uses the monotonic clock; an injectable ``clock`` makes state
transitions unit-testable without sleeping.  Thread-safe: every
transition happens under one lock, and :meth:`allow` accounts in-flight
half-open probes so a thundering herd cannot over-probe.

State changes are observable: ``serve.breaker.state`` (gauge, 0 = closed,
1 = half-open, 2 = open), ``serve.breaker.opened`` / ``.closed``
(transition counters) via :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time

from repro import obs

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Trip on consecutive failures, recover through half-open probes."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 0.25,
        half_open_probes: int = 2,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_after = float(reset_after)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        #: lifetime transition counts (accurate under the lock; the obs
        #: metrics mirror them best-effort)
        self._times_opened = 0
        self._times_closed = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        # an expired open breaker *is* half-open; the transition is lazy
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_after
        ):
            self._enter(HALF_OPEN)
        return self._state

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May this request take the guarded (compressed) path?

        In half-open state, grants are counted as in-flight probes — at
        most ``half_open_probes`` outstanding — and every grant **must**
        be paired with :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == OPEN:
                return False
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._enter(CLOSED)
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._enter(OPEN)  # one failed probe re-opens, fresh timer
            elif state == CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._enter(OPEN)
            # already open: a straggler failure changes nothing

    # ------------------------------------------------------------------
    def _enter(self, state: str) -> None:
        previous, self._state = self._state, state
        if state == OPEN:
            self._opened_at = self._clock()
            self._times_opened += 1
        elif state == CLOSED:
            self._consecutive_failures = 0
            self._times_closed += 1
        if state in (CLOSED, HALF_OPEN):
            self._probes_in_flight = 0
            self._probe_successes = 0
        if previous != state and obs.enabled():
            registry = obs.metrics()
            registry.gauge("serve.breaker.state").set(_STATE_GAUGE[state])
            if state == OPEN:
                registry.counter("serve.breaker.opened").inc()
            elif state == CLOSED:
                registry.counter("serve.breaker.closed").inc()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self._times_opened,
                "times_closed": self._times_closed,
                "probes_in_flight": self._probes_in_flight,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(state={self.state!r})"
