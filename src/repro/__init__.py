"""spanlib — a document spanner library.

A from-scratch reproduction of the system landscape surveyed in
"Document Spanners — A Brief Overview of Concepts, Results, and Recent
Developments" (Schmid & Schweikardt, PODS 2022):

* the span / span-tuple / span-relation data model of Fagin et al. [9]
  (:mod:`repro.core`);
* regular spanners — vset-automata, extended vset-automata, spanner
  regexes — with linear-preprocessing constant-delay enumeration
  (:mod:`repro.automata`, :mod:`repro.regex`, :mod:`repro.enumeration`);
* the core-spanner algebra with a constructive core-simplification lemma
  and refl-spanners (:mod:`repro.spanners`);
* the decision problems of Section 2.4 (:mod:`repro.decision`);
* SLP-compressed documents: balanced grammars, complex document editing,
  and spanner evaluation without decompression (:mod:`repro.slp`);
* word-combinatorial gadgets (:mod:`repro.wordeq`).

Quickstart::

    from repro import RegularSpanner
    spanner = RegularSpanner.from_regex("!x{(a|b)*}!y{b}!z{(a|b)*}")
    print(spanner.evaluate("ababbab").to_table())
"""

from repro.db import SpannerDB
from repro.errors import (
    CDEError,
    CircuitOpenError,
    DeadlineExceededError,
    EvaluationLimitError,
    FaultInjectedError,
    InvalidMarkedWordError,
    InvalidSpanError,
    JournalError,
    MemoryLimitError,
    NotFunctionalError,
    OverloadedError,
    ParallelError,
    PersistenceError,
    PoolExhaustedError,
    QueryError,
    QuerySyntaxError,
    RegexSyntaxError,
    SchemaError,
    ServeError,
    ServiceStoppedError,
    SLPError,
    SpanlibError,
    StreamError,
    TransactionError,
    UnsupportedSpannerError,
    WindowOverrunError,
    WorkerCrashError,
)
from repro.serve import ServeConfig, SpannerService
from repro.util import Budget, Deadline
from repro.core import (
    CharClass,
    Close,
    DOT,
    MarkedWord,
    Marker,
    Open,
    Ref,
    Span,
    SpanRelation,
    SpanTuple,
    Spanner,
    fuse,
    fuse_tuple,
    mark_document,
)
from repro.enumeration import Enumerator
from repro.regex import compile_nfa, parse, spanner_from_regex
from repro.spanners import (
    CoreSpanner,
    ReflSpanner,
    RegularSpanner,
    core_to_refl_concat,
    prim,
)

__version__ = "1.0.0"

__all__ = [
    "Budget",
    "CDEError",
    "CharClass",
    "CircuitOpenError",
    "Close",
    "CoreSpanner",
    "DOT",
    "Deadline",
    "DeadlineExceededError",
    "Enumerator",
    "EvaluationLimitError",
    "FaultInjectedError",
    "InvalidMarkedWordError",
    "InvalidSpanError",
    "JournalError",
    "MarkedWord",
    "Marker",
    "MemoryLimitError",
    "NotFunctionalError",
    "Open",
    "OverloadedError",
    "ParallelError",
    "PersistenceError",
    "PoolExhaustedError",
    "QueryError",
    "QuerySyntaxError",
    "Ref",
    "ReflSpanner",
    "RegexSyntaxError",
    "RegularSpanner",
    "SLPError",
    "SchemaError",
    "ServeConfig",
    "ServeError",
    "ServiceStoppedError",
    "Span",
    "SpanRelation",
    "SpanTuple",
    "Spanner",
    "SpannerDB",
    "SpannerService",
    "SpanlibError",
    "StreamError",
    "TransactionError",
    "UnsupportedSpannerError",
    "WindowOverrunError",
    "WorkerCrashError",
    "__version__",
    "compile_nfa",
    "core_to_refl_concat",
    "fuse",
    "fuse_tuple",
    "mark_document",
    "parse",
    "prim",
    "spanner_from_regex",
]
