"""The shared query-plan cache: spanner source → compiled plan.

Compiling a regex-formula into a deterministic extended vset-automaton
(parse → Glushkov → eVA → subset construction) is the document-independent
but decidedly non-free half of every query; the seed paid it on *every*
``register_spanner`` call, and a fresh evaluator then re-derived char
tables and node matrices from nothing.  The plan cache interns the
compiled artefact per source text:

* a **plan** is the deterministic eVA plus one shared
  ``SLPSpannerEvaluator``.  Evaluator caches are keyed by the process-
  unique SLP arena serial, so one evaluator serves any number of stores
  without cross-talk, and repeated registrations against the same arena
  skip the node-matrix warm-up entirely;
* the cache is a **bounded LRU**: at most ``max_entries`` plans and at
  most ``max_bytes`` of resident matrix bytes, accounted through
  :class:`repro.util.Budget` (`charge_bytes`), evicting
  least-recently-used plans until the budget admits the rest — plans
  grow as their evaluators warm up, so the accessed plan's byte account
  is refreshed on every access, not only on insert, and the running
  total is maintained incrementally (one ``cache_bytes()`` call per
  access/eviction, never a full re-summation).  A plan that alone
  exceeds ``max_bytes`` is evicted too (counted in
  ``kernels.plan_cache.over_budget``) — an over-budget warm plan is
  never silently retained;
* bookkeeping takes one internal lock, but **compilation runs outside
  it**: concurrent misses on *distinct* sources compile in parallel,
  while concurrent misses on the *same* source are deduplicated through
  a per-key in-flight table (one thread compiles, the rest wait for its
  result).  Hit/miss/eviction counters are published through
  :mod:`repro.obs` (``kernels.plan_cache.hits`` / ``.misses`` /
  ``.evictions`` / ``.over_budget``).

``SpannerDB.register_spanner`` routes every string-valued spanner through
the process-wide cache (:func:`plan_cache`); :mod:`repro.serve` and the
CLI inherit it through the store.  :func:`configure_plan_cache` resizes
or resets the process-wide instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro import obs
from repro.errors import MemoryLimitError
from repro.util.budget import Budget

__all__ = ["CompiledPlan", "PlanCache", "configure_plan_cache", "plan_cache"]

#: default bound on resident plan bytes (packed matrices are 8× smaller
#: than the seed's bool arrays, so this holds hundreds of warm plans)
DEFAULT_MAX_BYTES = 64 * 1024 * 1024
DEFAULT_MAX_ENTRIES = 64


class CompiledPlan:
    """One compiled spanner: source text, deterministic eVA, evaluator."""

    __slots__ = ("source", "deva", "evaluator")

    def __init__(self, source: str, deva, evaluator) -> None:
        self.source = source
        self.deva = deva
        self.evaluator = evaluator

    def cache_bytes(self) -> int:
        """Resident bytes of the plan's evaluator caches (grows with use)."""
        return int(self.evaluator.cache_bytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledPlan({self.source!r}, states={self.deva.num_states})"


def _compile(source: str) -> CompiledPlan:
    # deferred imports: kernels is imported by the slp layer, so pulling
    # the evaluator in at module load would be circular
    from repro.regex.compile import spanner_from_regex
    from repro.slp.spanner_eval import SLPSpannerEvaluator

    spanner = spanner_from_regex(source)
    automaton = getattr(spanner, "automaton", spanner)
    evaluator = SLPSpannerEvaluator(automaton)
    return CompiledPlan(source, evaluator.det, evaluator)


class PlanCache:
    """Bounded, thread-safe LRU of :class:`CompiledPlan` by source text."""

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._plans: OrderedDict[str, CompiledPlan] = OrderedDict()
        #: last-observed cache_bytes() per plan and their running total —
        #: refreshed for the plan touched by each access, so eviction
        #: decisions are O(1) instead of re-summing the whole cache
        self._bytes: dict[str, int] = {}
        self._total_bytes = 0
        self._lock = threading.RLock()
        #: source → event of the thread currently compiling it; misses on
        #: a source already in flight wait instead of recompiling, misses
        #: on distinct sources compile concurrently (no cache-wide stall)
        self._inflight: dict[str, threading.Event] = {}
        self._budget = Budget(max_bytes=self.max_bytes)
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._over_budget = 0

    # ------------------------------------------------------------------
    def get_or_compile(self, source: str, compiler=None) -> CompiledPlan:
        """The cached plan for *source*, compiling (and caching) on miss.

        Compilation happens *outside* the cache lock: a slow compile of
        one spanner never blocks hits — or other misses — on different
        sources.  Concurrent misses on the same source are collapsed to
        one compilation through the in-flight table.

        *compiler* overrides the default regex-formula compiler: it maps
        *source* to a :class:`CompiledPlan` and is how :mod:`repro.query`
        interns whole-query plans under their canonical plan text, so a
        repeated analyst query warms exactly like a single spanner.  The
        caller must use distinct key namespaces for distinct compilers
        (query keys are prefixed ``query:``)."""
        observing = obs.enabled()
        counted = False
        while True:
            wait_for: threading.Event | None = None
            with self._lock:
                plan = self._plans.get(source)
                if plan is not None:
                    self._plans.move_to_end(source)
                    if not counted:
                        self._hits += 1
                        if observing:
                            obs.metrics().counter("kernels.plan_cache.hits").inc()
                    self._account(source, plan)
                    self._shrink()
                    return plan
                if not counted:
                    counted = True
                    self._misses += 1
                    if observing:
                        obs.metrics().counter("kernels.plan_cache.misses").inc()
                wait_for = self._inflight.get(source)
                if wait_for is None:
                    self._inflight[source] = threading.Event()
            if wait_for is not None:
                # another thread is compiling this source; wait for it and
                # re-check (it may have failed or been evicted instantly)
                wait_for.wait()
                continue
            try:
                plan = (compiler or _compile)(source)
            except BaseException:
                with self._lock:
                    self._inflight.pop(source).set()
                raise
            with self._lock:
                self._inflight.pop(source).set()
                if self.max_entries > 0:
                    self._plans[source] = plan
                    self._account(source, plan)
                    self._shrink()
            return plan

    def _account(self, source: str, plan: CompiledPlan) -> None:
        """Refresh one plan's byte record and the incremental total."""
        current = plan.cache_bytes()
        self._total_bytes += current - self._bytes.get(source, 0)
        self._bytes[source] = current

    def _evict_lru(self) -> None:
        source, _ = self._plans.popitem(last=False)
        self._total_bytes -= self._bytes.pop(source, 0)

    def _shrink(self) -> None:
        """Evict LRU plans until entry and byte bounds both admit the rest.

        Byte accounting goes through :class:`repro.util.Budget`'s
        ``charge_bytes`` guard so the cache and every other
        materialisation bound in the system share one failure model.
        Totals are maintained incrementally by :meth:`_account`; each
        eviction is O(1).  A single plan whose warm caches alone exceed
        ``max_bytes`` is evicted as well (callers keep the reference they
        were handed; the cache just refuses to retain it)."""
        evicted = 0
        while len(self._plans) > max(0, self.max_entries):
            self._evict_lru()
            evicted += 1
        while self._plans:
            try:
                self._budget.charge_bytes(self._total_bytes, what="plan cache")
            except MemoryLimitError:
                if len(self._plans) == 1:
                    self._over_budget += 1
                    if obs.enabled():
                        obs.metrics().counter(
                            "kernels.plan_cache.over_budget"
                        ).inc()
                self._evict_lru()
                evicted += 1
                continue
            break
        if evicted:
            self._evictions += evicted
            if obs.enabled():
                obs.metrics().counter("kernels.plan_cache.evictions").inc(evicted)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, source: str) -> bool:
        with self._lock:
            return source in self._plans

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._bytes.clear()
            self._total_bytes = 0

    def stats(self) -> dict:
        """Sizing and effectiveness counters (also mirrored in obs)."""
        with self._lock:
            for source, plan in self._plans.items():
                self._account(source, plan)
            return {
                "entries": len(self._plans),
                "bytes": self._total_bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "over_budget": self._over_budget,
            }


_default_cache = PlanCache()
_default_lock = threading.Lock()


def plan_cache() -> PlanCache:
    """The process-wide plan cache (shared by SpannerDB, serve, and CLI)."""
    return _default_cache


def configure_plan_cache(
    max_entries: int = DEFAULT_MAX_ENTRIES,
    max_bytes: int = DEFAULT_MAX_BYTES,
) -> PlanCache:
    """Replace the process-wide cache with a freshly sized (empty) one."""
    global _default_cache
    with _default_lock:
        _default_cache = PlanCache(max_entries=max_entries, max_bytes=max_bytes)
        return _default_cache
