"""Boolean linear-algebra kernels and the shared query-plan cache.

The survey's speed guarantees — O(|S|·|Q|³) compressed preprocessing
([39]), O(|X|) delay ([10], [2]) — all reduce to boolean reachability
matrices over the deterministic automaton's state set Q.  This package is
the dependency-light layer those matrices live on:

* :mod:`repro.kernels.bitmat` — |Q|×|Q| boolean matrices packed into
  uint64 bit-words (:class:`BitMatrix`), continuation vectors packed the
  same way (:class:`PackedVec`), and the primitives every consumer is
  wired onto: boolean matrix product (:func:`bool_mm`), the wave-batched,
  duplicate-collapsing product (:func:`bool_mm_many`), packed mat-vec
  (:func:`matvec`), row selection through a pure transition function
  (:func:`compose_rows`), and σ-scatter (:func:`function_bits`).  The
  seed float32 product is retained as :func:`reference_mm` so packed
  results stay differentially testable against it.
* :mod:`repro.kernels.plan` — a bounded, thread-safe LRU cache from
  spanner source text to its compiled plan (deterministic eVA + shared
  evaluator), with byte accounting through :class:`repro.util.Budget`
  and hit/miss/eviction counters in :mod:`repro.obs`.

Everything here depends only on numpy and the library's own util/obs
layers — no new third-party dependencies.
"""

from repro.kernels.bitmat import (
    BitMatrix,
    PackedVec,
    bool_mm,
    bool_mm_many,
    compose_rows,
    function_bits,
    function_bits_many,
    intern_many,
    intern_matrix,
    matvec,
    pack_rows,
    pack_vec,
    reference_compose_pure,
    reference_mm,
    unpack_rows,
    unpack_vec,
    words_for,
)
from repro.kernels.plan import (
    CompiledPlan,
    PlanCache,
    configure_plan_cache,
    plan_cache,
)

__all__ = [
    "BitMatrix",
    "CompiledPlan",
    "PackedVec",
    "PlanCache",
    "bool_mm",
    "bool_mm_many",
    "compose_rows",
    "configure_plan_cache",
    "function_bits",
    "function_bits_many",
    "intern_many",
    "intern_matrix",
    "matvec",
    "pack_rows",
    "pack_vec",
    "plan_cache",
    "reference_compose_pure",
    "reference_mm",
    "unpack_rows",
    "unpack_vec",
    "words_for",
]
