"""Packed-bitset boolean matrices: the evaluation kernels.

A |Q|×|Q| boolean reachability matrix is stored as ``ceil(Q/64)`` uint64
words per row (``numpy.packbits`` layout, little bit order): 8× smaller
than the seed's bool arrays and 32× smaller than their transient float32
forms, and row-level operations (mat-vec against a continuation vector,
row gather through a pure transition function, union, single-bit scatter)
become a handful of word-wide numpy operations with **zero dtype
conversions on the enumeration hot path**.

Products still go through BLAS — a float32 matmul is exact for 0/1
matrices with |Q| < 2²⁴ and is the fastest primitive numpy exposes — but
the kernels change *how much* of it runs:

* operands keep a cached float32 mirror (:meth:`BitMatrix.f32`), so a
  matrix is converted at most once per preprocessing pass instead of once
  per product it participates in (the seed converted both operands on
  every multiply);
* :func:`bool_mm_many` multiplies a whole *wave* of independent SLP nodes
  in one batched ``np.matmul`` after collapsing duplicate operand pairs —
  on repetitive documents (the reason SLPs exist) most of a wave's
  products are verbatim repeats of each other and are computed once;
* the result is clamped in place and packed in one batched ``packbits``,
  so downstream nodes start from warm operands.

Duplicate collapsing is a two-tier scheme.  Within a wave, operand pairs
are grouped by *object identity* — a dict lookup per pair, no hashing of
matrix content on the hot path.  Identity grouping alone would miss
equal-content matrices produced by different subtrees, so every distinct
result can be pushed through an *intern pool* (the ``intern`` argument):
results are fingerprinted with a multiply-fold and looked up in the
pool, and an exact word-for-word comparison decides whether to reuse the
pooled object.  Because SLP waves are processed level by level, interning
a result at level ``k`` canonicalises it before any level ``k+1`` pair
references it — so identity grouping downstream captures exactly the
duplicates content hashing would, at a fraction of the cost.  The
fingerprint is never trusted: a collision lands both matrices in the
same bucket, and the exact comparison keeps them distinct.

:func:`reference_mm` / :func:`reference_compose_pure` retain the seed
float32 semantics verbatim; the differential test suite and the
before/after benchmark rows are built on them.
"""

from __future__ import annotations

import numpy as np

from repro import obs

__all__ = [
    "BitMatrix",
    "PackedVec",
    "bool_mm",
    "bool_mm_many",
    "compose_rows",
    "function_bits",
    "function_bits_many",
    "intern_many",
    "intern_matrix",
    "matvec",
    "pack_rows",
    "pack_vec",
    "reference_compose_pure",
    "reference_mm",
    "unpack_rows",
    "unpack_vec",
    "words_for",
]

WORD_BITS = 64
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
# Above this |Q|, numpy's stacked (3-D) matmul stops beating a python
# loop of 2-D BLAS GEMMs (measured crossover ≈ 128–160 on this class of
# hardware), and the batch's float32 working set starts to thrash cache.
_BATCH_MM_MAX_Q = 128


def words_for(bits: int) -> int:
    """How many uint64 words hold *bits* bits (at least one)."""
    return max(1, (int(bits) + WORD_BITS - 1) // WORD_BITS)


def pack_rows(bools: np.ndarray) -> np.ndarray:
    """Pack a (..., q) bool array into (..., words_for(q)) uint64 words."""
    q = bools.shape[-1]
    w = words_for(q)
    packed8 = np.packbits(bools, axis=-1, bitorder="little")
    pad = w * 8 - packed8.shape[-1]
    if pad:
        packed8 = np.concatenate(
            [packed8, np.zeros(packed8.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    return np.ascontiguousarray(packed8).view(np.uint64)


def unpack_rows(packed: np.ndarray, q: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: (..., w) uint64 back to (..., q) bool."""
    bits = np.unpackbits(
        np.ascontiguousarray(packed).view(np.uint8),
        axis=-1,
        count=q,
        bitorder="little",
    )
    return bits.astype(bool)


def pack_vec(bools: np.ndarray) -> np.ndarray:
    """Pack a (q,) bool vector into (words_for(q),) uint64 words."""
    return pack_rows(bools.reshape(1, -1))[0]


def unpack_vec(words: np.ndarray, q: int) -> np.ndarray:
    return unpack_rows(words.reshape(1, -1), q)[0]


class BitMatrix:
    """An n×q boolean matrix held as packed uint64 rows.

    ``rows`` — shape (n, words_for(q)) — is the canonical representation;
    a float32 mirror (for BLAS products) and a bool mirror are derived on
    demand and cached until :meth:`release_dense` drops them.  Instances
    are treated as immutable once built; sharing one object between
    duplicate wave entries or cache hits is always safe.
    """

    __slots__ = ("q", "rows", "_f32", "_bools")

    def __init__(
        self,
        rows: np.ndarray,
        q: int,
        f32: np.ndarray | None = None,
        bools: np.ndarray | None = None,
    ) -> None:
        self.q = int(q)
        self.rows = rows
        self._f32 = f32
        self._bools = bools

    @classmethod
    def from_bool(cls, matrix: np.ndarray) -> "BitMatrix":
        matrix = np.asarray(matrix, dtype=bool)
        return cls(pack_rows(matrix), matrix.shape[-1], bools=matrix)

    @property
    def n(self) -> int:
        return self.rows.shape[0]

    @property
    def nbytes(self) -> int:
        """Resident footprint (packed words plus any cached dense mirror)."""
        total = self.rows.nbytes
        if self._f32 is not None:
            total += self._f32.nbytes
        if self._bools is not None:
            total += self._bools.nbytes
        return total

    def to_bool(self) -> np.ndarray:
        if self._bools is None:
            self._bools = unpack_rows(self.rows, self.q)
        return self._bools

    def f32(self) -> np.ndarray:
        """The cached float32 0/1 mirror (exact for counting products)."""
        if self._f32 is None:
            self._f32 = self.to_bool().astype(np.float32)
        return self._f32

    def release_dense(self) -> None:
        """Drop the dense mirrors; the packed rows stay authoritative."""
        self._f32 = None
        self._bools = None

    def row_and_any(self, row: int, words: np.ndarray) -> bool:
        """``(self[row] & v).any()`` without unpacking anything."""
        return bool((self.rows[row] & words).any())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitMatrix({self.n}x{self.q}, words={self.rows.shape[-1]})"


class PackedVec:
    """A boolean continuation vector with a lazily packed word form.

    The enumeration loop needs both single-state tests (``vec.bools[s]``)
    and whole-vector mat-vec operands (``vec.words``); keeping the bool
    form primary and packing on first use makes each descent pay only for
    what it touches.
    """

    __slots__ = ("bools", "_words")

    def __init__(self, bools: np.ndarray, words: np.ndarray | None = None) -> None:
        self.bools = bools
        self._words = words

    @property
    def words(self) -> np.ndarray:
        if self._words is None:
            self._words = pack_vec(self.bools)
        return self._words

    def any(self) -> bool:
        return bool(self.bools.any())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PackedVec(q={len(self.bools)}, set={int(self.bools.sum())})"


# ----------------------------------------------------------------------
# products
# ----------------------------------------------------------------------
def _clamped(product32: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Clamp a float32 counting product to exact 0/1 in place."""
    np.minimum(product32, 1.0, out=product32)
    return product32, product32 != 0


def bool_mm(a: BitMatrix, b: BitMatrix) -> BitMatrix:
    """Boolean matrix product ``a @ b`` (exact; result carries warm mirrors)."""
    if obs.enabled():
        obs.metrics().counter("kernels.mm").inc()
    c32, cb = _clamped(a.f32() @ b.f32())
    return BitMatrix(pack_rows(cb), b.q, f32=c32, bools=cb)


def _fold_keys(stack: np.ndarray) -> np.ndarray:
    """One uint64 fingerprint per matrix of a (m, n, w) packed stack."""
    m = stack.shape[0]
    flat = stack.reshape(m, -1)
    mult = (
        np.arange(flat.shape[1], dtype=np.uint64) * np.uint64(2) + np.uint64(1)
    ) * _GOLDEN
    with np.errstate(over="ignore"):
        return (flat * mult).sum(axis=1, dtype=np.uint64)


def intern_matrix(pool: dict, matrix: BitMatrix, key: int | None = None) -> BitMatrix:
    """Canonicalise *matrix* against *pool* (fingerprint → exact verify).

    Returns the pooled object when one with identical packed content
    exists, otherwise registers *matrix* and returns it.  Fingerprint
    collisions are harmless: colliding matrices share a bucket and the
    word-for-word comparison keeps unequal ones apart.  Callers holding
    a whole wave can pass precomputed *key* values from one batched
    :func:`_fold_keys` call instead of folding one matrix at a time.
    """
    if key is None:
        key = int(_fold_keys(matrix.rows[None])[0])
    slot = (key, matrix.rows.shape)
    bucket = pool.get(slot)
    if bucket is None:
        pool[slot] = [(matrix.rows.tobytes(), matrix)]
        return matrix
    payload = matrix.rows.tobytes()
    for prior_payload, prior in bucket:
        if prior_payload == payload:
            return prior
    bucket.append((payload, matrix))
    return matrix


def intern_many(pool: dict, matrices: list[BitMatrix]) -> list[BitMatrix]:
    """Canonicalise a batch of matrices with one fingerprint pass.

    Equivalent to :func:`intern_matrix` per element but folds the whole
    stack at once; used by consumers that derive per-node matrices from a
    wave (e.g. ``T = T_em ∪ σ``) and want them deduplicated before they
    become operands of the next wave.
    """
    if not matrices:
        return matrices
    keys = _fold_keys(np.stack([m.rows for m in matrices]))
    return [
        intern_matrix(pool, matrix, key=int(keys[k]))
        for k, matrix in enumerate(matrices)
    ]


def bool_mm_many(
    pairs: list[tuple[BitMatrix, BitMatrix]],
    intern: dict | None = None,
) -> list[BitMatrix]:
    """Product of every (A, B) pair — one batched BLAS call per wave.

    Pairs whose operands are the *same objects* are computed once and
    share one result.  With an ``intern`` pool (a plain dict the caller
    keeps for the duration of one preprocessing pass), each distinct
    result is additionally canonicalised by content, so equal matrices
    produced by different subtrees become one object — which is what
    makes the identity grouping catch them in every later wave.
    """
    m = len(pairs)
    if m == 0:
        return []
    group_of: dict[tuple[int, int], int] = {}
    distinct: list[tuple[BitMatrix, BitMatrix]] = []
    inverse: list[int] = []
    for ab in pairs:
        ident = (id(ab[0]), id(ab[1]))
        g = group_of.get(ident)
        if g is None:
            g = len(distinct)
            group_of[ident] = g
            distinct.append(ab)
        inverse.append(g)
    d = len(distinct)
    if obs.enabled():
        registry = obs.metrics()
        registry.counter("kernels.mm").inc(d)
        registry.counter("kernels.mm_collapsed").inc(m - d)
    q = distinct[0][1].q
    if d > 1 and q <= _BATCH_MM_MAX_Q:
        a32 = np.stack([a.f32() for a, _ in distinct])
        b32 = np.stack([b.f32() for _, b in distinct])
        c32 = np.matmul(a32, b32)
    else:
        # Above the crossover, per-slice 2-D products hit the tuned BLAS
        # GEMM path (numpy's stacked matmul does not); clamping, packing
        # and fingerprinting still happen once for the whole wave below.
        c32 = np.empty((d, q, q), dtype=np.float32)
        for k, (a, b) in enumerate(distinct):
            c32[k] = a.f32() @ b.f32()
    c32, cb = _clamped(c32)
    packed = pack_rows(cb)
    results = [
        BitMatrix(packed[k], q, f32=c32[k], bools=cb[k]) for k in range(d)
    ]
    if intern is not None:
        keys = _fold_keys(packed)
        interned = 0
        for k in range(d):
            canonical = intern_matrix(intern, results[k], key=int(keys[k]))
            if canonical is not results[k]:
                results[k] = canonical
                interned += 1
        if interned and obs.enabled():
            obs.metrics().counter("kernels.mm_interned").inc(interned)
    return [results[g] for g in inverse]


def matvec(a: BitMatrix, vec: PackedVec) -> PackedVec:
    """Boolean ``a @ vec``: which rows of *a* intersect the set *vec*."""
    return PackedVec((a.rows & vec.words).any(axis=1))


def compose_rows(sigma: np.ndarray, matrix: BitMatrix, dead: int = -1) -> BitMatrix:
    """Rows of *matrix* pulled through the partial function σ (dead → 0-row)."""
    invalid = sigma == dead
    gathered = matrix.rows[np.where(invalid, 0, sigma)]
    gathered[invalid] = 0
    return BitMatrix(gathered, matrix.q)


def function_bits(sigma: np.ndarray, q: int, dead: int = -1) -> BitMatrix:
    """The partial function σ as a packed relation: bit σ[s] set in row s."""
    w = words_for(q)
    rows = np.zeros((len(sigma), w), dtype=np.uint64)
    valid = np.nonzero(sigma != dead)[0]
    targets = sigma[valid]
    rows[valid, targets // WORD_BITS] = np.uint64(1) << (
        targets % WORD_BITS
    ).astype(np.uint64)
    return BitMatrix(rows, q)


def function_bits_many(sigmas: np.ndarray, q: int, dead: int = -1) -> np.ndarray:
    """Batched :func:`function_bits`: (m, n) σ stack → (m, n, w) packed rows."""
    m, n = sigmas.shape
    w = words_for(q)
    rows = np.zeros((m, n, w), dtype=np.uint64)
    batch, source = np.nonzero(sigmas != dead)
    targets = sigmas[batch, source]
    rows[batch, source, targets // WORD_BITS] = np.uint64(1) << (
        targets % WORD_BITS
    ).astype(np.uint64)
    return rows


# ----------------------------------------------------------------------
# the retained seed implementation (differential anchor)
# ----------------------------------------------------------------------
def reference_mm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The seed boolean product: float32 matmul with per-use conversions."""
    return (a.astype(np.float32) @ b.astype(np.float32)) > 0.5


def reference_compose_pure(
    sigma: np.ndarray, matrix: np.ndarray, dead: int = -1
) -> np.ndarray:
    """The seed σ-composition on bool matrices (dead rows zeroed)."""
    gathered = matrix[np.where(sigma == dead, 0, sigma)]
    gathered[sigma == dead] = False
    return gathered
